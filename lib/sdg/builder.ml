(** Dependence-graph construction over the pointer-analysis result.

    This module materializes the navigation structure that the slicers
    traverse: per-node def/use indexes over SSA registers (local data
    dependence, excluding base-pointer uses — the defining property of thin
    slicing), interprocedural call-site maps, and the global heap-access
    indexes that realize the HSDG's direct store→load edges. *)

module Int_set = Set.Make (Int)
module Keys = Pointer.Keys
module Telemetry = Obs.Telemetry
open Jir

(* Telemetry. The def/use memo counters are the one advertised exception
   to jobs-independence: worker domains keep private memo tables, so the
   miss count (duplicated construction) legitimately varies with [jobs]. *)
let m_nodes_scanned = Telemetry.counter "sdg.nodes_scanned"
let m_memo_hits = Telemetry.counter "sdg.defuse_memo_hits"
let m_memo_misses = Telemetry.counter "sdg.defuse_memo_misses"

(** How a register is used at a statement. Base-pointer and array-index uses
    are deliberately absent: thin slices ignore them (§3.2). *)
type use =
  | U_plain of Stmt.t                  (** operand of a value-producing instr *)
  | U_stored of Stmt.t                 (** the stored value at a store stmt *)
  | U_arg of Stmt.t * int              (** call argument (position) *)
  | U_returned
  | U_thrown of Stmt.t

type node_index = {
  ni_def : (Tac.var, Stmt.t) Hashtbl.t;
  ni_uses : (Tac.var, use list) Hashtbl.t;
}

(** A node index in node-relative coordinates ({!Stmt.kind} instead of
    {!Stmt.t}): a pure function of the method body alone — parameter
    defs, SSA def/use chains and the per-method dictionary-operation
    classification ([Dict_model.const_of_meth] is body-local) — so the
    incremental cache can persist it keyed by a body digest and rebind
    it to whatever call-graph node the method lands on next run. The
    entry lists are kept in a canonical order so the marshaled bytes are
    deterministic across hashtable layouts. *)
type rel_use =
  | RU_plain of Stmt.kind
  | RU_stored of Stmt.kind
  | RU_arg of Stmt.kind * int
  | RU_returned
  | RU_thrown of Stmt.kind

type defuse_summary = {
  ds_defs : (Tac.var * Stmt.kind) list;
  ds_uses : (Tac.var * rel_use list) list;
      (** per-var use lists verbatim, preserving the order
          [build_node_index] produced — traversal order downstream
          depends on it *)
}

type defuse_cache = {
  dc_lookup : Tac.meth -> defuse_summary option;
      (** validated lookup: the cache implementation compares its stored
          body digest against the current method and returns [None] on
          any mismatch (counting the invalidation) *)
  dc_store : Tac.meth -> defuse_summary -> unit;
}

type t = {
  prog : Program.t;
  a : Pointer.Andersen.t;
  cg : Pointer.Callgraph.t;
  uid : int;                         (* keys worker-domain side tables *)
  owner : Domain.id;                 (* the domain that built this t *)
  node_indexes : (int, node_index) Hashtbl.t;
  (* global heap indexes *)
  inst_loads : (int * Keys.field, Stmt.t list ref) Hashtbl.t;
  static_loads : (Keys.field, Stmt.t list ref) Hashtbl.t;
  loads_by_ik : (int, Stmt.t list ref) Hashtbl.t;   (* any-field loads *)
  inst_stores : (int * Keys.field, Stmt.t list ref) Hashtbl.t;
  static_stores : (Keys.field, Stmt.t list ref) Hashtbl.t;
  throws : (Stmt.t * Int_set.t) list ref;           (* throw stmt, thrown pts *)
  catches : (Stmt.t * string) list ref;
  call_stmt_of_site : (int * int, Stmt.t) Hashtbl.t;  (* (node, site) *)
  caller_stmts : (int, Stmt.t list ref) Hashtbl.t;    (* callee -> call stmts *)
  all_calls : (Stmt.t * Tac.call) list ref;
  dict_ops : (Stmt.t, Models.Dict_model.op) Hashtbl.t;
  thread_of : (int, Int_set.t) Hashtbl.t;             (* node -> thread ids *)
  defuse_cache : defuse_cache option;
  mutable interrupted : bool;        (* build stopped before every node *)
}

let node_meth t n = (Pointer.Callgraph.node t.cg n).Pointer.Callgraph.n_method

let instr_of t (s : Stmt.t) : Tac.instr option =
  match s.Stmt.kind with
  | Stmt.K_instr (b, i) ->
    let m = node_meth t s.Stmt.node in
    let instrs = m.Tac.m_blocks.(b).Tac.instrs in
    if i < Array.length instrs then Some instrs.(i)
    else None    (* synthetic throw statement at block end *)
  | Stmt.K_phi _ | Stmt.K_param _ | Stmt.K_ret -> None

let call_of t s =
  match instr_of t s with
  | Some (Tac.Call c) -> Some c
  | Some _ | None -> None

let dict_op_of t s = Hashtbl.find_opt t.dict_ops s

(* ------------------------------------------------------------------ *)
(* Index construction                                                 *)
(* ------------------------------------------------------------------ *)

let add_use tbl v u =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl v) in
  Hashtbl.replace tbl v (u :: prev)

let push tbl key s =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := s :: !l
  | None -> Hashtbl.replace tbl key (ref [ s ])

let build_node_index t (n : int) : node_index =
  let m = node_meth t n in
  let ni_def = Hashtbl.create 64 and ni_uses = Hashtbl.create 64 in
  for p = 0 to m.Tac.m_arity - 1 do
    Hashtbl.replace ni_def p (Stmt.param ~node:n ~index:p)
  done;
  Array.iteri
    (fun bi (b : Tac.block) ->
       List.iteri
         (fun pi (phi : Tac.phi) ->
            let s = Stmt.phi ~node:n ~block:bi ~index:pi in
            Hashtbl.replace ni_def phi.Tac.phi_lhs s;
            List.iter (fun (_, a) -> add_use ni_uses a (U_plain s))
              phi.Tac.phi_args)
         b.Tac.phis;
       Array.iteri
         (fun ii ins ->
            let s = Stmt.instr ~node:n ~block:bi ~index:ii in
            List.iter (fun v -> Hashtbl.replace ni_def v s) (Tac.defs ins);
            match ins with
            | Tac.Move (_, a) | Tac.Cast (_, _, a) | Tac.Unop (_, _, a) ->
              add_use ni_uses a (U_plain s)
            | Tac.Binop (_, _, a, b) | Tac.Strcat (_, a, b) ->
              add_use ni_uses a (U_plain s);
              add_use ni_uses b (U_plain s)
            | Tac.Store (_, _, v) | Tac.Sstore (_, v) | Tac.Astore (_, _, v) ->
              add_use ni_uses v (U_stored s)
            | Tac.Call c ->
              (match Hashtbl.find_opt t.dict_ops s with
               | Some (Models.Dict_model.Dict_put { value; _ }) ->
                 add_use ni_uses value (U_stored s)
               | Some (Models.Dict_model.Dict_get _) -> ()
               | None ->
                 List.iteri
                   (fun i a -> add_use ni_uses a (U_arg (s, i)))
                   c.Tac.args)
            | Tac.Const _ | Tac.New _ | Tac.New_array _ | Tac.Load _
            | Tac.Sload _ | Tac.Aload _ | Tac.Array_len _
            | Tac.Instance_of _ | Tac.Catch_entry _ | Tac.Nop -> ())
         b.Tac.instrs;
       (match b.Tac.term with
        | Tac.Return (Some v) -> add_use ni_uses v U_returned
        | Tac.Throw v ->
          (* the throw "statement" is identified with the block's last
             position; we use a synthetic instr index one past the end *)
          let s =
            Stmt.instr ~node:n ~block:bi ~index:(Array.length b.Tac.instrs)
          in
          add_use ni_uses v (U_thrown s)
        | Tac.Return None | Tac.Goto _ | Tac.If _ | Tac.Unreachable -> ()))
    m.Tac.m_blocks;
  { ni_def; ni_uses }

(* Node-relative strip/rebind for the persistent def/use cache. A
   round trip ([materialize ~node (strip ni)]) reproduces the exact
   hashtable content [build_node_index] would have produced for that
   node: single-binding defs are order-insensitive under [replace], and
   the per-var use lists are carried verbatim. *)
let strip_use (u : use) : rel_use =
  match u with
  | U_plain s -> RU_plain s.Stmt.kind
  | U_stored s -> RU_stored s.Stmt.kind
  | U_arg (s, i) -> RU_arg (s.Stmt.kind, i)
  | U_returned -> RU_returned
  | U_thrown s -> RU_thrown s.Stmt.kind

let strip_index (ni : node_index) : defuse_summary =
  let defs =
    Hashtbl.fold (fun v s acc -> (v, s.Stmt.kind) :: acc) ni.ni_def []
  in
  let uses =
    Hashtbl.fold
      (fun v us acc -> (v, List.map strip_use us) :: acc)
      ni.ni_uses []
  in
  { ds_defs = List.sort compare defs; ds_uses = List.sort compare uses }

let materialize_summary ~node (s : defuse_summary) : node_index =
  let abs kind = { Stmt.node; kind } in
  let abs_use = function
    | RU_plain k -> U_plain (abs k)
    | RU_stored k -> U_stored (abs k)
    | RU_arg (k, i) -> U_arg (abs k, i)
    | RU_returned -> U_returned
    | RU_thrown k -> U_thrown (abs k)
  in
  let ni_def = Hashtbl.create 64 and ni_uses = Hashtbl.create 64 in
  List.iter (fun (v, k) -> Hashtbl.replace ni_def v (abs k)) s.ds_defs;
  List.iter
    (fun (v, us) -> Hashtbl.replace ni_uses v (List.map abs_use us))
    s.ds_uses;
  { ni_def; ni_uses }

(* The def/use indexes are memoized per node, on demand: most nodes are
   never touched by a slice, so forcing them all up front costs more
   than the slicing itself. Under the parallel engine the memo must not
   become a data race, so each *worker* domain fills a private table
   (below) while the building domain keeps using [t.node_indexes];
   duplicated construction across workers is idempotent and bounded by
   what each worker actually visits. Worker domains live for one
   [Parallel.map], so their side tables die with them; [uid] keying
   protects the main domain-turned-worker case where the DLS outlives
   one builder. *)
let dls_node_indexes :
  (int, (int, node_index) Hashtbl.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let node_index t n =
  let tbl =
    if Domain.self () = t.owner then t.node_indexes
    else begin
      let per_builder = Domain.DLS.get dls_node_indexes in
      match Hashtbl.find_opt per_builder t.uid with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 256 in
        Hashtbl.replace per_builder t.uid tbl;
        tbl
    end
  in
  match Hashtbl.find_opt tbl n with
  | Some ni ->
    Telemetry.incr m_memo_hits;
    ni
  | None ->
    Telemetry.incr m_memo_misses;
    let ni =
      match t.defuse_cache with
      | None -> build_node_index t n
      | Some dc ->
        (* persistent tier: a validated summary rebinds to this node;
           a miss rebuilds and refreshes the cache entry *)
        let m = node_meth t n in
        (match dc.dc_lookup m with
         | Some s -> materialize_summary ~node:n s
         | None ->
           let ni = build_node_index t n in
           dc.dc_store m (strip_index ni);
           ni)
    in
    Hashtbl.replace tbl n ni;
    ni

let strip_index_of_node t n = strip_index (node_index t n)

(** The statement defining register [v] in node [n], if any. *)
let def_of t ~node v = Hashtbl.find_opt (node_index t node).ni_def v

(** All uses of register [v] in node [n]. *)
let uses_of t ~node v =
  Option.value ~default:[] (Hashtbl.find_opt (node_index t node).ni_uses v)

(** The register whose value a statement defines. *)
let def_var t (s : Stmt.t) : Tac.var option =
  match s.Stmt.kind with
  | Stmt.K_param i -> Some i
  | Stmt.K_ret -> None
  | Stmt.K_phi (b, i) ->
    let m = node_meth t s.Stmt.node in
    Some (List.nth m.Tac.m_blocks.(b).Tac.phis i).Tac.phi_lhs
  | Stmt.K_instr (b, i) ->
    let m = node_meth t s.Stmt.node in
    let instrs = m.Tac.m_blocks.(b).Tac.instrs in
    if i >= Array.length instrs then None    (* synthetic throw stmt *)
    else
      (match instrs.(i) with
       | Tac.Call c ->
         (match Hashtbl.find_opt t.dict_ops s with
          | Some (Models.Dict_model.Dict_put _) -> None
          | _ -> c.Tac.ret)
       | ins -> (match Tac.defs ins with [ v ] -> Some v | _ -> None))

(* ------------------------------------------------------------------ *)
(* Heap access classification                                         *)
(* ------------------------------------------------------------------ *)

let callees_of_call t (s : Stmt.t) (c : Tac.call) : int list =
  Pointer.Callgraph.callees t.cg ~caller:s.Stmt.node ~site:c.Tac.site

let native_targets_of_call t (s : Stmt.t) (c : Tac.call) : Tac.mref list =
  Pointer.Callgraph.native_targets t.cg ~caller:s.Stmt.node ~site:c.Tac.site

(* ------------------------------------------------------------------ *)
(* ------------------------------------------------------------------ *)

type writes =
  | W_instance of (Int_set.t * Keys.field list)  (* base pts, fields *)
  | W_static of Keys.field
  | W_none

let pts_of_var t ~node v =
  Int_set.of_list (Pointer.Andersen.pts_var t.a ~node v)

(** What heap locations a store-like statement writes. *)
let writes_of t (s : Stmt.t) : writes =
  match instr_of t s with
  | Some (Tac.Store (o, f, _)) ->
    W_instance (pts_of_var t ~node:s.Stmt.node o, [ Keys.field_of_tac f ])
  | Some (Tac.Astore (a, _, _)) ->
    W_instance (pts_of_var t ~node:s.Stmt.node a, [ Keys.elem_field ])
  | Some (Tac.Sstore (f, _)) -> W_static (Keys.field_of_tac f)
  | Some (Tac.Call c) ->
    (match Hashtbl.find_opt t.dict_ops s with
     | Some (Models.Dict_model.Dict_put { recv; key; _ }) ->
       W_instance
         (pts_of_var t ~node:s.Stmt.node recv,
          List.map Keys.field_of_tac (Models.Dict_model.put_fields key))
     | _ ->
       (* natives with by-reference transfers write their target argument's
          contents *)
       let targets =
         List.concat_map
           (fun (native : Tac.mref) ->
              List.filter_map
                (fun (tr : Models.Natives.transfer) ->
                   match tr.Models.Natives.t_to with
                   | Models.Natives.Param j -> List.nth_opt c.Tac.args j
                   | Models.Natives.Ret -> None)
                (Models.Natives.summary ~meth_id:(Tac.mref_id native)
                   ~arity:(List.length c.Tac.args)
                   ~has_ret:(c.Tac.ret <> None)))
           (native_targets_of_call t s c)
       in
       (match targets with
        | [] -> W_none
        | vs ->
          let pts =
            List.fold_left
              (fun acc v ->
                 Int_set.union acc (pts_of_var t ~node:s.Stmt.node v))
              Int_set.empty vs
          in
          W_instance (pts, [ Keys.elem_field ])))
  | _ -> W_none

(** Load statements that may read an instance-key/field pair. *)
let loads_reading t ~ik ~field =
  match Hashtbl.find_opt t.inst_loads (ik, field) with
  | Some l -> !l
  | None -> []

(** Store statements that may write an instance-key/field pair (the reverse
    direct edges, for backward slicing). *)
let stores_writing t ~ik ~field =
  match Hashtbl.find_opt t.inst_stores (ik, field) with
  | Some l -> !l
  | None -> []

let static_stores_of t field =
  match Hashtbl.find_opt t.static_stores field with
  | Some l -> !l
  | None -> []

(** Throw statements whose thrown keys may reach a handler of class [cls]. *)
let throws_for t ~(table : Classtable.t) (cls : string) : Stmt.t list =
  let u = Pointer.Andersen.universe t.a in
  List.filter_map
    (fun (s, pts) ->
       if Int_set.exists
           (fun ik ->
              Classtable.is_subclass table
                (Keys.inst_class (Keys.ik_of u ik)) cls)
           pts
       then Some s
       else None)
    !(t.throws)

let static_loads_of t field =
  match Hashtbl.find_opt t.static_loads field with
  | Some l -> !l
  | None -> []

(** Load statements reading any field of an instance key (for by-reference
    sources). *)
let loads_of_ik t ~ik =
  match Hashtbl.find_opt t.loads_by_ik ik with
  | Some l -> !l
  | None -> []

(** Catch statements whose declared class admits one of the thrown keys. *)
let catches_for t (thrown : Int_set.t) : Stmt.t list =
  let table = t.prog.Program.table in
  let u = Pointer.Andersen.universe t.a in
  List.filter_map
    (fun (s, cls) ->
       let compatible =
         Int_set.exists
           (fun ikid ->
              Classtable.is_subclass table
                (Keys.inst_class (Keys.ik_of u ikid)) cls)
           thrown
       in
       if compatible then Some s else None)
    !(t.catches)

(* ------------------------------------------------------------------ *)
(* Calls                                                              *)
(* ------------------------------------------------------------------ *)

(** Call statements in any node that invoke [callee]. *)
let callers_of_node t ~callee =
  match Hashtbl.find_opt t.caller_stmts callee with
  | Some l -> !l
  | None -> []

let all_call_stmts t = !(t.all_calls)

let thread_ids_of t node =
  Option.value ~default:Int_set.empty (Hashtbl.find_opt t.thread_of node)

(* ------------------------------------------------------------------ *)
(* Global scan                                                        *)
(* ------------------------------------------------------------------ *)

let scan_node t n =
  let m = node_meth t n in
  let const_of = Models.Dict_model.const_of_meth m in
  Array.iteri
    (fun bi (b : Tac.block) ->
       Array.iteri
         (fun ii ins ->
            let s = Stmt.instr ~node:n ~block:bi ~index:ii in
            match ins with
            | Tac.Load (_, o, f) ->
              let f = Keys.field_of_tac f in
              Int_set.iter
                (fun ik ->
                   push t.inst_loads (ik, f) s;
                   push t.loads_by_ik ik s)
                (pts_of_var t ~node:n o)
            | Tac.Aload (_, a, _) ->
              Int_set.iter
                (fun ik ->
                   push t.inst_loads (ik, Keys.elem_field) s;
                   push t.loads_by_ik ik s)
                (pts_of_var t ~node:n a)
            | Tac.Sload (_, f) -> push t.static_loads (Keys.field_of_tac f) s
            | Tac.Store (o, f, _) ->
              let f = Keys.field_of_tac f in
              Int_set.iter
                (fun ik -> push t.inst_stores (ik, f) s)
                (pts_of_var t ~node:n o)
            | Tac.Astore (a, _, _) ->
              Int_set.iter
                (fun ik -> push t.inst_stores (ik, Keys.elem_field) s)
                (pts_of_var t ~node:n a)
            | Tac.Sstore (f, _) ->
              push t.static_stores (Keys.field_of_tac f) s
            | Tac.Catch_entry (_, cls) -> t.catches := (s, cls) :: !(t.catches)
            | Tac.Call c ->
              Hashtbl.replace t.call_stmt_of_site (n, c.Tac.site) s;
              t.all_calls := (s, c) :: !(t.all_calls);
              (match Models.Dict_model.classify ~const_of c with
               | Some op ->
                 Hashtbl.replace t.dict_ops s op;
                 (match op with
                  | Models.Dict_model.Dict_get { recv; key; _ } ->
                    let fields =
                      List.map Keys.field_of_tac
                        (Models.Dict_model.get_fields key)
                    in
                    Int_set.iter
                      (fun ik ->
                         List.iter (fun f -> push t.inst_loads (ik, f) s) fields;
                         push t.loads_by_ik ik s)
                      (pts_of_var t ~node:n recv)
                  | Models.Dict_model.Dict_put { recv; key; _ } ->
                    let fields =
                      List.map Keys.field_of_tac
                        (Models.Dict_model.put_fields key)
                    in
                    Int_set.iter
                      (fun ik ->
                         List.iter
                           (fun f -> push t.inst_stores (ik, f) s)
                           fields)
                      (pts_of_var t ~node:n recv))
               | None ->
                 List.iter
                   (fun callee -> push t.caller_stmts callee s)
                   (callees_of_call t s c);
                 (* an unresolved reflective invoke consumes the contents of
                    its argument array: model it as a load of the array's
                    element field so tainted arguments still reach it *)
                 (match c.Tac.target, List.rev c.Tac.args with
                  | { Tac.rclass = "Method"; rname = "invoke"; rarity = 3 },
                    arr :: _ ->
                    Int_set.iter
                      (fun ik ->
                         push t.inst_loads (ik, Keys.elem_field) s;
                         push t.loads_by_ik ik s)
                      (pts_of_var t ~node:n arr)
                  | _ -> ());
                 (* natives with by-reference transfers (e.g. arraycopy)
                    read the contents of their source argument *)
                 List.iter
                   (fun (native : Tac.mref) ->
                      List.iter
                        (fun (tr : Models.Natives.transfer) ->
                           match tr.Models.Natives.t_to with
                           | Models.Natives.Param _ ->
                             (match List.nth_opt c.Tac.args
                                      tr.Models.Natives.t_from with
                              | Some src ->
                                Int_set.iter
                                  (fun ik ->
                                     push t.inst_loads (ik, Keys.elem_field) s;
                                     push t.loads_by_ik ik s)
                                  (pts_of_var t ~node:n src)
                              | None -> ())
                           | Models.Natives.Ret -> ())
                        (Models.Natives.summary
                           ~meth_id:(Tac.mref_id native)
                           ~arity:(List.length c.Tac.args)
                           ~has_ret:(c.Tac.ret <> None)))
                   (native_targets_of_call t s c))
            | _ -> ())
         b.Tac.instrs;
       (match b.Tac.term with
        | Tac.Throw v ->
          let s =
            Stmt.instr ~node:n ~block:bi ~index:(Array.length b.Tac.instrs)
          in
          t.throws := (s, pts_of_var t ~node:n v) :: !(t.throws)
        | _ -> ()))
    m.Tac.m_blocks

(* Thread partitioning: flows that cross a Thread.start -> run dispatch run
   on a different thread. Used by the CS configuration's (unsound) heap
   treatment. *)
let compute_threads t =
  let next_tid = ref 1 in
  let set_tid node tid =
    let prev =
      Option.value ~default:Int_set.empty (Hashtbl.find_opt t.thread_of node)
    in
    if Int_set.mem tid prev then false
    else begin
      Hashtbl.replace t.thread_of node (Int_set.add tid prev);
      true
    end
  in
  let queue = Queue.create () in
  Pointer.Callgraph.iter_nodes t.cg (fun n ->
      let id = Tac.method_id n.Pointer.Callgraph.n_method in
      if List.mem id t.prog.Program.entrypoints
         || List.mem id t.prog.Program.clinits
      then
        if set_tid n.Pointer.Callgraph.n_id 0 then
          Queue.add (n.Pointer.Callgraph.n_id, 0) queue);
  while not (Queue.is_empty queue) do
    let node, tid = Queue.pop queue in
    let caller_meth = Tac.method_id (node_meth t node) in
    List.iter
      (fun callee ->
         let callee_meth = node_meth t callee in
         let crossing =
           String.equal caller_meth "Thread.start/1"
           && String.equal callee_meth.Tac.m_name "run"
         in
         let tid' =
           if crossing then begin
             let fresh = !next_tid in
             next_tid := fresh + 1;
             fresh
           end
           else tid
         in
         if set_tid callee tid' then Queue.add (callee, tid') queue)
      (Pointer.Callgraph.successors t.cg node)
  done

let next_uid = Atomic.make 0

let build ?(interrupt = fun () -> false) ?(scan_filter = fun _ -> true)
    ?defuse_cache (prog : Program.t) (a : Pointer.Andersen.t) : t =
  Telemetry.with_span "sdg.build" @@ fun () ->
  let t =
    { prog; a;
      cg = Pointer.Andersen.call_graph a;
      uid = Atomic.fetch_and_add next_uid 1;
      owner = Domain.self ();
      node_indexes = Hashtbl.create 256;
      inst_loads = Hashtbl.create 1024;
      static_loads = Hashtbl.create 64;
      loads_by_ik = Hashtbl.create 1024;
      inst_stores = Hashtbl.create 1024;
      static_stores = Hashtbl.create 64;
      throws = ref [];
      catches = ref [];
      call_stmt_of_site = Hashtbl.create 1024;
      caller_stmts = Hashtbl.create 256;
      all_calls = ref [];
      dict_ops = Hashtbl.create 64;
      thread_of = Hashtbl.create 256;
      defuse_cache;
      interrupted = false }
  in
  let n_nodes = Pointer.Callgraph.node_count t.cg in
  let n = ref 0 in
  while !n < n_nodes && not t.interrupted do
    if interrupt () then t.interrupted <- true
    else begin
      (* the triage pre-filter: a node proven untaint-reachable (and free
         of rule-relevant calls) contributes nothing any slice can reach,
         so its heap/call/throw indexing is skipped wholesale. The lazy
         per-node def/use memo is unaffected — it only materializes for
         nodes a slice actually visits. *)
      if scan_filter (node_meth t !n) then begin
        scan_node t !n;
        Telemetry.incr m_nodes_scanned
      end;
      incr n
    end
  done;
  compute_threads t;
  t

let interrupted t = t.interrupted

(* ------------------------------------------------------------------ *)
(* Parallel-phase preparation                                         *)
(* ------------------------------------------------------------------ *)

(** Warm the one cache that stays *shared* under the parallel engine:
    the class table's subclass memo, reached transitively through
    {!throws_for}/{!catches_for}. Forcing [throws_for] for every recorded
    catch class warms exactly the (thrown-key class × catch class)
    subclass queries tabulation can make: the thrown points-to sets it
    recomputes are the ones recorded by the build scan. The per-node
    def/use memo needs no warming — worker domains fill private side
    tables (see {!node_index}). Idempotent; call once before handing [t]
    to worker domains. *)
let precompute t =
  let table = t.prog.Program.table in
  List.iter
    (fun (_, cls) -> ignore (throws_for t ~table cls : Stmt.t list))
    !(t.catches)
