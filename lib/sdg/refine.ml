(** Field-sensitive flow refinement: an IFDS-style replay that re-traces a
    candidate flow reported by the hybrid thin slicer, tracking k-limited
    access paths (Allen et al., "IFDS Taint Analysis with Access Paths").

    The slicer's heap model is flow-insensitive direct store→load edges
    (§3.2) — its deliberate over-approximation and the main false-positive
    source classified in Figure 4. The replay replaces that shortcut with
    register-rooted facts ⟨defining statement, access path π, bounded call
    stack⟩: a store [o.f = v] of a tainted value does not jump to every
    aliased load, it roots the taint at the *base* register's definition
    with [f] pushed onto π, and only a later load of [f] from that base (or
    from an alias, as a budgeted fallback) consumes it. Call/return edges
    are matched against a bounded stack of call statements, so a value
    returned out of a factory reaches only the call site it actually came
    from.

    Verdicts are asymmetric by design: [Confirmed] requires a complete
    field-sensitive witness to the flow's own sink statement; *any* failure
    — no path, k-limit widening, step/heap budget exhaustion, interruption,
    even an internal fault — yields [Plausible], and the flow is kept
    either way. Demote, never drop: recall is untouched by construction. *)

module Int_set = Builder.Int_set
module Keys = Pointer.Keys
module Telemetry = Obs.Telemetry
open Jir

let m_replays = Telemetry.counter "refine.replays"
let m_steps = Telemetry.counter "refine.steps"
let m_heap_transitions = Telemetry.counter "refine.heap_transitions"
let m_confirmed = Telemetry.counter "refine.confirmed"
let m_plausible = Telemetry.counter "refine.plausible"

type reason =
  | No_path         (** replay exhausted the state space without a witness *)
  | Widened         (** a path exceeded k and was dropped along the way *)
  | Budget          (** step or heap-transition budget ran out *)
  | Interrupted     (** the supervisor's deadline/cancel poll fired *)
  | Fault of string (** replay raised; the flow is kept, never errored *)

type verdict = Confirmed | Plausible of reason

let rank = function Confirmed -> 0 | Plausible _ -> 1

let verdict_name = function Confirmed -> "confirmed" | Plausible _ -> "plausible"

let reason_name = function
  | No_path -> "no-path"
  | Widened -> "widened"
  | Budget -> "budget"
  | Interrupted -> "interrupted"
  | Fault _ -> "fault"

let pp_verdict ppf = function
  | Confirmed -> Fmt.string ppf "confirmed"
  | Plausible (Fault msg) -> Fmt.pf ppf "plausible (fault: %s)" msg
  | Plausible r -> Fmt.pf ppf "plausible (%s)" (reason_name r)

type limits = {
  k : int;                    (** access-path depth bound *)
  max_steps : int;            (** replay step budget (per flow) *)
  max_heap_transitions : int; (** aliasing-fallback budget (per flow) *)
  max_call_depth : int;       (** call-stack bound; deeper → unbalanced *)
}

let default_limits =
  { k = 3; max_steps = 4096; max_heap_transitions = 512; max_call_depth = 32 }

type callbacks = {
  is_sink_arg : Tac.mref -> int -> bool;
  is_sanitizer : Tac.mref -> bool;
  sanitizer_passthrough : bool;
      (** mirror of [Tabulation.callbacks.sanitizer_passthrough]: replay
          through sanitizers instead of killing, for record-and-judge *)
  sink_reach : Int_set.t;
      (** instance keys reachable from the sink's sensitive arguments —
          the carrier-hit criterion (§4.1.1), precomputed by the engine *)
}

type stats = {
  st_steps : int;
  st_heap_transitions : int;
  st_widened : bool;
}

(* A replay fact: the value defined at [r_stmt], viewed through the field
   suffix [r_path] (ε = the value itself is tainted), under the bounded
   call stack [r_stack] (innermost call statement first; [] = unknown
   context, returns become unbalanced). *)
type fact = {
  r_stmt : Stmt.t;
  r_path : Access_path.t;
  r_stack : Stmt.t list;
}

exception Stop_confirmed
exception Out_of_budget
exception Interrupted_exn

(* How a register is used as a *base* pointer — exactly the uses the
   thin-slicing builder omits (§3.2), re-indexed here per node on demand. *)
type base_use =
  | B_field of Stmt.t * Keys.field   (** load/aload: stmt consumes the field *)
  | B_dict of Stmt.t * Keys.field list (** dict get: any of these fields *)

type state = {
  b : Builder.t;
  lim : limits;
  cb : callbacks;
  sink : Stmt.t;
  sink_kind : Tabulation.hit_kind;
  interrupt : unit -> bool;
  queue : fact Queue.t;
  seen : (fact, unit) Hashtbl.t;
  base_memo : (int * Tac.var, base_use list) Hashtbl.t;
  mutable steps : int;
  mutable heap_transitions : int;
  mutable widened : bool;
}

let check_step st =
  st.steps <- st.steps + 1;
  if st.interrupt () then raise Interrupted_exn;
  if st.steps > st.lim.max_steps then raise Out_of_budget

let charge_heap st =
  st.heap_transitions <- st.heap_transitions + 1;
  if st.heap_transitions > st.lim.max_heap_transitions then raise Out_of_budget

let enqueue st fact =
  if not (Hashtbl.mem st.seen fact) then begin
    Hashtbl.replace st.seen fact ();
    Queue.add fact st.queue
  end

let push_stack st call_stmt stack =
  if List.length stack < st.lim.max_call_depth then call_stmt :: stack else []

(* Push [f] onto π; on overflow record the widening and return None — the
   suffix is lost, so this branch of the replay silently ends (and the
   final verdict can be at best [Plausible Widened]). *)
let push_field st f path =
  match Access_path.push ~k:st.lim.k f path with
  | Some p -> Some p
  | None ->
    st.widened <- true;
    None

(* ------------------------------------------------------------------ *)
(* Base-pointer use index                                              *)
(* ------------------------------------------------------------------ *)

(* The builder's use index deliberately has no base-pointer uses; scan the
   node's blocks for them. Memoized per (node, register) by scanning the
   whole node once. *)
let base_uses st ~node v =
  match Hashtbl.find_opt st.base_memo (node, v) with
  | Some l -> l
  | None ->
    let m = Builder.node_meth st.b node in
    let acc : (Tac.var, base_use list ref) Hashtbl.t = Hashtbl.create 16 in
    let record base u =
      match Hashtbl.find_opt acc base with
      | Some r -> r := u :: !r
      | None -> Hashtbl.replace acc base (ref [ u ])
    in
    Array.iteri
      (fun bi (blk : Tac.block) ->
         Array.iteri
           (fun i instr ->
              let stmt = Stmt.instr ~node ~block:bi ~index:i in
              match instr with
              | Tac.Load (_, o, f) ->
                record o (B_field (stmt, Keys.field_of_tac f))
              | Tac.Aload (_, a, _) -> record a (B_field (stmt, Keys.elem_field))
              | Tac.Call _ ->
                (match Builder.dict_op_of st.b stmt with
                 | Some (Models.Dict_model.Dict_get { recv; key; _ }) ->
                   let fields =
                     List.map Keys.field_of_tac
                       (Models.Dict_model.get_fields key)
                   in
                   record recv (B_dict (stmt, fields))
                 | Some (Models.Dict_model.Dict_put _) | None -> ())
              | _ -> ())
           blk.Tac.instrs)
      m.Tac.m_blocks;
    (* cache every register of the node, including the empty ones, so the
       scan happens once per node *)
    for r = 0 to m.Tac.m_nvars - 1 do
      let uses =
        match Hashtbl.find_opt acc r with
        | Some l -> List.rev !l
        | None -> []
      in
      Hashtbl.replace st.base_memo (node, r) uses
    done;
    (match Hashtbl.find_opt st.base_memo (node, v) with
     | Some l -> l
     | None -> [])

(* ------------------------------------------------------------------ *)
(* Transitions                                                         *)
(* ------------------------------------------------------------------ *)

(* The tainted value (suffix π) is stored somewhere: re-root the fact at
   the base register's definition with the written field pushed onto π.
   When the base has no SSA definition, fall back to the slicer's direct
   store→load jump for that field (budgeted — this is where the replay
   deliberately re-admits aliasing, e.g. for container internals). *)
let root_at_base st ~(store : Stmt.t) ~base ~fields ~path ~stack =
  let node = store.Stmt.node in
  List.iter
    (fun f ->
       match push_field st f path with
       | None -> ()
       | Some path' ->
         (match Builder.def_of st.b ~node base with
          | Some d -> enqueue st { r_stmt = d; r_path = path'; r_stack = stack }
          | None ->
            Int_set.iter
              (fun ik ->
                 List.iter
                   (fun (l : Stmt.t) ->
                      charge_heap st;
                      enqueue st { r_stmt = l; r_path = path; r_stack = [] })
                   (Builder.loads_reading st.b ~ik ~field:f))
              (Builder.pts_of_var st.b ~node base)))
    fields

let handle_store st (fact : fact) (store : Stmt.t) =
  (* carrier confirmation: the flow was reported because this slice stores
     a tainted value inside an object reachable from the sink's sensitive
     arguments — field-sensitively re-established iff the stored *value*
     itself is tainted here (π = ε) *)
  (if Access_path.is_empty fact.r_path && st.sink_kind = Tabulation.Carrier
   then
     match Builder.writes_of st.b store with
     | Builder.W_instance (base_pts, _) ->
       if not (Int_set.is_empty (Int_set.inter base_pts st.cb.sink_reach))
       then raise Stop_confirmed
     | Builder.W_static _ | Builder.W_none -> ());
  match Builder.instr_of st.b store with
  | Some (Tac.Store (o, f, _)) ->
    root_at_base st ~store ~base:o ~fields:[ Keys.field_of_tac f ]
      ~path:fact.r_path ~stack:fact.r_stack
  | Some (Tac.Astore (a, _, _)) ->
    root_at_base st ~store ~base:a ~fields:[ Keys.elem_field ]
      ~path:fact.r_path ~stack:fact.r_stack
  | Some (Tac.Sstore (f, _)) ->
    (* a static cell is its own root: loads read the stored value with its
       suffix unchanged, in arbitrary context *)
    List.iter
      (fun (l : Stmt.t) ->
         charge_heap st;
         enqueue st { r_stmt = l; r_path = fact.r_path; r_stack = [] })
      (Builder.static_loads_of st.b (Keys.field_of_tac f))
  | Some (Tac.Call _) ->
    (match Builder.dict_op_of st.b store with
     | Some (Models.Dict_model.Dict_put { recv; key; _ }) ->
       root_at_base st ~store ~base:recv
         ~fields:(List.map Keys.field_of_tac (Models.Dict_model.put_fields key))
         ~path:fact.r_path ~stack:fact.r_stack
     | _ -> ())
  | _ -> ()

let handle_arg st (fact : fact) (call_stmt : Stmt.t) index =
  match Builder.call_of st.b call_stmt with
  | None -> false
  | Some c ->
    let target = c.Tac.target in
    if st.cb.is_sanitizer target then begin
      (* classic mode kills the replay here; record-and-judge carries the
         fact through into the sanitizer's result, suffix unchanged *)
      if st.cb.sanitizer_passthrough && c.Tac.ret <> None then begin
        enqueue st { fact with r_stmt = call_stmt };
        true
      end
      else false
    end
    else begin
      (* direct confirmation: the tainted value itself (π = ε) reaches a
         sensitive argument position of exactly this flow's sink call *)
      if
        Access_path.is_empty fact.r_path
        && st.sink_kind = Tabulation.Direct
        && Stmt.equal call_stmt st.sink
        && st.cb.is_sink_arg target index
      then raise Stop_confirmed;
      let produced = ref false in
      List.iter
        (fun callee ->
           produced := true;
           enqueue st
             { r_stmt = Stmt.param ~node:callee ~index;
               r_path = fact.r_path;
               r_stack = push_stack st call_stmt fact.r_stack })
        (Builder.callees_of_call st.b call_stmt c);
      List.iter
        (fun (native : Tac.mref) ->
           let transfers =
             Models.Natives.summary ~meth_id:(Tac.mref_id native)
               ~arity:(List.length c.Tac.args) ~has_ret:(c.Tac.ret <> None)
           in
           List.iter
             (fun (tr : Models.Natives.transfer) ->
                if tr.Models.Natives.t_from = index then
                  match tr.Models.Natives.t_to with
                  | Models.Natives.Ret ->
                    produced := true;
                    enqueue st { fact with r_stmt = call_stmt }
                  | Models.Natives.Param j ->
                    (match List.nth_opt c.Tac.args j with
                     | Some dst ->
                       produced := true;
                       root_at_base st ~store:call_stmt ~base:dst
                         ~fields:[ Keys.elem_field ] ~path:fact.r_path
                         ~stack:fact.r_stack
                     | None -> ()))
             transfers)
        (Builder.native_targets_of_call st.b call_stmt c);
      !produced
    end

let handle_return st (fact : fact) =
  match fact.r_stack with
  | c :: rest ->
    (* context-exact: resume only at the recorded call site *)
    enqueue st { r_stmt = c; r_path = fact.r_path; r_stack = rest }
  | [] ->
    (* unknown context (seed node, stack overflowed, or heap re-entry):
       unbalanced return to every caller *)
    List.iter
      (fun call_stmt ->
         enqueue st { r_stmt = call_stmt; r_path = fact.r_path; r_stack = [] })
      (Builder.callers_of_node st.b ~callee:fact.r_stmt.Stmt.node)

let process_fact st (fact : fact) =
  check_step st;
  let s = fact.r_stmt in
  match Builder.def_var st.b s with
  | None -> ()
  | Some v ->
    let node = s.Stmt.node in
    let path = fact.r_path in
    let rooted = not (Access_path.is_empty path) in
    (* [produced]: did this fact propagate anywhere? A rooted fact that
       dead-ends gets the aliasing fallback below — without it, container
       flows whose base register never syntactically reaches the matching
       load would all demote. *)
    let produced = ref false in
    List.iter
      (fun (u : Builder.use) ->
         match u with
         | Builder.U_plain s' ->
           (match Builder.instr_of st.b s' with
            | None | Some (Tac.Move _) | Some (Tac.Cast _) ->
              (* phi / copy / cast: the same value, suffix preserved *)
              produced := true;
              enqueue st { fact with r_stmt = s' }
            | Some _ ->
              (* value computation (strcat, binop, …): propagates the value
                 itself, not fields of it *)
              if not rooted then begin
                produced := true;
                enqueue st { fact with r_stmt = s' }
              end)
         | Builder.U_stored store ->
           produced := true;
           handle_store st fact store
         | Builder.U_arg (call_stmt, index) ->
           if handle_arg st fact call_stmt index then produced := true
         | Builder.U_returned ->
           produced := true;
           handle_return st fact
         | Builder.U_thrown _ ->
           let pts = Builder.pts_of_var st.b ~node v in
           List.iter
             (fun (catch : Stmt.t) ->
                produced := true;
                charge_heap st;
                enqueue st { r_stmt = catch; r_path = path; r_stack = [] })
             (Builder.catches_for st.b pts))
      (Builder.uses_of st.b ~node v);
    if rooted then begin
      (* base-pointer uses: loads/dict-gets through this register consume
         the outermost field of π *)
      List.iter
        (fun u ->
           match u with
           | B_field (stmt, f) ->
             (match Access_path.project f path with
              | Some rest ->
                produced := true;
                enqueue st { r_stmt = stmt; r_path = rest; r_stack = fact.r_stack }
              | None -> ())
           | B_dict (stmt, fields) ->
             (match Access_path.head path with
              | Some h when List.exists (fun f -> f = h) fields ->
                produced := true;
                enqueue st
                  { r_stmt = stmt;
                    r_path = Access_path.tail path;
                    r_stack = fact.r_stack }
              | _ -> ()))
        (base_uses st ~node v);
      (* aliasing fallback: the rooted fact found no propagation target at
         all — jump to aliased loads of the outermost field, charging the
         heap budget. This re-admits exactly the slicer's direct edge, but
         only on dead ends, so a base that *is* visibly consumed (e.g. the
         heap_merge factory result, which is returned) never takes it. *)
      if not !produced then
        match Access_path.head path with
        | None -> ()
        | Some h ->
          Int_set.iter
            (fun ik ->
               List.iter
                 (fun (l : Stmt.t) ->
                    charge_heap st;
                    enqueue st
                      { r_stmt = l;
                        r_path = Access_path.tail path;
                        r_stack = [] })
                 (Builder.loads_reading st.b ~ik ~field:h))
            (Builder.pts_of_var st.b ~node v)
    end

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

(** Replay one reported flow. Deterministic for a fixed builder: the
    exploration order depends only on the builder's construction-ordered
    indexes and the FIFO queue. Never raises — every failure mode maps to
    [Plausible]. *)
let replay ?(interrupt = fun () -> false) (b : Builder.t)
    ~(limits : limits) ~(callbacks : callbacks) ~(source : Stmt.t)
    ~(sink : Stmt.t) ~(sink_kind : Tabulation.hit_kind) : verdict * stats =
  let st =
    { b; lim = limits; cb = callbacks; sink; sink_kind; interrupt;
      queue = Queue.create ();
      seen = Hashtbl.create 512;
      base_memo = Hashtbl.create 256;
      steps = 0;
      heap_transitions = 0;
      widened = false }
  in
  let verdict =
    try
      enqueue st { r_stmt = source; r_path = Access_path.empty; r_stack = [] };
      while not (Queue.is_empty st.queue) do
        process_fact st (Queue.pop st.queue)
      done;
      Plausible (if st.widened then Widened else No_path)
    with
    | Stop_confirmed -> Confirmed
    | Out_of_budget -> Plausible Budget
    | Interrupted_exn -> Plausible Interrupted
    | Stack_overflow -> Plausible (Fault "stack overflow")
    | exn -> Plausible (Fault (Printexc.to_string exn))
  in
  if Telemetry.enabled () then begin
    Telemetry.incr m_replays;
    Telemetry.add m_steps st.steps;
    Telemetry.add m_heap_transitions st.heap_transitions;
    (match verdict with
     | Confirmed -> Telemetry.incr m_confirmed
     | Plausible _ -> Telemetry.incr m_plausible)
  end;
  ( verdict,
    { st_steps = st.steps;
      st_heap_transitions = st.heap_transitions;
      st_widened = st.widened } )
