(** Dependence-graph construction over the pointer-analysis result: per-node
    def/use indexes (excluding base-pointer uses — the defining property of
    thin slicing), interprocedural call-site maps, and the global heap-access
    indexes realizing the HSDG's direct store→load edges. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t
module Keys = Pointer.Keys

(** How a register is used at a statement. Base-pointer and array-index
    uses are deliberately absent (§3.2). *)
type use =
  | U_plain of Stmt.t                  (** operand of a value-producing instr *)
  | U_stored of Stmt.t                 (** the stored value at a store stmt *)
  | U_arg of Stmt.t * int              (** call argument (position) *)
  | U_returned
  | U_thrown of Stmt.t

type t

(** {2 Persistent def/use summaries}

    A per-node def/use index in node-relative coordinates ({!Stmt.kind}
    instead of {!Stmt.t}). It is a pure function of the method body —
    parameter defs, SSA def/use chains and the body-local
    dictionary-operation classification — so the incremental cache can
    persist it keyed by a digest of the body and rebind it to whatever
    call-graph node the method occupies in a later run. Marshalable;
    entries are kept in a canonical order so the bytes are
    deterministic. *)
type rel_use =
  | RU_plain of Stmt.kind
  | RU_stored of Stmt.kind
  | RU_arg of Stmt.kind * int
  | RU_returned
  | RU_thrown of Stmt.kind

type defuse_summary = {
  ds_defs : (Jir.Tac.var * Stmt.kind) list;
  ds_uses : (Jir.Tac.var * rel_use list) list;
}

(** Hooks into a persistent def/use cache. [dc_lookup] must return a
    summary only when its stored body digest matches the method passed —
    validation (and hit/miss/invalidation accounting) lives on the cache
    side; the builder blindly rebinds whatever it gets. [dc_store] is
    called with a freshly built summary on every lookup miss. Both may
    be called from worker domains concurrently and must synchronize
    internally. *)
type defuse_cache = {
  dc_lookup : Jir.Tac.meth -> defuse_summary option;
  dc_store : Jir.Tac.meth -> defuse_summary -> unit;
}

(** The summary of node [n]'s (possibly memoized) def/use index — what
    [dc_store] would persist for it. Exposed for the cache-equivalence
    tests, which assert a strip/rebind round trip changes nothing. *)
val strip_index_of_node : t -> int -> defuse_summary

(** Build the dependence-graph indexes. [interrupt] is polled once per
    call-graph node; when it returns [true] the remaining nodes are left
    unindexed and the partial builder (an underapproximation) is
    returned. [scan_filter] (default: keep everything) is the triage
    pre-filter hook: a node whose method it rejects is not scanned at
    all — sound only when the caller has proven no slice can reach the
    method (see [Triage]). [defuse_cache] plugs the persistent
    per-method summary tier into the on-demand def/use memo. *)
val build :
  ?interrupt:(unit -> bool) ->
  ?scan_filter:(Jir.Tac.meth -> bool) ->
  ?defuse_cache:defuse_cache ->
  Jir.Program.t -> Pointer.Andersen.t -> t

(** Did [interrupt] stop the build before every node was indexed? *)
val interrupted : t -> bool

(** Warm the caches that stay shared across worker domains (the subclass
    queries reachable from the recorded throws/catches) so that parallel
    slicing only reads them; the per-node def/use memo is domain-local
    and needs no warming. Required before sharing [t] across worker
    domains; idempotent, and a no-op for correctness in sequential
    runs. *)
val precompute : t -> unit

val node_meth : t -> int -> Jir.Tac.meth
val instr_of : t -> Stmt.t -> Jir.Tac.instr option
val call_of : t -> Stmt.t -> Jir.Tac.call option
val dict_op_of : t -> Stmt.t -> Models.Dict_model.op option

(** The statement defining register [v] in node [node], if any. *)
val def_of : t -> node:int -> Jir.Tac.var -> Stmt.t option

(** All uses of register [v] in node [node]. *)
val uses_of : t -> node:int -> Jir.Tac.var -> use list

(** The register whose value a statement defines. *)
val def_var : t -> Stmt.t -> Jir.Tac.var option

type writes =
  | W_instance of (Int_set.t * Keys.field list)  (** base pts, fields *)
  | W_static of Keys.field
  | W_none

val pts_of_var : t -> node:int -> Jir.Tac.var -> Int_set.t

(** Heap locations a store-like statement writes. *)
val writes_of : t -> Stmt.t -> writes

(** Load statements that may read an instance-key/field pair. *)
val loads_reading : t -> ik:int -> field:Keys.field -> Stmt.t list

val static_loads_of : t -> Keys.field -> Stmt.t list

(** Store statements that may write an instance-key/field pair (the reverse
    direct edges, for backward slicing). *)
val stores_writing : t -> ik:int -> field:Keys.field -> Stmt.t list

val static_stores_of : t -> Keys.field -> Stmt.t list

(** Throw statements whose thrown keys may reach a handler of class [cls]. *)
val throws_for : t -> table:Jir.Classtable.t -> string -> Stmt.t list

(** Load statements reading any field of an instance key (for by-reference
    sources). *)
val loads_of_ik : t -> ik:int -> Stmt.t list

(** Catch statements whose declared class admits one of the thrown keys. *)
val catches_for : t -> Int_set.t -> Stmt.t list

val callees_of_call : t -> Stmt.t -> Jir.Tac.call -> int list
val native_targets_of_call : t -> Stmt.t -> Jir.Tac.call -> Jir.Tac.mref list

(** Call statements in any node that invoke [callee]. *)
val callers_of_node : t -> callee:int -> Stmt.t list

val all_call_stmts : t -> (Stmt.t * Jir.Tac.call) list

(** Thread partition ids of a node (see the CS configuration's heap
    restriction). *)
val thread_ids_of : t -> int -> Int_set.t
