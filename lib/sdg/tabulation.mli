(** Demand-driven reachability over the (no-heap) SDG with on-demand HSDG
    edges — the engine behind hybrid, CS and CI thin slicing (§3.2).

    In context-sensitive mode the engine runs RHS-style tabulation with
    summary edges; in context-insensitive mode returns resume at every
    caller. Heap flow uses direct store→load edges, counted against the
    §6.2.1 heap-transition bound; the CS mode restricts heap edges to
    statements on the same thread (that algorithm's documented
    unsoundness). Sink/sanitizer/carrier checks are injected callbacks. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t

type mode = {
  context_sensitive : bool;
  thread_restrict : bool;
  max_heap_transitions : int option;
  max_steps : int option;
}

val hybrid_mode : mode
val ci_mode : mode
val cs_mode : mode

type hit_kind = Direct | Carrier

type hit = {
  h_sink : Stmt.t;                        (** the sink call statement *)
  h_sink_target : Jir.Tac.mref;
  h_via : Stmt.t;                         (** last slice stmt before sink *)
  h_kind : hit_kind;
}

type callbacks = {
  is_sink_arg : Jir.Tac.mref -> int -> bool;
  is_sanitizer : Jir.Tac.mref -> bool;
  sanitizer_passthrough : bool;
      (** [false]: a sanitizer call kills the flow. [true]: taint
          propagates through the sanitizer into its result and the call
          lands on the witness path for a later judging pass
          (record-and-judge). *)
  carrier_sets : (Stmt.t * Jir.Tac.mref * Int_set.t) list;
      (** sink call stmt, target, instance keys reachable from its
          sensitive arguments (§4.1.1) *)
}

type result = {
  hits : hit list;
  visited : int;
  heap_transitions : int;
  steps : int;
  exhausted : bool;                       (** a budget was exceeded *)
  interrupted : bool;                     (** stopped by the interrupt poll *)
  parents : Stmt.t Stmt.Table.t;          (** discovery tree for reports *)
  depth : int Stmt.Table.t;               (** hop count from the seed *)
  summary_edges : (int * int) list;
      (** the IFDS summary edges this slice derived — (node, param index)
          pairs whose parameter taint reached the node's return — in
          sorted order; the incremental cache persists these per method,
          keyed by a call-closure digest, and its dirty-set closure
          decides which survive an edit *)
}

(** Run a slice from the seed statements (typically source calls).
    [interrupt] is polled once per step; returning [true] ends the slice
    with [exhausted] and [interrupted] set, keeping the hits found so far.
    [on_heap_transition] is called before each heap transition is charged
    (fault injection / external accounting). *)
val run :
  ?interrupt:(unit -> bool) ->
  ?on_heap_transition:(unit -> unit) ->
  Builder.t -> mode:mode -> callbacks:callbacks -> seeds:Stmt.t list -> result

(** Reconstruct the witness path ending at a statement. *)
val path_of : result -> Stmt.t -> Stmt.t list

val depth_of : result -> Stmt.t -> int option
