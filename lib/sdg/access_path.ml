(** k-limited access paths for the flow-refinement replay (after Allen et
    al.'s IFDS taint analysis with access paths).

    A path is the field suffix separating a register from the tainted value
    it (transitively) holds, outermost access first: a fact "register [v]
    carries path [f; g]" means [v.f.g] is tainted. The empty path means the
    register's own value is tainted. Paths longer than [k] are widened away
    — the refinement records that widening happened and demotes the flow
    instead of tracking an unbounded suffix. *)

module Keys = Pointer.Keys

type t = Keys.field list

let empty : t = []

let is_empty (p : t) = p = []

let length = List.length

(** Prepend a field (the value was stored under [f]); [None] when the
    result would exceed [k] — the caller must treat this as widening, not
    as a refuted flow. *)
let push ~k (f : Keys.field) (p : t) : t option =
  if List.length p >= k then None else Some (f :: p)

(** The outermost field of a non-empty path, and the rest of it. *)
let head (p : t) : Keys.field option =
  match p with f :: _ -> Some f | [] -> None

let tail (p : t) : t = match p with _ :: rest -> rest | [] -> []

(** Consume [f] from the front: the path left after a load of field [f],
    or [None] when the path does not start with [f] (field-sensitive
    mismatch). *)
let project (f : Keys.field) (p : t) : t option =
  match p with
  | g :: rest when g = f -> Some rest
  | _ -> None

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = compare a b

let pp ppf (p : t) =
  if p = [] then Fmt.string ppf "ε"
  else Fmt.list ~sep:(Fmt.any ".") Keys.pp_field ppf p
