(** k-limited access paths for the flow-refinement replay: the field suffix
    separating a register from the tainted value it transitively holds,
    outermost access first. *)

type t = Pointer.Keys.field list

val empty : t
val is_empty : t -> bool
val length : t -> int

(** Prepend a field; [None] when the result would exceed [k] (widening —
    the caller demotes rather than tracking an unbounded suffix). *)
val push : k:int -> Pointer.Keys.field -> t -> t option

val head : t -> Pointer.Keys.field option
val tail : t -> t

(** Consume [f] from the front (the path left after loading field [f]);
    [None] on a field-sensitive mismatch. *)
val project : Pointer.Keys.field -> t -> t option

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
