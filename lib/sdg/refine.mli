(** Field-sensitive flow refinement: an IFDS-style replay with k-limited
    access paths that re-traces each reported flow and classifies it.

    [Confirmed] means the replay found a complete field-sensitive witness
    from the flow's source to its sink — heap flow rooted at base
    registers instead of the slicer's flow-insensitive store→load jumps,
    returns matched against a bounded call stack. Any failure — no path,
    k-limit widening, budget exhaustion, interruption, or an internal
    fault — yields [Plausible]: the flow is demoted, never dropped. *)

module Int_set = Builder.Int_set

type reason =
  | No_path
  | Widened
  | Budget
  | Interrupted
  | Fault of string

type verdict = Confirmed | Plausible of reason

(** [Confirmed] sorts before [Plausible]. *)
val rank : verdict -> int

val verdict_name : verdict -> string
val reason_name : reason -> string
val pp_verdict : Format.formatter -> verdict -> unit

type limits = {
  k : int;                    (** access-path depth bound (default 3) *)
  max_steps : int;            (** per-flow replay step budget *)
  max_heap_transitions : int; (** per-flow aliasing-fallback budget *)
  max_call_depth : int;       (** call-stack bound; deeper → unbalanced *)
}

val default_limits : limits

type callbacks = {
  is_sink_arg : Jir.Tac.mref -> int -> bool;
  is_sanitizer : Jir.Tac.mref -> bool;
  sanitizer_passthrough : bool;
      (** mirror of [Tabulation.callbacks.sanitizer_passthrough]: replay
          through sanitizers instead of killing (record-and-judge) *)
  sink_reach : Int_set.t;
      (** instance keys reachable from the sink's sensitive arguments
          (the §4.1.1 carrier criterion), precomputed by the engine *)
}

type stats = {
  st_steps : int;
  st_heap_transitions : int;
  st_widened : bool;
}

(** Replay one reported flow from its source statement. Deterministic for
    a fixed builder; never raises. [sink_kind] selects the confirmation
    criterion matching how the slicer found the hit (direct sink argument
    vs. taint-carrier store). *)
val replay :
  ?interrupt:(unit -> bool) ->
  Builder.t ->
  limits:limits ->
  callbacks:callbacks ->
  source:Stmt.t ->
  sink:Stmt.t ->
  sink_kind:Tabulation.hit_kind ->
  verdict * stats
