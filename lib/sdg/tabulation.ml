(** Demand-driven reachability over the (no-heap) SDG with on-demand HSDG
    edges — the engine behind hybrid, CS and CI thin slicing (§3.2).

    Flow through locals is followed along SSA def-use chains and
    interprocedural parameter/return edges. In context-sensitive mode the
    engine runs RHS-style tabulation: entering a callee records the calling
    statement; flow that reaches the callee's return is summarized as
    "param i reaches return" and resumed only at matching call sites
    (unbalanced-left returns are allowed for flows originating inside the
    callee, as a taint source's context is arbitrary). In
    context-insensitive mode returns resume at every caller.

    Flow through the heap uses the HSDG's direct edges: a tainted store
    expands to every load whose base may alias the store's base (from the
    preliminary pointer analysis). Each expansion counts as a heap
    transition toward the §6.2.1 bound. The CS configuration restricts heap
    edges to statements on the same thread, reproducing that algorithm's
    documented unsoundness for multi-threaded code.

    The engine is rule-agnostic: sink, sanitizer and carrier checks are
    injected as callbacks. *)

module Int_set = Set.Make (Int)
module Keys = Pointer.Keys
module Telemetry = Obs.Telemetry
open Jir

(* Telemetry: per-slice consumption of the §6.2 budgets, accumulated into
   process-wide counters at slice end (order-independent sums, so a
   parallel per-rule stage reports the same totals as a sequential one). *)
let m_steps = Telemetry.counter "taint.steps"
let m_heap_transitions = Telemetry.counter "taint.heap_transitions"
let m_visited = Telemetry.counter "taint.visited"
let m_hits = Telemetry.counter "taint.hits"
let m_slices = Telemetry.counter "taint.slices"
let h_heap_per_slice = Telemetry.histogram "taint.heap_transitions_per_slice"
let h_depth = Telemetry.histogram "taint.slice_depth"

type mode = {
  context_sensitive : bool;
  thread_restrict : bool;
  max_heap_transitions : int option;      (* §6.2.1 *)
  max_steps : int option;                 (* memory/time budget *)
}

let hybrid_mode =
  { context_sensitive = true; thread_restrict = false;
    max_heap_transitions = None; max_steps = None }

let ci_mode = { hybrid_mode with context_sensitive = false }

let cs_mode = { hybrid_mode with thread_restrict = true }

type origin = O_internal | O_param of int

type fact = { f_stmt : Stmt.t; f_origin : origin }

type hit_kind = Direct | Carrier

type hit = {
  h_sink : Stmt.t;                        (* the sink call statement *)
  h_sink_target : Tac.mref;
  h_via : Stmt.t;                         (* last slice stmt before the sink *)
  h_kind : hit_kind;
}

type callbacks = {
  is_sink_arg : Tac.mref -> int -> bool;
      (** is argument position [i] of a call to this method sensitive? *)
  is_sanitizer : Tac.mref -> bool;
  sanitizer_passthrough : bool;
      (** [false]: a sanitizer call endorses the flow and stops it (the
          classic kill). [true]: taint propagates through the sanitizer
          into its result — the call statement lands on the witness path,
          and a later judging pass compares the sanitizer's effect against
          the sink context (record-and-judge). *)
  carrier_sets : (Stmt.t * Tac.mref * Int_set.t) list;
      (** sink call stmt, target, instance keys reachable from its sensitive
          arguments (precomputed by the taint engine per §4.1.1) *)
}

type result = {
  hits : hit list;
  visited : int;
  heap_transitions : int;
  steps : int;
  exhausted : bool;
  interrupted : bool;                     (* stopped by the interrupt poll *)
  parents : Stmt.t Stmt.Table.t;          (* discovery tree for reports *)
  depth : int Stmt.Table.t;               (* hop count from the seed *)
  summary_edges : (int * int) list;       (* (node, param) reached return *)
}

exception Budget of string

type state = {
  b : Builder.t;
  mode : mode;
  cb : callbacks;
  interrupt : unit -> bool;
  on_heap_transition : unit -> unit;
  queue : fact Queue.t;
  seen : (fact, unit) Hashtbl.t;
  parents : Stmt.t Stmt.Table.t;
  depth : int Stmt.Table.t;
  (* CS bookkeeping *)
  incoming : (int * int, (Stmt.t * origin) list ref) Hashtbl.t;
      (* (callee node, param) -> resumption points *)
  summaries : (int * int, unit) Hashtbl.t; (* (node, param) reaches return *)
  internal_ret : (int, unit) Hashtbl.t;    (* nodes whose internal flow
                                              reached their return *)
  tainted_stores : unit Stmt.Table.t;
  mutable hits : hit list;
  mutable hit_keys : (Stmt.t * Stmt.t * hit_kind) list;
  mutable heap_transitions : int;
  mutable steps : int;
  mutable exhausted : bool;
  mutable interrupted : bool;
}

let record_parent st ~child ~parent =
  if not (Stmt.Table.mem st.parents child) then begin
    Stmt.Table.replace st.parents child parent;
    let d =
      match Stmt.Table.find_opt st.depth parent with
      | Some d -> d + 1
      | None -> 1
    in
    Stmt.Table.replace st.depth child d
  end

let enqueue st ~parent fact =
  if not (Hashtbl.mem st.seen fact) then begin
    Hashtbl.replace st.seen fact ();
    (match parent with
     | Some p -> record_parent st ~child:fact.f_stmt ~parent:p
     | None -> Stmt.Table.replace st.depth fact.f_stmt 0);
    Queue.add fact st.queue
  end

let add_hit st ~sink ~target ~via ~kind =
  let key = (sink, via, kind) in
  if not (List.mem key st.hit_keys) then begin
    st.hit_keys <- key :: st.hit_keys;
    st.hits <-
      { h_sink = sink; h_sink_target = target; h_via = via; h_kind = kind }
      :: st.hits
  end

let check_step st =
  st.steps <- st.steps + 1;
  if st.interrupt () then begin
    st.interrupted <- true;
    raise (Budget "interrupted")
  end;
  match st.mode.max_steps with
  | Some m when st.steps > m -> raise (Budget "step budget exceeded")
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Heap expansion                                                     *)
(* ------------------------------------------------------------------ *)

let threads_compatible st a b =
  (not st.mode.thread_restrict)
  || not
       (Int_set.is_empty
          (Int_set.inter
             (Builder.thread_ids_of st.b a)
             (Builder.thread_ids_of st.b b)))

let charge_heap_transition st =
  st.on_heap_transition ();
  st.heap_transitions <- st.heap_transitions + 1;
  match st.mode.max_heap_transitions with
  | Some m -> st.heap_transitions <= m
  | None -> true

let expand_store st (store : Stmt.t) =
  if not (Stmt.Table.mem st.tainted_stores store) then begin
    Stmt.Table.replace st.tainted_stores store ();
    (* taint carriers: does this store write into an object nested inside a
       sensitive sink argument? (§4.1.1, step 3) *)
    (match Builder.writes_of st.b store with
     | Builder.W_instance (base_pts, _) ->
       List.iter
         (fun (sink, target, reach) ->
            if not (Int_set.is_empty (Int_set.inter base_pts reach)) then
              add_hit st ~sink ~target ~via:store ~kind:Carrier)
         st.cb.carrier_sets
     | Builder.W_static _ | Builder.W_none -> ());
    (* direct store -> load edges *)
    let continue_to_loads loads =
      List.iter
        (fun (l : Stmt.t) ->
           if threads_compatible st store.Stmt.node l.Stmt.node then
             if charge_heap_transition st then
               enqueue st ~parent:(Some store)
                 { f_stmt = l; f_origin = O_internal })
        loads
    in
    match Builder.writes_of st.b store with
    | Builder.W_instance (base_pts, fields) ->
      Int_set.iter
        (fun ik ->
           List.iter
             (fun f -> continue_to_loads (Builder.loads_reading st.b ~ik ~field:f))
             fields)
        base_pts
    | Builder.W_static f -> continue_to_loads (Builder.static_loads_of st.b f)
    | Builder.W_none -> ()
  end

(* ------------------------------------------------------------------ *)
(* Return handling                                                    *)
(* ------------------------------------------------------------------ *)

let resume_at_call st ~parent (call_stmt : Stmt.t) (origin : origin) =
  (* the call statement defines the callee's returned value in the caller *)
  enqueue st ~parent:(Some parent) { f_stmt = call_stmt; f_origin = origin }

let reached_return st (fact : fact) =
  let node = fact.f_stmt.Stmt.node in
  let ret_marker = Stmt.ret ~node in
  record_parent st ~child:ret_marker ~parent:fact.f_stmt;
  if st.mode.context_sensitive then begin
    match fact.f_origin with
    | O_param i ->
      if not (Hashtbl.mem st.summaries (node, i)) then begin
        Hashtbl.replace st.summaries (node, i) ();
        (* resume every recorded caller of this summary *)
        match Hashtbl.find_opt st.incoming (node, i) with
        | Some resumptions ->
          List.iter
            (fun (call_stmt, o) -> resume_at_call st ~parent:ret_marker call_stmt o)
            !resumptions
        | None -> ()
      end
    | O_internal ->
      if not (Hashtbl.mem st.internal_ret node) then begin
        Hashtbl.replace st.internal_ret node ();
        (* source escapes upward: any caller context is realizable *)
        List.iter
          (fun call_stmt ->
             resume_at_call st ~parent:ret_marker call_stmt O_internal)
          (Builder.callers_of_node st.b ~callee:node)
      end
  end
  else if not (Hashtbl.mem st.internal_ret node) then begin
    Hashtbl.replace st.internal_ret node ();
    List.iter
      (fun call_stmt -> resume_at_call st ~parent:ret_marker call_stmt O_internal)
      (Builder.callers_of_node st.b ~callee:node)
  end

(* ------------------------------------------------------------------ *)
(* Call-argument handling                                             *)
(* ------------------------------------------------------------------ *)

let enter_callee st ~parent ~(call_stmt : Stmt.t) ~origin_at_caller ~callee ~index =
  let param_stmt = Stmt.param ~node:callee ~index in
  let origin = if st.mode.context_sensitive then O_param index else O_internal in
  (if st.mode.context_sensitive then begin
     let key = (callee, index) in
     let resumptions =
       match Hashtbl.find_opt st.incoming key with
       | Some r -> r
       | None ->
         let r = ref [] in
         Hashtbl.replace st.incoming key r;
         r
     in
     if not (List.mem (call_stmt, origin_at_caller) !resumptions) then
       resumptions := (call_stmt, origin_at_caller) :: !resumptions;
     (* a summary may already exist *)
     if Hashtbl.mem st.summaries key then
       resume_at_call st ~parent call_stmt origin_at_caller
   end);
  enqueue st ~parent:(Some parent) { f_stmt = param_stmt; f_origin = origin }

let flow_into_call st ~parent ~(fact : fact) (call_stmt : Stmt.t) index =
  match Builder.call_of st.b call_stmt with
  | None -> ()
  | Some c ->
    let target = c.Tac.target in
    if st.cb.is_sanitizer target then begin
      (* flow endorsed. Classic mode stops here (kill); record-and-judge
         propagates the tainted argument into the sanitizer's result so
         the call lands on the witness path — native transfer summaries
         for sanitizers are deliberately empty, so this is direct *)
      if st.cb.sanitizer_passthrough && c.Tac.ret <> None then
        enqueue st ~parent:(Some parent)
          { f_stmt = call_stmt; f_origin = fact.f_origin }
    end
    else begin
      if st.cb.is_sink_arg target index then
        add_hit st ~sink:call_stmt ~target ~via:parent ~kind:Direct;
      (* resolved callees *)
      List.iter
        (fun callee ->
           enter_callee st ~parent ~call_stmt
             ~origin_at_caller:fact.f_origin ~callee ~index)
        (Builder.callees_of_call st.b call_stmt c);
      (* native targets: apply transfer summaries *)
      List.iter
        (fun (native : Tac.mref) ->
           let transfers =
             Models.Natives.summary ~meth_id:(Tac.mref_id native)
               ~arity:(List.length c.Tac.args) ~has_ret:(c.Tac.ret <> None)
           in
           List.iter
             (fun (tr : Models.Natives.transfer) ->
                if tr.Models.Natives.t_from = index then
                  match tr.Models.Natives.t_to with
                  | Models.Natives.Ret ->
                    enqueue st ~parent:(Some parent)
                      { f_stmt = call_stmt; f_origin = fact.f_origin }
                  | Models.Natives.Param j ->
                    (* by-reference write into argument j's contents *)
                    (match List.nth_opt c.Tac.args j with
                     | Some dst ->
                       let pts =
                         Builder.pts_of_var st.b ~node:call_stmt.Stmt.node dst
                       in
                       Int_set.iter
                         (fun ik ->
                            if charge_heap_transition st then
                              List.iter
                                (fun l ->
                                   enqueue st ~parent:(Some call_stmt)
                                     { f_stmt = l; f_origin = O_internal })
                                (Builder.loads_of_ik st.b ~ik))
                         pts
                     | None -> ()))
             transfers)
        (Builder.native_targets_of_call st.b call_stmt c)
    end

(* ------------------------------------------------------------------ *)
(* Main loop                                                          *)
(* ------------------------------------------------------------------ *)

let process_fact st (fact : fact) =
  check_step st;
  let s = fact.f_stmt in
  (* a reached call can write the heap by reference (System.arraycopy reads
     src contents — which is why it was enqueued — and writes dst contents) *)
  (match Builder.instr_of st.b s with
   | Some (Tac.Call _) ->
     (match Builder.writes_of st.b s with
      | Builder.W_none -> ()
      | Builder.W_instance _ | Builder.W_static _ -> expand_store st s)
   | _ -> ());
  match Builder.def_var st.b s with
  | None -> ()
  | Some v ->
    List.iter
      (fun (u : Builder.use) ->
         match u with
         | Builder.U_plain s' ->
           enqueue st ~parent:(Some s) { fact with f_stmt = s' }
         | Builder.U_stored store ->
           record_parent st ~child:store ~parent:s;
           expand_store st store
         | Builder.U_arg (call_stmt, index) ->
           record_parent st ~child:call_stmt ~parent:s;
           flow_into_call st ~parent:s ~fact call_stmt index
         | Builder.U_returned -> reached_return st fact
         | Builder.U_thrown throw_stmt ->
           record_parent st ~child:throw_stmt ~parent:s;
           let pts = Builder.pts_of_var st.b ~node:s.Stmt.node v in
           List.iter
             (fun catch ->
                if threads_compatible st s.Stmt.node catch.Stmt.node then
                  if charge_heap_transition st then
                    enqueue st ~parent:(Some throw_stmt)
                      { f_stmt = catch; f_origin = O_internal })
             (Builder.catches_for st.b pts))
      (Builder.uses_of st.b ~node:s.Stmt.node v)

(** Run a slice from the given seed statements (typically source calls). *)
let run ?(interrupt = fun () -> false) ?(on_heap_transition = fun () -> ())
    (b : Builder.t) ~(mode : mode) ~(callbacks : callbacks)
    ~(seeds : Stmt.t list) : result =
  let st =
    { b; mode; cb = callbacks;
      interrupt; on_heap_transition;
      queue = Queue.create ();
      seen = Hashtbl.create 4096;
      parents = Stmt.Table.create 4096;
      depth = Stmt.Table.create 4096;
      incoming = Hashtbl.create 256;
      summaries = Hashtbl.create 256;
      internal_ret = Hashtbl.create 256;
      tainted_stores = Stmt.Table.create 256;
      hits = [];
      hit_keys = [];
      heap_transitions = 0;
      steps = 0;
      exhausted = false;
      interrupted = false }
  in
  List.iter
    (fun seed -> enqueue st ~parent:None { f_stmt = seed; f_origin = O_internal })
    seeds;
  (try
     while not (Queue.is_empty st.queue) do
       process_fact st (Queue.pop st.queue)
     done
   with Budget _ -> st.exhausted <- true);
  if Telemetry.enabled () then begin
    Telemetry.incr m_slices;
    Telemetry.add m_steps st.steps;
    Telemetry.add m_heap_transitions st.heap_transitions;
    Telemetry.add m_visited (Hashtbl.length st.seen);
    Telemetry.add m_hits (List.length st.hits);
    Telemetry.observe h_heap_per_slice st.heap_transitions;
    Stmt.Table.iter (fun _ d -> Telemetry.observe h_depth d) st.depth
  end;
  { hits = List.rev st.hits;
    visited = Hashtbl.length st.seen;
    heap_transitions = st.heap_transitions;
    steps = st.steps;
    exhausted = st.exhausted;
    interrupted = st.interrupted;
    parents = st.parents;
    depth = st.depth;
    summary_edges =
      List.sort compare
        (Hashtbl.fold (fun edge () acc -> edge :: acc) st.summaries []) }

(** Reconstruct the witness path for a hit by walking discovery parents. *)
let path_of (r : result) (s : Stmt.t) : Stmt.t list =
  let rec go acc s fuel =
    if fuel = 0 then acc
    else
      match Stmt.Table.find_opt r.parents s with
      | Some p -> go (p :: acc) p (fuel - 1)
      | None -> acc
  in
  go [ s ] s 10_000

let depth_of (r : result) (s : Stmt.t) : int option = Stmt.Table.find_opt r.depth s
