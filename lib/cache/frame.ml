exception Corrupt of string

let max_frame = 256 * 1024 * 1024
let digest_len = 16
let header_len = 4 + digest_len

let add buf payload =
  let len = String.length payload in
  if len > max_frame then invalid_arg "Frame.add: oversized frame";
  Buffer.add_char buf (Char.chr ((len lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((len lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (len land 0xff));
  Buffer.add_string buf (Digest.string payload);
  Buffer.add_string buf payload

let read data pos =
  let remaining = String.length data - pos in
  if remaining = 0 then None
  else if remaining < header_len then raise (Corrupt "truncated frame header")
  else begin
    let b i = Char.code data.[pos + i] in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_frame then raise (Corrupt "implausible frame length");
    if remaining < header_len + len then
      raise (Corrupt "truncated frame payload");
    let sum = String.sub data (pos + 4) digest_len in
    let payload = String.sub data (pos + header_len) len in
    if not (String.equal (Digest.string payload) sum) then
      raise (Corrupt "frame checksum mismatch");
    Some (payload, pos + header_len + len)
  end

let read_all data =
  let rec go pos acc =
    match read data pos with
    | None -> List.rev acc
    | Some (payload, pos') -> go pos' (payload :: acc)
  in
  go 0 []
