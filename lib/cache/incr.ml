module Telemetry = Obs.Telemetry

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let c_hit = Telemetry.counter "cache.hit"
let c_miss = Telemetry.counter "cache.miss"
let c_invalidated = Telemetry.counter "cache.invalidated"

let hit tier =
  Telemetry.incr c_hit;
  Telemetry.incr (Telemetry.counter (Printf.sprintf "cache.%s.hit" tier))

let miss tier =
  Telemetry.incr c_miss;
  Telemetry.incr (Telemetry.counter (Printf.sprintf "cache.%s.miss" tier))

let invalidated tier =
  Telemetry.incr c_invalidated;
  Telemetry.incr
    (Telemetry.counter (Printf.sprintf "cache.%s.invalidated" tier))

(* ------------------------------------------------------------------ *)
(* Digests                                                            *)
(* ------------------------------------------------------------------ *)

(* Salts every key so a change to the frontend or the entry encodings
   reads as a universal miss instead of a decode of stale structure. *)
let salt = Printf.sprintf "taj-incr-%d" Store.version

let d_str s = Digest.to_hex (Digest.string (salt ^ "\x00" ^ s))
let d_val v = d_str (Marshal.to_string v [])

(* ------------------------------------------------------------------ *)
(* Handle                                                             *)
(* ------------------------------------------------------------------ *)

type t = {
  t_dir : string;
  stores : (string, Store.t) Hashtbl.t;
  mutex : Mutex.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if String.length parent < String.length dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let create ~dir =
  mkdir_p dir;
  { t_dir = dir; stores = Hashtbl.create 8; mutex = Mutex.create () }

let dir t = t.t_dir

let sanitize app =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
       | _ -> '_')
    app

let store_path t app = Filename.concat t.t_dir (sanitize app ^ ".tajcache")

let store t app =
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
       match Hashtbl.find_opt t.stores app with
       | Some s -> s
       | None ->
         let s =
           Telemetry.phase "phase.cache"
             ~args:[ ("op", "load"); ("app", app) ]
             (fun () -> Store.load (store_path t app))
           |> fst
         in
         Hashtbl.replace t.stores app s;
         s)

(* ------------------------------------------------------------------ *)
(* Session                                                            *)
(* ------------------------------------------------------------------ *)

type session = {
  app : string;
  st : Store.t;
  (* the last frontend-tier key this session's hooks computed: the digest
     of the parsed unit ASTs plus the descriptor. It doubles as the
     semantic half of the AST-keyed result entry, which is what makes a
     comment-only edit a full result hit. *)
  mutable front_key : string option;
}

let start t ~app = { app; st = store t app; front_key = None }

let corruption s =
  Option.map
    (fun reason -> Core.Diagnostics.Cache_corrupt { app = s.app; reason })
    (Store.corruption s.st)

(* Every decode below reads a payload that survived the frame checksum
   and the store's version header, i.e. bytes this very code version
   wrote; a failing decode is treated as a plain miss all the same. *)
let decode payload = try Some (Marshal.from_string payload 0) with _ -> None

let lookup s ~tier ~key =
  match Store.find s.st ~tier ~key with
  | None ->
    miss tier;
    None
  | Some payload ->
    (match decode payload with
     | None ->
       Store.remove s.st ~tier ~key;
       miss tier;
       None
     | Some v ->
       hit tier;
       Some v)

let fill s ~tier ~key v = Store.put s.st ~tier ~key (Marshal.to_string v [])

let hooks s : Core.Cache_iface.t =
  let unit_ast ~src ~parse =
    let key = d_str src in
    match lookup s ~tier:"ast" ~key with
    | Some (ast : Jir.Ast.compilation_unit) -> ast
    | None ->
      let ast = parse () in
      fill s ~tier:"ast" ~key ast;
      ast
  in
  let frontend ~descriptor ~asts ~build =
    let key = d_val (List.map d_val asts, descriptor) in
    s.front_key <- Some key;
    match lookup s ~tier:"front" ~key with
    | Some (v : Jir.Program.t * Models.Reflection.stats * int) -> v
    | None ->
      let v = build () in
      fill s ~tier:"front" ~key v;
      v
  in
  let defuse : Sdg.Builder.defuse_cache =
    { dc_lookup =
        (fun m ->
           (lookup s ~tier:"defuse" ~key:(d_val m)
            : Sdg.Builder.defuse_summary option));
      dc_store = (fun m sum -> fill s ~tier:"defuse" ~key:(d_val m) sum) }
  in
  (* string-template summaries key exactly like def/use: a summary is a
     pure function of the method body, so the body digest validates it *)
  let strings : Strings.Summary.cache =
    { sc_lookup =
        (fun m ->
           (lookup s ~tier:"strings" ~key:(d_val m)
            : Strings.Summary.t option));
      sc_store = (fun m sum -> fill s ~tier:"strings" ~key:(d_val m) sum) }
  in
  { Core.Cache_iface.unit_ast; frontend; defuse = Some defuse;
    strings = Some strings }

(* ------------------------------------------------------------------ *)
(* Summary tier: call-closure digests                                 *)
(* ------------------------------------------------------------------ *)

(* Merkle digest per call-graph node: a hash over its SCC's method
   bodies plus the closure digests of every successor SCC — so the
   digest of a method changes exactly when the body of {e any} method
   reachable from it changes. Tarjan pops components in reverse
   topological order, so successor components are always digested
   first. *)
let closure_digests (cg : Pointer.Callgraph.t) =
  let n = Pointer.Callgraph.node_count cg in
  let body =
    Array.init n (fun i ->
      d_val (Pointer.Callgraph.node cg i).Pointer.Callgraph.n_method)
  in
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let onstack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = ref [] in
  let counter = ref 0 in
  let ncomp = ref 0 in
  let rec strong v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    onstack.(v) <- true;
    List.iter
      (fun w ->
         if index.(w) < 0 then begin
           strong w;
           low.(v) <- min low.(v) low.(w)
         end
         else if onstack.(w) then low.(v) <- min low.(v) index.(w))
      (Pointer.Callgraph.successors cg v);
    if low.(v) = index.(v) then begin
      let rec pop () =
        match !stack with
        | w :: rest ->
          stack := rest;
          onstack.(w) <- false;
          comp.(w) <- !ncomp;
          if w <> v then pop ()
        | [] -> assert false
      in
      pop ();
      incr ncomp
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strong v
  done;
  let members = Array.make !ncomp [] in
  for v = n - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  (* component c only points at components < c *)
  let comp_digest = Array.make !ncomp "" in
  for c = 0 to !ncomp - 1 do
    let parts =
      List.concat_map
        (fun v ->
           body.(v)
           :: List.filter_map
                (fun w ->
                   if comp.(w) = c then None else Some comp_digest.(comp.(w)))
                (Pointer.Callgraph.successors cg v))
        members.(c)
    in
    comp_digest.(c) <- d_str (String.concat "|" (List.sort_uniq compare parts))
  done;
  fun v -> comp_digest.(comp.(v))

(* Per-method summary entry: the closure digest it was derived under,
   and the parameter positions with a summary edge. *)
type summary_entry = { sm_closure : string; sm_params : int list }

let summary_entries (c : Core.Taj.completed) : (string * summary_entry) list =
  let cg = Pointer.Andersen.call_graph c.Core.Taj.andersen in
  let closure = closure_digests cg in
  let mid v =
    Jir.Tac.method_id (Pointer.Callgraph.node cg v).Pointer.Callgraph.n_method
  in
  (* method id -> param set, over every clone's summary edges *)
  let params : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (v, p) ->
       let key = mid v in
       match Hashtbl.find_opt params key with
       | Some l -> if not (List.mem p !l) then l := p :: !l
       | None -> Hashtbl.add params key (ref [ p ]))
    c.Core.Taj.outcome.Core.Engine.summary_edges;
  (* method id -> digest over its clones' closure digests *)
  let closures : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  for v = 0 to Pointer.Callgraph.node_count cg - 1 do
    let key = mid v in
    match Hashtbl.find_opt closures key with
    | Some l -> l := closure v :: !l
    | None -> Hashtbl.add closures key (ref [ closure v ])
  done;
  Hashtbl.fold
    (fun key ps acc ->
       match Hashtbl.find_opt closures key with
       | None -> acc
       | Some ds ->
         ( key,
           { sm_closure = d_str (String.concat "|" (List.sort compare !ds));
             sm_params = List.sort compare !ps } )
         :: acc)
    params []
  |> List.sort compare

(* Walk the persisted summary tier against this run's closure digests:
   an entry whose digest still matches is a validated reuse (hit); a
   mismatched or orphaned one is stale (invalidated, dropped). Fresh
   entries are then written. The entries are bookkeeping for the
   dirty-set closure — they are never injected into a traversal, which
   would perturb witness discovery order. *)
let refresh_summaries s (c : Core.Taj.completed) =
  let fresh = summary_entries c in
  let stale = Store.bindings s.st ~tier:"summary" in
  List.iter
    (fun (key, payload) ->
       match
         ( (decode payload : summary_entry option),
           List.assoc_opt key fresh )
       with
       | Some old, Some now when String.equal old.sm_closure now.sm_closure ->
         hit "summary"
       | _ ->
         invalidated "summary";
         Store.remove s.st ~tier:"summary" ~key)
    stale;
  List.iter (fun (key, e) -> fill s ~tier:"summary" ~key e) fresh

(* ------------------------------------------------------------------ *)
(* Result tier                                                        *)
(* ------------------------------------------------------------------ *)

type cached_result = { cr_report : string; cr_issues : int; cr_flows : int }

(* cache_dir is where the store lives, not what the analysis computes;
   zero it so moving a cache directory does not cold-start it *)
let config_key (config : Core.Config.t) =
  { config with Core.Config.cache_dir = None }

let result_key ~rules ~config (input : Core.Taj.input) =
  d_val
    ( "raw",
      List.map d_str input.Core.Taj.app_sources,
      input.Core.Taj.descriptor,
      config_key config,
      rules )

(* The semantic result key: parsed-unit AST digests instead of source
   digests, so edits the parser discards (comments, whitespace) map to
   the same entry. Only defined once the session's frontend hook has run,
   and only for a load that skipped nothing — a skipped unit means the
   AST digests under-describe the input. *)
let ast_result_key ~rules ~config ~(loaded : Core.Taj.loaded) s =
  match s.front_key with
  | Some fk when loaded.Core.Taj.skipped_units = [] ->
    Some (d_val ("ast", fk, config_key config, rules))
  | _ -> None

let lookup_result s ~key = (lookup s ~tier:"result" ~key : cached_result option)

let commit ?(results = []) ?analysis s =
  (match analysis with
   | Some c -> refresh_summaries s c
   | None -> ());
  List.iter (fun (key, cr) -> fill s ~tier:"result" ~key cr) results;
  ignore
    (Telemetry.phase "phase.cache"
       ~args:[ ("op", "save"); ("app", s.app) ]
       (fun () -> Store.save s.st))

(* ------------------------------------------------------------------ *)
(* Cached supervised analysis                                         *)
(* ------------------------------------------------------------------ *)

let render_report builder report =
  Format.asprintf "%a" (Core.Report.pp builder) report

type outcome = {
  i_report : string;
  i_issues : int;
  i_flows : int;
  i_partial : bool;
  i_from_cache : bool;
  i_supervisor : Core.Supervisor.outcome option;
  i_diags : Core.Diagnostics.degradation list;
}

let from_cache ~diags (cr : cached_result) =
  { i_report = cr.cr_report; i_issues = cr.cr_issues; i_flows = cr.cr_flows;
    i_partial = false; i_from_cache = true; i_supervisor = None;
    i_diags = diags }

let supervised ?loaded ~session ~diags ~rules ~options ~config
    ~(result_keys : string list) (input : Core.Taj.input) : outcome =
  let sv = Core.Supervisor.run ~rules ~options ~config ?loaded input in
  let completed =
    match sv.Core.Supervisor.sv_analysis with
    | Some { Core.Taj.result = Core.Taj.Completed c; _ } -> Some c
    | _ -> None
  in
  let rendered, issues, flows, partial =
    match completed with
    | Some c ->
      ( render_report c.Core.Taj.builder c.Core.Taj.report,
        Core.Report.issue_count c.Core.Taj.report,
        Core.Report.flow_count c.Core.Taj.report,
        Core.Report.is_partial c.Core.Taj.report )
    | None -> ("", 0, 0, true)
  in
  let clean = (not partial) && sv.Core.Supervisor.sv_diagnostics = [] in
  (match session with
   | Some s ->
     let results =
       match completed with
       | Some _ when clean ->
         let cr =
           { cr_report = rendered; cr_issues = issues; cr_flows = flows }
         in
         List.map (fun k -> (k, cr)) result_keys
       | _ -> []
     in
     let analysis = if clean then completed else None in
     commit ~results ?analysis s
   | None -> ());
  { i_report = rendered; i_issues = issues; i_flows = flows;
    i_partial = partial; i_from_cache = false; i_supervisor = Some sv;
    i_diags = diags }

let analyze ?cache ?(rules = Core.Rules.default_rules)
    ?(options = Core.Supervisor.default_options)
    ?(config = Core.Config.preset Core.Config.Hybrid_unbounded)
    (input : Core.Taj.input) : outcome =
  match Option.map (fun t -> start t ~app:input.Core.Taj.name) cache with
  | None ->
    supervised ~session:None ~diags:[] ~rules ~options ~config
      ~result_keys:[] input
  | Some s ->
    let diags =
      match corruption s with Some d -> [ d ] | None -> []
    in
    let raw_key = result_key ~rules ~config input in
    (match lookup_result s ~key:raw_key with
     | Some cr ->
       (* byte-identical input: answer without even parsing *)
       from_cache ~diags cr
     | None ->
       let options = { options with Core.Supervisor.cache = hooks s } in
       (* parse (warm) to learn the AST digests, then try the semantic
          result key: a comment-only edit lands here and stops here *)
       let loaded =
         match
           Core.Taj.load ~lenient:true ~jobs:options.Core.Supervisor.jobs
             ~cache:options.Core.Supervisor.cache input
         with
         | l -> Some l
         | exception _ ->
           (* let the supervisor reproduce and record the failure *)
           None
       in
       let ast_key =
         Option.bind loaded (fun l ->
           ast_result_key ~rules ~config ~loaded:l s)
       in
       match Option.map (fun key -> (key, lookup_result s ~key)) ast_key with
       | Some (_, Some cr) ->
         (* persist the freshly parsed units before answering, so the next
            run with these exact sources hits the raw key outright *)
         commit ~results:[ (raw_key, cr) ] s;
         from_cache ~diags cr
       | Some (key, None) ->
         supervised ?loaded ~session:(Some s) ~diags ~rules ~options
           ~config ~result_keys:[ raw_key; key ] input
       | None ->
         supervised ?loaded ~session:(Some s) ~diags ~rules ~options
           ~config ~result_keys:[ raw_key ] input)
