(** Checksummed length-prefixed frames for the on-disk cache store.

    Same shape as the cluster's {!Serve.Proto} wire framing — a 4-byte
    big-endian length prefix — plus a 16-byte MD5 of the payload between
    the length and the payload, because a store file must survive what a
    socket never sees: torn writes from a crash mid-[rename], a disk
    returning stale sectors, a hand-edited file. Any anomaly raises
    {!Corrupt}; the store layer catches it and degrades to a cold cache,
    never a crash and never a wrong answer. *)

exception Corrupt of string

(** Frames above this are a corrupt length field, not a plausible entry. *)
val max_frame : int

(** Append one frame ([length ^ md5 ^ payload]) to the buffer. *)
val add : Buffer.t -> string -> unit

(** Decode the frame starting at [pos]; [None] at end of input, [Some
    (payload, next_pos)] otherwise. Raises {!Corrupt} on a truncated
    header or payload, an implausible length, or a checksum mismatch. *)
val read : string -> int -> (string * int) option

(** Decode every frame in the string, in order. Raises {!Corrupt}. *)
val read_all : string -> string list
