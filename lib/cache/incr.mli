(** The incremental analysis cache: content-hash-keyed reuse of pipeline
    products across runs, persisted per application via {!Store}.

    Four tiers, each keyed by a digest of exactly the inputs that
    determine it, so validity is decided by key lookup alone — there is
    no mtime, no generation counter, nothing to invalidate eagerly:

    - {b ast}: one parsed compilation unit, keyed by its source text (plus
      a frontend version salt). An edited unit simply misses.
    - {b front}: the whole-program lower/SSA/rewrite product, keyed by the
      digests of the parsed unit ASTs plus the deployment descriptor.
      A comment or whitespace edit changes the source digest but not the
      AST digest, so everything below the parser still hits — the paper's
      "one-line edit" case.
    - {b defuse}: per-method SDG def/use summaries from
      {!Sdg.Builder}, keyed by the method body.
    - {b strings}: per-method string-template summaries from
      {!Strings.Summary} (the sanitization judge's interprocedural
      walk), keyed by the method body exactly like [defuse] — a summary
      is a pure function of the body.
    - {b summary}: the tabulation summary edges per method, stored under a
      call-closure (Merkle) digest — the digest of every method body
      reachable from it in the call graph. Editing a callee flips the
      closure digests of all its transitive callers (they are
      invalidated); untouched siblings keep their entries (hits). These
      entries are validation/accounting only: they are {e never} injected
      into a traversal, because seeding the worklist would change witness
      discovery order and break byte-identical reports.

    A fifth entry kind, {b result}, memoizes the fully rendered report of
    a clean, complete run under a digest of the entire request (sources,
    descriptor, configuration, rules): a warm re-run of an unchanged
    input — including after a [taj serve] restart — returns it without
    analyzing at all.

    Counters: [cache.hit] / [cache.miss] / [cache.invalidated], plus
    per-tier variants ([cache.<tier>.hit], ...). Store I/O runs under a
    [phase.cache] telemetry span. A corrupt store file surfaces as a
    {!Core.Diagnostics.Cache_corrupt} diagnostic and a cold run. *)

(** A cache handle: the store directory plus its per-app open stores. *)
type t

(** Open (creating the directory if needed) a cache rooted at [dir]. *)
val create : dir:string -> t

val dir : t -> string

(** One run's view of one application's store. *)
type session

(** Open [app]'s store (loading its file under a [phase.cache] span). *)
val start : t -> app:string -> session

(** The [Cache_corrupt] diagnostic to report, when the store file had to
    be discarded at load. *)
val corruption : session -> Core.Diagnostics.degradation option

(** Pipeline hooks (ast / front / defuse / strings tiers) backed by this
    session,
    for {!Core.Supervisor.options} or {!Core.Taj.load}/[run]. *)
val hooks : session -> Core.Cache_iface.t

(** The raw result-tier key for a request: a digest of the source texts,
    descriptor, configuration (minus [cache_dir]) and rule set. Computable
    before any parsing — the key a service consults on admission. *)
val result_key :
  rules:Core.Rules.rule list -> config:Core.Config.t -> Core.Taj.input ->
  string

(** The semantic result-tier key: parsed-unit AST digests in place of
    source digests, so an edit the parser discards (comments, whitespace)
    maps to the same entry. Only available after this session's hooks
    have seen the frontend (i.e. after a load through {!hooks}), and only
    when the load skipped no units; [None] otherwise. *)
val ast_result_key :
  rules:Core.Rules.rule list -> config:Core.Config.t ->
  loaded:Core.Taj.loaded -> session -> string option

type cached_result = {
  cr_report : string;       (** the rendered report, byte-identical *)
  cr_issues : int;
  cr_flows : int;
}

(** Result-tier lookup; bumps [cache.result.hit]/[.miss]. *)
val lookup_result : session -> key:string -> cached_result option

(** End the session: validate and refresh the summary tier against the
    completed analysis (when one is given — pass the analysis only for a
    clean, complete, undegraded run), store the result entries (same
    caveat), and persist the store. Safe to call after a degraded or
    failed run with both options absent: the content-keyed tiers it
    filled are valid regardless and still get persisted. *)
val commit :
  ?results:(string * cached_result) list ->
  ?analysis:Core.Taj.completed ->
  session -> unit

(** Render a report exactly as the result tier stores it. *)
val render_report : Sdg.Builder.t -> Core.Report.t -> string

type outcome = {
  i_report : string;          (** rendered report ("" if none) *)
  i_issues : int;
  i_flows : int;
  i_partial : bool;           (** degraded, partial, or failed *)
  i_from_cache : bool;        (** satisfied by the result tier *)
  i_supervisor : Core.Supervisor.outcome option;
      (** [None] exactly when [i_from_cache] *)
  i_diags : Core.Diagnostics.degradation list;
      (** cache-layer diagnostics ({!Core.Diagnostics.Cache_corrupt}) *)
}

(** Supervised analysis through the cache: result-tier lookup, else a
    {!Core.Supervisor.run} with the tier hooks threaded in, then
    {!commit}. With [cache = None] this is exactly a supervised run (the
    uncached baseline the metamorphic tests compare against). *)
val analyze :
  ?cache:t ->
  ?rules:Core.Rules.rule list ->
  ?options:Core.Supervisor.options ->
  ?config:Core.Config.t ->
  Core.Taj.input ->
  outcome
