let version = 1

(* The compiler version salts the header because entry payloads are
   Marshal streams, which are only stable within one compiler version. *)
let header = Printf.sprintf "taj-cache %d ocaml %s" version Sys.ocaml_version

type t = {
  path : string;
  entries : (string * string, string) Hashtbl.t;
  mutex : Mutex.t;
  mutable corruption : string option;
}

let path t = t.path
let corruption t = t.corruption

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let fresh ?corruption path =
  { path; entries = Hashtbl.create 64; mutex = Mutex.create (); corruption }

(* Checksummed framing means a payload that decodes is byte-for-byte what
   an earlier run wrote, and the version header pins the encoding — so
   Marshal here only ever sees its own output. A decode failure anyway
   degrades to corruption, never an escape. *)
let decode_entry payload : (string * string) * string =
  try (Marshal.from_string payload 0 : (string * string) * string)
  with _ -> raise (Frame.Corrupt "undecodable entry")

let load path =
  match
    Core.Fault.tick Core.Fault.site_cache_read;
    Core.Io.read_file path
  with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> fresh path
  | exception e -> fresh ~corruption:(Printexc.to_string e) path
  | data ->
    (match Frame.read_all data with
     | exception Frame.Corrupt reason -> fresh ~corruption:reason path
     | [] -> fresh ~corruption:"empty store (missing header)" path
     | hd :: entries ->
       if not (String.equal hd header) then
         fresh
           ~corruption:
             (Printf.sprintf "header mismatch (got %S, want %S)" hd header)
           path
       else begin
         let t = fresh path in
         (try
            List.iter
              (fun payload ->
                 let k, v = decode_entry payload in
                 Hashtbl.replace t.entries k v)
              entries
          with Frame.Corrupt reason ->
            Hashtbl.reset t.entries;
            t.corruption <- Some reason);
         t
       end)

let save t =
  let entries =
    locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.entries [])
  in
  let buf = Buffer.create 65536 in
  Frame.add buf header;
  List.iter
    (fun entry -> Frame.add buf (Marshal.to_string entry []))
    (List.sort compare entries);
  match
    Core.Fault.tick Core.Fault.site_cache_write;
    Core.Io.write_file t.path (Buffer.contents buf)
  with
  | () ->
    t.corruption <- None;
    true
  | exception _ -> false

let find t ~tier ~key =
  locked t (fun () -> Hashtbl.find_opt t.entries (tier, key))

let put t ~tier ~key payload =
  locked t (fun () -> Hashtbl.replace t.entries (tier, key) payload)

let remove t ~tier ~key =
  locked t (fun () -> Hashtbl.remove t.entries (tier, key))

let bindings t ~tier =
  locked t (fun () ->
    Hashtbl.fold
      (fun (tr, k) v acc -> if String.equal tr tier then (k, v) :: acc else acc)
      t.entries [])
  |> List.sort compare

let entry_count t = locked t (fun () -> Hashtbl.length t.entries)
