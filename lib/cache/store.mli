(** One application's persisted cache store: a mutable [(tier, key) ->
    payload] table mirrored to a single versioned file.

    File layout: a header frame carrying the format version and the
    compiler version (Marshal streams are not portable across compiler
    versions), then one frame per entry. Loading validates everything up
    front; {e any} anomaly — torn write, bit flip, header from another
    version — discards the whole file and starts cold, recording the
    reason in {!corruption}. Saving goes through an atomic
    temp-file-and-rename, so a crash mid-save leaves the previous store
    intact. Both directions pass through the {!Core.Fault} sites
    [cache:read] / [cache:write] for chaos testing.

    All entry operations are serialized on an internal mutex: the parse
    and def/use tiers are consulted from worker domains. *)

type t

(** Bumped whenever the entry encoding changes; part of the header. *)
val version : int

(** The exact header frame payload a loadable store must carry. *)
val header : string

(** File path this store mirrors. *)
val path : t -> string

(** Why the on-disk file was discarded at load, if it was. [None] also
    when no file existed (a missing store is cold, not corrupt). *)
val corruption : t -> string option

(** Load the store at [path]; never raises. A missing file yields an
    empty store; an unreadable or invalid one yields an empty store with
    {!corruption} set. *)
val load : string -> t

(** Persist every entry. Returns [false] (dropping the persist, keeping
    the previous file) if the write fails or the [cache:write] fault site
    fires; a failed save only costs warmth. A successful save clears
    {!corruption}: the discarded file has been replaced. *)
val save : t -> bool

val find : t -> tier:string -> key:string -> string option
val put : t -> tier:string -> key:string -> string -> unit
val remove : t -> tier:string -> key:string -> unit

(** All [(key, payload)] entries of one tier, sorted by key. *)
val bindings : t -> tier:string -> (string * string) list

val entry_count : t -> int
