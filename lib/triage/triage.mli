(** Type-based taint triage: a flow-insensitive type-qualifier inference
    over the class table and the JIR, in the spirit of practical
    [@Tainted]/[@Untainted] checkers. No pointer analysis, no SDG — a
    worklist fixpoint over per-method register qualifiers plus a handful
    of coarse global channels (field bits by name, one array-contents
    bit, one thrown-value bit, one tainted-source-contents bit).

    The inference deliberately {e over}-approximates the propagation of
    the full tabulation engine: every channel the engine can move taint
    through (SSA def/use, call arguments and returns over a CHA call
    graph that contains the pointer call graph, field store→load,
    array-element flow, dictionary-model field encodings, throw→catch,
    native by-reference transfers and the reflective-invoke rewrite) has
    a triage counterpart that taints at least as much. Over-tainting
    only weakens the pre-filter; under-tainting would break the
    byte-identity contract, so when in doubt this module taints.

    Two consumers:
    - the {b pre-filter}: methods whose registers stay [Untainted] and
      that contain no rule-relevant call can be skipped by the SDG scan
      and the per-rule engine without changing any report;
    - {b rung zero} of the degradation ladder: the sink findings are a
      sound-but-coarse answer a pressured service can return instead of
      shedding the job. *)

(** The qualifier lattice [Tainted ⊑ Unknown ⊑ Untainted] ([Tainted] is
    the most informative verdict for a may-taint analysis; joins move
    toward it). *)
type qual = Untainted | Unknown | Tainted

val join : qual -> qual -> qual
val qual_name : qual -> string

(** How one call site interacts with the security-rule set. The rule
    tables live above this library (they need the matcher's class-table
    canonicalization), so the caller supplies the classification. *)
type call_rules = {
  cr_source_ret : string list;
      (** rules for which the call's return value is a tainted source *)
  cr_source_params : (int * string) list;
      (** by-reference sources: (argument index, rule) whose contents
          the call taints *)
  cr_sanitizer : bool;       (** a sanitizer for at least one rule *)
  cr_sanitizes_all : bool;
      (** a sanitizer for {e every} rule — only then may triage endorse
          the return value (the single taint bit is rule-insensitive) *)
  cr_sinks : (string * int list) list;
      (** (rule, sensitive argument positions) sink matches *)
}

(** A call that matches no rule at all. *)
val no_rules : call_rules

(** One sink call site reached by taint (or by [Unknown] data). Carries
    the containing method's class and name so ground-truth attribution
    works without an SDG builder. *)
type finding = {
  f_rule : string;
  f_issue : string;          (** issue name, as given by the classifier *)
  f_class : string;          (** class of the containing method *)
  f_meth : string;           (** name of the containing method *)
  f_method_id : string;      (** full id of the containing method *)
  f_sink : string;           (** sink target method reference *)
  f_site : int;              (** call-site id *)
  f_qual : qual;             (** [Tainted] or [Unknown] *)
}

val pp_finding : Format.formatter -> finding -> unit

type stats = {
  s_methods : int;           (** methods swept *)
  s_skippable : int;         (** methods the pre-filter may skip *)
  s_tainted_methods : int;   (** methods holding a non-[Untainted] register *)
  s_findings : int;
  s_passes : int;            (** fixpoint sweeps over the program *)
  s_seconds : float;
}

type verdict

(** Run the inference to fixpoint. [classify] maps each call to its
    rule interactions (see {!call_rules}); [issue_of_rule] names the
    issue a rule reports (for findings). [tick] is a fault-injection
    hook invoked once per method sweep — an exception it raises escapes
    [infer] and is the caller's to contain. *)
val infer :
  ?tick:(unit -> unit) ->
  ?issue_of_rule:(string -> string) ->
  classify:(Jir.Tac.call -> call_rules) ->
  Jir.Program.t ->
  verdict

(** Sink findings, deterministically ordered (rule, method id, site). *)
val findings : verdict -> finding list

val stats : verdict -> stats

(** Pre-filter decision: [false] means the method was proven
    untaint-reachable and rule-irrelevant, so the SDG scan may skip it
    without changing any report. *)
val keep : verdict -> Jir.Tac.meth -> bool

(** Same decision by method id. *)
val keep_id : verdict -> string -> bool

(** Did any call in the program match one of this rule's sources? When
    [false], the full engine cannot derive a single seed for the rule
    and may skip it wholesale. *)
val rule_has_source : verdict -> string -> bool
