(** Type-based taint triage (see the interface for the soundness
    contract: triage must taint at least as much as the tabulation
    engine ever propagates, so the pre-filter can never change a
    report). *)

open Jir

module Telemetry = Obs.Telemetry

let m_sweeps = Telemetry.counter "triage.sweeps"
let m_findings = Telemetry.counter "triage.findings"

type qual = Untainted | Unknown | Tainted

let rank = function Untainted -> 0 | Unknown -> 1 | Tainted -> 2
let join a b = if rank a >= rank b then a else b

let qual_name = function
  | Untainted -> "untainted"
  | Unknown -> "unknown"
  | Tainted -> "tainted"

type call_rules = {
  cr_source_ret : string list;
  cr_source_params : (int * string) list;
  cr_sanitizer : bool;
  cr_sanitizes_all : bool;
  cr_sinks : (string * int list) list;
}

let no_rules =
  { cr_source_ret = [];
    cr_source_params = [];
    cr_sanitizer = false;
    cr_sanitizes_all = false;
    cr_sinks = [] }

let is_plain cr =
  cr.cr_source_ret = [] && cr.cr_source_params = []
  && (not cr.cr_sanitizer) && cr.cr_sinks = []

type finding = {
  f_rule : string;
  f_issue : string;
  f_class : string;
  f_meth : string;
  f_method_id : string;
  f_sink : string;
  f_site : int;
  f_qual : qual;
}

let pp_finding ppf f =
  Fmt.pf ppf "[%s] %s -> %s in %s (%s)" f.f_rule f.f_issue f.f_sink
    f.f_method_id (qual_name f.f_qual)

type stats = {
  s_methods : int;
  s_skippable : int;
  s_tainted_methods : int;
  s_findings : int;
  s_passes : int;
  s_seconds : float;
}

type verdict = {
  v_findings : finding list;
  v_keep : (string, unit) Hashtbl.t;
  v_rules_with_sources : (string, unit) Hashtbl.t;
  v_stats : stats;
}

let findings v = v.v_findings
let stats v = v.v_stats
let keep_id v id = Hashtbl.mem v.v_keep id
let keep v (m : Tac.meth) = keep_id v (Tac.method_id m)
let rule_has_source v rule = Hashtbl.mem v.v_rules_with_sources rule

(* ------------------------------------------------------------------ *)
(* CHA call resolution                                                *)
(* ------------------------------------------------------------------ *)

(* Targets of a call under class-hierarchy analysis — a superset of the
   pointer call graph's edges, which is what makes propagating through
   every CHA target sound for the filter. *)
type resolution = {
  r_bodies : string list;     (* target method ids with bodies *)
  r_bodyless : string list;   (* native/abstract targets (summary flow) *)
  r_unknown : bool;           (* receiver class missing from the table *)
}

let resolve_call (table : Classtable.t) (prog : Program.t)
    (c : Tac.call) : resolution =
  let minfo_id (mi : Classtable.minfo) =
    Printf.sprintf "%s.%s/%d" mi.Classtable.mi_class mi.Classtable.mi_name
      mi.Classtable.mi_arity
  in
  let { Tac.rclass; rname; rarity } = c.Tac.target in
  let known = Classtable.mem table rclass in
  let minfos =
    if not known then []
    else
      match c.Tac.kind with
      | Tac.Static | Tac.Special ->
        (match Classtable.resolve_static table rclass rname rarity with
         | Some mi -> [ mi ]
         | None -> [])
      | Tac.Virtual ->
        let base =
          match Classtable.lookup_method table rclass rname rarity with
          | Some mi -> [ mi ]
          | None -> []
        in
        let dispatched =
          List.filter_map
            (fun sub -> Classtable.dispatch table sub rname rarity)
            (Classtable.concrete_subtypes table rclass)
        in
        base @ dispatched
  in
  let seen = Hashtbl.create 8 in
  let bodies = ref [] and bodyless = ref [] in
  List.iter
    (fun mi ->
       let id = minfo_id mi in
       if not (Hashtbl.mem seen id) then begin
         Hashtbl.add seen id ();
         match Program.find_method prog id with
         | Some m when m.Tac.m_has_body -> bodies := id :: !bodies
         | _ -> bodyless := id :: !bodyless
       end)
    minfos;
  { r_bodies = List.rev !bodies;
    r_bodyless = List.rev !bodyless;
    r_unknown = (not known) || minfos = [] }

let is_reflective_invoke (c : Tac.call) =
  let t = c.Tac.target in
  String.equal t.Tac.rclass "Method"
  && String.equal t.Tac.rname "invoke"
  && t.Tac.rarity = 3

(* ------------------------------------------------------------------ *)
(* Inference                                                          *)
(* ------------------------------------------------------------------ *)

let infer ?(tick = fun () -> ()) ?(issue_of_rule = fun r -> r)
    ~(classify : Tac.call -> call_rules) (prog : Program.t) : verdict =
  Telemetry.with_span "triage.infer" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let table = prog.Program.table in
  let method_ids = Program.all_method_ids prog in
  let methods =
    List.filter_map (Program.find_method prog) method_ids
  in
  (* per-method register qualifiers *)
  let vars : (string, qual array) Hashtbl.t =
    Hashtbl.create (List.length methods)
  in
  (* per-method formal-parameter qualifiers, fed by call arguments *)
  let params : (string, qual array) Hashtbl.t =
    Hashtbl.create (List.length methods)
  in
  (* per-method return qualifier *)
  let rets : (string, qual) Hashtbl.t = Hashtbl.create 256 in
  (* field bits, keyed by field name only: coarser than the engine's
     per-instance-key heap edges, hence sound. The dictionary model's
     synthetic $key/$all/$any fields land here too. *)
  let fields : (string, qual) Hashtbl.t = Hashtbl.create 256 in
  (* "content coupling" of a method that has no tainted register of its
     own but performs an operation the engine treats as a heap load at a
     call statement (native by-reference transfers, reflective invoke) *)
  let extras : (string, qual) Hashtbl.t = Hashtbl.create 32 in
  (* global channels *)
  let content = ref Untainted in   (* contents of source-returned objects *)
  let arrays = ref Untainted in    (* array-element channel *)
  let thrown = ref Untainted in    (* throw -> catch channel *)
  let changed = ref false in
  let raise_to cur q = if rank q > rank cur then (changed := true; true) else false in
  let set_global cell q = if raise_to !cell q then cell := q in
  let set_tbl tbl key q =
    let cur =
      match Hashtbl.find_opt tbl key with Some c -> c | None -> Untainted
    in
    if raise_to cur q then Hashtbl.replace tbl key (join cur q)
  in
  let get_tbl tbl key =
    match Hashtbl.find_opt tbl key with Some q -> q | None -> Untainted
  in
  let param_array mid arity =
    match Hashtbl.find_opt params mid with
    | Some a -> a
    | None ->
      let a = Array.make (max arity 1) Untainted in
      Hashtbl.add params mid a;
      a
  in
  (* memoized per-site call classification and resolution: both are pure
     functions of the (immutable) call and program *)
  let rules_memo : (int, call_rules) Hashtbl.t = Hashtbl.create 1024 in
  let resolve_memo : (int, resolution) Hashtbl.t = Hashtbl.create 1024 in
  let dict_memo : (int, Models.Dict_model.op option) Hashtbl.t =
    Hashtbl.create 256
  in
  let rules_with_sources : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rules_of (c : Tac.call) =
    match Hashtbl.find_opt rules_memo c.Tac.site with
    | Some cr -> cr
    | None ->
      let cr = classify c in
      List.iter
        (fun r -> Hashtbl.replace rules_with_sources r ())
        cr.cr_source_ret;
      List.iter
        (fun (_, r) -> Hashtbl.replace rules_with_sources r ())
        cr.cr_source_params;
      Hashtbl.add rules_memo c.Tac.site cr;
      cr
  in
  let resolution_of (c : Tac.call) =
    match Hashtbl.find_opt resolve_memo c.Tac.site with
    | Some r -> r
    | None ->
      let r = resolve_call table prog c in
      Hashtbl.add resolve_memo c.Tac.site r;
      r
  in
  let dict_of ~const_of (c : Tac.call) =
    match Hashtbl.find_opt dict_memo c.Tac.site with
    | Some op -> op
    | None ->
      let op = Models.Dict_model.classify ~const_of c in
      Hashtbl.add dict_memo c.Tac.site op;
      op
  in
  let sweep (m : Tac.meth) =
    tick ();
    Telemetry.incr m_sweeps;
    let mid = Tac.method_id m in
    let vq =
      match Hashtbl.find_opt vars mid with
      | Some a -> a
      | None ->
        let a = Array.make (max m.Tac.m_nvars 1) Untainted in
        Hashtbl.add vars mid a;
        a
    in
    let getv v =
      if v >= 0 && v < Array.length vq then vq.(v) else Untainted
    in
    let setv v q =
      if v >= 0 && v < Array.length vq && raise_to vq.(v) q then
        vq.(v) <- join vq.(v) q
    in
    (* formals receive what call sites passed in *)
    let pq = param_array mid m.Tac.m_arity in
    Array.iteri (fun i q -> setv i q) pq;
    let const_of = Models.Dict_model.const_of_meth m in
    let do_call (c : Tac.call) =
      let cr = rules_of c in
      let argq = List.map getv c.Tac.args in
      let jargs = List.fold_left join Untainted argq in
      (* sources: the return value is tainted and, because the engine
         additionally seeds every load of the returned object's pointees
         (and, for by-reference sources, of the argument's pointees),
         the global content channels go tainted too *)
      if cr.cr_source_ret <> [] then begin
        set_global content Tainted;
        match c.Tac.ret with Some r -> setv r Tainted | None -> ()
      end;
      List.iter
        (fun (i, _) ->
           set_global content Tainted;
           set_global arrays Tainted;
           match List.nth_opt c.Tac.args i with
           | Some a -> setv a Tainted
           | None -> ())
        cr.cr_source_params;
      (* dictionary model: puts/gets are field stores/loads under the
         model's synthetic key fields — reuse the field-name bits *)
      (match dict_of ~const_of c with
       | Some (Models.Dict_model.Dict_put { key; value; _ }) ->
         List.iter
           (fun (f : Tac.field) -> set_tbl fields f.Tac.fname (getv value))
           (Models.Dict_model.put_fields key)
       | Some (Models.Dict_model.Dict_get { dst; key; _ }) ->
         let q =
           List.fold_left
             (fun acc (f : Tac.field) -> join acc (get_tbl fields f.Tac.fname))
             !content
             (Models.Dict_model.get_fields key)
         in
         setv dst q
       | None -> ());
      (* interprocedural propagation over the CHA targets *)
      let res = resolution_of c in
      let ret_join = ref jargs in
      List.iter
        (fun callee ->
           let cpq = param_array callee (List.length c.Tac.args) in
           List.iteri
             (fun i q ->
                if i < Array.length cpq && raise_to cpq.(i) q then
                  cpq.(i) <- join cpq.(i) q)
             argq;
           ret_join := join !ret_join (get_tbl rets callee))
        res.r_bodies;
      List.iter
        (fun callee ->
           let transfers =
             Models.Natives.summary ~meth_id:callee
               ~arity:(List.length c.Tac.args)
               ~has_ret:(c.Tac.ret <> None)
           in
           List.iter
             (fun (tr : Models.Natives.transfer) ->
                let q =
                  match List.nth_opt argq tr.Models.Natives.t_from with
                  | Some q -> q
                  | None -> Untainted
                in
                match tr.Models.Natives.t_to with
                | Models.Natives.Ret ->
                  (* by-reference natives read the contents of the
                     source argument at the call statement *)
                  ret_join := join !ret_join (join q (join !content !arrays))
                | Models.Natives.Param _ ->
                  (* the engine models the write as a load of the source
                     contents plus a store into the target's elements:
                     couple both global channels and remember that this
                     method touches them even without a tainted register *)
                  set_global content q;
                  set_global arrays q;
                  set_tbl extras mid (join !content !arrays))
             transfers)
        res.r_bodyless;
      if res.r_unknown then ret_join := join !ret_join (join Unknown jargs);
      (* an unresolved reflective invoke consumes the contents of its
         argument array (the builder models it as an element load) *)
      if is_reflective_invoke c then begin
        set_tbl extras mid (join !content !arrays);
        ret_join := join !ret_join (join !content !arrays)
      end;
      (* the rule-insensitive taint bit may only honour a sanitizer that
         endorses for every rule; otherwise the engine still propagates
         for the rules the method does not sanitize *)
      if not cr.cr_sanitizes_all then
        match c.Tac.ret with Some r -> setv r !ret_join | None -> ()
    in
    Array.iter
      (fun (b : Tac.block) ->
         List.iter
           (fun (p : Tac.phi) ->
              List.iter
                (fun (_, v) -> setv p.Tac.phi_lhs (getv v))
                p.Tac.phi_args)
           b.Tac.phis;
         Array.iter
           (fun ins ->
              match ins with
              | Tac.Const _ | Tac.New _ | Tac.New_array _ | Tac.Nop -> ()
              | Tac.Move (d, s)
              | Tac.Unop (d, _, s)
              | Tac.Cast (d, _, s)
              | Tac.Instance_of (d, _, s)
              | Tac.Array_len (d, s) -> setv d (getv s)
              | Tac.Binop (d, _, a, b') | Tac.Strcat (d, a, b') ->
                setv d (join (getv a) (getv b'))
              | Tac.Load (d, _, f) ->
                setv d (join (get_tbl fields f.Tac.fname) !content)
              | Tac.Sload (d, f) ->
                setv d (join (get_tbl fields f.Tac.fname) !content)
              | Tac.Store (_, f, v) -> set_tbl fields f.Tac.fname (getv v)
              | Tac.Sstore (f, v) -> set_tbl fields f.Tac.fname (getv v)
              | Tac.Aload (d, _, _) -> setv d (join !arrays !content)
              | Tac.Astore (_, _, v) -> set_global arrays (getv v)
              | Tac.Catch_entry (v, _) -> setv v !thrown
              | Tac.Call c -> do_call c)
           b.Tac.instrs;
         match b.Tac.term with
         | Tac.Throw v -> set_global thrown (getv v)
         | Tac.Return (Some v) -> set_tbl rets mid (getv v)
         | _ -> ())
      m.Tac.m_blocks
  in
  (* worklist fixpoint: sweep every method until nothing moves. The
     lattice has height 2 per cell, so the pass count is bounded by the
     longest dependency chain; the cap is a safety net only. *)
  let passes = ref 0 in
  let continue_ = ref true in
  while !continue_ && !passes < 1000 do
    incr passes;
    changed := false;
    List.iter sweep methods;
    continue_ := !changed
  done;
  (* findings: sink call sites whose sensitive arguments are not provably
     untainted *)
  let findings = ref [] in
  (* carrier channel: the engine's §4.1.1 carrier detector fires at a sink
     when a Tainted fact was stored into the heap reachable from a sink
     argument — a constructor storing a parameter into [this], taint parked
     several dereferences deep, the synthesized [e.msg] store at catch
     entries. With no pointer information the reachable-heap test collapses
     to one global bit: some instance field or array element holds a
     Tainted fact. It is joined into every sink argument that can be a heap
     reference; registers defined by [Const], arithmetic, or string
     concatenation never point into the heap and stay exempt, which keeps
     taint-free sink arguments silent. Like the engine's detector it fires
     only on actual taint facts, never on Unknown. *)
  let heap_carrier =
    let q = Hashtbl.fold (fun _ v acc -> join acc v) fields !arrays in
    if q = Tainted then Tainted else Untainted
  in
  List.iter
    (fun (m : Tac.meth) ->
       let mid = Tac.method_id m in
       let vq =
         match Hashtbl.find_opt vars mid with Some a -> a | None -> [||]
       in
       let getv v =
         if v >= 0 && v < Array.length vq then vq.(v) else Untainted
       in
       let nv = max m.Tac.m_nvars 1 in
       let value_only = Array.make nv false in
       Array.iter
         (fun (b : Tac.block) ->
            Array.iter
              (fun ins ->
                 match ins with
                 | Tac.Const (d, _)
                 | Tac.Binop (d, _, _, _)
                 | Tac.Unop (d, _, _)
                 | Tac.Array_len (d, _)
                 | Tac.Instance_of (d, _, _)
                 | Tac.Strcat (d, _, _) ->
                   if d >= 0 && d < nv then value_only.(d) <- true
                 | _ -> ())
              b.Tac.instrs)
         m.Tac.m_blocks;
       let arg_qual a =
         let q = getv a in
         if a >= 0 && a < nv && value_only.(a) then q
         else join q heap_carrier
       in
       Array.iter
         (fun (b : Tac.block) ->
            Array.iter
              (fun ins ->
                 match ins with
                 | Tac.Call c ->
                   let cr = rules_of c in
                   List.iter
                     (fun (rule, idxs) ->
                        let q =
                          List.fold_left
                            (fun acc i ->
                               match List.nth_opt c.Tac.args i with
                               | Some a -> join acc (arg_qual a)
                               | None -> acc)
                            Untainted idxs
                        in
                        if q <> Untainted then
                          findings :=
                            { f_rule = rule;
                              f_issue = issue_of_rule rule;
                              f_class = m.Tac.m_class;
                              f_meth = m.Tac.m_name;
                              f_method_id = mid;
                              f_sink = Tac.mref_id c.Tac.target;
                              f_site = c.Tac.site;
                              f_qual = q }
                            :: !findings)
                     cr.cr_sinks
                 | _ -> ())
              b.Tac.instrs)
         m.Tac.m_blocks)
    methods;
  let findings =
    List.sort
      (fun a b ->
         match compare a.f_rule b.f_rule with
         | 0 ->
           (match compare a.f_method_id b.f_method_id with
            | 0 -> compare a.f_site b.f_site
            | c -> c)
         | c -> c)
      !findings
  in
  Telemetry.add m_findings (List.length findings);
  (* retention: a method stays in the full pipeline when any register
     (or its content coupling) may carry taint, or when it contains a
     call the rules care about (sources seed, sinks anchor carrier
     sets, sanitizers endorse — all three are consulted positionally
     by the engine and must stay indexed) *)
  let kept : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let tainted_methods = ref 0 in
  List.iter
    (fun (m : Tac.meth) ->
       let mid = Tac.method_id m in
       let vq =
         match Hashtbl.find_opt vars mid with Some a -> a | None -> [||]
       in
       let tainted =
         Array.exists (fun q -> q <> Untainted) vq
         || get_tbl extras mid <> Untainted
       in
       if tainted then incr tainted_methods;
       let relevant = ref false in
       Array.iter
         (fun (b : Tac.block) ->
            Array.iter
              (fun ins ->
                 match ins with
                 | Tac.Call c -> if not (is_plain (rules_of c)) then relevant := true
                 | _ -> ())
              b.Tac.instrs)
         m.Tac.m_blocks;
       if tainted || !relevant then Hashtbl.replace kept mid ())
    methods;
  let n_methods = List.length methods in
  let skippable = n_methods - Hashtbl.length kept in
  { v_findings = findings;
    v_keep = kept;
    v_rules_with_sources = rules_with_sources;
    v_stats =
      { s_methods = n_methods;
        s_skippable = skippable;
        s_tainted_methods = !tainted_methods;
        s_findings = List.length findings;
        s_passes = !passes;
        s_seconds = Unix.gettimeofday () -. t0 } }
