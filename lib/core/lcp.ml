(** Library-call-point (LCP) report minimization (§5).

    The LCP of a flow is the last statement on the path where data crosses
    from application code into library code. Two flows are equivalent when
    they share an LCP and require the same remediation action (the same
    issue type): inserting one sanitizer at the LCP fixes the whole class,
    so only a representative is reported. *)

open Jir

let stmt_in_library (b : Sdg.Builder.t) (s : Sdg.Stmt.t) : bool =
  (Sdg.Builder.node_meth b s.Sdg.Stmt.node).Tac.m_library

(** The LCP of a flow: the last app-code statement on the path whose
    successor lies in library code, or the sink call itself when the sink
    method is a library method invoked from application code. *)
let compute (b : Sdg.Builder.t) (fl : Flows.t) : Sdg.Stmt.t option =
  let rec scan last = function
    | a :: (b' :: _ as rest) ->
      let last =
        if (not (stmt_in_library b a)) && stmt_in_library b b' then Some a
        else last
      in
      scan last rest
    | [ final ] ->
      (* the sink call statement: app code calling a library sink *)
      if not (stmt_in_library b final) then Some final else last
    | [] -> last
  in
  scan None fl.Flows.fl_path

type group = {
  g_lcp : Sdg.Stmt.t option;
  g_issue : Rules.issue;
  g_representative : Flows.t;
  g_members : Flows.t list;
}

(** Group flows into ~-equivalence classes per §5 and pick representatives.
    The best-verdict shortest member represents its class (most consumable
    report); groups themselves sort confirmed-first. With refinement off
    every verdict rank is equal, so both sorts reduce to the unrefined
    behaviour exactly. *)
let dedup (b : Sdg.Builder.t) (flows : Flows.t list) : group list =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun fl ->
       let key = (compute b fl, fl.Flows.fl_rule.Rules.issue) in
       let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
       Hashtbl.replace tbl key (fl :: prev))
    flows;
  Hashtbl.fold
    (fun (lcp, issue) members acc ->
       let sorted =
         List.sort
           (fun a b ->
              compare
                (Flows.verdict_rank a, a.Flows.fl_length)
                (Flows.verdict_rank b, b.Flows.fl_length))
           members
       in
       match sorted with
       | [] -> acc
       | rep :: _ ->
         { g_lcp = lcp; g_issue = issue; g_representative = rep;
           g_members = sorted }
         :: acc)
    tbl []
  |> List.sort (fun a b ->
      compare
        (Flows.verdict_rank a.g_representative, a.g_issue, a.g_lcp)
        (Flows.verdict_rank b.g_representative, b.g_issue, b.g_lcp))
