(** Wall-clock deadlines, step budgets and cancellation for one analysis
    attempt.

    The paper's bounded-analysis machinery (§6) caps *work* (call-graph
    nodes, heap transitions); a production service additionally needs a
    *time* ceiling that holds regardless of which phase is hot. A [Budget.t]
    carries an absolute [Unix.gettimeofday] deadline, an optional global
    step budget and a shared cancellation token. The long-running loops
    poll it through {!exceeded}; the call is amortized so that the
    [gettimeofday] syscall happens only once every [probe_mask + 1] polls.

    One budget may be polled from several domains at once (the parallel
    taint engine shares the attempt's budget across its workers), so the
    counters and the cancellation/trip flags are [Atomic]. The step count
    is a global fetch-and-add: with a step budget of [m], the pool as a
    whole performs at most ~[m] steps, exactly as the sequential engine
    would. A poll writes shared state only when a step budget is armed
    (or on the trip itself): the common no-limit poll is two atomic
    loads of lines nobody writes, so a pool hammering one budget does
    not ping-pong a counter cache line. Deadline probes are amortized
    per domain through a domain-local poll counter. *)

type t = {
  started : float;
  deadline : float option;           (* absolute wall-clock time *)
  max_steps : int option;
  cancel : bool Atomic.t;
  steps : int Atomic.t;              (* counted only under [max_steps] *)
  tripped : bool Atomic.t;           (* latches once exceeded *)
  probe_mask : int;
}

(* each domain amortizes its own gettimeofday probes; the counter is
   shared between budgets, which only skews *when* within a 32-poll
   window the first probe of a fresh budget lands *)
let local_polls : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

type verdict = Ok | Deadline | Cancelled | Steps

(* Latch the trip flag; the first transition (and only the first) is an
   instant event on the telemetry trace, naming what ran out. *)
let trip t what =
  if not (Atomic.exchange t.tripped true) then
    Obs.Telemetry.instant "budget.trip" ~args:[ ("what", what) ]

let create ?deadline ?max_steps ?(cancel = Atomic.make false) () =
  let started = Unix.gettimeofday () in
  { started;
    deadline = Option.map (fun d -> started +. d) deadline;
    max_steps;
    cancel;
    steps = Atomic.make 0;
    tripped = Atomic.make false;
    probe_mask = 31 }

let unlimited () = create ()

let cancel t = Atomic.set t.cancel true
let cancelled t = Atomic.get t.cancel

let elapsed t = Unix.gettimeofday () -. t.started

(* [>=] so a zero deadline counts as already expired even when the clock
   has not visibly advanced since [create] *)
let past_deadline t =
  match t.deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

(* The full (unamortized) check; latches [tripped]. *)
let status t : verdict =
  if Atomic.get t.cancel then begin
    trip t "cancelled";
    Cancelled
  end
  else if past_deadline t then begin
    trip t "deadline";
    Deadline
  end
  else
    match t.max_steps with
    | Some m when Atomic.get t.steps > m ->
      trip t "steps";
      Steps
    | _ -> Ok

let exceeded t =
  if Atomic.get t.tripped then true
  else if Atomic.get t.cancel then begin
    trip t "cancelled";
    true
  end
  else begin
    (match t.max_steps with
     | Some m ->
       if Atomic.fetch_and_add t.steps 1 + 1 > m then trip t "steps"
     | None -> ());
    (match t.deadline with
     | Some _ when not (Atomic.get t.tripped) ->
       let polls = Domain.DLS.get local_polls in
       incr polls;
       if !polls land t.probe_mask = 0 && past_deadline t then
         trip t "deadline"
     | _ -> ());
    Atomic.get t.tripped
  end

let tripped t = Atomic.get t.tripped
