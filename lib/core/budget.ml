(** Wall-clock deadlines, step budgets and cancellation for one analysis
    attempt.

    The paper's bounded-analysis machinery (§6) caps *work* (call-graph
    nodes, heap transitions); a production service additionally needs a
    *time* ceiling that holds regardless of which phase is hot. A [Budget.t]
    carries an absolute [Unix.gettimeofday] deadline, an optional global
    step budget and a shared cancellation token. The long-running loops
    poll it through {!exceeded}; the call is amortized so that the
    [gettimeofday] syscall happens only once every [probe_mask + 1] polls. *)

type t = {
  started : float;
  deadline : float option;           (* absolute wall-clock time *)
  max_steps : int option;
  cancel : bool ref;
  mutable steps : int;
  mutable polls : int;
  mutable tripped : bool;            (* latches once exceeded *)
  probe_mask : int;
}

type verdict = Ok | Deadline | Cancelled | Steps

let create ?deadline ?max_steps ?(cancel = ref false) () =
  let started = Unix.gettimeofday () in
  { started;
    deadline = Option.map (fun d -> started +. d) deadline;
    max_steps;
    cancel;
    steps = 0;
    polls = 0;
    tripped = false;
    probe_mask = 31 }

let unlimited () = create ()

let cancel t = t.cancel := true
let cancelled t = !(t.cancel)

let elapsed t = Unix.gettimeofday () -. t.started

(* [>=] so a zero deadline counts as already expired even when the clock
   has not visibly advanced since [create] *)
let past_deadline t =
  match t.deadline with
  | Some d -> Unix.gettimeofday () >= d
  | None -> false

(* The full (unamortized) check; latches [tripped]. *)
let status t : verdict =
  if !(t.cancel) then begin
    t.tripped <- true;
    Cancelled
  end
  else if past_deadline t then begin
    t.tripped <- true;
    Deadline
  end
  else
    match t.max_steps with
    | Some m when t.steps > m ->
      t.tripped <- true;
      Steps
    | _ -> Ok

let exceeded t =
  t.steps <- t.steps + 1;
  t.polls <- t.polls + 1;
  if t.tripped then true
  else if !(t.cancel) then begin
    t.tripped <- true;
    true
  end
  else begin
    (match t.max_steps with
     | Some m when t.steps > m -> t.tripped <- true
     | _ -> ());
    if (not t.tripped)
       && t.deadline <> None
       && t.polls land t.probe_mask = 0
       && past_deadline t
    then t.tripped <- true;
    t.tripped
  end

let tripped t = t.tripped
