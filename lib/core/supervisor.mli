(** Resilient analysis supervisor (§6): run the pipeline under a wall-clock
    deadline, degrade precision instead of dying, and contain every fault.

    {!run} never raises. Its outcome always carries a report — at worst an
    empty [Partial] one whose diagnostics explain what went wrong. *)

type options = {
  deadline : float option;    (** wall-clock seconds for the whole run *)
  degrade : bool;             (** walk the ladder on budget exhaustion *)
  scale : float;              (** scale the ladder's presets are built at *)
  cancel : bool Atomic.t;     (** shared cooperative cancellation token *)
  jobs : int;                 (** worker-pool size for the parallel stages
                                  (frontend parse, per-rule tabulation);
                                  1 = fully sequential *)
  cache : Cache_iface.t;      (** incremental-cache hooks threaded into
                                  every rung's load and run;
                                  {!Cache_iface.none} = caching off *)
}

(** No deadline, degradation enabled, scale 1.0, fresh token, jobs 1,
    no cache. *)
val default_options : options

(** One rung of the ladder that actually executed. *)
type attempt = {
  at_algorithm : Config.algorithm;
  at_scale : float;
  at_outcome : string;        (** ["completed"] or the failure reason *)
  at_seconds : float;
}

type outcome = {
  sv_analysis : Taj.analysis option;
      (** the last attempt's analysis ([None] only if loading itself
          faulted); [Completed] here may still hold a [Partial] report *)
  sv_report : Report.t;
      (** always present: the completed attempt's report, an empty
          [Partial] one carrying the diagnostics, or an empty
          [Type_only] one when rung zero answered *)
  sv_triage : Triage.verdict option;
      (** rung zero's answer, when the run ended there — type-qualifier
          sink findings ({!Triage.findings}) without flow paths *)
  sv_diagnostics : Diagnostics.degradation list;
      (** every event across all attempts, downgrades included *)
  sv_attempts : attempt list; (** in execution order *)
  sv_elapsed : float;         (** wall-clock seconds for the whole run *)
}

(** The completed attempt's report, if any rung completed. *)
val completed_report : outcome -> Report.t option

(** [true] iff anything at all went wrong (= diagnostics are non-empty). *)
val degraded : outcome -> bool

(** Did the run end on rung zero (a triage-only answer)? *)
val type_only : outcome -> bool

(** Load leniently, then walk the degradation ladder from [config]
    (default: unbounded hybrid) until an attempt completes, the deadline
    expires, or the ladder is exhausted. The ladder always ends in the
    [Type_triage] rung zero, so "exhausted" normally means a type-only
    answer rather than an empty one; a [Type_triage] base configuration
    runs rung zero directly. Never raises. [loaded] skips the
    load when the caller already has one for this input (the cache layer
    loads first to compute its result key). *)
val run :
  ?rules:Rules.rule list ->
  ?options:options ->
  ?config:Config.t ->
  ?loaded:Taj.loaded ->
  Taj.input ->
  outcome
