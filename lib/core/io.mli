(** EINTR-safe Unix IO shared by the whole pipeline: with drain signal
    handlers installed, any blocking syscall may be interrupted; these
    wrappers make sure a signal reaches the drain protocol instead of
    surfacing as a spurious job, transport or cache failure. Source
    reads, the persistent cache store and the serving transports all go
    through this one path ([Serve.Io] re-exports it). *)

(** Retry [f] as long as it fails with [Unix_error (EINTR, _, _)]. *)
val retry_eintr : (unit -> 'a) -> 'a

(** Ignore SIGPIPE process-wide so a disconnected peer surfaces as
    [EPIPE] on the write instead of killing the process. Idempotent. *)
val ignore_sigpipe : unit -> unit

val read : Unix.file_descr -> bytes -> int -> int -> int
val write_all : Unix.file_descr -> string -> unit

(** Mutex-serialized newline-appending line writer. The first broken-pipe
    style failure ([EPIPE]/[ECONNRESET]/…) marks the writer dead and is
    reported through [on_error] once; subsequent writes are dropped. *)
val make_writer :
  ?on_error:(Unix.error -> unit) -> Unix.file_descr -> string -> unit

(** Bind a listening Unix-domain socket at [path]. A stale socket file
    (connect refused — its server died without unlinking) is removed and
    the bind retried; [Error `Live] when a running server still answers
    on the path. The returned descriptor is bound but not yet listening. *)
val bind_unix_socket :
  string -> (Unix.file_descr, [ `Live ]) result

(** Sleep at least this many wall-clock seconds, resuming after signals. *)
val sleepf : float -> unit

val accept : Unix.file_descr -> Unix.file_descr * Unix.sockaddr

val select :
  Unix.file_descr list -> Unix.file_descr list -> Unix.file_descr list ->
  float ->
  Unix.file_descr list * Unix.file_descr list * Unix.file_descr list

(** Whole-file read (the CLI's [read_file] goes through this). *)
val read_file : string -> string

(** Atomic whole-file write (temp sibling + rename), EINTR-safe. A
    crash mid-write leaves the previous file version intact. *)
val write_file : string -> string -> unit

(** Buffered newline-delimited reading over a raw file descriptor. *)
type line_reader

val line_reader : Unix.file_descr -> line_reader

(** Next complete line without its newline, blocking; [None] at EOF. *)
val read_line : line_reader -> string option

(** Non-blocking variant: [`Line l] when a complete line is available,
    [`Eof] at end of stream, [`Pending] when more bytes are needed. *)
val read_line_nonblock : line_reader -> [ `Line of string | `Eof | `Pending ]
