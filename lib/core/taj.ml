(** TAJ: the end-to-end taint analysis pipeline.

    {[
      let loaded = Taj.load { name; app_sources; descriptor } in
      let analysis = Taj.run loaded (Config.preset Config.Hybrid_optimized) in
      match analysis.result with
      | Completed c -> Report.pp c.builder Fmt.stdout c.report
      | Did_not_complete reason -> ...
    ]}

    [load] parses the model JDK and the application, synthesizes framework
    entrypoints from the deployment descriptor (§4.2.2), converts to SSA and
    applies the reflection (§4.2.3) and exception (§4.1.2) rewrites — all
    configuration-independent work that can be shared across algorithm runs.
    [run] executes pointer analysis, dependence-graph construction, slicing
    and reporting under one {!Config.t}. *)

open Jir

type input = {
  name : string;
  app_sources : string list;        (** MJava source texts *)
  descriptor : string;              (** deployment descriptor, may be "" *)
}

type loaded = {
  input : input;
  program : Program.t;
  reflection_stats : Models.Reflection.stats;
  synthesized_sources : int;        (** getMessage sources from catch blocks *)
  skipped_units : (int * string) list;
      (** units dropped by the lenient frontend (index, error) *)
  frontend_seconds : float;
}

type phase_times = {
  t_frontend : float;               (** parse/SSA/rewrites, from [load] *)
  t_pointer : float;
  t_sdg : float;
  t_taint : float;
  t_total : float;                  (** frontend + analysis wall clock *)
}

type completed = {
  report : Report.t;
  outcome : Engine.outcome;
  andersen : Pointer.Andersen.t;
  builder : Sdg.Builder.t;
  heapgraph : Pointer.Heapgraph.t;
  cg_nodes : int;
  cg_edges : int;
  jobs : int;                       (** worker-pool size this run used *)
  times : phase_times;
  diagnostics : Diagnostics.degradation list;
      (** degradations recorded during this run (also in the report) *)
}

type result =
  | Completed of completed
  | Did_not_complete of string

type analysis = {
  loaded : loaded;
  config : Config.t;
  rules : Rules.rule list;
  result : result;
}

exception Load_error of string

let wrap_frontend_errors name f =
  try f () with
  | Lexer.Lex_error (msg, pos) ->
    raise (Load_error (Fmt.str "%s: lex error at %a: %s" name Ast.pp_pos pos msg))
  | Parser.Parse_error (msg, pos) ->
    raise
      (Load_error (Fmt.str "%s: parse error at %a: %s" name Ast.pp_pos pos msg))
  | Lower.Lower_error (msg, pos) ->
    raise
      (Load_error (Fmt.str "%s: lowering error at %a: %s" name Ast.pp_pos pos msg))
  | Classtable.Unknown_class c ->
    raise (Load_error (Fmt.str "%s: unknown class %s" name c))
  | Classtable.Hierarchy_error msg -> raise (Load_error (name ^ ": " ^ msg))

(* Phase timing and span tracing both come from the telemetry layer:
   [Telemetry.phase] measures wall clock unconditionally (CPU time is
   meaningless under deadlines, which are wall-clock by definition) and
   additionally records a span when tracing is enabled. *)
module Telemetry = Obs.Telemetry

let now = Unix.gettimeofday

(** Parse, lower, synthesize and rewrite. Configuration-independent.
    With [lenient] (the supervisor's mode), a unit that fails to lex/parse
    is skipped and recorded in [skipped_units] instead of failing the whole
    load — frontend fault isolation. With [jobs > 1], units parse on a
    {!Parallel.map} domain pool (each unit's parse touches only unit-local
    state); results merge in unit order, so the loaded program is identical
    to a sequential load. *)
let load ?(lenient = false) ?(jobs = 1) ?(cache = Cache_iface.none)
    (input : input) : loaded =
  wrap_frontend_errors input.name @@ fun () ->
  let (prog, reflection_stats, synthesized_sources, skipped), frontend_seconds =
    Telemetry.phase "phase.frontend" ~args:[ ("app", input.name) ]
    @@ fun () ->
    let jdk_units = Models.Jdklib.units () in
    let parse_unit (i, src) =
      Telemetry.with_span "frontend.parse_unit"
        ~args:[ ("unit", string_of_int i) ]
      @@ fun () ->
      match
        cache.Cache_iface.unit_ast ~src ~parse:(fun () ->
          Fault.tick Fault.site_parse;
          Parser.parse src)
      with
      | u -> Either.Left u
      | exception
          ((Lexer.Lex_error _ | Parser.Parse_error _ | Fault.Injected _) as e)
        when lenient ->
        Either.Right (i, Printexc.to_string e)
    in
    let parsed =
      Telemetry.with_span "frontend.parse" @@ fun () ->
      Parallel.map ~jobs parse_unit
        (List.mapi (fun i src -> (i, src)) input.app_sources)
    in
    let app_units =
      List.filter_map (function Either.Left u -> Some u | _ -> None) parsed
    in
    let skipped =
      List.filter_map (function Either.Right s -> Some s | _ -> None) parsed
    in
    let prog, reflection_stats, synthesized_sources =
      (* everything below the parse is a pure function of the surviving
         unit ASTs and the descriptor text, which is exactly what the
         frontend cache tier keys on *)
      cache.Cache_iface.frontend ~descriptor:input.descriptor
        ~asts:app_units
        ~build:(fun () ->
          let prog = Program.create () in
          let descriptor =
            Models.Frameworks.parse_descriptor input.descriptor
          in
          let synth_units =
            Telemetry.with_span "frontend.synthesize" @@ fun () ->
            List.iter (Lower.declare prog ~library:true) jdk_units;
            List.iter (Lower.declare prog ~library:false) app_units;
            (* framework synthesis needs declarations but not bodies *)
            let cast_constraints =
              Models.Frameworks.form_cast_constraints app_units
            in
            let synth_src =
              Models.Frameworks.synthesize ~cast_constraints
                prog.Program.table descriptor
            in
            [ Parser.parse synth_src ]
          in
          Telemetry.with_span "frontend.lower" (fun () ->
            List.iter (Lower.declare prog ~library:false) synth_units;
            List.iter (Lower.define prog ~library:true) jdk_units;
            List.iter (Lower.define prog ~library:false) app_units;
            List.iter (Lower.define prog ~library:false) synth_units;
            Program.add_entrypoint prog Models.Frameworks.entry_method);
          Telemetry.with_span "frontend.ssa" (fun () ->
            Ssa.convert_program prog);
          Telemetry.with_span "frontend.rewrites" @@ fun () ->
          let ejb_registry = Models.Frameworks.ejb_registry descriptor in
          let reflection_stats =
            Models.Reflection.rewrite_program ~ejb_registry prog
          in
          let synthesized_sources =
            Models.Exceptions.rewrite_program prog
          in
          (prog, reflection_stats, synthesized_sources))
    in
    (prog, reflection_stats, synthesized_sources, skipped)
  in
  { input;
    program = prog;
    reflection_stats;
    synthesized_sources;
    skipped_units = skipped;
    frontend_seconds }

(* ------------------------------------------------------------------ *)
(* Type-based triage (rung zero / pre-filter)                         *)
(* ------------------------------------------------------------------ *)

(* Bridge the security-rule set to the triage classifier: one matcher
   (memoized internally) answers all of a call's rule interactions. *)
let triage ?tick ~(rules : Rules.rule list) (loaded : loaded) :
  Triage.verdict =
  let m = Rules.matcher loaded.program.Program.table in
  let classify (c : Tac.call) =
    let target = c.Tac.target in
    let source_ret = ref [] and source_params = ref [] in
    let sinks = ref [] in
    let san_any = ref false and san_all = ref true in
    List.iter
      (fun (rule : Rules.rule) ->
         (match Rules.source_of m rule target with
          | Some { Rules.src_kind = Rules.Tainted_return; _ } ->
            source_ret := rule.Rules.rule_name :: !source_ret
          | Some { Rules.src_kind = Rules.Taints_param i; _ } ->
            source_params := (i, rule.Rules.rule_name) :: !source_params
          | None -> ());
         (match Rules.sink_of m rule target with
          | Some snk ->
            sinks := (rule.Rules.rule_name, snk.Rules.snk_params) :: !sinks
          | None -> ());
         if Rules.is_sanitizer m rule target then san_any := true
         else san_all := false)
      rules;
    { Triage.cr_source_ret = List.rev !source_ret;
      cr_source_params = List.rev !source_params;
      cr_sanitizer = !san_any;
      (* endorsing a return value is only sound when the call sanitizes
         for every rule: the triage taint bit is rule-insensitive *)
      cr_sanitizes_all = !san_any && !san_all;
      cr_sinks = List.rev !sinks }
  in
  let issue_of_rule name =
    match List.find_opt (fun r -> r.Rules.rule_name = name) rules with
    | Some r -> Rules.issue_name r.Rules.issue
    | None -> name
  in
  Triage.infer ?tick ~issue_of_rule ~classify loaded.program

let pointer_config ~interrupt (loaded : loaded) (config : Config.t)
    (rules : Rules.rule list) : Pointer.Andersen.config =
  let m = Rules.matcher loaded.program.Program.table in
  let taint_api id = Rules.is_source_method_id rules m id in
  let policy =
    (* CS/CI/hybrid share the same preliminary pointer analysis family
       (§3.1); they differ in the slicing stage. The CS emulation
       additionally context-qualifies the heap (its heap-as-parameters
       treatment), which is where its cost and precision come from. *)
    match config.Config.algorithm with
    | Config.Cs_thin_slicing -> Pointer.Policy.deep ~taint_api ()
    | Config.Ci_thin_slicing | Config.Hybrid_unbounded
    | Config.Hybrid_prioritized | Config.Hybrid_optimized
    | Config.Type_triage ->
      Pointer.Policy.default ~taint_api ()
  in
  { Pointer.Andersen.policy;
    max_nodes = config.Config.max_cg_nodes;
    prioritized = config.Config.prioritized;
    is_source_method = taint_api;
    excluded_class =
      (fun cls -> List.mem cls config.Config.excluded_classes);
    max_work =
      (match config.Config.algorithm with
       | Config.Cs_thin_slicing -> config.Config.cs_budget
       | _ -> None);
    interrupt }

(* Why did the shared budget stop a phase? Record the matching event. *)
let record_budget_stop (diagnostics : Diagnostics.t) (budget : Budget.t)
    (phase : Diagnostics.phase) =
  match Budget.status budget with
  | Budget.Cancelled -> Diagnostics.record diagnostics (Cancelled { phase })
  | Budget.Steps ->
    Diagnostics.record diagnostics
      (Budget_exhausted { phase; what = "global step" })
  | Budget.Deadline | Budget.Ok ->
    Diagnostics.record diagnostics
      (Deadline_expired { phase; elapsed = Budget.elapsed budget })

(** Run the configured analysis over a loaded program.

    [budget] supplies the wall-clock deadline / cancellation token; it is
    polled cooperatively in every long-running loop, and an expiry
    mid-phase yields whatever flows were already found as a [Partial]
    report rather than an exception. A phase that raises is converted to
    [Did_not_complete] with a recorded [Phase_fault], so the supervisor can
    walk the degradation ladder. New degradations are appended to
    [diagnostics] (shared across supervisor attempts). *)
let run ?(rules = Rules.default_rules) ?(jobs = 1) ?budget ?diagnostics
    ?(cache = Cache_iface.none) (loaded : loaded) (config : Config.t) :
  analysis =
  let budget =
    match budget with Some b -> b | None -> Budget.unlimited ()
  in
  let diagnostics =
    match diagnostics with Some d -> d | None -> Diagnostics.create ()
  in
  let mark = Diagnostics.count diagnostics in
  let events_since_mark () =
    List.filteri (fun i _ -> i >= mark) (Diagnostics.events diagnostics)
  in
  let fail reason = { loaded; config; rules; result = Did_not_complete reason } in
  let fault phase e =
    Diagnostics.record diagnostics
      (Phase_fault { phase; error = Printexc.to_string e });
    fail
      (Fmt.str "%s phase fault: %s" (Diagnostics.phase_name phase)
         (Printexc.to_string e))
  in
  List.iter
    (fun (index, error) ->
       Diagnostics.record diagnostics (Unit_skipped { index; error }))
    loaded.skipped_units;
  let interrupt () = Budget.exceeded budget in
  let t_start = now () in
  if config.Config.algorithm = Config.Type_triage then
    (* rung zero is not a slicing configuration: the supervisor runs the
       triage pass directly (see {!Supervisor}); asking the full
       pipeline for it is answered, never crashed *)
    fail "type-triage has no slicing pipeline (run it via the supervisor)"
  else
  (* The triage pre-filter: a flow-insensitive qualifier pass whose
     verdict lets the SDG scan and the per-rule engine skip provably
     irrelevant work. Disabled under refinement (the replay walks
     unfiltered store indexes). A fault anywhere in the pass degrades
     this run to an unfiltered full analysis — recorded, never fatal. *)
  let filter =
    if not (config.Config.triage_filter && not config.Config.refine) then
      None
    else
      match
        Telemetry.phase "phase.triage" @@ fun () ->
        triage
          ~tick:(fun () -> Fault.tick Fault.site_triage_infer)
          ~rules loaded
      with
      | v, _ -> Some v
      | exception e ->
        Diagnostics.record diagnostics
          (Phase_fault { phase = Triage; error = Printexc.to_string e });
        None
  in
  let scan_filter =
    match filter with
    | None -> fun _ -> true
    | Some v ->
      (* after a filter-site fault, keep everything for the rest of the
         scan: already-skipped methods were decided by the intact
         verdict, so the indexes stay sound *)
      let broken = ref false in
      fun meth ->
        !broken
        ||
        (try
           Fault.tick Fault.site_triage_filter;
           Triage.keep v meth
         with e ->
           broken := true;
           Diagnostics.record diagnostics
             (Phase_fault { phase = Triage; error = Printexc.to_string e });
           true)
  in
  let skip_rule =
    match filter with
    | None -> fun _ -> false
    | Some v ->
      fun (rule : Rules.rule) ->
        (try
           Fault.tick Fault.site_triage_filter;
           not (Triage.rule_has_source v rule.Rules.rule_name)
         with _ -> false)
  in
  match
    Telemetry.phase "phase.pointer" @@ fun () ->
    Pointer.Andersen.run
      ~config:
        (pointer_config
           ~interrupt:(fun () ->
             Fault.tick Fault.site_andersen;
             interrupt ())
           loaded config rules)
      loaded.program
  with
  | exception Pointer.Andersen.Out_of_budget ->
    Diagnostics.record diagnostics
      (Budget_exhausted { phase = Pointer; what = "propagation" });
    fail "pointer analysis exceeded its budget"
  | exception e -> fault Pointer e
  | andersen, t_pointer ->
    if Pointer.Andersen.interrupted andersen then
      record_budget_stop diagnostics budget Pointer;
    (match
       Telemetry.phase "phase.sdg" @@ fun () ->
       let builder =
         Sdg.Builder.build
           ~interrupt:(fun () ->
             Fault.tick Fault.site_sdg;
             interrupt ())
           ~scan_filter
           ?defuse_cache:cache.Cache_iface.defuse loaded.program andersen
       in
       (builder, Pointer.Heapgraph.build andersen)
     with
     | exception e -> fault Sdg e
     | (builder, heapgraph), t_sdg ->
       if Sdg.Builder.interrupted builder then
         record_budget_stop diagnostics budget Sdg;
       (match
          Telemetry.phase "phase.taint" @@ fun () ->
          Engine.run ~jobs
            ~interrupt:(fun () ->
              Fault.tick Fault.site_tabulation;
              interrupt ())
            ~on_heap_transition:(fun () -> Fault.tick Fault.site_heap)
            ~skip_rule
            ~prog:loaded.program ~builder ~heapgraph ~rules ~config ()
        with
        | exception e -> fault Taint e
        | outcome, t_taint ->
          if outcome.Engine.interrupted then
            record_budget_stop diagnostics budget Taint;
          List.iter
            (Diagnostics.record diagnostics)
            outcome.Engine.rule_faults;
          if outcome.Engine.exhausted
             && (not outcome.Engine.interrupted)
             && config.Config.algorithm = Config.Cs_thin_slicing
          then begin
            Diagnostics.record diagnostics
              (Budget_exhausted { phase = Taint; what = "CS memory" });
            fail "slicing exceeded the CS memory budget"
          end
          else begin
            match
              (* the sanitization judge: with contexts on, flows carried
                 their sanitizers through the engine; judge each against
                 the computed sink context, dropping [Sanitized] ones.
                 With contexts off this is the identity — reports stay
                 byte-identical to the kill-on-sanitizer behaviour *)
              let outcome =
                if not config.Config.contexts then outcome
                else
                  let judged, _ =
                    Telemetry.phase "phase.strings" @@ fun () ->
                    Sanitize.judge ?cache:cache.Cache_iface.strings
                      ~prog:loaded.program ~builder ~rules
                      outcome.Engine.flows
                  in
                  { outcome with Engine.flows = judged }
              in
              let run_events = events_since_mark () in
              let completeness =
                if run_events = [] then Report.Complete
                else Report.Partial run_events
              in
              ( Report.make ~completeness builder outcome.Engine.flows,
                run_events )
            with
            | exception e -> fault Taint e
            | report, run_events ->
              let cg = Pointer.Andersen.call_graph andersen in
              { loaded; config; rules;
                result =
                  Completed
                    { report; outcome; andersen; builder; heapgraph;
                      cg_nodes = Pointer.Callgraph.node_count cg;
                      cg_edges = Pointer.Callgraph.edge_count cg;
                      jobs = max 1 jobs;
                      times =
                        { t_frontend = loaded.frontend_seconds;
                          t_pointer; t_sdg; t_taint;
                          t_total =
                            loaded.frontend_seconds +. (now () -. t_start) };
                      diagnostics = run_events } }
          end))

(** Convenience: load and analyze in one call. *)
let analyze ?rules ?(jobs = 1)
    ?(config = Config.preset Config.Hybrid_unbounded) ?cache (input : input) :
  analysis =
  run ?rules ~jobs ?cache (load ~jobs ?cache input) config
