(** Wall-clock deadlines, step budgets and cancellation for one analysis
    attempt. Long-running loops poll {!exceeded}; the [gettimeofday] probe
    is amortized over polls, so the check is cheap enough for inner loops.
    Counters and flags are [Atomic]: one budget may be polled concurrently
    by every worker domain of a parallel stage, and a trip or cancellation
    observed by one worker latches for all of them. *)

type t

type verdict = Ok | Deadline | Cancelled | Steps

(** [create ?deadline ?max_steps ?cancel ()] starts the clock now.
    [deadline] is in seconds from now; [cancel] is a shared token that any
    domain/context may set to stop the run cooperatively. *)
val create :
  ?deadline:float -> ?max_steps:int -> ?cancel:bool Atomic.t -> unit -> t

(** A budget that never trips (but still measures elapsed time). *)
val unlimited : unit -> t

val cancel : t -> unit
val cancelled : t -> bool

(** Wall-clock seconds since [create]. *)
val elapsed : t -> float

(** Amortized poll: counts a step, occasionally probes the clock. Returns
    [true] once the budget is exhausted — and keeps returning [true]
    (the state latches). *)
val exceeded : t -> bool

(** Why the budget tripped (unamortized full check; also latches). *)
val status : t -> verdict

(** Has any poll or status check tripped the budget? *)
val tripped : t -> bool
