(** Consumable reports: LCP-deduplicated issues with witness paths. *)

open Jir

type issue_report = {
  ir_issue : Rules.issue;
  ir_lcp : Sdg.Stmt.t option;
  ir_representative : Flows.t;
  ir_flow_count : int;
  ir_verdict : Sdg.Refine.verdict option;
      (* the best verdict in the group (the representative's, as members
         sort confirmed-first); None when refinement did not run *)
  ir_sanitization : Strings.Context.verdict option;
      (* the representative's sanitization judgement; None when contexts
         were off ([Sanitized] flows never reach the report) *)
  ir_template : Strings.Template.t option;
      (* the representative's reconstructed sink template, when the
         judge recovered one *)
}

type completeness =
  | Complete
  | Partial of Diagnostics.degradation list
  | Type_only of Diagnostics.degradation list

type t = {
  issues : issue_report list;
  raw_flows : Flows.t list;
  completeness : completeness;
}

let make ?(completeness = Complete) (b : Sdg.Builder.t)
    (flows : Flows.t list) : t =
  let groups =
    Obs.Telemetry.with_span "report.lcp" @@ fun () -> Lcp.dedup b flows
  in
  { issues =
      List.map
        (fun (g : Lcp.group) ->
           { ir_issue = g.Lcp.g_issue;
             ir_lcp = g.Lcp.g_lcp;
             ir_representative = g.Lcp.g_representative;
             ir_flow_count = List.length g.Lcp.g_members;
             ir_verdict = g.Lcp.g_representative.Flows.fl_verdict;
             ir_sanitization = g.Lcp.g_representative.Flows.fl_sanitization;
             ir_template = g.Lcp.g_representative.Flows.fl_template })
        groups;
    raw_flows = flows;
    completeness }

(* A report with no flows at all — what the supervisor returns when every
   rung of the degradation ladder failed: still a value, never an
   exception. *)
let empty ~completeness = { issues = []; raw_flows = []; completeness }

let issue_count t = List.length t.issues
let flow_count t = List.length t.raw_flows

let is_partial t =
  match t.completeness with
  | Complete -> false
  | Partial _ | Type_only _ -> true

(** (confirmed, plausible) issue counts; [None] when refinement did not
    run (no issue carries a verdict). *)
let verdict_counts t =
  let refined = List.filter (fun ir -> ir.ir_verdict <> None) t.issues in
  if refined = [] then None
  else
    Some
      (List.fold_left
         (fun (c, p) ir ->
            match ir.ir_verdict with
            | Some Sdg.Refine.Confirmed -> (c + 1, p)
            | Some (Sdg.Refine.Plausible _) -> (c, p + 1)
            | None -> (c, p))
         (0, 0) refined)

(** (mismatched, unsanitized) issue counts; [None] when the sanitization
    judge did not run (no issue carries a sanitization verdict). *)
let sanitization_counts t =
  let judged = List.filter (fun ir -> ir.ir_sanitization <> None) t.issues in
  if judged = [] then None
  else
    Some
      (List.fold_left
         (fun (m, u) ir ->
            match ir.ir_sanitization with
            | Some (Strings.Context.Mismatched_sanitizer _) -> (m + 1, u)
            | Some Strings.Context.Unsanitized -> (m, u + 1)
            | Some Strings.Context.Sanitized | None -> (m, u))
         (0, 0) judged)

let degradations t =
  match t.completeness with
  | Complete -> []
  | Partial ds | Type_only ds -> ds

let pp_stmt (b : Sdg.Builder.t) ppf (s : Sdg.Stmt.t) =
  let m = Sdg.Builder.node_meth b s.Sdg.Stmt.node in
  match Sdg.Builder.instr_of b s with
  | Some ins -> Fmt.pf ppf "%s: %a" (Tac.method_id m) Tac.pp_instr ins
  | None ->
    (match s.Sdg.Stmt.kind with
     | Sdg.Stmt.K_param i -> Fmt.pf ppf "%s: param %d" (Tac.method_id m) i
     | Sdg.Stmt.K_ret -> Fmt.pf ppf "%s: return" (Tac.method_id m)
     | Sdg.Stmt.K_phi (blk, i) ->
       Fmt.pf ppf "%s: B%d.phi%d" (Tac.method_id m) blk i
     | Sdg.Stmt.K_instr (blk, _) ->
       Fmt.pf ppf "%s: B%d.<throw>" (Tac.method_id m) blk)

let pp_issue_report (b : Sdg.Builder.t) ppf (ir : issue_report) =
  Fmt.pf ppf "@[<v2>[%a]%a%a %d flow(s); sink %a@,"
    Rules.pp_issue ir.ir_issue
    (fun ppf -> function
       | None -> ()
       | Some v -> Fmt.pf ppf " %s" (String.uppercase_ascii
                                       (Sdg.Refine.verdict_name v)))
    ir.ir_verdict
    (fun ppf -> function
       | Some (Strings.Context.Mismatched_sanitizer _) ->
         Fmt.string ppf " MISMATCHED-SANITIZER"
       | Some _ | None -> ())
    ir.ir_sanitization ir.ir_flow_count
    (pp_stmt b) ir.ir_representative.Flows.fl_sink;
  (match ir.ir_sanitization with
   | None -> ()
   | Some v ->
     Fmt.pf ppf "sanitization: %a@," Strings.Context.pp_verdict v;
     (match ir.ir_template with
      | Some tpl -> Fmt.pf ppf "sink template: %a@," Strings.Template.pp tpl
      | None -> ()));
  (match ir.ir_lcp with
   | Some lcp -> Fmt.pf ppf "remediate at: %a@," (pp_stmt b) lcp
   | None -> ());
  Fmt.pf ppf "@[<v2>witness:@,%a@]@]"
    (Fmt.list ~sep:Fmt.cut (pp_stmt b))
    ir.ir_representative.Flows.fl_path

let pp (b : Sdg.Builder.t) ppf (t : t) =
  Fmt.pf ppf "@[<v>%d issue(s) from %d flow(s)%a%a@,%a@]"
    (issue_count t) (flow_count t)
    (fun ppf -> function
       | None -> ()
       | Some (c, p) -> Fmt.pf ppf " (%d confirmed, %d plausible)" c p)
    (verdict_counts t)
    (fun ppf -> function
       | None -> ()
       | Some (m, u) ->
         Fmt.pf ppf " (%d mismatched-sanitizer, %d unsanitized)" m u)
    (sanitization_counts t)
    (Fmt.list ~sep:Fmt.cut (pp_issue_report b))
    t.issues;
  match t.completeness with
  | Complete -> ()
  | Partial ds ->
    Fmt.pf ppf "@,@[<v2>PARTIAL RESULT — %d degradation(s):@,%a@]"
      (List.length ds)
      (Fmt.list ~sep:Fmt.cut Diagnostics.pp_degradation)
      ds
  | Type_only ds ->
    Fmt.pf ppf
      "@,@[<v2>TYPE_ONLY RESULT — type-qualifier triage, no flow paths        (%d degradation(s)):@,%a@]"
      (List.length ds)
      (Fmt.list ~sep:Fmt.cut Diagnostics.pp_degradation)
      ds
