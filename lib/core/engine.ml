(** The taint engine: per security rule, seed the slicer at source calls and
    collect the flows that reach sinks, including taint-carrier flows
    (§4.1.1). *)

module Int_set = Set.Make (Int)
module Keys = Pointer.Keys
open Jir

module Telemetry = Obs.Telemetry

let m_seeds = Telemetry.counter "taint.seeds"
let m_flows = Telemetry.counter "taint.flows"
let m_rules = Telemetry.counter "taint.rules"

type rule_stats = {
  rs_rule : string;
  rs_seeds : int;
  rs_visited : int;
  rs_heap_transitions : int;
  rs_exhausted : bool;
}

type refine_summary = {
  rf_confirmed : int;
  rf_plausible : int;
  rf_steps : int;                 (* replay steps, summed over flows *)
  rf_heap_transitions : int;
  rf_widened : int;               (* flows that hit the k-limit *)
  rf_budget : int;                (* flows demoted by budget exhaustion *)
}

type outcome = {
  flows : Flows.t list;
  filtered_by_length : int;       (* flows dropped by the §6.2.2 bound *)
  rule_stats : rule_stats list;
  exhausted : bool;               (* some rule hit the step budget *)
  interrupted : bool;             (* some rule was cut off by the deadline *)
  rule_faults : Diagnostics.degradation list;
      (* Rule_failed entries: rules whose slice raised; their flows are
         missing but the other rules still ran (fault isolation) *)
  refined : refine_summary option;
      (* present iff the access-path refinement stage ran *)
  summary_edges : (int * int) list;
      (* union of per-rule IFDS summary edges, sorted; persisted by the
         incremental cache under a call-closure digest *)
}

let mode_of (config : Config.t) : Sdg.Tabulation.mode =
  match config.Config.algorithm with
  | Config.Ci_thin_slicing -> Sdg.Tabulation.ci_mode
  | Config.Cs_thin_slicing ->
    { Sdg.Tabulation.cs_mode with
      Sdg.Tabulation.max_steps = config.Config.cs_budget }
  | Config.Hybrid_unbounded | Config.Hybrid_prioritized
  | Config.Hybrid_optimized
  (* Type_triage never reaches the slicer (the supervisor intercepts
     it); an arm here keeps the match total for direct callers *)
  | Config.Type_triage ->
    { Sdg.Tabulation.hybrid_mode with
      Sdg.Tabulation.max_heap_transitions = config.Config.max_heap_transitions;
      max_steps = config.Config.max_slice_steps }

(* Seeds for one rule: source call statements (return taint) and, for
   by-reference sources, the loads reading the tainted parameter's object. *)
let seeds_of (b : Sdg.Builder.t) (m : Rules.matcher) (rule : Rules.rule) :
  Sdg.Stmt.t list =
  List.concat_map
    (fun (s, (c : Tac.call)) ->
       match Rules.source_of m rule c.Tac.target with
       | Some { Rules.src_kind = Rules.Tainted_return; _ } ->
         (* when the source returns a container (e.g. a parameter array),
            its contents are tainted too: seed the loads of its pointees *)
         let content_loads =
           match c.Tac.ret with
           | Some r ->
             let pts = Sdg.Builder.pts_of_var b ~node:s.Sdg.Stmt.node r in
             Int_set.fold
               (fun ik acc -> Sdg.Builder.loads_of_ik b ~ik @ acc)
               pts []
           | None -> []
         in
         s :: content_loads
       | Some { Rules.src_kind = Rules.Taints_param i; _ } ->
         (match List.nth_opt c.Tac.args i with
          | Some arg ->
            let pts = Sdg.Builder.pts_of_var b ~node:s.Sdg.Stmt.node arg in
            Int_set.fold
              (fun ik acc -> Sdg.Builder.loads_of_ik b ~ik @ acc)
              pts []
          | None -> [])
       | None -> [])
    (Sdg.Builder.all_call_stmts b)

(* Sink call statements with the instance keys reachable from their
   sensitive arguments (§4.1.1 steps 1-2), bounded by the nested-taint
   depth (§6.2.3). *)
let carrier_sets_of (b : Sdg.Builder.t) (hg : Pointer.Heapgraph.t)
    (m : Rules.matcher) (rule : Rules.rule) ~depth :
  (Sdg.Stmt.t * Tac.mref * Int_set.t) list =
  if depth = 0 then []
  else
    List.filter_map
      (fun (s, (c : Tac.call)) ->
         match Rules.sink_of m rule c.Tac.target with
         | None -> None
         | Some sink ->
           let roots =
             List.fold_left
               (fun acc i ->
                  match List.nth_opt c.Tac.args i with
                  | Some arg ->
                    Int_set.union acc
                      (Sdg.Builder.pts_of_var b ~node:s.Sdg.Stmt.node arg)
                  | None -> acc)
               Int_set.empty sink.Rules.snk_params
           in
           if Int_set.is_empty roots then None
           else
             Some (s, c.Tac.target, Pointer.Heapgraph.reachable hg ~depth roots))
      (Sdg.Builder.all_call_stmts b)

let dedup_path (path : Sdg.Stmt.t list) =
  let rec go = function
    | a :: b :: rest when Sdg.Stmt.equal a b -> go (b :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go path

(* ------------------------------------------------------------------ *)
(* Flow refinement (second pass)                                      *)
(* ------------------------------------------------------------------ *)

(* Replay each reported flow with the field-sensitive access-path engine
   and attach a verdict. Per-flow replays are independent over the
   read-only SDG, so they parallelize exactly like the per-rule stage;
   the index-ordered merge keeps flow order (and thus the report)
   byte-identical across job counts. Never drops a flow. *)
let refine_flows ~jobs ~interrupt ~(prog : Program.t)
    ~(builder : Sdg.Builder.t) ~(heapgraph : Pointer.Heapgraph.t)
    ~(config : Config.t) (flows : Flows.t list) :
  Flows.t list * refine_summary * bool =
  let limits =
    { Sdg.Refine.default_limits with
      Sdg.Refine.k = config.Config.refine_k;
      max_steps = config.Config.refine_steps }
  in
  let depth = config.Config.nested_taint_depth in
  let refine_one (fl : Flows.t) =
    (* fresh matcher per task: its resolution memo is private, sharing one
       across domains would race *)
    let m = Rules.matcher prog.Program.table in
    let rule = fl.Flows.fl_rule in
    let sink_reach =
      if depth = 0 then Int_set.empty
      else
        match Sdg.Builder.call_of builder fl.Flows.fl_sink with
        | None -> Int_set.empty
        | Some c ->
          (match Rules.sink_of m rule c.Tac.target with
           | None -> Int_set.empty
           | Some sink ->
             let roots =
               List.fold_left
                 (fun acc i ->
                    match List.nth_opt c.Tac.args i with
                    | Some arg ->
                      Int_set.union acc
                        (Sdg.Builder.pts_of_var builder
                           ~node:fl.Flows.fl_sink.Sdg.Stmt.node arg)
                    | None -> acc)
                 Int_set.empty sink.Rules.snk_params
             in
             if Int_set.is_empty roots then Int_set.empty
             else Pointer.Heapgraph.reachable heapgraph ~depth roots)
    in
    let callbacks =
      { Sdg.Refine.is_sink_arg =
          (fun target i -> Rules.is_sink_arg m rule target i);
        is_sanitizer = (fun target -> Rules.is_sanitizer m rule target);
        sanitizer_passthrough = config.Config.contexts;
        sink_reach }
    in
    let verdict, stats =
      Sdg.Refine.replay ~interrupt builder ~limits ~callbacks
        ~source:fl.Flows.fl_source ~sink:fl.Flows.fl_sink
        ~sink_kind:fl.Flows.fl_kind
    in
    ({ fl with Flows.fl_verdict = Some verdict }, stats, verdict)
  in
  let results =
    Telemetry.with_span "phase.refine"
      ~args:[ ("flows", string_of_int (List.length flows)) ]
    @@ fun () ->
    if jobs <= 1 then List.map refine_one flows
    else begin
      Sdg.Builder.precompute builder;
      Parallel.map ~jobs refine_one flows
    end
  in
  let summary =
    List.fold_left
      (fun (acc : refine_summary) (_, (st : Sdg.Refine.stats), v) ->
         { rf_confirmed =
             (acc.rf_confirmed
              + match v with Sdg.Refine.Confirmed -> 1 | _ -> 0);
           rf_plausible =
             (acc.rf_plausible
              + match v with Sdg.Refine.Plausible _ -> 1 | _ -> 0);
           rf_steps = acc.rf_steps + st.Sdg.Refine.st_steps;
           rf_heap_transitions =
             acc.rf_heap_transitions + st.Sdg.Refine.st_heap_transitions;
           rf_widened =
             (acc.rf_widened + if st.Sdg.Refine.st_widened then 1 else 0);
           rf_budget =
             (acc.rf_budget
              + match v with
                | Sdg.Refine.Plausible Sdg.Refine.Budget -> 1
                | _ -> 0) })
      { rf_confirmed = 0; rf_plausible = 0; rf_steps = 0;
        rf_heap_transitions = 0; rf_widened = 0; rf_budget = 0 }
      results
  in
  let interrupted =
    List.exists
      (fun (_, _, v) ->
         v = Sdg.Refine.Plausible Sdg.Refine.Interrupted)
      results
  in
  (List.map (fun (fl, _, _) -> fl) results, summary, interrupted)

(* Everything one rule's slice produced, kept separate per rule so that
   rules can run on different domains and still merge into the exact
   outcome the sequential loop builds: flows concatenated in rule order,
   filtered counts summed, stats in rule order, exhausted/interrupted
   or-ed, fault diagnostics in rule order. *)
type per_rule = {
  pr_flows : Flows.t list;
  pr_filtered : int;
  pr_stats : rule_stats;
  pr_exhausted : bool;
  pr_interrupted : bool;
  pr_fault : Diagnostics.degradation option;
  pr_summary_edges : (int * int) list;
}

let run ?(jobs = 1) ?(interrupt = fun () -> false)
    ?(on_heap_transition = fun () -> ())
    ?(skip_rule = fun (_ : Rules.rule) -> false)
    ~(prog : Program.t) ~(builder : Sdg.Builder.t)
    ~(heapgraph : Pointer.Heapgraph.t) ~(rules : Rules.rule list)
    ~(config : Config.t) () : outcome =
  let mode = mode_of config in
  (* [skip_rule rule] means the triage verdict proved no call in the
     program matches any of the rule's sources, so [seeds_of] would
     return [] and the tabulation would visit nothing. The synthesized
     per-rule record below is exactly what [run_rule] builds from an
     empty-seed run, so the merged outcome stays byte-identical. *)
  let skipped_rule rule =
    Telemetry.incr m_rules;
    { pr_flows = [];
      pr_filtered = 0;
      pr_stats =
        { rs_rule = rule.Rules.rule_name;
          rs_seeds = 0;
          rs_visited = 0;
          rs_heap_transitions = 0;
          rs_exhausted = false };
      pr_exhausted = false;
      pr_interrupted = false;
      pr_fault = None;
      pr_summary_edges = [] }
  in
  let run_rule rule =
    Telemetry.with_span "taint.rule"
      ~args:[ ("rule", rule.Rules.rule_name) ]
    @@ fun () ->
    (* each task builds its own matcher: the matcher memoizes canonical
       method resolutions in a private table, so sharing one across
       domains would race *)
    let m = Rules.matcher prog.Program.table in
    let filtered = ref 0 in
    let seeds = seeds_of builder m rule in
    let carrier_sets =
      carrier_sets_of builder heapgraph m rule
        ~depth:config.Config.nested_taint_depth
    in
    let callbacks =
      { Sdg.Tabulation.is_sink_arg =
          (fun target i -> Rules.is_sink_arg m rule target i);
        is_sanitizer = (fun target -> Rules.is_sanitizer m rule target);
        sanitizer_passthrough = config.Config.contexts;
        carrier_sets }
    in
    let res =
      Sdg.Tabulation.run ~interrupt ~on_heap_transition builder ~mode
        ~callbacks ~seeds
    in
    let flows =
      List.filter_map
        (fun (h : Sdg.Tabulation.hit) ->
           let path =
             dedup_path
               (Sdg.Tabulation.path_of res h.Sdg.Tabulation.h_via
                @ [ h.Sdg.Tabulation.h_sink ])
           in
           let fl =
             { Flows.fl_rule = rule;
               fl_source =
                 (match path with s :: _ -> s | [] -> h.Sdg.Tabulation.h_via);
               fl_sink = h.Sdg.Tabulation.h_sink;
               fl_sink_target = h.Sdg.Tabulation.h_sink_target;
               fl_kind = h.Sdg.Tabulation.h_kind;
               fl_path = path;
               fl_length = List.length path;
               fl_verdict = None;
               fl_template = None;
               fl_sanitization = None }
           in
           match config.Config.max_flow_length with
           | Some cap when fl.Flows.fl_length > cap ->
             incr filtered;
             None
           | _ -> Some fl)
        res.Sdg.Tabulation.hits
    in
    Telemetry.incr m_rules;
    Telemetry.add m_seeds (List.length seeds);
    Telemetry.add m_flows (List.length flows);
    { pr_flows = flows;
      pr_filtered = !filtered;
      pr_stats =
        { rs_rule = rule.Rules.rule_name;
          rs_seeds = List.length seeds;
          rs_visited = res.Sdg.Tabulation.visited;
          rs_heap_transitions = res.Sdg.Tabulation.heap_transitions;
          rs_exhausted = res.Sdg.Tabulation.exhausted };
      pr_exhausted = res.Sdg.Tabulation.exhausted;
      pr_interrupted = res.Sdg.Tabulation.interrupted;
      pr_fault = None;
      pr_summary_edges = res.Sdg.Tabulation.summary_edges }
  in
  (* fault isolation: a raising rule contributes no flows and a diagnostic;
     the remaining rules still run. Catching *inside* the task keeps an
     injected fault contained to the worker that hit it. *)
  let guarded rule =
    try if skip_rule rule then skipped_rule rule else run_rule rule with
    | e ->
      { pr_flows = [];
        pr_filtered = 0;
        pr_stats =
          { rs_rule = rule.Rules.rule_name;
            rs_seeds = 0;
            rs_visited = 0;
            rs_heap_transitions = 0;
            rs_exhausted = true };
        pr_exhausted = false;
        pr_interrupted = false;
        pr_fault =
          Some
            (Diagnostics.Rule_failed
               { rule = rule.Rules.rule_name;
                 error = Printexc.to_string e });
        pr_summary_edges = [] }
  in
  let results =
    if jobs <= 1 then List.map guarded rules
    else begin
      (* rules slice over a shared, read-only SDG: force its lazy memo
         indexes now so worker domains never write to it *)
      Sdg.Builder.precompute builder;
      Parallel.map ~jobs guarded rules
    end
  in
  let flows = List.concat_map (fun r -> r.pr_flows) results in
  let interrupted = List.exists (fun r -> r.pr_interrupted) results in
  let flows, refined, interrupted =
    if config.Config.refine && flows <> [] then begin
      let flows, summary, refine_interrupted =
        refine_flows ~jobs ~interrupt ~prog ~builder ~heapgraph ~config flows
      in
      (* an interrupt mid-refinement demotes the remaining flows to
         Plausible and surfaces through the normal partial-result path —
         the report is honest about it, but it is never an error *)
      (flows, Some summary, interrupted || refine_interrupted)
    end
    else (flows, None, interrupted)
  in
  { flows;
    filtered_by_length =
      List.fold_left (fun acc r -> acc + r.pr_filtered) 0 results;
    rule_stats = List.map (fun r -> r.pr_stats) results;
    exhausted = List.exists (fun r -> r.pr_exhausted) results;
    interrupted;
    rule_faults = List.filter_map (fun r -> r.pr_fault) results;
    refined;
    summary_edges =
      List.sort_uniq compare
        (List.concat_map (fun r -> r.pr_summary_edges) results) }
