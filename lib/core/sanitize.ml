(** The sanitization judge: record-and-judge's second half.

    With [Config.contexts] on, the engine propagates {e through}
    sanitizers instead of killing at them, so every sanitizer a flow
    traverses sits on its witness path. This pass then judges each flow:

    - {e applied} — the canonical ids of the sanitizer calls on the path
      (matcher-canonical, all rules, deduplicated in path order);
    - {e required} — the syntactic context of the sink, computed from the
      rule's issue type plus the sink value's string template
      reconstructed interprocedurally by {!Strings.Summary};
    - {e verdict} — [Unsanitized] when nothing was applied,
      [Sanitized] when some applied sanitizer's effect set covers the
      required context, and [Mismatched_sanitizer {applied; required}]
      otherwise — the wrong-sanitizer-for-this-sink finding class.

    [Sanitized] flows are dropped before reporting, reproducing the
    classic kill's output discipline; [Unsanitized] flows are exactly
    the classic findings, now annotated with the sink context; and
    [Mismatched_sanitizer] flows are the new reports this analysis
    exists for. A flow the classic engine reports is therefore never
    dropped: a path with no sanitizer on it judges [Unsanitized]. *)

module Context = Strings.Context
module Template = Strings.Template
module Effects = Strings.Effects
module Telemetry = Obs.Telemetry

let m_judged = Telemetry.counter "strings.judged"
let m_sanitized = Telemetry.counter "strings.sanitized"
let m_mismatched = Telemetry.counter "strings.mismatched"
let m_unsanitized = Telemetry.counter "strings.unsanitized"

(** The effect table of a rule set: each sanitizer id paired with the
    issue names of the rules listing it (the inference's fallback
    signal). Sanitizer ids in rules are already canonical. *)
let effect_table (rules : Rules.rule list) : Effects.table =
  let by_id : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Rules.rule) ->
       List.iter
         (fun id ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt by_id id) in
            Hashtbl.replace by_id id
              (Rules.issue_name r.Rules.issue :: prev))
         r.Rules.sanitizers)
    rules;
  Effects.infer
    ~sanitizers:
      (Hashtbl.fold
         (fun id issues acc -> (id, List.sort_uniq compare issues) :: acc)
         by_id [])

(** Sanitizer calls on the witness path, canonical ids deduplicated in
    path order. *)
let applied_on_path (m : Rules.matcher) (rules : Rules.rule list)
    (b : Sdg.Builder.t) (path : Sdg.Stmt.t list) : string list =
  List.rev
    (List.fold_left
       (fun acc stmt ->
          match Sdg.Builder.call_of b stmt with
          | None -> acc
          | Some c ->
            (match Rules.sanitizer_of m rules c.Jir.Tac.target with
             | Some id when not (List.mem id acc) -> id :: acc
             | _ -> acc))
       [] path)

(** The context the sink demands, given the rule's issue type and the
    reconstructed template (if any). *)
let required_context (issue : Rules.issue) (tpl : Template.t option) :
  Context.t =
  match issue with
  | Rules.Xss ->
    (match tpl with Some t -> Template.html_context t | None -> Context.Unknown)
  | Rules.Sqli ->
    (match tpl with Some t -> Template.sql_context t | None -> Context.Unknown)
  | Rules.Malicious_file -> Context.Path
  | Rules.Command_injection -> Context.Shell
  | Rules.Info_leak -> Context.Unknown

let verdict (effects : Effects.table) ~(applied : string list)
    ~(required : Context.t) : Context.verdict =
  if applied = [] then Context.Unsanitized
  else if
    List.exists (fun id -> Effects.covers (Effects.effects effects id) required)
      applied
  then Context.Sanitized
  else Context.Mismatched_sanitizer { applied; required }

(** Judge every flow; annotate kept flows, drop [Sanitized] ones. *)
let judge ?cache ~(prog : Jir.Program.t) ~(builder : Sdg.Builder.t)
    ~(rules : Rules.rule list) (flows : Flows.t list) : Flows.t list =
  let effects = effect_table rules in
  let m = Rules.matcher prog.Jir.Program.table in
  let env = Strings.Summary.make ?cache ~prog builder in
  List.filter_map
    (fun (fl : Flows.t) ->
       Telemetry.incr m_judged;
       let applied = applied_on_path m rules builder fl.Flows.fl_path in
       let tpl =
         Strings.Summary.sink_template env ~path:fl.Flows.fl_path
           ~sink:fl.Flows.fl_sink
       in
       let required = required_context fl.Flows.fl_rule.Rules.issue tpl in
       match verdict effects ~applied ~required with
       | Context.Sanitized ->
         Telemetry.incr m_sanitized;
         None
       | v ->
         Telemetry.incr
           (match v with
            | Context.Mismatched_sanitizer _ -> m_mismatched
            | _ -> m_unsanitized);
         Some
           { fl with
             Flows.fl_template = tpl;
             fl_sanitization = Some v })
    flows
