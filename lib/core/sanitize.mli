(** The sanitization judge (record-and-judge's second half): compare the
    sanitizers recorded on each witness path against the sink's computed
    syntactic context. [Sanitized] flows are dropped — reproducing the
    classic kill's output — while [Unsanitized] and
    [Mismatched_sanitizer] flows are kept and annotated. *)

(** The effect table of a rule set (exposed for tests and reporting). *)
val effect_table : Rules.rule list -> Strings.Effects.table

(** Sanitizer calls on a witness path: canonical ids, deduplicated, in
    path order. *)
val applied_on_path :
  Rules.matcher ->
  Rules.rule list ->
  Sdg.Builder.t ->
  Sdg.Stmt.t list ->
  string list

(** The context a sink demands, from the rule's issue type plus the
    reconstructed template. *)
val required_context :
  Rules.issue -> Strings.Template.t option -> Strings.Context.t

(** Judge one (applied, required) pair against an effect table. *)
val verdict :
  Strings.Effects.table ->
  applied:string list ->
  required:Strings.Context.t ->
  Strings.Context.verdict

(** Judge every flow: annotate kept flows with template and verdict,
    drop [Sanitized] ones. *)
val judge :
  ?cache:Strings.Summary.cache ->
  prog:Jir.Program.t ->
  builder:Sdg.Builder.t ->
  rules:Rules.rule list ->
  Flows.t list ->
  Flows.t list
