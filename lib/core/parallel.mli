(** Fixed-size Domain worker pool with a deterministic, index-ordered
    merge — the primitive behind every parallel stage of the pipeline.

    [map ~jobs f xs] behaves exactly like [List.map f xs] but runs tasks
    on up to [jobs] domains. Results come back in input order no matter
    which domain computed them. Exceptions are captured per task; once
    every worker has joined, the exception of the lowest-index failed
    task is re-raised with its original backtrace (the other tasks still
    ran to completion). With [jobs <= 1], or an empty/singleton input, no
    domain is spawned and the call is literally [List.map] — sequential
    runs stay byte-identical to the pre-parallel pipeline. *)

(** [Domain.recommended_domain_count], floored at 1. *)
val default_jobs : unit -> int

(** The [TAJ_JOBS] environment override (positive integer), if set and
    well-formed. Used for CLI/bench defaults and by CI. *)
val env_jobs : unit -> int option

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
