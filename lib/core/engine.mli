(** The taint engine: per security rule, seed the slicer at source calls
    and collect flows that reach sinks, including taint-carrier flows
    (§4.1.1). *)

type rule_stats = {
  rs_rule : string;
  rs_seeds : int;
  rs_visited : int;
  rs_heap_transitions : int;
  rs_exhausted : bool;
}

type refine_summary = {
  rf_confirmed : int;
  rf_plausible : int;
  rf_steps : int;                 (** replay steps, summed over flows *)
  rf_heap_transitions : int;
  rf_widened : int;               (** flows that hit the k-limit *)
  rf_budget : int;                (** flows demoted by budget exhaustion *)
}

type outcome = {
  flows : Flows.t list;
  filtered_by_length : int;       (** flows dropped by the §6.2.2 bound *)
  rule_stats : rule_stats list;
  exhausted : bool;               (** some rule hit the step budget *)
  interrupted : bool;             (** some rule was cut off by the deadline *)
  rule_faults : Diagnostics.degradation list;
      (** [Rule_failed] entries: rules whose slice raised contribute no
          flows, but the remaining rules still run (fault isolation) *)
  refined : refine_summary option;
      (** present iff the access-path refinement stage ran
          ([Config.refine]); it attaches verdicts and never drops flows *)
  summary_edges : (int * int) list;
      (** union of the IFDS summary edges every rule's slice derived —
          sorted (node, param) pairs; the incremental cache persists
          these per method under a call-closure digest *)
}

(** Slicing mode implied by a configuration. *)
val mode_of : Config.t -> Sdg.Tabulation.mode

(** Run every rule. [interrupt]/[on_heap_transition] are threaded into the
    slicer (deadline polling and fault injection). A rule that raises is
    isolated: it contributes no flows plus a [Rule_failed] diagnostic.
    [skip_rule] is the triage pre-filter hook: a rule it accepts is
    answered with the synthesized zero record an empty-seed run would
    produce — sound only when the caller has proven the rule matches no
    source call in the program (see [Triage.rule_has_source]).
    With [jobs > 1] the rules run on a {!Parallel.map} domain pool over the
    shared read-only SDG (its shared caches are warmed first; per-node
    indexes are memoized domain-locally); the merged
    outcome is structurally identical to the sequential one, and
    [jobs <= 1] (the default) is exactly the sequential loop. *)
val run :
  ?jobs:int ->
  ?interrupt:(unit -> bool) ->
  ?on_heap_transition:(unit -> unit) ->
  ?skip_rule:(Rules.rule -> bool) ->
  prog:Jir.Program.t ->
  builder:Sdg.Builder.t ->
  heapgraph:Pointer.Heapgraph.t ->
  rules:Rules.rule list ->
  config:Config.t ->
  unit ->
  outcome
