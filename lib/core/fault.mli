(** Test-only fault-injection registry. Tests arm faults at named pipeline
    sites; the pipeline calls {!tick} at those sites and the fault fires on
    the Nth tick. Production runs never arm anything, so ticks are a single
    atomic load. The registry is domain-safe: ticks may arrive from every
    worker of a parallel stage, and a fault fires in (and stays contained
    to) the worker whose tick triggered it. Global state: call {!reset}
    between test cases. *)

exception Injected of string
exception Injected_transient of string

type action =
  | Fail                             (** raise {!Injected} *)
  | Fail_transient                   (** raise {!Injected_transient} *)
  | Stall of float                   (** sleep this many seconds *)

(** Pipeline site names: before parsing each unit, at each pointer-solver
    poll, each SDG node scan, each tabulation step, each heap transition,
    and before each analysis-service job execution. *)

val site_parse : string
val site_andersen : string
val site_sdg : string
val site_tabulation : string
val site_heap : string
val site_worker : string

(** The cache store's read/load and write/flush paths. An injected fault
    on either degrades the affected store to cold — it must never crash
    a run or change its report. *)
val site_cache_read : string
val site_cache_write : string

(** The type-triage fixpoint (ticked once per method per sweep) and the
    pre-filter's keep queries. A fault on either must degrade the run to
    an unfiltered full analysis (one rung up), never fail the job. *)
val site_triage_infer : string
val site_triage_filter : string

(** ["job:<id>"] — a per-job service site, so chaos tests can target one
    job deterministically regardless of worker scheduling. *)
val site_job : string -> string

(** Retry taxonomy: [Transient] failures (interrupted syscalls, broken
    pipes to a crashed peer process, transient resource exhaustion, faults
    injected as transient) are worth a retry; [Permanent] ones (anything
    the deterministic analysis raises) are not. *)
type severity =
  | Transient
  | Permanent

val severity_name : severity -> string
val classify : exn -> severity

(** [arm site ~after] fires the fault on the [after]-th tick of [site].
    [once] (default true) disarms after firing; otherwise the counter
    restarts and the fault fires every [after] ticks. *)
val arm : ?once:bool -> ?action:action -> string -> after:int -> unit

val disarm : string -> unit
val reset : unit -> unit

(** How many times the fault at [site] has fired since it was armed. *)
val fired : string -> int

(** Called by the pipeline at each injection point. *)
val tick : string -> unit
