(** Resilient analysis supervisor: deadlines, the degradation ladder, and
    total fault containment.

    The paper's tool never "just dies" on a large application — it trades
    precision for termination (§6). [run] enforces that contract for the
    whole pipeline: an analysis executes under a {!Budget.t} (wall-clock
    deadline, cancellation token); when an attempt exhausts a budget or a
    phase faults, the supervisor retries with progressively stricter
    bounded presets ({!Config.degradation_ladder}), recording each
    downgrade in the shared diagnostics. A deadline expiring mid-phase is
    not retried — the interrupted attempt already carries whatever flows
    were found, as a clearly-marked partial report. Whatever happens, [run]
    returns a value: at worst an empty partial report whose diagnostics say
    why. *)

type options = {
  deadline : float option;    (** wall-clock seconds for the whole run *)
  degrade : bool;             (** walk the ladder on budget exhaustion *)
  scale : float;              (** scale the ladder's presets were built at *)
  cancel : bool Atomic.t;     (** shared cooperative cancellation token *)
  jobs : int;                 (** worker-pool size for parallel stages *)
  cache : Cache_iface.t;      (** incremental-cache hooks; [none] = off *)
}

let default_options =
  { deadline = None; degrade = true; scale = 1.0;
    cancel = Atomic.make false; jobs = 1; cache = Cache_iface.none }

type attempt = {
  at_algorithm : Config.algorithm;
  at_scale : float;
  at_outcome : string;        (* "completed" | the failure reason *)
  at_seconds : float;
}

type outcome = {
  sv_analysis : Taj.analysis option;
      (** the successful (possibly partial) analysis, if any rung ran *)
  sv_report : Report.t;       (** always present; possibly empty partial *)
  sv_triage : Triage.verdict option;
      (** rung zero's answer, when the run ended there: type-qualifier
          sink findings without flow paths ([TYPE_ONLY]) *)
  sv_diagnostics : Diagnostics.degradation list;
      (** every event across all attempts, including downgrades *)
  sv_attempts : attempt list; (** in execution order *)
  sv_elapsed : float;         (** wall-clock seconds for the whole run *)
}

let completed_report (outcome : outcome) =
  match outcome.sv_analysis with
  | Some { Taj.result = Taj.Completed c; _ } -> Some c.Taj.report
  | _ -> None

let degraded outcome = outcome.sv_diagnostics <> []

(** Did the run end on rung zero (a triage-only answer)? *)
let type_only outcome = outcome.sv_triage <> None

(** Supervise one analysis end to end: load leniently, then walk the
    degradation ladder from [config] until an attempt completes, the
    deadline expires, or the ladder is exhausted. Never raises. *)
let run ?(rules = Rules.default_rules) ?(options = default_options)
    ?(config = Config.preset Config.Hybrid_unbounded) ?loaded
    (input : Taj.input) : outcome =
  let budget =
    Budget.create ?deadline:options.deadline ~cancel:options.cancel ()
  in
  let diagnostics = Diagnostics.create () in
  let attempts = ref [] in
  let note_attempt (cfg : Config.t) scale t0 outcome_str =
    attempts :=
      { at_algorithm = cfg.Config.algorithm;
        at_scale = scale;
        at_outcome = outcome_str;
        at_seconds = Budget.elapsed budget -. t0 }
      :: !attempts
  in
  let finish ?triage analysis =
    { sv_analysis = analysis;
      sv_report =
        (match (triage, analysis) with
         | Some _, _ ->
           (* rung zero answered: an empty-issue report whose completeness
              says why, with the findings on [sv_triage] *)
           Report.empty
             ~completeness:(Report.Type_only (Diagnostics.events diagnostics))
         | None, Some { Taj.result = Taj.Completed c; _ } -> c.Taj.report
         | None, (Some { Taj.result = Taj.Did_not_complete _; _ } | None) ->
           Report.empty
             ~completeness:(Report.Partial (Diagnostics.events diagnostics)));
      sv_triage = triage;
      sv_diagnostics = Diagnostics.events diagnostics;
      sv_attempts = List.rev !attempts;
      sv_elapsed = Budget.elapsed budget }
  in
  match
    match loaded with
    | Some l -> l
    | None -> Taj.load ~lenient:true ~jobs:options.jobs ~cache:options.cache input
  with
  | exception e ->
    (* total frontend failure: still a value, never an exception *)
    Diagnostics.record diagnostics
      (Phase_fault { phase = Frontend; error = Printexc.to_string e });
    finish None
  | loaded ->
    let rec attempt scale (cfg : Config.t)
        (rungs : (float * Config.t) list) (last : Taj.analysis option) =
      let t0 = Budget.elapsed budget in
      if cfg.Config.algorithm = Config.Type_triage then begin
        (* rung zero: no pointer analysis, no SDG — the type-qualifier
           pass always answers unless a fault is injected into it, in
           which case the run finishes with what it has (rung zero is
           the floor; there is nothing below to descend to) *)
        match
          Obs.Telemetry.with_span "supervisor.attempt"
            ~args:
              [ ("algorithm", Config.algorithm_name cfg.Config.algorithm);
                ("scale", Printf.sprintf "%.3f" scale) ]
            (fun () ->
               Taj.triage
                 ~tick:(fun () -> Fault.tick Fault.site_triage_infer)
                 ~rules loaded)
        with
        | exception e ->
          Diagnostics.record diagnostics
            (Phase_fault { phase = Triage; error = Printexc.to_string e });
          note_attempt cfg scale t0 (Printexc.to_string e);
          descend scale cfg rungs last (Printexc.to_string e)
        | verdict ->
          let reason =
            if !attempts = [] then "requested"
            else "every slicing rung failed"
          in
          Diagnostics.record diagnostics
            (Triage_fallback
               { reason;
                 findings = List.length (Triage.findings verdict) });
          note_attempt cfg scale t0 "type_only";
          finish ~triage:verdict last
      end
      else
      match
        (* one span per ladder rung, so retries are visible as sibling
           attempts on the trace; Fun.protect inside [with_span] closes the
           span even when the attempt raises *)
        Obs.Telemetry.with_span "supervisor.attempt"
          ~args:
            [ ("algorithm", Config.algorithm_name cfg.Config.algorithm);
              ("scale", Printf.sprintf "%.3f" scale) ]
          (fun () ->
             Taj.run ~rules ~jobs:options.jobs ~budget ~diagnostics
               ~cache:options.cache loaded cfg)
      with
      | exception e ->
        (* Taj.run contains phase faults itself; this is a belt for truly
           unexpected escapes (e.g. allocation failure in glue code) *)
        Diagnostics.record diagnostics
          (Phase_fault { phase = Taint; error = Printexc.to_string e });
        note_attempt cfg scale t0 (Printexc.to_string e);
        descend scale cfg rungs last (Printexc.to_string e)
      | { Taj.result = Taj.Completed _; _ } as analysis ->
        note_attempt cfg scale t0 "completed";
        finish (Some analysis)
      | { Taj.result = Taj.Did_not_complete reason; _ } as analysis ->
        note_attempt cfg scale t0 reason;
        descend scale cfg rungs (Some analysis) reason
    and descend _scale (cfg : Config.t) rungs last reason =
      (* no point retrying once the global budget is gone: the stricter
         rung would be interrupted immediately *)
      if (not options.degrade) || Budget.tripped budget then finish last
      else
        match rungs with
        | [] -> finish last
        | (scale', cfg') :: rest ->
          Diagnostics.record diagnostics
            (Downgraded
               { from_alg = cfg.Config.algorithm;
                 to_alg = cfg'.Config.algorithm;
                 to_scale = scale';
                 reason });
          attempt scale' cfg' rest last
    in
    attempt options.scale config
      (Config.degradation_ladder ~scale:options.scale config)
      None
