(** Structured degradation diagnostics for the resilient supervisor (§6):
    every precision-for-termination trade the pipeline makes is recorded as
    an event so partial results stay attributable. *)

type phase = Frontend | Pointer | Sdg | Taint | Triage | Serve

val phase_name : phase -> string

type degradation =
  | Deadline_expired of { phase : phase; elapsed : float }
  | Cancelled of { phase : phase }
  | Budget_exhausted of { phase : phase; what : string }
  | Rule_failed of { rule : string; error : string }
      (** the rule contributed no flows; the other rules still ran *)
  | Unit_skipped of { index : int; error : string }
      (** a compilation unit was dropped by the lenient frontend *)
  | Phase_fault of { phase : phase; error : string }
      (** an exception escaped a whole phase *)
  | Downgraded of {
      from_alg : Config.algorithm;
      to_alg : Config.algorithm;
      to_scale : float;
      reason : string;
    }  (** the supervisor retried one rung down the degradation ladder *)
  | Job_retried of {
      job : string;
      attempt : int;
      delay : float;
      reason : string;
    }  (** the service re-enqueued a job after a transient failure *)
  | Job_shed of { job : string; priority : int }
      (** a queued low-priority job was evicted under admission pressure *)
  | Breaker_transition of { key : string; state : string }
      (** a per-app circuit breaker changed state *)
  | Resource_pressure of { level : int; heap_mb : int }
      (** the memory watchdog raised (or lowered) its pressure level *)
  | Ir_violation of { meth : string; where : string; message : string }
      (** [--verify-ir]: the loaded program failed an IR well-formedness
          check *)
  | Worker_spawned of { worker : int; pid : int }
      (** the cluster coordinator forked a worker process *)
  | Worker_exited of {
      worker : int;
      pid : int;
      reason : string;
      in_flight : int;
    }  (** a worker process died (or drained); [in_flight] jobs were on it *)
  | Worker_respawned of {
      worker : int;
      pid : int;
      crashes : int;
      backoff : float;
    }  (** a crashed worker slot was refilled after its respawn backoff *)
  | Job_rerouted of {
      job : string;
      from_worker : int;
      crashes : int;
      delay : float;
    }  (** an in-flight job survived a worker crash and goes to a peer *)
  | Client_disconnected of { peer : string; error : string }
      (** a transport client vanished mid-response ([EPIPE]); responses to
          it are dropped, the jobs stay terminal on the server side *)
  | Cache_corrupt of { app : string; reason : string }
      (** a persisted cache store failed validation (torn write, bit
          flip, version bump); all its entries were discarded and the
          run proceeds cold — never a crash, never a stale answer *)
  | Triage_fallback of { reason : string; findings : int }
      (** rung zero: every slicing preset was exhausted, so the answer
          is the type-qualifier triage verdict — sink findings without
          flow paths (reported as [TYPE_ONLY]) *)

(** An append-only event log, recorded in arrival order. *)
type t

val create : unit -> t
val record : t -> degradation -> unit
val events : t -> degradation list
val count : t -> int
val is_empty : t -> bool

val pp_degradation : Format.formatter -> degradation -> unit
val pp : Format.formatter -> t -> unit

(** Stable machine-readable tag per constructor (for JSON output). *)
val kind_name : degradation -> string
