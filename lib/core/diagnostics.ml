(** Structured degradation diagnostics for the resilient supervisor.

    TAJ's defining engineering property is that it never "just dies" on a
    large application: it trades precision for termination (§6). Every time
    the pipeline gives something up — a deadline interrupting a phase, a
    budget tripping, a rule failing, a downgrade to a stricter preset — the
    event is recorded here instead of being collapsed into a boolean or an
    exception, so partial results stay attributable. *)

type phase = Frontend | Pointer | Sdg | Taint | Triage | Serve

let phase_name = function
  | Frontend -> "frontend"
  | Pointer -> "pointer"
  | Sdg -> "sdg"
  | Taint -> "taint"
  | Triage -> "triage"
  | Serve -> "serve"

type degradation =
  | Deadline_expired of { phase : phase; elapsed : float }
  | Cancelled of { phase : phase }
  | Budget_exhausted of { phase : phase; what : string }
  | Rule_failed of { rule : string; error : string }
  | Unit_skipped of { index : int; error : string }
  | Phase_fault of { phase : phase; error : string }
  | Downgraded of {
      from_alg : Config.algorithm;
      to_alg : Config.algorithm;
      to_scale : float;
      reason : string;
    }
  | Job_retried of {
      job : string;
      attempt : int;
      delay : float;
      reason : string;
    }
  | Job_shed of { job : string; priority : int }
  | Breaker_transition of { key : string; state : string }
  | Resource_pressure of { level : int; heap_mb : int }
  | Ir_violation of { meth : string; where : string; message : string }
  | Worker_spawned of { worker : int; pid : int }
  | Worker_exited of {
      worker : int;
      pid : int;
      reason : string;
      in_flight : int;
    }
  | Worker_respawned of {
      worker : int;
      pid : int;
      crashes : int;
      backoff : float;
    }
  | Job_rerouted of {
      job : string;
      from_worker : int;
      crashes : int;
      delay : float;
    }
  | Client_disconnected of { peer : string; error : string }
  | Cache_corrupt of { app : string; reason : string }
  | Triage_fallback of { reason : string; findings : int }

let pp_degradation ppf = function
  | Deadline_expired { phase; elapsed } ->
    Fmt.pf ppf "deadline expired during %s phase after %.3fs"
      (phase_name phase) elapsed
  | Cancelled { phase } ->
    Fmt.pf ppf "cancelled during %s phase" (phase_name phase)
  | Budget_exhausted { phase; what } ->
    Fmt.pf ppf "%s budget exhausted during %s phase" what (phase_name phase)
  | Rule_failed { rule; error } ->
    Fmt.pf ppf "rule %s failed (%s); its flows are missing" rule error
  | Unit_skipped { index; error } ->
    Fmt.pf ppf "compilation unit %d skipped (%s)" index error
  | Phase_fault { phase; error } ->
    Fmt.pf ppf "fault during %s phase: %s" (phase_name phase) error
  | Downgraded { from_alg; to_alg; to_scale; reason } ->
    Fmt.pf ppf "downgraded %s -> %s (scale %.3f): %s"
      (Config.algorithm_name from_alg) (Config.algorithm_name to_alg)
      to_scale reason
  | Job_retried { job; attempt; delay; reason } ->
    Fmt.pf ppf "job %s retried (attempt %d, backoff %.3fs): %s" job attempt
      delay reason
  | Job_shed { job; priority } ->
    Fmt.pf ppf "job %s (priority %d) shed under admission pressure" job
      priority
  | Breaker_transition { key; state } ->
    Fmt.pf ppf "circuit breaker for %s is now %s" key state
  | Resource_pressure { level; heap_mb } ->
    Fmt.pf ppf "memory pressure level %d (heap %d MB)" level heap_mb
  | Ir_violation { meth; where; message } ->
    Fmt.pf ppf "IR verification failed in %s at %s: %s" meth where message
  | Worker_spawned { worker; pid } ->
    Fmt.pf ppf "worker %d spawned (pid %d)" worker pid
  | Worker_exited { worker; pid; reason; in_flight } ->
    Fmt.pf ppf "worker %d (pid %d) exited: %s (%d job(s) in flight)" worker
      pid reason in_flight
  | Worker_respawned { worker; pid; crashes; backoff } ->
    Fmt.pf ppf "worker %d respawned (pid %d) after %d crash(es), backoff %.3fs"
      worker pid crashes backoff
  | Job_rerouted { job; from_worker; crashes; delay } ->
    Fmt.pf ppf "job %s rerouted off crashed worker %d (crash %d, delay %.3fs)"
      job from_worker crashes delay
  | Client_disconnected { peer; error } ->
    Fmt.pf ppf "client %s disconnected mid-response (%s)" peer error
  | Cache_corrupt { app; reason } ->
    Fmt.pf ppf "cache store for %s unreadable (%s); falling back to cold"
      app reason
  | Triage_fallback { reason; findings } ->
    Fmt.pf ppf
      "degraded to type-only triage (%s): %d finding(s), no flow paths"
      reason findings

(* A stable machine-readable tag per constructor, for the CLI's JSON
   diagnostics block and the telemetry instant-event names. *)
let kind_name = function
  | Deadline_expired _ -> "deadline-expired"
  | Cancelled _ -> "cancelled"
  | Budget_exhausted _ -> "budget-exhausted"
  | Rule_failed _ -> "rule-failed"
  | Unit_skipped _ -> "unit-skipped"
  | Phase_fault _ -> "phase-fault"
  | Downgraded _ -> "downgraded"
  | Job_retried _ -> "job-retried"
  | Job_shed _ -> "job-shed"
  | Breaker_transition _ -> "breaker-transition"
  | Resource_pressure _ -> "resource-pressure"
  | Ir_violation _ -> "ir-violation"
  | Worker_spawned _ -> "worker-spawned"
  | Worker_exited _ -> "worker-exited"
  | Worker_respawned _ -> "worker-respawned"
  | Job_rerouted _ -> "job-rerouted"
  | Client_disconnected _ -> "client-disconnected"
  | Cache_corrupt _ -> "cache-corrupt"
  | Triage_fallback _ -> "triage-fallback"

type t = { mutable rev_events : degradation list }

let create () = { rev_events = [] }

(* Every degradation is also an instant event on the telemetry trace, so
   budget trips, ladder steps and rule faults line up with the phase spans
   they interrupted. Instants route through Obs.Log, so with a log sink
   installed each degradation becomes a warn-level NDJSON line carrying
   the stable kind tag and rendered detail as fields. *)
let record t d =
  Obs.Telemetry.instant
    ("diag." ^ kind_name d)
    ~args:
      [ ("kind", kind_name d); ("detail", Fmt.str "%a" pp_degradation d) ];
  t.rev_events <- d :: t.rev_events

let events t = List.rev t.rev_events
let count t = List.length t.rev_events
let is_empty t = t.rev_events = []

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_degradation) (events t)
