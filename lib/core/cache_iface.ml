(** Hook points the incremental cache plugs into the pipeline.

    The cache subsystem proper lives in [lib/cache], {e above} this
    library in the dependency graph (it needs [Taj], [Config] and the
    SDG), so the pipeline cannot call it directly. Instead {!Taj.load},
    {!Taj.run} and {!Supervisor.run} accept this record of closures: a
    memoizing wrapper per cacheable stage. Every wrapper receives the
    work as a thunk and must return either the thunk's result or a
    previously cached value that is {e observably identical} to it —
    the cache layer owns keying, validation, persistence and hit/miss
    accounting; the pipeline stays oblivious.

    [none] is the identity: every wrapper just runs its thunk. *)

type t = {
  unit_ast :
    src:string ->
    parse:(unit -> Jir.Ast.compilation_unit) ->
    Jir.Ast.compilation_unit;
      (** tier 1a — per-unit parse, keyed by source digest. May be
          called concurrently from parser worker domains. *)
  frontend :
    descriptor:string ->
    asts:Jir.Ast.compilation_unit list ->
    build:
      (unit -> Jir.Program.t * Models.Reflection.stats * int) ->
    Jir.Program.t * Models.Reflection.stats * int;
      (** tier 1b — the whole-program lower/SSA/rewrite product, keyed
          by the digests of the parsed units (so comment/whitespace
          edits hit) plus the deployment descriptor *)
  defuse : Sdg.Builder.defuse_cache option;
      (** tier 2 — per-method def/use summaries, threaded into
          {!Sdg.Builder.build} *)
  strings : Strings.Summary.cache option;
      (** tier 2b — per-method string-template summaries, threaded into
          the sanitization judge ({!Sanitize}); a summary is a pure
          function of the method body, so it keys like [defuse] *)
}

let none =
  { unit_ast = (fun ~src:_ ~parse -> parse ());
    frontend = (fun ~descriptor:_ ~asts:_ ~build -> build ());
    defuse = None;
    strings = None }
