(** String-specific taint diagnostics — the §9 future-work extension
    ("enhancing our analysis with string-specific taint-detection
    capabilities, in the spirit of Minamide's string analysis").

    For a reported flow we reconstruct an abstract template of the string
    value reaching the sink and classify the *syntactic context* the
    attacker controls — HTML text vs. attribute value, quoted vs. raw SQL
    position — which is what determines the concrete exploit shape and
    the right remediation.

    The algebra and classification live in {!Strings.Template}; this
    module keeps the flow-facing surface. Reconstruction uses the
    interprocedural {!Strings.Summary} walk (callee return summaries,
    builder append chains, field-carried fragments), replacing the
    SSA-local walk this module started with. When the sanitization judge
    already ran, the template it attached to the flow is reused. *)

type piece = Strings.Template.piece =
  | Lit of string     (** a known constant fragment *)
  | Tainted           (** the attacker-controlled part (on the flow path) *)
  | Hole              (** statically unknown fragment *)

type template = Strings.Template.t

let pp_piece = Strings.Template.pp_piece
let pp_template = Strings.Template.pp

(** Reconstruct the template of the value flowing into the sink of [fl].
    Returns [None] when the sink argument cannot be recovered. *)
let template_of (b : Sdg.Builder.t) (fl : Flows.t) : template option =
  match fl.Flows.fl_template with
  | Some t -> Some t
  | None ->
    let env = Strings.Summary.make b in
    Strings.Summary.sink_template env ~path:fl.Flows.fl_path
      ~sink:fl.Flows.fl_sink

(* ------------------------------------------------------------------ *)
(* Context classification                                              *)
(* ------------------------------------------------------------------ *)

type html_context =
  | Html_text          (** taint lands between tags: classic script XSS *)
  | Html_attribute     (** taint lands inside an attribute value *)
  | Html_unknown

type sql_context =
  | Sql_quoted         (** taint lands inside a '...' string literal *)
  | Sql_raw            (** taint lands in a raw position (numeric, keyword) *)
  | Sql_unknown

(** Classify where in the surrounding HTML the tainted data lands. *)
let html_context (t : template) : html_context =
  match Strings.Template.html_context t with
  | Strings.Context.Html_text -> Html_text
  | Strings.Context.Html_attribute -> Html_attribute
  | _ -> Html_unknown

(** Classify whether the tainted data lands inside a SQL string literal.
    A template opening with the tainted fragment is [Sql_raw]: the
    attacker controls the statement head. *)
let sql_context (t : template) : sql_context =
  match Strings.Template.sql_context t with
  | Strings.Context.Sql_quoted -> Sql_quoted
  | Strings.Context.Sql_raw -> Sql_raw
  | _ -> Sql_unknown

(** One-line diagnostic for a flow, or [None] when no template is
    recoverable or the rule is not string-shaped. *)
let diagnose (b : Sdg.Builder.t) (fl : Flows.t) : string option =
  match template_of b fl with
  | None -> None
  | Some t ->
    let tpl = Fmt.str "%a" pp_template t in
    (match fl.Flows.fl_rule.Rules.issue with
     | Rules.Xss ->
       let ctx =
         match html_context t with
         | Html_text -> "HTML text context"
         | Html_attribute -> "HTML attribute context"
         | Html_unknown -> "unknown HTML context"
       in
       Some (Printf.sprintf "%s; sink value: %s" ctx tpl)
     | Rules.Sqli ->
       let ctx =
         match sql_context t with
         | Sql_quoted -> "quoted SQL string position"
         | Sql_raw -> "raw SQL position (numeric/keyword injection)"
         | Sql_unknown -> "unknown SQL position"
       in
       Some (Printf.sprintf "%s; sink value: %s" ctx tpl)
     | Rules.Command_injection | Rules.Malicious_file | Rules.Info_leak ->
       Some (Printf.sprintf "sink value: %s" tpl))
