(** TAJ: the end-to-end taint analysis pipeline.

    {!load} performs all configuration-independent work: parse the model
    JDK and the application, synthesize framework entrypoints from the
    deployment descriptor (§4.2.2), convert to SSA, apply the reflection
    (§4.2.3) and exception (§4.1.2) rewrites. {!run} executes pointer
    analysis, dependence-graph construction, slicing and reporting under
    one {!Config.t}; a loaded program can be reanalyzed under many
    configurations. *)

type input = {
  name : string;
  app_sources : string list;        (** MJava source texts *)
  descriptor : string;              (** deployment descriptor, may be "" *)
}

type loaded = {
  input : input;
  program : Jir.Program.t;
  reflection_stats : Models.Reflection.stats;
  synthesized_sources : int;        (** getMessage sources from catches *)
  skipped_units : (int * string) list;
      (** units dropped by the lenient frontend (index, error) *)
  frontend_seconds : float;
}

type phase_times = {
  t_frontend : float;               (** parse/SSA/rewrites, from {!load} *)
  t_pointer : float;
  t_sdg : float;
  t_taint : float;
  t_total : float;                  (** frontend + analysis wall clock *)
}

type completed = {
  report : Report.t;
  outcome : Engine.outcome;
  andersen : Pointer.Andersen.t;
  builder : Sdg.Builder.t;
  heapgraph : Pointer.Heapgraph.t;
  cg_nodes : int;
  cg_edges : int;
  jobs : int;                       (** worker-pool size this run used *)
  times : phase_times;
  diagnostics : Diagnostics.degradation list;
      (** degradations recorded during this run (also in the report) *)
}

type result =
  | Completed of completed
  | Did_not_complete of string
      (** a pointer-analysis or slicing budget was exceeded — the fate of
          the CS configuration on large applications (Table 3) *)

type analysis = {
  loaded : loaded;
  config : Config.t;
  rules : Rules.rule list;
  result : result;
}

(** Raised on malformed input with a human-readable location. *)
exception Load_error of string

(** With [lenient] (the supervisor's mode), a unit that fails to lex/parse
    is skipped and recorded in [skipped_units] instead of failing the
    whole load. With [jobs > 1] (default 1), compilation units parse on a
    {!Parallel.map} domain pool; the loaded program is identical to a
    sequential load. [cache] supplies the incremental-cache hooks
    ({!Cache_iface.none} when absent): per-unit parses and the
    whole-program frontend product may then be satisfied from cached
    entries instead of recomputed. *)
val load :
  ?lenient:bool -> ?jobs:int -> ?cache:Cache_iface.t -> input -> loaded

(** [budget] supplies the wall-clock deadline / cancellation token, polled
    cooperatively in every long-running loop; an expiry mid-phase yields a
    [Partial] report with whatever flows were already found. A phase that
    raises becomes [Did_not_complete] with a recorded [Phase_fault]. New
    degradations are appended to [diagnostics] (shareable across
    supervisor attempts). With [jobs > 1] (default 1) the taint rules run
    on a {!Parallel.map} domain pool; results are structurally identical
    to the sequential run, and the budget/deadline keeps working across
    domains. [cache] threads the incremental-cache hooks into the SDG
    builder (per-method def/use summaries). *)
val run :
  ?rules:Rules.rule list ->
  ?jobs:int ->
  ?budget:Budget.t ->
  ?diagnostics:Diagnostics.t ->
  ?cache:Cache_iface.t ->
  loaded -> Config.t -> analysis

(** Run the flow-insensitive type-qualifier triage over a loaded program
    under the given rule set — the analysis behind both the SDG
    pre-filter and rung zero of the degradation ladder. Needs no pointer
    analysis and no budget; [tick] is the fault-injection hook
    ({!Fault.site_triage_infer}), called once per method per fixpoint
    sweep. Exceptions (injected faults) escape to the caller. *)
val triage :
  ?tick:(unit -> unit) ->
  rules:Rules.rule list ->
  loaded -> Triage.verdict

(** [load] + [run]. *)
val analyze :
  ?rules:Rules.rule list ->
  ?jobs:int ->
  ?config:Config.t ->
  ?cache:Cache_iface.t ->
  input -> analysis
