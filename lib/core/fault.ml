(** Test-only fault-injection registry.

    The resilience suite arms faults at named pipeline sites; the pipeline
    calls {!tick} at those sites (parse of each unit, each Andersen
    propagation, each SDG node scan, each tabulation step, each heap
    transition). When an armed site reaches its trigger count the fault
    fires: either an {!Injected} exception or a stall that burns wall-clock
    time so deadline handling can be exercised deterministically.

    The registry is global, mutable state — acceptable because it exists
    purely for tests, which call {!reset} between cases. Production runs
    never arm anything, so a tick is a single hashtable miss. *)

exception Injected of string

type action =
  | Fail                             (** raise {!Injected} *)
  | Stall of float                   (** sleep this many seconds, once *)

type armed = {
  a_site : string;
  a_after : int;                     (* fire on the [a_after]-th tick *)
  a_action : action;
  a_once : bool;                     (* disarm after firing *)
  mutable a_live : bool;             (* kept after firing so [fired] works *)
  mutable a_count : int;
  mutable a_fired : int;
}

let table : (string, armed) Hashtbl.t = Hashtbl.create 8

(* Standard site names used by the pipeline. *)
let site_parse = "parse"
let site_andersen = "andersen"
let site_sdg = "sdg"
let site_tabulation = "tabulation"
let site_heap = "heap-transition"

let arm ?(once = true) ?(action = Fail) site ~after =
  Hashtbl.replace table site
    { a_site = site; a_after = max 1 after; a_action = action; a_once = once;
      a_live = true; a_count = 0; a_fired = 0 }

let disarm site = Hashtbl.remove table site
let reset () = Hashtbl.reset table

let fired site =
  match Hashtbl.find_opt table site with
  | Some a -> a.a_fired
  | None -> 0

let tick site =
  match Hashtbl.find_opt table site with
  | None -> ()
  | Some a when not a.a_live -> ()
  | Some a ->
    a.a_count <- a.a_count + 1;
    if a.a_count >= a.a_after then begin
      a.a_fired <- a.a_fired + 1;
      if a.a_once then a.a_live <- false else a.a_count <- 0;
      match a.a_action with
      | Fail -> raise (Injected a.a_site)
      | Stall s -> Unix.sleepf s
    end
