(** Test-only fault-injection registry.

    The resilience suite arms faults at named pipeline sites; the pipeline
    calls {!tick} at those sites (parse of each unit, each Andersen
    propagation, each SDG node scan, each tabulation step, each heap
    transition). When an armed site reaches its trigger count the fault
    fires: either an {!Injected} exception or a stall that burns wall-clock
    time so deadline handling can be exercised deterministically.

    The registry is global, mutable state — acceptable because it exists
    purely for tests, which call {!reset} between cases. Ticks can arrive
    from every worker domain of a parallel stage, so the table is guarded
    by a mutex; an atomic armed-site count keeps the production fast path
    (nothing armed) completely lock-free. A firing action is decided under
    the lock but *performed* outside it, so a [Stall] in one worker never
    blocks the other workers' ticks, and the raised {!Injected} stays
    contained to the domain whose tick triggered it. *)

exception Injected of string
exception Injected_transient of string

type action =
  | Fail                             (** raise {!Injected} *)
  | Fail_transient                   (** raise {!Injected_transient} *)
  | Stall of float                   (** sleep this many seconds, once *)

type armed = {
  a_site : string;
  a_after : int;                     (* fire on the [a_after]-th tick *)
  a_action : action;
  a_once : bool;                     (* disarm after firing *)
  mutable a_live : bool;             (* kept after firing so [fired] works *)
  mutable a_count : int;
  mutable a_fired : int;
}

let table : (string, armed) Hashtbl.t = Hashtbl.create 8
let lock = Mutex.create ()

(* Number of entries in [table]; checked without the lock on every tick so
   unarmed runs pay one atomic load and nothing else. *)
let armed_count = Atomic.make 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* Standard site names used by the pipeline. *)
let site_parse = "parse"
let site_andersen = "andersen"
let site_sdg = "sdg"
let site_tabulation = "tabulation"
let site_heap = "heap-transition"
let site_worker = "serve-worker"
let site_cache_read = "cache:read"
let site_cache_write = "cache:write"
let site_triage_infer = "triage:infer"
let site_triage_filter = "triage:filter"

(* Per-job site for the analysis service: arming ["job:<id>"] targets one
   job deterministically even when worker scheduling is racy. *)
let site_job id = "job:" ^ id

(* ------------------------------------------------------------------ *)
(* Failure taxonomy                                                   *)
(* ------------------------------------------------------------------ *)

type severity =
  | Transient
  | Permanent

let severity_name = function
  | Transient -> "transient"
  | Permanent -> "permanent"

(** Classify an escaped exception for retry policy. The analysis itself is
    deterministic, so anything it raises is [Permanent] (retrying the same
    input reproduces the failure); only infrastructure blips — interrupted
    syscalls, transient resource exhaustion, and faults injected as
    transient — are worth a retry. *)
let classify : exn -> severity = function
  | Injected_transient _ -> Transient
  | Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK | ECONNRESET | EPIPE), _, _)
    ->
    (* EPIPE: the peer process (a crashed cluster worker) went away under
       us — the job itself is fine and is worth a retry elsewhere *)
    Transient
  | Out_of_memory -> Transient      (* pressure may subside between tries *)
  | Injected _ | Stack_overflow | _ -> Permanent

let arm ?(once = true) ?(action = Fail) site ~after =
  locked (fun () ->
    if not (Hashtbl.mem table site) then Atomic.incr armed_count;
    Hashtbl.replace table site
      { a_site = site; a_after = max 1 after; a_action = action;
        a_once = once; a_live = true; a_count = 0; a_fired = 0 })

let disarm site =
  locked (fun () ->
    if Hashtbl.mem table site then begin
      Hashtbl.remove table site;
      Atomic.decr armed_count
    end)

let reset () =
  locked (fun () ->
    Hashtbl.reset table;
    Atomic.set armed_count 0)

let fired site =
  locked (fun () ->
    match Hashtbl.find_opt table site with
    | Some a -> a.a_fired
    | None -> 0)

let tick site =
  if Atomic.get armed_count > 0 then begin
    let firing =
      locked (fun () ->
        match Hashtbl.find_opt table site with
        | None -> None
        | Some a when not a.a_live -> None
        | Some a ->
          a.a_count <- a.a_count + 1;
          if a.a_count >= a.a_after then begin
            a.a_fired <- a.a_fired + 1;
            if a.a_once then a.a_live <- false else a.a_count <- 0;
            Some a.a_action
          end
          else None)
    in
    (* act outside the lock: a stall must not serialize other workers *)
    match firing with
    | None -> ()
    | Some a ->
      Obs.Telemetry.instant "fault.injected"
        ~args:
          [ ("site", site);
            ("action",
             match a with
             | Fail -> "fail"
             | Fail_transient -> "fail-transient"
             | Stall _ -> "stall") ];
      (match a with
       | Fail -> raise (Injected site)
       | Fail_transient -> raise (Injected_transient site)
       | Stall s -> Unix.sleepf s)
  end
