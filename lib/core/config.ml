(** Analysis configurations: the five algorithm settings of Table 1.

    | configuration       | models | priority | optimizations |
    |---------------------|--------|----------|----------------|
    | Hybrid, unbounded   |   x    |          |                |
    | Hybrid, prioritized |   x    |    x     |                |
    | Hybrid, optimized   |   x    |    x     |       x        |
    | CS thin slicing     |   x    |          |                |
    | CI thin slicing     |   x    |          |                |

    The fully optimized variant uses the paper's published bounds: a
    20,000-node call-graph budget, 20,000 heap transitions during slicing,
    a flow-length cap of 14, and nested-taint depth 2 (§7.1). A [scale]
    factor shrinks the two big budgets together with workload size. *)

type algorithm =
  | Hybrid_unbounded
  | Hybrid_prioritized
  | Hybrid_optimized
  | Cs_thin_slicing
  | Ci_thin_slicing
  | Type_triage

let algorithm_name = function
  | Hybrid_unbounded -> "hybrid-unbounded"
  | Hybrid_prioritized -> "hybrid-prioritized"
  | Hybrid_optimized -> "hybrid-optimized"
  | Cs_thin_slicing -> "cs"
  | Ci_thin_slicing -> "ci"
  | Type_triage -> "triage"

type t = {
  algorithm : algorithm;
  max_cg_nodes : int option;          (* §6.1 *)
  prioritized : bool;                 (* §6.1 *)
  max_heap_transitions : int option;  (* §6.2.1, the bound the paper kept *)
  max_slice_steps : int option;
      (* §6.2.1's alternative: "cast constraints on the slice sizes through
         the no-heap SDG" — bounded exploration steps instead of heap
         transitions; kept for the ablation that justifies the choice *)
  max_flow_length : int option;       (* §6.2.2 *)
  nested_taint_depth : int;           (* §6.2.3; -1 = unbounded *)
  cs_budget : int option;             (* emulates the CS memory ceiling *)
  excluded_classes : string list;     (* §4.2.1 whitelist *)
  refine : bool;                      (* access-path replay of each flow *)
  refine_k : int;                     (* access-path depth bound *)
  refine_steps : int;                 (* per-flow replay step budget *)
  cache_dir : string option;          (* incremental-cache store directory *)
  triage_filter : bool;
      (* consult the type-qualifier triage verdict before building the
         SDG, skipping methods proven untaint-reachable; reports are
         byte-identical either way (the filter is disabled internally
         when refinement runs, whose replay walks unfiltered indexes) *)
  contexts : bool;
      (* context-sensitive sanitization: propagate through sanitizers
         instead of killing, reconstruct the sink's string template
         interprocedurally, and judge each recorded sanitizer against
         the sink context. Off by default; with it off, reports are
         byte-identical to the kill-on-sanitizer behaviour *)
}

let default_whitelist = [ "Math"; "Random"; "Date"; "Logger" ]

(* published bounds (§7.1) *)
let paper_cg_bound = 20_000
let paper_heap_bound = 20_000
let paper_flow_length = 14
let paper_nested_depth = 2

let preset ?(scale = 1.0) (algorithm : algorithm) : t =
  let scaled v = max 50 (int_of_float (float_of_int v *. scale)) in
  let base =
    { algorithm;
      max_cg_nodes = None;
      prioritized = false;
      max_heap_transitions = None;
      max_slice_steps = None;
      max_flow_length = None;
      nested_taint_depth = -1;
      cs_budget = None;
      excluded_classes = default_whitelist;
      refine = false;
      refine_k = 3;
      refine_steps = 4096;
      cache_dir = None;
      triage_filter = true;
      contexts = false }
  in
  match algorithm with
  | Hybrid_unbounded -> base
  | Hybrid_prioritized ->
    { base with
      max_cg_nodes = Some (scaled paper_cg_bound);
      prioritized = true }
  | Hybrid_optimized ->
    { base with
      max_cg_nodes = Some (scaled paper_cg_bound);
      prioritized = true;
      max_heap_transitions = Some (scaled paper_heap_bound);
      max_flow_length = Some paper_flow_length;
      nested_taint_depth = paper_nested_depth }
  | Cs_thin_slicing ->
    (* the CS configuration has no deliberate bounds; the budget stands in
       for the 1 GB heap the paper ran with. Calibrated so the emulation
       completes on the handful of smallest benchmarks, as in Table 3. *)
    { base with cs_budget = Some (scaled 25_000) }
  | Ci_thin_slicing -> base
  | Type_triage ->
    (* rung zero: no pointer analysis, no SDG, no slicing — the
       flow-insensitive type-qualifier pass answers from the class table
       and the JIR alone, so every budget field is irrelevant *)
    base

let all_algorithms =
  [ Hybrid_unbounded; Hybrid_prioritized; Hybrid_optimized;
    Cs_thin_slicing; Ci_thin_slicing ]

(* The degradation ladder (§6): when a configuration exhausts its budget the
   supervisor retries with progressively stricter bounded presets —
   unbounded -> prioritized -> optimized -> optimized at shrinking scale.
   The CS and CI emulations fall back onto the hybrid family, as the paper's
   CS configuration does on large applications (Table 3). Each rung is
   paired with the scale it was built at, for diagnostics. *)
let degradation_ladder ?(scale = 1.0) (c : t) : (float * t) list =
  (* ladder rungs are fresh presets: carry over the refinement, cache
     and triage-filter settings so a degraded retry still classifies its
     (fewer) flows and keeps reading the same store *)
  let carry (s, cfg) =
    (s, { cfg with refine = c.refine;
                   refine_k = c.refine_k;
                   refine_steps = c.refine_steps;
                   cache_dir = c.cache_dir;
                   triage_filter = c.triage_filter;
                   contexts = c.contexts })
  in
  (* rung zero is always last: when every slicing preset has exhausted
     its budget, the type-qualifier triage still answers — no pointer
     analysis, no SDG, so it cannot exhaust the budgets that got us
     here. It is the floor under the whole ladder. *)
  let rung_zero =
    carry (scale /. 4., preset ~scale:(scale /. 4.) Type_triage)
  in
  let rungs =
    List.map carry
      [ (scale, preset ~scale Hybrid_prioritized);
        (scale, preset ~scale Hybrid_optimized);
        (scale /. 2., preset ~scale:(scale /. 2.) Hybrid_optimized);
        (scale /. 4., preset ~scale:(scale /. 4.) Hybrid_optimized) ]
  in
  match c.algorithm with
  | Hybrid_unbounded | Cs_thin_slicing | Ci_thin_slicing ->
    rungs @ [ rung_zero ]
  | Hybrid_prioritized -> List.tl rungs @ [ rung_zero ]
  | Hybrid_optimized ->
    List.map carry
      [ (scale /. 2., preset ~scale:(scale /. 2.) Hybrid_optimized);
        (scale /. 4., preset ~scale:(scale /. 4.) Hybrid_optimized) ]
    @ [ rung_zero ]
  | Type_triage -> []

(* A short human-readable label for a ladder rung: the algorithm name
   with the scale it was built at. *)
let rung_label (scale, cfg) =
  if cfg.algorithm = Type_triage then "triage"
  else Printf.sprintf "%s@%.3g" (algorithm_name cfg.algorithm) scale

(* Name of the preset the memory watchdog selects for [c] at pressure
   level [p] (0 = no pressure, i.e. the configuration itself). Rendered
   by `taj top` and the admin health reply instead of the bare level. *)
let pressure_rung_name ?scale (c : t) (p : int) : string =
  if p <= 0 then algorithm_name c.algorithm
  else
    let ladder = degradation_ladder ?scale c in
    let n = List.length ladder in
    if n = 0 then algorithm_name c.algorithm
    else rung_label (List.nth ladder (min p n - 1))
