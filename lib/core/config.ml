(** Analysis configurations: the five algorithm settings of Table 1.

    | configuration       | models | priority | optimizations |
    |---------------------|--------|----------|----------------|
    | Hybrid, unbounded   |   x    |          |                |
    | Hybrid, prioritized |   x    |    x     |                |
    | Hybrid, optimized   |   x    |    x     |       x        |
    | CS thin slicing     |   x    |          |                |
    | CI thin slicing     |   x    |          |                |

    The fully optimized variant uses the paper's published bounds: a
    20,000-node call-graph budget, 20,000 heap transitions during slicing,
    a flow-length cap of 14, and nested-taint depth 2 (§7.1). A [scale]
    factor shrinks the two big budgets together with workload size. *)

type algorithm =
  | Hybrid_unbounded
  | Hybrid_prioritized
  | Hybrid_optimized
  | Cs_thin_slicing
  | Ci_thin_slicing

let algorithm_name = function
  | Hybrid_unbounded -> "hybrid-unbounded"
  | Hybrid_prioritized -> "hybrid-prioritized"
  | Hybrid_optimized -> "hybrid-optimized"
  | Cs_thin_slicing -> "cs"
  | Ci_thin_slicing -> "ci"

type t = {
  algorithm : algorithm;
  max_cg_nodes : int option;          (* §6.1 *)
  prioritized : bool;                 (* §6.1 *)
  max_heap_transitions : int option;  (* §6.2.1, the bound the paper kept *)
  max_slice_steps : int option;
      (* §6.2.1's alternative: "cast constraints on the slice sizes through
         the no-heap SDG" — bounded exploration steps instead of heap
         transitions; kept for the ablation that justifies the choice *)
  max_flow_length : int option;       (* §6.2.2 *)
  nested_taint_depth : int;           (* §6.2.3; -1 = unbounded *)
  cs_budget : int option;             (* emulates the CS memory ceiling *)
  excluded_classes : string list;     (* §4.2.1 whitelist *)
  refine : bool;                      (* access-path replay of each flow *)
  refine_k : int;                     (* access-path depth bound *)
  refine_steps : int;                 (* per-flow replay step budget *)
  cache_dir : string option;          (* incremental-cache store directory *)
}

let default_whitelist = [ "Math"; "Random"; "Date"; "Logger" ]

(* published bounds (§7.1) *)
let paper_cg_bound = 20_000
let paper_heap_bound = 20_000
let paper_flow_length = 14
let paper_nested_depth = 2

let preset ?(scale = 1.0) (algorithm : algorithm) : t =
  let scaled v = max 50 (int_of_float (float_of_int v *. scale)) in
  let base =
    { algorithm;
      max_cg_nodes = None;
      prioritized = false;
      max_heap_transitions = None;
      max_slice_steps = None;
      max_flow_length = None;
      nested_taint_depth = -1;
      cs_budget = None;
      excluded_classes = default_whitelist;
      refine = false;
      refine_k = 3;
      refine_steps = 4096;
      cache_dir = None }
  in
  match algorithm with
  | Hybrid_unbounded -> base
  | Hybrid_prioritized ->
    { base with
      max_cg_nodes = Some (scaled paper_cg_bound);
      prioritized = true }
  | Hybrid_optimized ->
    { base with
      max_cg_nodes = Some (scaled paper_cg_bound);
      prioritized = true;
      max_heap_transitions = Some (scaled paper_heap_bound);
      max_flow_length = Some paper_flow_length;
      nested_taint_depth = paper_nested_depth }
  | Cs_thin_slicing ->
    (* the CS configuration has no deliberate bounds; the budget stands in
       for the 1 GB heap the paper ran with. Calibrated so the emulation
       completes on the handful of smallest benchmarks, as in Table 3. *)
    { base with cs_budget = Some (scaled 25_000) }
  | Ci_thin_slicing -> base

let all_algorithms =
  [ Hybrid_unbounded; Hybrid_prioritized; Hybrid_optimized;
    Cs_thin_slicing; Ci_thin_slicing ]

(* The degradation ladder (§6): when a configuration exhausts its budget the
   supervisor retries with progressively stricter bounded presets —
   unbounded -> prioritized -> optimized -> optimized at shrinking scale.
   The CS and CI emulations fall back onto the hybrid family, as the paper's
   CS configuration does on large applications (Table 3). Each rung is
   paired with the scale it was built at, for diagnostics. *)
let degradation_ladder ?(scale = 1.0) (c : t) : (float * t) list =
  (* ladder rungs are fresh presets: carry over the refinement and cache
     settings so a degraded retry still classifies its (fewer) flows and
     keeps reading the same store *)
  let carry (s, cfg) =
    (s, { cfg with refine = c.refine;
                   refine_k = c.refine_k;
                   refine_steps = c.refine_steps;
                   cache_dir = c.cache_dir })
  in
  let rungs =
    List.map carry
      [ (scale, preset ~scale Hybrid_prioritized);
        (scale, preset ~scale Hybrid_optimized);
        (scale /. 2., preset ~scale:(scale /. 2.) Hybrid_optimized);
        (scale /. 4., preset ~scale:(scale /. 4.) Hybrid_optimized) ]
  in
  match c.algorithm with
  | Hybrid_unbounded | Cs_thin_slicing | Ci_thin_slicing -> rungs
  | Hybrid_prioritized -> List.tl rungs
  | Hybrid_optimized ->
    List.map carry
      [ (scale /. 2., preset ~scale:(scale /. 2.) Hybrid_optimized);
        (scale /. 4., preset ~scale:(scale /. 4.) Hybrid_optimized) ]
