(** Tainted flows: a witness path from a source call to a sink call. *)

open Jir

type t = {
  fl_rule : Rules.rule;
  fl_source : Sdg.Stmt.t;
  fl_sink : Sdg.Stmt.t;
  fl_sink_target : Tac.mref;
  fl_kind : Sdg.Tabulation.hit_kind;
  fl_path : Sdg.Stmt.t list;          (* source first, sink last *)
  fl_length : int;
  fl_verdict : Sdg.Refine.verdict option;
      (* [None] when refinement did not run; [Plausible] demotes, never
         drops — a refined flow is always still reported *)
  fl_template : Strings.Template.t option;
      (* the sink value's reconstructed string template; [None] when the
         sanitization judge did not run or could not recover it *)
  fl_sanitization : Strings.Context.verdict option;
      (* the sanitization judgement ([None] when contexts are off).
         [Sanitized] flows are dropped before reporting — reproducing
         the kill — so a reported flow carries [Mismatched_sanitizer]
         or [Unsanitized] *)
}

let length fl = fl.fl_length

(** Bucket flows by path length; used by the §6.2.2 ablation. *)
let length_histogram (flows : t list) : (int * int) list =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun fl ->
       let prev = Option.value ~default:0 (Hashtbl.find_opt tbl fl.fl_length) in
       Hashtbl.replace tbl fl.fl_length (prev + 1))
    flows;
  Hashtbl.fold (fun len n acc -> (len, n) :: acc) tbl []
  |> List.sort compare

(** [Confirmed] first, then [Plausible], then unrefined — the report sort
    key alongside path length. With refinement off every verdict is [None],
    so ordering reduces to the unrefined behaviour exactly. *)
let verdict_rank fl =
  match fl.fl_verdict with Some v -> Sdg.Refine.rank v | None -> 2

let pp_brief ppf fl =
  Fmt.pf ppf "%a: %a --(%d)--> %a [%s]%a"
    Rules.pp_issue fl.fl_rule.Rules.issue
    Sdg.Stmt.pp fl.fl_source fl.fl_length Sdg.Stmt.pp fl.fl_sink
    (match fl.fl_kind with
     | Sdg.Tabulation.Direct -> "direct"
     | Sdg.Tabulation.Carrier -> "carrier")
    (fun ppf -> function
       | None -> ()
       | Some v -> Fmt.pf ppf " {%a}" Sdg.Refine.pp_verdict v)
    fl.fl_verdict
