(** Security rules: triples (sources, sanitizers, sinks) per issue type (§3).

    A source is a method whose return value (or, for by-reference sources
    like [RandomAccessFile.readFully], a parameter's object state) is
    tainted. A sanitizer endorses its input. A sink is a method together
    with its attack-vulnerable parameter positions. Method references are
    matched through the class hierarchy: a call whose static target is
    [MyResponse.getWriter/1] matches a rule on
    [HttpServletResponse.getWriter/1] if the former resolves there. *)

open Jir

type issue =
  | Xss
  | Sqli
  | Command_injection
  | Malicious_file
  | Info_leak

let issue_name = function
  | Xss -> "XSS"
  | Sqli -> "SQLi"
  | Command_injection -> "CmdInjection"
  | Malicious_file -> "MaliciousFile"
  | Info_leak -> "InfoLeak"

let pp_issue ppf i = Fmt.string ppf (issue_name i)

type source_kind = Tainted_return | Taints_param of int

type source = {
  src_method : string;          (* canonical method id *)
  src_kind : source_kind;
}

type sink = {
  snk_method : string;
  snk_params : int list;        (* sensitive argument positions *)
}

type rule = {
  rule_name : string;
  issue : issue;
  sources : source list;
  sanitizers : string list;
  sinks : sink list;
}

(* ------------------------------------------------------------------ *)
(* Default rule set                                                   *)
(* ------------------------------------------------------------------ *)

let ret m = { src_method = m; src_kind = Tainted_return }

(* untrusted user input: servlet parameters, headers, cookies, request
   bodies, and the synthesized Struts form population *)
let user_input_sources =
  List.map ret
    [ "HttpServletRequest.getParameter/2";
      "HttpServletRequest.getParameterValues/2";
      "HttpServletRequest.getHeader/2";
      "HttpServletRequest.getQueryString/1";
      "HttpServletRequest.getRequestURI/1";
      "Cookie.getValue/1";
      "BufferedReader.readLine/1";
      "ResultSet.getString/2";
      "ObjectInputStream.readObject/1";
      "$Synth.taintedString/0" ]
  @ [ { src_method = "RandomAccessFile.readFully/2";
        src_kind = Taints_param 1 } ]

let output_sinks =
  [ { snk_method = "PrintWriter.println/2"; snk_params = [ 1 ] };
    { snk_method = "PrintWriter.print/2"; snk_params = [ 1 ] };
    { snk_method = "ServletOutputStream.println/2"; snk_params = [ 1 ] };
    { snk_method = "ServletOutputStream.print/2"; snk_params = [ 1 ] };
    { snk_method = "HttpServletResponse.addHeader/3"; snk_params = [ 2 ] };
    { snk_method = "HttpServletResponse.sendError/3"; snk_params = [ 2 ] } ]

let xss : rule =
  { rule_name = "xss";
    issue = Xss;
    sources = user_input_sources;
    sanitizers = [ "URLEncoder.encode/1"; "Sanitizer.encodeHtml/1" ];
    sinks = output_sinks }

let sqli : rule =
  { rule_name = "sqli";
    issue = Sqli;
    sources = user_input_sources;
    sanitizers = [ "Sanitizer.escapeSql/1" ];
    sinks =
      [ { snk_method = "Statement.executeQuery/2"; snk_params = [ 1 ] };
        { snk_method = "Statement.executeUpdate/2"; snk_params = [ 1 ] };
        { snk_method = "Statement.execute/2"; snk_params = [ 1 ] };
        { snk_method = "Connection.prepareStatement/2"; snk_params = [ 1 ] } ] }

let command_injection : rule =
  { rule_name = "command-injection";
    issue = Command_injection;
    sources = user_input_sources;
    sanitizers = [];
    sinks = [ { snk_method = "Runtime.exec/2"; snk_params = [ 1 ] } ] }

let malicious_file : rule =
  { rule_name = "malicious-file";
    issue = Malicious_file;
    sources = user_input_sources;
    sanitizers = [ "Sanitizer.cleansePath/1" ];
    sinks =
      [ { snk_method = "FileInputStream.<init>/2"; snk_params = [ 1 ] };
        { snk_method = "FileOutputStream.<init>/2"; snk_params = [ 1 ] };
        { snk_method = "FileReader.<init>/2"; snk_params = [ 1 ] };
        { snk_method = "FileWriter.<init>/2"; snk_params = [ 1 ] };
        { snk_method = "RandomAccessFile.<init>/3"; snk_params = [ 1 ] };
        { snk_method = "HttpServletRequest.getRequestDispatcher/2";
          snk_params = [ 1 ] } ] }

let info_leak : rule =
  { rule_name = "info-leak";
    issue = Info_leak;
    sources =
      List.map ret [ "Throwable.getMessage/1"; "System.getProperty/1" ];
    sanitizers = [];
    sinks = output_sinks }

let default_rules = [ xss; sqli; command_injection; malicious_file; info_leak ]

(* ------------------------------------------------------------------ *)
(* Matching                                                           *)
(* ------------------------------------------------------------------ *)

(** A matcher canonicalizes call targets through the class hierarchy and
    answers rule-membership queries. Memoized per target. *)
type matcher = {
  table : Classtable.t;
  canon : (string, string) Hashtbl.t;
}

let matcher (table : Classtable.t) : matcher =
  { table; canon = Hashtbl.create 256 }

(** Canonical method id of a call target: the declaring class of the method
    the static target resolves to. *)
let canonical (m : matcher) (target : Tac.mref) : string =
  let key = Tac.mref_id target in
  match Hashtbl.find_opt m.canon key with
  | Some c -> c
  | None ->
    let c =
      match
        Classtable.lookup_method m.table target.Tac.rclass target.Tac.rname
          target.Tac.rarity
      with
      | Some mi ->
        Printf.sprintf "%s.%s/%d" mi.Classtable.mi_class target.Tac.rname
          target.Tac.rarity
      | None -> key
    in
    Hashtbl.replace m.canon key c;
    c

let source_of (m : matcher) (rule : rule) (target : Tac.mref) : source option =
  let c = canonical m target in
  List.find_opt (fun s -> String.equal s.src_method c) rule.sources

let is_sink_arg (m : matcher) (rule : rule) (target : Tac.mref) (i : int) =
  let c = canonical m target in
  List.exists
    (fun s -> String.equal s.snk_method c && List.mem i s.snk_params)
    rule.sinks

let sink_of (m : matcher) (rule : rule) (target : Tac.mref) : sink option =
  let c = canonical m target in
  List.find_opt (fun s -> String.equal s.snk_method c) rule.sinks

let is_sanitizer (m : matcher) (rule : rule) (target : Tac.mref) =
  let c = canonical m target in
  List.exists (String.equal c) rule.sanitizers

(** The canonical id of [target] if any rule in [rules] lists it as a
    sanitizer, [None] otherwise. The single sanitizer-identity question
    every consumer (tabulation, refinement, triage, the sanitization
    judge) must agree on: matching goes through [canonical], so a
    subclass {e inheriting} a sanitizer matches while a subclass
    {e overriding} it with its own body does not. *)
let sanitizer_of (m : matcher) (rules : rule list) (target : Tac.mref) :
  string option =
  let c = canonical m target in
  if
    List.exists
      (fun r -> List.exists (String.equal c) r.sanitizers)
      rules
  then Some c
  else None

(** Does any rule regard this method id as a source? Used to seed the
    priority-driven call-graph construction (§6.1). *)
let is_source_method_id (rules : rule list) (m : matcher) (id : string) =
  (* [id] is already an mref id string; canonicalize via a parse *)
  match String.rindex_opt id '/' with
  | None -> false
  | Some slash ->
    (match String.rindex_opt id '.' with
     | None -> false
     | Some dot ->
       let rclass = String.sub id 0 dot in
       let rname = String.sub id (dot + 1) (slash - dot - 1) in
       let rarity =
         int_of_string_opt
           (String.sub id (slash + 1) (String.length id - slash - 1))
       in
       (match rarity with
        | None -> false
        | Some rarity ->
          let target = { Tac.rclass; rname; rarity } in
          let c = canonical m target in
          List.exists
            (fun r ->
               List.exists (fun s -> String.equal s.src_method c) r.sources)
            rules))
