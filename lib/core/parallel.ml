(** Fixed-size Domain worker pool with a deterministic, index-ordered
    merge.

    The three independently-parallel stages of the pipeline (per-unit
    frontend work, per-rule taint tabulation, per-app benchmark rows) all
    reduce to the same primitive: apply [f] to every element of a list,
    on up to [jobs] domains, and return the results in the input order as
    if [List.map] had run. Tasks are pulled from a shared atomic counter
    (work stealing), so scheduling is nondeterministic — but results are
    written into a slot per input index, which makes the merge
    deterministic regardless of which domain ran which task.

    Exceptions are captured per task; after every worker has joined, the
    exception of the lowest-index failed task is re-raised with its
    original backtrace. All tasks run even when an early one fails —
    fault isolation across tasks is the caller's job (e.g. the taint
    engine catches per-rule faults inside the task), this module only
    guarantees that one poisoned task cannot prevent the others from
    completing or leave a domain unjoined.

    [jobs <= 1] (or a singleton/empty input) never spawns a domain and is
    exactly [List.map f xs] — same evaluation order, same eager raise on
    the first failing element — so sequential runs are byte-identical to
    the pre-parallel pipeline. *)

type 'a task_result =
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace

(* Tasks executed across all parallel stages. Jobs-dependent only in how
   they are distributed, not in how many there are. *)
let m_tasks = Obs.Telemetry.counter "parallel.tasks"

(** The pool size used when the caller does not pin one: every core the
    runtime recommends. *)
let default_jobs () = max 1 (Domain.recommended_domain_count ())

(** [TAJ_JOBS] environment override, used by the CLI/bench defaults and
    the CI determinism job. *)
let env_jobs () =
  match Sys.getenv_opt "TAJ_JOBS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> Some n
     | Some _ | None -> None)

let run_task f x =
  match f x with
  | y -> Done y
  | exception e -> Raised (e, Printexc.get_raw_backtrace ())

(** [map ~jobs f xs]: parallel [List.map f xs] on at most [jobs] domains
    (including the calling one). Deterministic output order; re-raises the
    first (lowest-index) task exception after joining all workers. *)
let map ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match xs with
  | [] -> []
  | _ when jobs <= 1 -> List.map f xs
  | [ x ] -> [ f x ]
  | _ ->
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let results : 'b task_result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      (* the span lands on the executing domain's telemetry buffer, giving
         each pool domain its own track in the exported trace *)
      Obs.Telemetry.with_span "parallel.worker" @@ fun () ->
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          Obs.Telemetry.incr m_tasks;
          results.(i) <- Some (run_task f arr.(i));
          loop ()
        end
      in
      loop ()
    in
    let spawned = min jobs n - 1 in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* every slot is filled: the counter hands each index to exactly one
       worker, and workers only return once the counter runs past [n] *)
    Array.iteri
      (fun i r ->
         match r with
         | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
         | Some (Done _) -> ()
         | None ->
           invalid_arg
             (Printf.sprintf "Parallel.map: slot %d left unfilled" i))
      results;
    Array.to_list
      (Array.map
         (function
           | Some (Done y) -> y
           | Some (Raised _) | None -> assert false (* raised above *))
         results)
