(** Tainted flows: a witness path from a source call to a sink call. *)

type t = {
  fl_rule : Rules.rule;
  fl_source : Sdg.Stmt.t;
  fl_sink : Sdg.Stmt.t;
  fl_sink_target : Jir.Tac.mref;
  fl_kind : Sdg.Tabulation.hit_kind;
  fl_path : Sdg.Stmt.t list;          (** source first, sink last *)
  fl_length : int;
  fl_verdict : Sdg.Refine.verdict option;
      (** [None] when refinement did not run; [Plausible] demotes, never
          drops — a refined flow is always still reported *)
  fl_template : Strings.Template.t option;
      (** the sink value's reconstructed string template; [None] when the
          sanitization judge did not run or could not recover it *)
  fl_sanitization : Strings.Context.verdict option;
      (** the sanitization judgement ([None] when contexts are off);
          [Sanitized] flows are dropped before reporting, so a reported
          flow carries [Mismatched_sanitizer] or [Unsanitized] *)
}

val length : t -> int

(** Bucket flows by path length (§6.2.2 ablation). *)
val length_histogram : t list -> (int * int) list

(** [Confirmed] = 0, [Plausible] = 1, unrefined = 2 — the report sort key
    alongside path length. *)
val verdict_rank : t -> int

val pp_brief : Format.formatter -> t -> unit
