(** Analysis configurations: the five algorithm settings of Table 1,
    plus [Type_triage] — the flow-insensitive type-qualifier pass that
    serves as rung zero of the degradation ladder (no pointer analysis,
    no SDG; see {!Triage}). *)

type algorithm =
  | Hybrid_unbounded
  | Hybrid_prioritized
  | Hybrid_optimized
  | Cs_thin_slicing
  | Ci_thin_slicing
  | Type_triage

val algorithm_name : algorithm -> string

type t = {
  algorithm : algorithm;
  max_cg_nodes : int option;          (** §6.1 call-graph node budget *)
  prioritized : bool;                 (** §6.1 priority-driven scheme *)
  max_heap_transitions : int option;  (** §6.2.1 slice-size bound *)
  max_slice_steps : int option;
      (** §6.2.1's alternative no-heap-SDG bound, kept for the ablation *)
  max_flow_length : int option;       (** §6.2.2 flow-length filter *)
  nested_taint_depth : int;           (** §6.2.3; -1 = unbounded *)
  cs_budget : int option;             (** emulates the CS memory ceiling *)
  excluded_classes : string list;     (** §4.2.1 whitelist *)
  refine : bool;                      (** access-path replay of each flow *)
  refine_k : int;                     (** access-path depth bound *)
  refine_steps : int;                 (** per-flow replay step budget *)
  cache_dir : string option;
      (** directory of the persistent incremental-cache store; [None]
          (every preset's default) disables caching entirely *)
  triage_filter : bool;
      (** consult the triage verdict before the SDG scan and the
          per-rule engine, skipping work proven irrelevant; on by
          default, disabled internally when [refine] is set (the replay
          walks unfiltered store indexes). Reports are byte-identical
          with the filter on or off. *)
  contexts : bool;
      (** context-sensitive sanitization (record-and-judge): propagate
          through sanitizers instead of killing, reconstruct the sink's
          string template interprocedurally, and judge every recorded
          sanitizer against the computed sink context. Off by default;
          with it off, reports are byte-identical to the classic
          kill-on-sanitizer behaviour. *)
}

val default_whitelist : string list

(** The published bounds of §7.1. *)
val paper_cg_bound : int
val paper_heap_bound : int
val paper_flow_length : int
val paper_nested_depth : int

(** Build a Table-1 preset; [scale] shrinks the big budgets together with
    workload size (default 1.0). *)
val preset : ?scale:float -> algorithm -> t

(** The five Table-1 algorithms ([Type_triage] is excluded: it is a
    degradation floor, not a paper configuration). *)
val all_algorithms : algorithm list

(** The §6 degradation ladder below a configuration: progressively stricter
    bounded presets (prioritized, optimized, optimized at shrinking scale),
    each paired with the scale it was built at, and always ending in the
    [Type_triage] rung zero — the floor that answers without pointer
    analysis or slicing and therefore cannot exhaust a budget. The
    supervisor walks this when a rung exhausts its budget. A
    [Type_triage] configuration has an empty ladder. *)
val degradation_ladder : ?scale:float -> t -> (float * t) list

(** A short label for a ladder rung: the algorithm name plus the scale,
    or just ["triage"] for rung zero. *)
val rung_label : float * t -> string

(** Name of the rung the memory watchdog selects for a base
    configuration at pressure level [p] (0 = the configuration itself).
    Used by [taj top] and the admin health reply. *)
val pressure_rung_name : ?scale:float -> t -> int -> string
