(** String-specific taint diagnostics — the §9 future-work extension.

    Reconstructs an abstract template (constant fragments around the
    tainted part) of the string reaching a sink, by walking SSA definitions
    back through concatenations, and classifies the syntactic context the
    attacker controls. *)

type piece = Strings.Template.piece =
  | Lit of string     (** a known constant fragment *)
  | Tainted           (** the attacker-controlled part (on the flow path) *)
  | Hole              (** statically unknown fragment *)

type template = Strings.Template.t

val pp_piece : Format.formatter -> piece -> unit
val pp_template : Format.formatter -> template -> unit

(** Template of the value flowing into the sink of a flow. *)
val template_of : Sdg.Builder.t -> Flows.t -> template option

type html_context =
  | Html_text          (** taint lands between tags: classic script XSS *)
  | Html_attribute     (** taint lands inside an attribute value *)
  | Html_unknown

type sql_context =
  | Sql_quoted         (** taint lands inside a '...' string literal *)
  | Sql_raw            (** raw position: numeric/keyword injection *)
  | Sql_unknown

val html_context : template -> html_context
val sql_context : template -> sql_context

(** One-line diagnostic for a flow. *)
val diagnose : Sdg.Builder.t -> Flows.t -> string option
