(** EINTR-safe wrappers for the Unix syscalls the pipeline lives on.

    The serving layer installs SIGINT/SIGTERM handlers for graceful
    drain, so every blocking syscall in the process can be interrupted
    and fail with [EINTR] at any moment. A signal must trigger the drain
    protocol, never surface as a spurious job, transport or cache
    failure — so all reads, writes, sleeps and accepts go through
    {!retry_eintr}. This module lives in [core] (historically
    [Serve.Io], which now re-exports it) so that source reads, the
    persistent cache store and the transports all share one I/O path. *)

let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

(** A client that disconnects mid-response must surface as [EPIPE] on our
    write, never as a process-killing signal. Idempotent; every serve /
    cluster entry point calls it (workers too — fork does not inherit the
    disposition set in an execed parent). *)
let ignore_sigpipe () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

let read fd buf pos len =
  retry_eintr (fun () -> Unix.read fd buf pos len)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + retry_eintr (fun () -> Unix.write fd b !off (n - !off))
  done

(** Mutex-serialized newline-appending writer over [fd], shared by every
    transport (service stdio/socket, cluster coordinator, workers). A
    broken peer ([EPIPE] with SIGPIPE ignored, or a reset) marks the
    writer dead and reports the error through [on_error] exactly once;
    later writes are dropped silently — the peer is gone, the jobs whose
    responses we were carrying are already terminal on our side. *)
let make_writer ?(on_error = fun (_ : Unix.error) -> ()) fd =
  let lock = Mutex.create () in
  let dead = ref false in
  fun line ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
         if not !dead then
           try write_all fd (line ^ "\n")
           with
           | Unix.Unix_error
               ((EPIPE | ECONNRESET | ESHUTDOWN | EBADF) as e, _, _) ->
             dead := true;
             on_error e)

(** Bind a Unix-domain listening socket at [path], coping with the
    leftover socket file of an uncleanly killed predecessor: if the path
    exists we probe it with a connect — a refused connection proves the
    file is stale (no listener behind it), so it is unlinked and the bind
    retried; a successful connect proves a live server still owns the
    path and the caller must not steal it ([Error `Live]). *)
let bind_unix_socket path =
  let try_bind () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.bind fd (Unix.ADDR_UNIX path) with
    | () -> Some fd
    | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None
  in
  match try_bind () with
  | Some fd -> Ok fd
  | None ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match retry_eintr (fun () -> Unix.connect probe (Unix.ADDR_UNIX path))
      with
      | () -> true
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then Error `Live
    else begin
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      match try_bind () with
      | Some fd -> Ok fd
      | None -> Error `Live (* lost the race to another server *)
    end

(** [sleepf s] sleeps at least [s] seconds of wall clock, resuming after
    every interrupting signal with the remaining time. *)
let sleepf seconds =
  let until = Unix.gettimeofday () +. seconds in
  let rec go () =
    let left = until -. Unix.gettimeofday () in
    if left > 0.0 then begin
      (try Unix.sleepf left
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  if seconds > 0.0 then go ()

let accept fd = retry_eintr (fun () -> Unix.accept fd)

(** [select] with EINTR retry; the timeout is not re-armed on retry, which
    only makes polling loops poll slightly more often after a signal. *)
let select r w e t = retry_eintr (fun () -> Unix.select r w e t)

(** Whole-file read through Unix, EINTR-safe (the CLI's [read_file]). *)
let read_file path =
  let fd = retry_eintr (fun () -> Unix.openfile path [ Unix.O_RDONLY ] 0) in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
       let buf = Buffer.create 4096 in
       let chunk = Bytes.create 65536 in
       let rec go () =
         let n = read fd chunk 0 (Bytes.length chunk) in
         if n > 0 then begin
           Buffer.add_subbytes buf chunk 0 n;
           go ()
         end
       in
       go ();
       Buffer.contents buf)

(** Atomic whole-file write: the bytes land in a temporary sibling that
    is renamed over [path], so a reader never observes a half-written
    file and a crash mid-write leaves the previous version intact. The
    cache store depends on this to keep torn writes at frame, not file,
    granularity. *)
let write_file path data =
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.%d.tmp" (Filename.basename path)
         (Unix.getpid ()))
  in
  let fd =
    retry_eintr (fun () ->
      Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)
  in
  (match write_all fd data with
   | () -> (try Unix.close fd with Unix.Unix_error _ -> ())
   | exception e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Unix.unlink tmp with Unix.Unix_error _ -> ());
     raise e);
  retry_eintr (fun () -> Unix.rename tmp path)

(** Buffered newline-delimited reader over a file descriptor. *)
type line_reader = {
  lr_fd : Unix.file_descr;
  lr_buf : Buffer.t;
  lr_chunk : bytes;
  mutable lr_eof : bool;
}

let line_reader fd =
  { lr_fd = fd; lr_buf = Buffer.create 1024;
    lr_chunk = Bytes.create 8192; lr_eof = false }

let take_line r =
  let s = Buffer.contents r.lr_buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear r.lr_buf;
    Buffer.add_string r.lr_buf
      (String.sub s (i + 1) (String.length s - i - 1));
    Some (String.sub s 0 i)

(** [read_line r] returns the next complete line (without the newline),
    blocking as needed; [None] at end of stream. A trailing unterminated
    line before EOF is returned as a line. *)
let rec read_line r =
  match take_line r with
  | Some l -> Some l
  | None ->
    if r.lr_eof then begin
      if Buffer.length r.lr_buf = 0 then None
      else begin
        let s = Buffer.contents r.lr_buf in
        Buffer.clear r.lr_buf;
        Some s
      end
    end
    else begin
      let n = read r.lr_fd r.lr_chunk 0 (Bytes.length r.lr_chunk) in
      if n = 0 then r.lr_eof <- true
      else Buffer.add_subbytes r.lr_buf r.lr_chunk 0 n;
      read_line r
    end

(** [read_line_nonblock r] drains whatever is already buffered or readable
    without blocking: [`Line l], [`Eof], or [`Pending] when no complete
    line is available yet. Used by the select-driven transports so the
    drain flag stays responsive. *)
let rec read_line_nonblock r =
  match take_line r with
  | Some l -> `Line l
  | None ->
    if r.lr_eof then
      (if Buffer.length r.lr_buf = 0 then `Eof
       else begin
         let s = Buffer.contents r.lr_buf in
         Buffer.clear r.lr_buf;
         `Line s
       end)
    else begin
      match select [ r.lr_fd ] [] [] 0.0 with
      | [], _, _ -> `Pending
      | _ ->
        let n = read r.lr_fd r.lr_chunk 0 (Bytes.length r.lr_chunk) in
        if n = 0 then r.lr_eof <- true
        else Buffer.add_subbytes r.lr_buf r.lr_chunk 0 n;
        read_line_nonblock r
    end
