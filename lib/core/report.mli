(** Consumable reports: LCP-deduplicated issues with witness paths. *)

type issue_report = {
  ir_issue : Rules.issue;
  ir_lcp : Sdg.Stmt.t option;
  ir_representative : Flows.t;
  ir_flow_count : int;
  ir_verdict : Sdg.Refine.verdict option;
      (** the best verdict in the group (the representative's, as members
          sort confirmed-first); [None] when refinement did not run *)
  ir_sanitization : Strings.Context.verdict option;
      (** the representative's sanitization judgement; [None] when
          contexts were off *)
  ir_template : Strings.Template.t option;
      (** the representative's reconstructed sink template, if any *)
}

(** Whether the flows in this report reflect a run to fixed point or a run
    the supervisor had to cut short / degrade (§6 bounded analysis). *)
type completeness =
  | Complete
  | Partial of Diagnostics.degradation list
  | Type_only of Diagnostics.degradation list
      (** rung zero answered: the issues list is empty and the findings
          live on the supervisor outcome's triage verdict — sink
          classifications without witness paths *)

type t = {
  issues : issue_report list;
  raw_flows : Flows.t list;
  completeness : completeness;
}

val make : ?completeness:completeness -> Sdg.Builder.t -> Flows.t list -> t

(** A report with no flows at all (total degradation). *)
val empty : completeness:completeness -> t

val issue_count : t -> int
val flow_count : t -> int

(** [true] for [Partial] and [Type_only] reports alike. *)
val is_partial : t -> bool
val degradations : t -> Diagnostics.degradation list

(** (confirmed, plausible) issue counts; [None] when refinement did not
    run. *)
val verdict_counts : t -> (int * int) option

(** (mismatched-sanitizer, unsanitized) issue counts; [None] when the
    sanitization judge did not run. *)
val sanitization_counts : t -> (int * int) option

val pp_stmt : Sdg.Builder.t -> Format.formatter -> Sdg.Stmt.t -> unit
val pp_issue_report : Sdg.Builder.t -> Format.formatter -> issue_report -> unit
val pp : Sdg.Builder.t -> Format.formatter -> t -> unit
