(** Security rules: triples (sources, sanitizers, sinks) per issue type
    (§3). Method references are matched through the class hierarchy. *)

type issue =
  | Xss
  | Sqli
  | Command_injection
  | Malicious_file
  | Info_leak

val issue_name : issue -> string
val pp_issue : Format.formatter -> issue -> unit

type source_kind = Tainted_return | Taints_param of int

type source = {
  src_method : string;          (** canonical method id *)
  src_kind : source_kind;
}

type sink = {
  snk_method : string;
  snk_params : int list;        (** sensitive argument positions *)
}

type rule = {
  rule_name : string;
  issue : issue;
  sources : source list;
  sanitizers : string list;
  sinks : sink list;
}

val xss : rule
val sqli : rule
val command_injection : rule
val malicious_file : rule
val info_leak : rule

(** The rule set covering the four OWASP vectors the paper targets. *)
val default_rules : rule list

(** A matcher canonicalizes call targets through the class hierarchy and
    answers rule-membership queries (memoized). *)
type matcher

val matcher : Jir.Classtable.t -> matcher

(** Canonical method id of a call target: the declaring class of the method
    the static target resolves to. *)
val canonical : matcher -> Jir.Tac.mref -> string

val source_of : matcher -> rule -> Jir.Tac.mref -> source option
val is_sink_arg : matcher -> rule -> Jir.Tac.mref -> int -> bool
val sink_of : matcher -> rule -> Jir.Tac.mref -> sink option
val is_sanitizer : matcher -> rule -> Jir.Tac.mref -> bool

(** The canonical id of the target if {e any} rule lists it as a
    sanitizer, [None] otherwise. The single sanitizer-identity question
    all consumers (tabulation, refinement, triage, the sanitization
    judge) agree on: a subclass inheriting a sanitizer matches, a
    subclass overriding it with its own body does not. *)
val sanitizer_of : matcher -> rule list -> Jir.Tac.mref -> string option

(** Does any rule regard this method id as a source? Seeds the §6.1
    priority scheme. *)
val is_source_method_id : rule list -> matcher -> string -> bool
