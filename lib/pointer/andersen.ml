(** Context-sensitive Andersen pointer analysis with on-the-fly call-graph
    construction (§3.1) and priority-driven constraint adding (§6.1).

    The solver iterates between two phases, exactly as the paper describes:

    - {e constraint adding}: a pending method clone (call-graph node) is
      dequeued and the constraints of its body are registered;
    - {e constraint solving}: subset edges are propagated to a fixed point;
      newly discovered virtual-call targets create new call-graph nodes,
      which enter the pending queue.

    Under a node budget the pending queue is either FIFO ("chaotic
    iteration") or a priority queue driven by the locality-of-taint
    heuristic; when the budget runs out the result is an underapproximation,
    which the taint stage can still mine for bugs. *)

module Int_set = Set.Make (Int)
module Telemetry = Obs.Telemetry
open Jir

(* Telemetry: the quantities the §6.1 bounded-analysis argument is about.
   All updates are no-ops (one atomic load) unless telemetry is enabled. *)
let m_propagations = Telemetry.counter "pointer.propagations"
let m_dispatches = Telemetry.counter "pointer.dispatches"
let m_nodes_processed = Telemetry.counter "pointer.nodes_processed"
let m_dropped_calls = Telemetry.counter "pointer.dropped_calls"
let m_fixpoint_rounds = Telemetry.counter "pointer.fixpoint_rounds"
let h_worklist = Telemetry.histogram "pointer.worklist_len"
let g_cg_nodes = Telemetry.gauge "pointer.cg_nodes"
let g_cg_edges = Telemetry.gauge "pointer.cg_edges"
let g_cg_budget = Telemetry.gauge "pointer.cg_node_budget"

type config = {
  policy : Policy.t;
  max_nodes : int option;              (** §6.1 call-graph node budget *)
  prioritized : bool;                  (** priority-driven vs chaotic *)
  is_source_method : string -> bool;   (** taint sources, for priorities *)
  excluded_class : string -> bool;     (** whitelisted library code (§4.2.1) *)
  max_work : int option;
      (** hard budget on propagation steps; exceeding it aborts the analysis
          (models the memory exhaustion of the CS configuration) *)
  interrupt : unit -> bool;
      (** cooperative cancellation/deadline poll: when it returns [true] the
          solver stops cleanly and the partial result (an
          underapproximation, like a tripped node budget) is returned *)
}

exception Out_of_budget

let default_config ?(policy = Policy.default ()) () =
  { policy;
    max_nodes = None;
    prioritized = false;
    is_source_method = (fun _ -> false);
    excluded_class = (fun _ -> false);
    max_work = None;
    interrupt = (fun () -> false) }

(* A virtual (or special) call waiting for receiver points-to facts. *)
type vcall = {
  vc_caller : int;
  vc_site : int;
  vc_target : Tac.mref;
  vc_dispatch_class : string option;   (* Some c: dispatch fixed (Special) *)
  vc_args : Tac.var list;
  vc_ret : Tac.var option;
  mutable vc_seen : Int_set.t;         (* instance keys already dispatched *)
  mutable vc_native_done : bool;
}

type base_constraint =
  | Cb_load of { fields : Keys.field list; dst : int; mutable seen : Int_set.t }
  | Cb_store of { fields : Keys.field list; src : int; mutable seen : Int_set.t }

type stats = {
  mutable nodes_processed : int;
  mutable dropped_calls : int;         (* calls lost to the node budget *)
  mutable propagations : int;
  mutable dispatches : int;
}

type t = {
  prog : Program.t;
  u : Keys.universe;
  cg : Callgraph.t;
  cfg : config;
  mutable interrupted : bool;                          (* stopped by cfg.interrupt *)
  mutable pts : Int_set.t array;                       (* pk -> iks *)
  mutable succ : (int * string option) list array;     (* pk -> edges *)
  edge_seen : (int * int * string option, unit) Hashtbl.t;
  base_cs : (int, base_constraint list ref) Hashtbl.t; (* pk -> constraints *)
  vcalls : (int, vcall list ref) Hashtbl.t;            (* recv pk -> calls *)
  mutable dirty : bool array;                          (* pk in worklist? *)
  work : int Queue.t;
  pending_fifo : int Queue.t;
  pending_prio : Pq.t;
  prio : (int, int) Hashtbl.t;                         (* node -> priority *)
  processed : (int, unit) Hashtbl.t;
  field_writers : (Keys.field, Int_set.t ref) Hashtbl.t;
  field_readers : (Keys.field, Int_set.t ref) Hashtbl.t;
  const_cache : (string, Tac.var -> string option) Hashtbl.t;
  stats : stats;
  default_prio : int;
}

(* ------------------------------------------------------------------ *)
(* Storage helpers                                                    *)
(* ------------------------------------------------------------------ *)

let ensure_capacity t n =
  let cap = Array.length t.pts in
  if n >= cap then begin
    let newcap = max (2 * cap) (n + 64) in
    let pts = Array.make newcap Int_set.empty in
    Array.blit t.pts 0 pts 0 cap;
    t.pts <- pts;
    let succ = Array.make newcap [] in
    Array.blit t.succ 0 succ 0 cap;
    t.succ <- succ;
    let dirty = Array.make newcap false in
    Array.blit t.dirty 0 dirty 0 cap;
    t.dirty <- dirty
  end

let pk t key =
  let id = Keys.pk t.u key in
  ensure_capacity t id;
  id

let pk_var t node v = pk t (Keys.Pk_var (node, v))

let pts t p = t.pts.(p)

let mark_dirty t p =
  if not t.dirty.(p) then begin
    t.dirty.(p) <- true;
    Queue.add p t.work
  end

let add_ik t p ikid =
  if not (Int_set.mem ikid t.pts.(p)) then begin
    t.pts.(p) <- Int_set.add ikid t.pts.(p);
    mark_dirty t p
  end

let class_passes_filter t cls = function
  | None -> true
  | Some f -> Classtable.is_subclass t.prog.Program.table cls f

let add_edge t ?filter src dst =
  if not (Hashtbl.mem t.edge_seen (src, dst, filter)) then begin
    Hashtbl.replace t.edge_seen (src, dst, filter) ();
    t.succ.(src) <- (dst, filter) :: t.succ.(src);
    (* flow existing facts immediately *)
    if not (Int_set.is_empty t.pts.(src)) then begin
      let moved = ref false in
      Int_set.iter
        (fun ikid ->
           let cls = Keys.inst_class (Keys.ik_of t.u ikid) in
           if class_passes_filter t cls filter
              && not (Int_set.mem ikid t.pts.(dst))
           then begin
             t.pts.(dst) <- Int_set.add ikid t.pts.(dst);
             moved := true
           end)
        t.pts.(src);
      if !moved then mark_dirty t dst
    end
  end

(* ------------------------------------------------------------------ *)
(* Priorities (§6.1)                                                  *)
(* ------------------------------------------------------------------ *)

let method_contains_source t (m : Tac.meth) =
  Array.exists
    (fun (b : Tac.block) ->
       Array.exists
         (fun ins ->
            match ins with
            | Tac.Call { target; _ } ->
              t.cfg.is_source_method (Tac.mref_id target)
            | _ -> false)
         b.Tac.instrs)
    m.Tac.m_blocks

let priority_of t node =
  match Hashtbl.find_opt t.prio node with
  | Some p -> p
  | None -> t.default_prio

let set_priority t node p = Hashtbl.replace t.prio node p

(* initial-assignment rule: source nodes get priority 0 *)
let assign_initial_priority t node =
  if not (Hashtbl.mem t.prio node) then begin
    let m = (Callgraph.node t.cg node).Callgraph.n_method in
    let p = if method_contains_source t m then 0 else t.default_prio in
    set_priority t node p
  end

let enqueue_pending t node =
  assign_initial_priority t node;
  if t.cfg.prioritized then Pq.push t.pending_prio (priority_of t node) node
  else Queue.add node t.pending_fifo

(* neighborhood of a node: call-graph preds and succs, plus nodes whose
   loads match fields stored by this node *)
let neighbors t node =
  let m = (Callgraph.node t.cg node).Callgraph.n_method in
  let base =
    Int_set.union
      (Int_set.of_list (Callgraph.callers t.cg ~callee:node))
      (Int_set.of_list (Callgraph.successors t.cg node))
  in
  let stored_fields = ref [] in
  Array.iter
    (fun (b : Tac.block) ->
       Array.iter
         (fun ins ->
            match ins with
            | Tac.Store (_, f, _) | Tac.Sstore (f, _) ->
              stored_fields := Keys.field_of_tac f :: !stored_fields
            | Tac.Astore _ -> stored_fields := Keys.elem_field :: !stored_fields
            | _ -> ())
         b.Tac.instrs)
    m.Tac.m_blocks;
  List.fold_left
    (fun acc f ->
       match Hashtbl.find_opt t.field_readers f with
       | Some readers -> Int_set.union !readers acc
       | None -> acc)
    base !stored_fields
  |> Int_set.remove node

(* steps 2-5: pull neighborhood priorities toward the dequeued node *)
let update_priorities t node =
  if t.cfg.prioritized then begin
    let queue = Queue.create () in
    Queue.add node queue;
    while not (Queue.is_empty queue) do
      let n = Queue.pop queue in
      let pn = priority_of t n in
      Int_set.iter
        (fun nb ->
           assign_initial_priority t nb;
           let pt = priority_of t nb in
           if pn + 1 < pt then begin
             set_priority t nb (pn + 1);
             if not (Hashtbl.mem t.processed nb) then
               Pq.push t.pending_prio (pn + 1) nb;
             Queue.add nb queue
           end)
        (neighbors t n)
    done
  end

(* ------------------------------------------------------------------ *)
(* Call handling                                                      *)
(* ------------------------------------------------------------------ *)

let node_budget_ok t =
  match t.cfg.max_nodes with
  | Some m -> Callgraph.node_count t.cg < m
  | None -> true

let find_impl t (mref : Tac.mref) ~runtime_class : Tac.meth option =
  let direct id = Program.find_method t.prog id in
  match runtime_class with
  | Some cls ->
    (match Classtable.dispatch t.prog.Program.table cls mref.Tac.rname
             mref.Tac.rarity with
     | Some mi ->
       direct
         (Printf.sprintf "%s.%s/%d" mi.Classtable.mi_class mref.Tac.rname
            mref.Tac.rarity)
     | None -> None)
  | None ->
    (* static or fixed-class special: program registry first (synthetic
       methods like $Reflect.dispatch$N have no class-table entry) *)
    (match direct (Tac.mref_id mref) with
     | Some m -> Some m
     | None ->
       (match Classtable.resolve_static t.prog.Program.table mref.Tac.rclass
                mref.Tac.rname mref.Tac.rarity with
        | Some mi ->
          direct
            (Printf.sprintf "%s.%s/%d" mi.Classtable.mi_class mref.Tac.rname
               mref.Tac.rarity)
        | None -> None))

let ret_type_of t (mref : Tac.mref) : Ast.typ option =
  match Classtable.lookup_method t.prog.Program.table mref.Tac.rclass
          mref.Tac.rname mref.Tac.rarity with
  | Some mi -> Some mi.Classtable.mi_ret
  | None -> None

(* Apply the native transfer summary for an unresolvable callee. *)
let apply_native_summary t ~caller ~site ~(target : Tac.mref) ~args ~ret =
  Callgraph.add_native_call t.cg ~caller ~site ~target;
  (match ret with
   | Some r ->
     let rp = pk_var t caller r in
     let transfers =
       Models.Natives.summary ~meth_id:(Tac.mref_id target)
         ~arity:(List.length args) ~has_ret:true
     in
     let rt = ret_type_of t target in
     let filter =
       match rt with
       | Some (Ast.Tclass c) -> Some c
       | _ -> None
     in
     List.iter
       (fun (tr : Models.Natives.transfer) ->
          match tr.Models.Natives.t_to with
          | Models.Natives.Ret ->
            (match List.nth_opt args tr.Models.Natives.t_from with
             | Some a -> add_edge t ?filter (pk_var t caller a) rp
             | None -> ())
          | Models.Natives.Param _ -> ())
       transfers;
     (* a native declared to return String produces a string value; one
        declared to return an array produces a per-call-site array object,
        so loads of its contents resolve (e.g. getParameterValues) *)
     (match rt with
      | Some (Ast.Tclass "String") -> add_ik t rp (Keys.ik t.u Keys.Ik_string)
      | Some (Ast.Tarray elem) ->
        let cls = Fmt.str "%a[]" Ast.pp_typ elem in
        add_ik t rp
          (Keys.ik t.u (Keys.Ik_alloc { site; cls; hctx = Keys.Cx_empty }))
      | _ -> ())
   | None -> ())

let connect_call t ~caller ~callee_node ~args ~ret =
  let callee = Callgraph.node t.cg callee_node in
  let formal_filter i =
    (* receivers are filtered by the implementing class for precision *)
    if i = 0 && not callee.Callgraph.n_method.Tac.m_static then
      Some callee.Callgraph.n_method.Tac.m_class
    else None
  in
  List.iteri
    (fun i a ->
       add_edge t ?filter:(formal_filter i) (pk_var t caller a)
         (pk_var t callee_node i))
    args;
  (match ret with
   | Some r -> add_edge t (pk t (Keys.Pk_ret callee_node)) (pk_var t caller r)
   | None -> ())

let resolve_to_node t ~caller ~site ~(impl : Tac.meth) ~receiver =
  let callee_id = Tac.method_id impl in
  let ctx =
    Policy.callee_context t.cfg.policy ~site ~callee_id ~receiver
  in
  if node_budget_ok t
     || Callgraph.find_node t.cg callee_id ctx <> None then begin
    let nid =
      Callgraph.ensure_node t.cg impl ctx ~fresh:(fun id -> enqueue_pending t id)
    in
    ignore (Callgraph.add_edge t.cg ~caller ~site ~callee:nid);
    Some nid
  end
  else begin
    t.stats.dropped_calls <- t.stats.dropped_calls + 1;
    Telemetry.incr m_dropped_calls;
    None
  end

let dispatch_one t (vc : vcall) ikid =
  t.stats.dispatches <- t.stats.dispatches + 1;
  Telemetry.incr m_dispatches;
  let ikey = Keys.ik_of t.u ikid in
  let runtime_class = Keys.inst_class ikey in
  (* receiver must be compatible with the call's declared class unless the
     declared class is unknown (interfaces, Object, ...) *)
  let impl =
    match vc.vc_dispatch_class with
    | Some c ->
      (match Classtable.lookup_method t.prog.Program.table c
               vc.vc_target.Tac.rname vc.vc_target.Tac.rarity with
       | Some mi ->
         Program.find_method t.prog
           (Printf.sprintf "%s.%s/%d" mi.Classtable.mi_class
              vc.vc_target.Tac.rname vc.vc_target.Tac.rarity)
       | None -> None)
    | None -> find_impl t vc.vc_target ~runtime_class:(Some runtime_class)
  in
  match impl with
  | Some m when m.Tac.m_has_body && not (t.cfg.excluded_class m.Tac.m_class) ->
    (match
       resolve_to_node t ~caller:vc.vc_caller ~site:vc.vc_site ~impl:m
         ~receiver:(Some ikey)
     with
     | Some nid ->
       connect_call t ~caller:vc.vc_caller ~callee_node:nid
         ~args:vc.vc_args ~ret:vc.vc_ret
     | None -> ())
  | Some _ | None ->
    if not vc.vc_native_done then begin
      vc.vc_native_done <- true;
      apply_native_summary t ~caller:vc.vc_caller ~site:vc.vc_site
        ~target:vc.vc_target ~args:vc.vc_args ~ret:vc.vc_ret
    end

let process_vcall t (vc : vcall) recv_pk =
  let current = pts t recv_pk in
  let fresh = Int_set.diff current vc.vc_seen in
  vc.vc_seen <- Int_set.union vc.vc_seen fresh;
  Int_set.iter (fun ikid -> dispatch_one t vc ikid) fresh

let process_base_constraint t (c : base_constraint) base_pk =
  let current = pts t base_pk in
  match c with
  | Cb_load lc ->
    let fresh = Int_set.diff current lc.seen in
    lc.seen <- Int_set.union lc.seen fresh;
    Int_set.iter
      (fun ikid ->
         List.iter
           (fun f -> add_edge t (pk t (Keys.Pk_field (ikid, f))) lc.dst)
           lc.fields)
      fresh
  | Cb_store sc ->
    let fresh = Int_set.diff current sc.seen in
    sc.seen <- Int_set.union sc.seen fresh;
    Int_set.iter
      (fun ikid ->
         List.iter
           (fun f -> add_edge t sc.src (pk t (Keys.Pk_field (ikid, f))))
           sc.fields)
      fresh

let add_base_constraint t base_pk (c : base_constraint) =
  let lst =
    match Hashtbl.find_opt t.base_cs base_pk with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.base_cs base_pk l;
      l
  in
  lst := c :: !lst;
  process_base_constraint t c base_pk

let add_vcall t recv_pk (vc : vcall) =
  let lst =
    match Hashtbl.find_opt t.vcalls recv_pk with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.vcalls recv_pk l;
      l
  in
  lst := vc :: !lst;
  process_vcall t vc recv_pk

(* ------------------------------------------------------------------ *)
(* Constraint generation per node                                     *)
(* ------------------------------------------------------------------ *)

let const_of t (m : Tac.meth) =
  let id = Tac.method_id m in
  match Hashtbl.find_opt t.const_cache id with
  | Some f -> f
  | None ->
    let f = Models.Dict_model.const_of_meth m in
    Hashtbl.replace t.const_cache id f;
    f

let note_field_access t node f ~write =
  let table = if write then t.field_writers else t.field_readers in
  let set =
    match Hashtbl.find_opt table f with
    | Some s -> s
    | None ->
      let s = ref Int_set.empty in
      Hashtbl.replace table f s;
      s
  in
  set := Int_set.add node !set

let add_call_constraints t node (c : Tac.call) const_of_var =
  let caller = node in
  match Models.Dict_model.classify ~const_of:const_of_var c with
  | Some (Models.Dict_model.Dict_put { recv; key; value }) ->
    let fields =
      List.map Keys.field_of_tac (Models.Dict_model.put_fields key)
    in
    List.iter (fun f -> note_field_access t node f ~write:true) fields;
    add_base_constraint t (pk_var t caller recv)
      (Cb_store { fields; src = pk_var t caller value; seen = Int_set.empty })
  | Some (Models.Dict_model.Dict_get { dst; recv; key }) ->
    let fields =
      List.map Keys.field_of_tac (Models.Dict_model.get_fields key)
    in
    List.iter (fun f -> note_field_access t node f ~write:false) fields;
    add_base_constraint t (pk_var t caller recv)
      (Cb_load { fields; dst = pk_var t caller dst; seen = Int_set.empty })
  | None ->
    (match c.Tac.kind with
     | Tac.Static ->
       (match find_impl t c.Tac.target ~runtime_class:None with
        | Some m when m.Tac.m_has_body
                   && not (t.cfg.excluded_class m.Tac.m_class) ->
          (match
             resolve_to_node t ~caller ~site:c.Tac.site ~impl:m ~receiver:None
           with
           | Some nid ->
             connect_call t ~caller ~callee_node:nid
               ~args:c.Tac.args ~ret:c.Tac.ret
           | None -> ())
        | Some _ | None ->
          apply_native_summary t ~caller ~site:c.Tac.site ~target:c.Tac.target
            ~args:c.Tac.args ~ret:c.Tac.ret)
     | Tac.Virtual | Tac.Special ->
       (match c.Tac.args with
        | recv :: _ ->
          let vc =
            { vc_caller = caller;
              vc_site = c.Tac.site;
              vc_target = c.Tac.target;
              vc_dispatch_class =
                (match c.Tac.kind with
                 | Tac.Special -> Some c.Tac.target.Tac.rclass
                 | Tac.Virtual | Tac.Static -> None);
              vc_args = c.Tac.args;
              vc_ret = c.Tac.ret;
              vc_seen = Int_set.empty;
              vc_native_done = false }
          in
          add_vcall t (pk_var t caller recv) vc
        | [] -> ()))

let add_node_constraints t node =
  let n = Callgraph.node t.cg node in
  let m = n.Callgraph.n_method in
  let ctx = n.Callgraph.n_ctx in
  let cvar = pk_var t node in
  let const_of_var = const_of t m in
  let string_ik = Keys.ik t.u Keys.Ik_string in
  Array.iter
    (fun (b : Tac.block) ->
       List.iter
         (fun (p : Tac.phi) ->
            List.iter
              (fun (_, a) -> add_edge t (cvar a) (cvar p.Tac.phi_lhs))
              p.Tac.phi_args)
         b.Tac.phis;
       Array.iter
         (fun ins ->
            match ins with
            | Tac.Const (d, Tac.Cstr _) -> add_ik t (cvar d) string_ik
            | Tac.Strcat (d, _, _) -> add_ik t (cvar d) string_ik
            | Tac.Const _ | Tac.Binop _ | Tac.Unop _ | Tac.Array_len _
            | Tac.Instance_of _ | Tac.Nop -> ()
            | Tac.Move (d, s) -> add_edge t (cvar s) (cvar d)
            | Tac.Cast (d, ty, s) ->
              let filter =
                match ty with Ast.Tclass c -> Some c | _ -> None
              in
              add_edge t ?filter (cvar s) (cvar d)
            | Tac.New (d, cls, site) ->
              let hctx =
                Policy.heap_context t.cfg.policy ~cls ~alloc_ctx:ctx
              in
              add_ik t (cvar d)
                (Keys.ik t.u (Keys.Ik_alloc { site; cls; hctx }))
            | Tac.New_array (d, ty, _, site) ->
              let cls = Fmt.str "%a[]" Ast.pp_typ ty in
              add_ik t (cvar d)
                (Keys.ik t.u (Keys.Ik_alloc { site; cls; hctx = Keys.Cx_empty }))
            | Tac.Load (d, o, f) ->
              let f = Keys.field_of_tac f in
              note_field_access t node f ~write:false;
              add_base_constraint t (cvar o)
                (Cb_load { fields = [ f ]; dst = cvar d; seen = Int_set.empty })
            | Tac.Store (o, f, v) ->
              let f = Keys.field_of_tac f in
              note_field_access t node f ~write:true;
              add_base_constraint t (cvar o)
                (Cb_store { fields = [ f ]; src = cvar v; seen = Int_set.empty })
            | Tac.Sload (d, f) ->
              add_edge t (pk t (Keys.Pk_static (Keys.field_of_tac f))) (cvar d)
            | Tac.Sstore (f, v) ->
              add_edge t (cvar v) (pk t (Keys.Pk_static (Keys.field_of_tac f)))
            | Tac.Aload (d, a, _) ->
              note_field_access t node Keys.elem_field ~write:false;
              add_base_constraint t (cvar a)
                (Cb_load { fields = [ Keys.elem_field ]; dst = cvar d;
                           seen = Int_set.empty })
            | Tac.Astore (a, _, v) ->
              note_field_access t node Keys.elem_field ~write:true;
              add_base_constraint t (cvar a)
                (Cb_store { fields = [ Keys.elem_field ]; src = cvar v;
                            seen = Int_set.empty })
            | Tac.Catch_entry (v, exn_cls) ->
              add_edge t ~filter:exn_cls (pk t Keys.Pk_exn) (cvar v);
              (* the runtime can always throw, independent of application
                 throw statements (§4.1.2 leak modeling) *)
              add_ik t (cvar v) (Keys.ik t.u (Keys.Ik_exn exn_cls))
            | Tac.Call c -> add_call_constraints t node c const_of_var)
         b.Tac.instrs;
       (match b.Tac.term with
        | Tac.Return (Some v) ->
          add_edge t (cvar v) (pk t (Keys.Pk_ret node))
        | Tac.Throw v -> add_edge t (cvar v) (pk t Keys.Pk_exn)
        | Tac.Return None | Tac.Goto _ | Tac.If _ | Tac.Unreachable -> ()))
    m.Tac.m_blocks

(* ------------------------------------------------------------------ *)
(* Solving                                                            *)
(* ------------------------------------------------------------------ *)

(* Poll the cooperative interrupt; once true it latches, so a tripped
   deadline stops every later loop too. *)
let interrupted_now t =
  t.interrupted
  ||
  if t.cfg.interrupt () then begin
    t.interrupted <- true;
    true
  end
  else false

let solve t =
  Telemetry.incr m_fixpoint_rounds;
  while not (Queue.is_empty t.work) && not (interrupted_now t) do
    Telemetry.observe h_worklist (Queue.length t.work);
    let p = Queue.pop t.work in
    t.dirty.(p) <- false;
    t.stats.propagations <- t.stats.propagations + 1;
    Telemetry.incr m_propagations;
    (match t.cfg.max_work with
     | Some m when t.stats.propagations > m -> raise Out_of_budget
     | _ -> ());
    let facts = t.pts.(p) in
    (* subset edges *)
    List.iter
      (fun (dst, filter) ->
         let moved = ref false in
         Int_set.iter
           (fun ikid ->
              if not (Int_set.mem ikid t.pts.(dst)) then begin
                let cls = Keys.inst_class (Keys.ik_of t.u ikid) in
                if class_passes_filter t cls filter then begin
                  t.pts.(dst) <- Int_set.add ikid t.pts.(dst);
                  moved := true
                end
              end)
           facts;
         if !moved then mark_dirty t dst)
      t.succ.(p);
    (* complex constraints keyed on this pointer *)
    (match Hashtbl.find_opt t.base_cs p with
     | Some cs -> List.iter (fun c -> process_base_constraint t c p) !cs
     | None -> ());
    (match Hashtbl.find_opt t.vcalls p with
     | Some vcs -> List.iter (fun vc -> process_vcall t vc p) !vcs
     | None -> ())
  done

let next_pending t : int option =
  if t.cfg.prioritized then begin
    let rec loop () =
      match Pq.pop t.pending_prio with
      | None -> None
      | Some (p, node) ->
        if Hashtbl.mem t.processed node then loop ()
        else if p > priority_of t node then begin
          (* stale entry; a better one is in the heap *)
          loop ()
        end
        else Some node
    in
    loop ()
  end
  else
    let rec loop () =
      if Queue.is_empty t.pending_fifo then None
      else
        let node = Queue.pop t.pending_fifo in
        if Hashtbl.mem t.processed node then loop () else Some node
    in
    loop ()

let create ?(config : config option) (prog : Program.t) : t =
  let cfg = match config with Some c -> c | None -> default_config () in
  let default_prio =
    match cfg.max_nodes with Some m -> m | None -> max_int / 2
  in
  { prog;
    u = Keys.create_universe ();
    cg = Callgraph.create ();
    cfg;
    interrupted = false;
    pts = Array.make 1024 Int_set.empty;
    succ = Array.make 1024 [];
    edge_seen = Hashtbl.create 4096;
    base_cs = Hashtbl.create 1024;
    vcalls = Hashtbl.create 1024;
    dirty = Array.make 1024 false;
    work = Queue.create ();
    pending_fifo = Queue.create ();
    pending_prio = Pq.create ();
    prio = Hashtbl.create 256;
    processed = Hashtbl.create 256;
    field_writers = Hashtbl.create 256;
    field_readers = Hashtbl.create 256;
    const_cache = Hashtbl.create 256;
    stats =
      { nodes_processed = 0; dropped_calls = 0; propagations = 0;
        dispatches = 0 };
    default_prio }

(** Run pointer analysis and call-graph construction from the program's
    entrypoints (plus all class initializers). *)
let run ?config (prog : Program.t) : t =
  let t = create ?config prog in
  let seed id =
    match Program.find_method prog id with
    | Some m when m.Tac.m_has_body ->
      ignore
        (Callgraph.ensure_node t.cg m Keys.Cx_empty
           ~fresh:(fun nid -> enqueue_pending t nid))
    | Some _ | None -> ()
  in
  List.iter seed prog.Program.clinits;
  List.iter seed prog.Program.entrypoints;
  Telemetry.with_span "pointer.fixpoint" (fun () ->
      let continue = ref true in
      while !continue do
        if interrupted_now t then continue := false
        else
          match next_pending t with
          | None -> continue := false
          | Some node ->
            Hashtbl.replace t.processed node ();
            t.stats.nodes_processed <- t.stats.nodes_processed + 1;
            Telemetry.incr m_nodes_processed;
            update_priorities t node;
            Telemetry.with_span "pointer.cg_growth" (fun () ->
                add_node_constraints t node);
            Telemetry.with_span "pointer.solve" (fun () -> solve t)
      done);
  Telemetry.set g_cg_nodes (Callgraph.node_count t.cg);
  Telemetry.set g_cg_edges (Callgraph.edge_count t.cg);
  Telemetry.set g_cg_budget
    (match t.cfg.max_nodes with Some m -> m | None -> -1);
  t

(* ------------------------------------------------------------------ *)
(* Results API                                                        *)
(* ------------------------------------------------------------------ *)

(** Points-to set of a register in a method clone (instance-key ids). *)
let pts_var t ~node v =
  match Keys.Pk_interner.find_opt t.u.Keys.pks (Keys.Pk_var (node, v)) with
  | Some p -> Int_set.elements (pts t p)
  | None -> []

let pts_key t key =
  match Keys.Pk_interner.find_opt t.u.Keys.pks key with
  | Some p -> Int_set.elements (pts t p)
  | None -> []

let inst_key t ikid = Keys.ik_of t.u ikid

let call_graph t = t.cg
let universe t = t.u
let statistics t = t.stats
let interrupted t = t.interrupted
