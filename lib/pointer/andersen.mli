(** Context-sensitive Andersen pointer analysis with on-the-fly call-graph
    construction (§3.1) and priority-driven constraint adding (§6.1).

    The solver alternates constraint adding (per pending method clone) and
    constraint solving (subset-edge propagation to a fixed point). Under a
    node budget the pending queue is FIFO ("chaotic iteration") or a
    priority queue driven by the locality-of-taint heuristic. *)

type config = {
  policy : Policy.t;
  max_nodes : int option;              (** §6.1 call-graph node budget *)
  prioritized : bool;                  (** priority-driven vs chaotic *)
  is_source_method : string -> bool;   (** taint sources, for priorities *)
  excluded_class : string -> bool;     (** whitelisted library code *)
  max_work : int option;
      (** hard budget on propagation steps; exceeding it raises
          {!Out_of_budget} (models the CS configuration's memory ceiling) *)
  interrupt : unit -> bool;
      (** cooperative cancellation/deadline poll: when it returns [true] the
          solver stops cleanly and the partial result is returned — an
          underapproximation, like a tripped node budget *)
}

exception Out_of_budget

val default_config : ?policy:Policy.t -> unit -> config

type stats = {
  mutable nodes_processed : int;
  mutable dropped_calls : int;         (** calls lost to the node budget *)
  mutable propagations : int;
  mutable dispatches : int;
}

type t

(** Run pointer analysis and call-graph construction from the program's
    entrypoints plus all class initializers. Raises {!Out_of_budget} when
    [max_work] is exceeded. *)
val run : ?config:config -> Jir.Program.t -> t

(** Points-to set of a register in a method clone, as instance-key ids. *)
val pts_var : t -> node:int -> Jir.Tac.var -> int list

(** Points-to set of an arbitrary pointer key. *)
val pts_key : t -> Keys.ptr_key -> int list

(** Decode an instance-key id. *)
val inst_key : t -> int -> Keys.inst_key

val call_graph : t -> Callgraph.t
val universe : t -> Keys.universe
val statistics : t -> stats

(** Did [config.interrupt] stop the solver before the fixed point? *)
val interrupted : t -> bool
