(** Context-sensitive call graph built on the fly by the pointer analysis.

    A node is a method clone: a method id paired with a calling context.
    Edges are recorded per call site; call sites whose target has no
    analyzable body (natives, whitelisted code) are recorded separately so
    the dependence-graph builder can apply transfer summaries. *)

module Int_set = Set.Make (Int)

(* Cumulative growth counters (across every analysis run of the process),
   complementing the per-run [cg_nodes]/[cg_edges] gauges the solver sets. *)
let m_nodes_created = Obs.Telemetry.counter "pointer.cg_nodes_created"
let m_edges_created = Obs.Telemetry.counter "pointer.cg_edges_created"

type node = {
  n_id : int;
  n_method : Jir.Tac.meth;
  n_ctx : Keys.context;
}

type t = {
  mutable nodes : node array;
  mutable node_count : int;
  intern : (string * Keys.context, int) Hashtbl.t;
  edges : (int * int, Int_set.t ref) Hashtbl.t;       (* (caller, site) -> callees *)
  rev_edges : (int, Int_set.t ref) Hashtbl.t;         (* callee -> callers *)
  native_calls : (int * int, Jir.Tac.mref list ref) Hashtbl.t;
  out_nodes : (int, Int_set.t ref) Hashtbl.t;         (* caller -> callees *)
  mutable edge_count : int;
}

let create () =
  { nodes = [||];
    node_count = 0;
    intern = Hashtbl.create 1024;
    edges = Hashtbl.create 4096;
    rev_edges = Hashtbl.create 1024;
    native_calls = Hashtbl.create 256;
    out_nodes = Hashtbl.create 1024;
    edge_count = 0 }

let node_count t = t.node_count
let node t i = t.nodes.(i)
let edge_count t = t.edge_count

let find_node t meth_id ctx = Hashtbl.find_opt t.intern (meth_id, ctx)

(** Get or create the node for a method clone. [fresh] is called exactly
    when a new node is created (used to enqueue pending constraint work). *)
let ensure_node t (m : Jir.Tac.meth) (ctx : Keys.context)
    ~(fresh : int -> unit) : int =
  let key = (Jir.Tac.method_id m, ctx) in
  match Hashtbl.find_opt t.intern key with
  | Some i -> i
  | None ->
    let i = t.node_count in
    let n = { n_id = i; n_method = m; n_ctx = ctx } in
    if i = 0 && Array.length t.nodes = 0 then t.nodes <- Array.make 64 n
    else if i >= Array.length t.nodes then begin
      let bigger = Array.make (2 * Array.length t.nodes) n in
      Array.blit t.nodes 0 bigger 0 (Array.length t.nodes);
      t.nodes <- bigger
    end;
    t.nodes.(i) <- n;
    t.node_count <- i + 1;
    Hashtbl.replace t.intern key i;
    Obs.Telemetry.incr m_nodes_created;
    fresh i;
    i

let add_edge t ~caller ~site ~callee =
  let set =
    match Hashtbl.find_opt t.edges (caller, site) with
    | Some s -> s
    | None ->
      let s = ref Int_set.empty in
      Hashtbl.replace t.edges (caller, site) s;
      s
  in
  if not (Int_set.mem callee !set) then begin
    set := Int_set.add callee !set;
    t.edge_count <- t.edge_count + 1;
    Obs.Telemetry.incr m_edges_created;
    let rev =
      match Hashtbl.find_opt t.rev_edges callee with
      | Some s -> s
      | None ->
        let s = ref Int_set.empty in
        Hashtbl.replace t.rev_edges callee s;
        s
    in
    rev := Int_set.add caller !rev;
    let out =
      match Hashtbl.find_opt t.out_nodes caller with
      | Some s -> s
      | None ->
        let s = ref Int_set.empty in
        Hashtbl.replace t.out_nodes caller s;
        s
    in
    out := Int_set.add callee !out;
    true
  end
  else false

let add_native_call t ~caller ~site ~(target : Jir.Tac.mref) =
  let lst =
    match Hashtbl.find_opt t.native_calls (caller, site) with
    | Some l -> l
    | None ->
      let l = ref [] in
      Hashtbl.replace t.native_calls (caller, site) l;
      l
  in
  if not (List.mem target !lst) then lst := target :: !lst

let callees t ~caller ~site =
  match Hashtbl.find_opt t.edges (caller, site) with
  | Some s -> Int_set.elements !s
  | None -> []

let native_targets t ~caller ~site =
  match Hashtbl.find_opt t.native_calls (caller, site) with
  | Some l -> !l
  | None -> []

let callers t ~callee =
  match Hashtbl.find_opt t.rev_edges callee with
  | Some s -> Int_set.elements !s
  | None -> []

(** All successors of a node across its call sites. *)
let successors t n =
  match Hashtbl.find_opt t.out_nodes n with
  | Some s -> Int_set.elements !s
  | None -> []

let iter_nodes t f =
  for i = 0 to t.node_count - 1 do
    f t.nodes.(i)
  done

let iter_edges t f =
  Hashtbl.iter
    (fun (caller, site) set ->
       Int_set.iter (fun callee -> f ~caller ~site ~callee) !set)
    t.edges

(** Nodes of a given method id (all its context clones). *)
let clones_of t meth_id =
  let acc = ref [] in
  iter_nodes t (fun n ->
      if String.equal (Jir.Tac.method_id n.n_method) meth_id then
        acc := n.n_id :: !acc);
  List.rev !acc
