(** The heap graph (§4.1.1): a bipartite view of the pointer-analysis
    solution over instance keys and pointer keys, supporting the reachability
    queries of the taint-carrier detection algorithm.

    An edge [P → I] means pointer key P may point to instance key I; an edge
    [I → P] means P is a field (or the array contents) of I. Taint-carrier
    detection asks for the set of instance keys reachable from a sink
    argument's points-to set within a bounded number of field dereferences
    (§6.2.3). *)

module Int_set = Set.Make (Int)

type t = {
  (* instance key -> (field, pointed-to instance keys) *)
  fields_of : (int, (Keys.field * Int_set.t) list) Hashtbl.t;
}

(** Materialize the heap graph from a finished pointer analysis. *)
let build (a : Andersen.t) : t =
  Obs.Telemetry.with_span "pointer.heapgraph" @@ fun () ->
  let u = Andersen.universe a in
  let fields_of = Hashtbl.create 1024 in
  for p = 0 to Keys.pk_count u - 1 do
    match Keys.pk_of u p with
    | Keys.Pk_field (ikid, f) ->
      let pointees = Int_set.of_list (Andersen.pts_key a (Keys.Pk_field (ikid, f))) in
      if not (Int_set.is_empty pointees) then begin
        let prev = Option.value ~default:[] (Hashtbl.find_opt fields_of ikid) in
        Hashtbl.replace fields_of ikid ((f, pointees) :: prev)
      end
    | Keys.Pk_var _ | Keys.Pk_static _ | Keys.Pk_ret _ | Keys.Pk_exn -> ()
  done;
  { fields_of }

let successors t ikid : Int_set.t =
  match Hashtbl.find_opt t.fields_of ikid with
  | Some l ->
    List.fold_left (fun acc (_, s) -> Int_set.union s acc) Int_set.empty l
  | None -> Int_set.empty

(** Instance keys reachable from [roots] through at most [depth] field
    dereferences (inclusive of the roots themselves). [depth = 0] returns
    just the roots; the paper found [depth = 2] sufficient (§6.2.3).
    [depth < 0] means unbounded. *)
let reachable t ~depth (roots : Int_set.t) : Int_set.t =
  let rec go frontier seen d =
    if Int_set.is_empty frontier || d = 0 then seen
    else begin
      let next =
        Int_set.fold
          (fun ik acc -> Int_set.union (successors t ik) acc)
          frontier Int_set.empty
      in
      let fresh = Int_set.diff next seen in
      go fresh (Int_set.union seen fresh) (d - 1)
    end
  in
  go roots roots depth
