(** Scoring: run a configuration on a generated app and classify the reported
    issues against the generator's ground truth — the mechanized counterpart
    of the paper's manual true/false-positive evaluation (Figure 4, §7.2). *)

open Core

type classification = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;      (* planted real flows with no report *)
  unattributed : int;         (* reports whose sink matches no pattern *)
}

let accuracy c =
  let reported = c.true_positives + c.false_positives in
  if reported = 0 then 0.0
  else float_of_int c.true_positives /. float_of_int reported

type refined = {
  confirmed_issues : int;
  plausible_issues : int;
  confirmed_tp : int;
  confirmed_fp : int;
      (* the headline precision metric: false positives *among the
         Confirmed subset* vs. the overall false-positive count *)
}

type sanitization = {
  sz_mismatched : int;        (* issues judged mismatched-sanitizer *)
  sz_unsanitized : int;
  sz_expected : int;          (* planted patterns carrying an expected pair *)
  sz_matched : int;
      (* of those, reported as mismatched with exactly the expected
         (applied sanitizer, required context). The acceptance gate is
         [sz_matched = sz_expected]: no planted mismatch may be missed. *)
}

type run = {
  r_app : string;
  r_algorithm : Config.algorithm;
  r_completed : bool;
  r_issues : int;
  r_seconds : float;
  r_cg_nodes : int;
  r_classification : classification option;  (* None if did not complete *)
  r_phases : Taj.phase_times option;         (* None if did not complete *)
  r_refined : refined option;                (* None unless refine ran *)
  r_sanitization : sanitization option;      (* None unless contexts ran *)
}

(** Attribute each reported issue to its planted pattern and classify. *)
let classify_issues (truth : Ground_truth.t) (builder : Sdg.Builder.t)
    (issues : Report.issue_report list) : classification =
  let tp = ref 0 and fp = ref 0 and unattributed = ref 0 in
  let hit_patterns = Hashtbl.create 32 in
  List.iter
    (fun (ir : Report.issue_report) ->
       let sink = ir.Report.ir_representative.Flows.fl_sink in
       let m = Sdg.Builder.node_meth builder sink.Sdg.Stmt.node in
       match
         Ground_truth.attribute truth ~cls:m.Jir.Tac.m_class
           ~meth:m.Jir.Tac.m_name
       with
       | Some p ->
         Hashtbl.replace hit_patterns (p.Ground_truth.p_id, p.Ground_truth.p_sink_method) ();
         if p.Ground_truth.p_real then incr tp else incr fp
       | None -> incr unattributed)
    issues;
  let fn =
    List.length
      (List.filter
         (fun (p : Ground_truth.planted) ->
            p.Ground_truth.p_real
            && not
                 (Hashtbl.mem hit_patterns
                    (p.Ground_truth.p_id, p.Ground_truth.p_sink_method)))
         truth)
  in
  { true_positives = !tp;
    false_positives = !fp;
    false_negatives = fn;
    unattributed = !unattributed }

let classify (truth : Ground_truth.t) (builder : Sdg.Builder.t)
    (report : Report.t) : classification =
  classify_issues truth builder report.Report.issues

(* Per-verdict classification: score the Confirmed subset on its own. *)
let refined_of (truth : Ground_truth.t) (builder : Sdg.Builder.t)
    (report : Report.t) : refined option =
  match Report.verdict_counts report with
  | None -> None
  | Some (confirmed_issues, plausible_issues) ->
    let confirmed =
      List.filter
        (fun (ir : Report.issue_report) ->
           ir.Report.ir_verdict = Some Sdg.Refine.Confirmed)
        report.Report.issues
    in
    let c = classify_issues truth builder confirmed in
    Some
      { confirmed_issues;
        plausible_issues;
        confirmed_tp = c.true_positives;
        confirmed_fp = c.false_positives }

(* Per-sanitization-verdict scoring: check every planted expected
   (applied, required) pair against the judged reports. *)
let sanitization_of (truth : Ground_truth.t) (builder : Sdg.Builder.t)
    (report : Report.t) : sanitization option =
  match Report.sanitization_counts report with
  | None -> None
  | Some (sz_mismatched, sz_unsanitized) ->
    let expected =
      List.filter
        (fun (p : Ground_truth.planted) -> p.Ground_truth.p_expect <> None)
        truth
    in
    let reported_pair (p : Ground_truth.planted) =
      List.exists
        (fun (ir : Report.issue_report) ->
           let sink = ir.Report.ir_representative.Flows.fl_sink in
           let m = Sdg.Builder.node_meth builder sink.Sdg.Stmt.node in
           String.equal m.Jir.Tac.m_class p.Ground_truth.p_class
           && String.equal m.Jir.Tac.m_name p.Ground_truth.p_sink_method
           &&
           match ir.Report.ir_sanitization, p.Ground_truth.p_expect with
           | ( Some (Strings.Context.Mismatched_sanitizer
                       { applied; required }),
               Some (exp_applied, exp_required) ) ->
             List.mem exp_applied applied
             && String.equal (Strings.Context.name required) exp_required
           | _ -> false)
        report.Report.issues
    in
    Some
      { sz_mismatched;
        sz_unsanitized;
        sz_expected = List.length expected;
        sz_matched = List.length (List.filter reported_pair expected) }

(** Run one algorithm over a loaded app and score it. [refine] switches on
    the access-path second pass; [refine_k]/[refine_steps] tune it;
    [contexts] switches on the sanitization judge. *)
let run_config ?(jobs = 1) ?(refine = false) ?(refine_k = 3)
    ?(refine_steps = 4096) ?(triage_filter = true) ?(contexts = false)
    ~(loaded : Taj.loaded) ~(truth : Ground_truth.t) ~(app : string)
    ~(scale : float) (algorithm : Config.algorithm) : run =
  let config =
    { (Config.preset ~scale algorithm) with
      Config.refine; refine_k; refine_steps; triage_filter; contexts }
  in
  (* wall clock, not CPU time: Table 3 reports elapsed analysis time *)
  let analysis, seconds =
    Obs.Telemetry.timed (fun () -> Taj.run ~jobs loaded config)
  in
  match analysis.Taj.result with
  | Taj.Did_not_complete _ ->
    { r_app = app; r_algorithm = algorithm; r_completed = false;
      r_issues = 0; r_seconds = seconds; r_cg_nodes = 0;
      r_classification = None; r_phases = None; r_refined = None;
      r_sanitization = None }
  | Taj.Completed c ->
    { r_app = app;
      r_algorithm = algorithm;
      r_completed = true;
      r_issues = Report.issue_count c.Taj.report;
      r_seconds = seconds;
      r_cg_nodes = c.Taj.cg_nodes;
      r_classification = Some (classify truth c.Taj.builder c.Taj.report);
      r_phases = Some c.Taj.times;
      r_refined = refined_of truth c.Taj.builder c.Taj.report;
      r_sanitization = sanitization_of truth c.Taj.builder c.Taj.report }

(** Run all five Table 1 configurations over one app. *)
let run_app ?(scale = 0.05) ?(jobs = 1) ?(refine = false) ?(refine_k = 3)
    ?(refine_steps = 4096) ?(triage_filter = true) ?(contexts = false)
    ?(algorithms = Config.all_algorithms) (a : Apps.app) : run list =
  let g = Apps.generate ~scale a in
  let loaded = Taj.load ~jobs (Codegen.to_input g) in
  List.map
    (run_config ~jobs ~refine ~refine_k ~refine_steps ~triage_filter
       ~contexts ~loaded ~truth:g.Codegen.g_truth ~app:a.Apps.name ~scale)
    algorithms

(** {!run_app}, but a failure is returned as [(phase, error)] instead of
    raised — the machine-readable form the bench harness needs to emit
    failure rows with phase attribution. *)
let run_app_result ?(scale = 0.05) ?(jobs = 1) ?(refine = false)
    ?(refine_k = 3) ?(refine_steps = 4096) ?(triage_filter = true)
    ?(contexts = false) ?(algorithms = Config.all_algorithms)
    (a : Apps.app) : (run list, string * string) result =
  match Apps.generate ~scale a with
  | exception e -> Error ("generate", Printexc.to_string e)
  | g ->
    (match Taj.load ~jobs (Codegen.to_input g) with
     | exception e -> Error ("frontend", Printexc.to_string e)
     | loaded ->
       (match
          List.map
            (run_config ~jobs ~refine ~refine_k ~refine_steps
               ~triage_filter ~contexts ~loaded ~truth:g.Codegen.g_truth
               ~app:a.Apps.name ~scale)
            algorithms
        with
        | runs -> Ok runs
        | exception e -> Error ("analysis", Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Per-rung scoring: walk the degradation ladder                      *)
(* ------------------------------------------------------------------ *)

type rung_run = {
  rr_rung : string;
  rr_completed : bool;
  rr_seconds : float;
  rr_issues : int;
  rr_classification : classification option;
}

(** Attribute triage sink findings by the (class, method) they live in —
    the same attribution key {!classify_issues} derives from the sink
    statement's SDG node, but read straight off the finding so no
    builder is needed. A pattern hit by several findings counts once
    toward the false-negative complement, like the issue-level path. *)
let classify_triage (truth : Ground_truth.t)
    (findings : Triage.finding list) : classification =
  let tp = ref 0 and fp = ref 0 and unattributed = ref 0 in
  let hit_patterns = Hashtbl.create 32 in
  List.iter
    (fun (f : Triage.finding) ->
       match
         Ground_truth.attribute truth ~cls:f.Triage.f_class
           ~meth:f.Triage.f_meth
       with
       | Some p ->
         Hashtbl.replace hit_patterns
           (p.Ground_truth.p_id, p.Ground_truth.p_sink_method) ();
         if p.Ground_truth.p_real then incr tp else incr fp
       | None -> incr unattributed)
    findings;
  let fn =
    List.length
      (List.filter
         (fun (p : Ground_truth.planted) ->
            p.Ground_truth.p_real
            && not
                 (Hashtbl.mem hit_patterns
                    (p.Ground_truth.p_id, p.Ground_truth.p_sink_method)))
         truth)
  in
  { true_positives = !tp;
    false_positives = !fp;
    false_negatives = fn;
    unattributed = !unattributed }

(** Score every rung of [algorithm]'s degradation ladder over one app:
    the requested configuration first, then each fallback the supervisor
    would try, ending at the type-triage rung zero. The rung-zero row is
    scored from the triage findings directly — recall there must not lose
    a planted true positive (over-approximation), only precision may. *)
let run_rungs ?(scale = 0.05) ?(jobs = 1)
    ?(algorithm = Config.Hybrid_optimized) (a : Apps.app) : rung_run list =
  let g = Apps.generate ~scale a in
  let loaded = Taj.load ~jobs (Codegen.to_input g) in
  let truth = g.Codegen.g_truth in
  let base = Config.preset ~scale algorithm in
  let rungs = (scale, base) :: Config.degradation_ladder ~scale base in
  List.map
    (fun ((_, cfg) as rung) ->
       let label = Config.rung_label rung in
       if cfg.Config.algorithm = Config.Type_triage then begin
         let verdict, seconds =
           Obs.Telemetry.timed (fun () ->
               Taj.triage ~rules:Rules.default_rules loaded)
         in
         let findings = Triage.findings verdict in
         { rr_rung = label;
           rr_completed = true;
           rr_seconds = seconds;
           rr_issues = List.length findings;
           rr_classification = Some (classify_triage truth findings) }
       end
       else
         let analysis, seconds =
           Obs.Telemetry.timed (fun () -> Taj.run ~jobs loaded cfg)
         in
         match analysis.Taj.result with
         | Taj.Did_not_complete _ ->
           { rr_rung = label; rr_completed = false; rr_seconds = seconds;
             rr_issues = 0; rr_classification = None }
         | Taj.Completed c ->
           { rr_rung = label;
             rr_completed = true;
             rr_seconds = seconds;
             rr_issues = Report.issue_count c.Taj.report;
             rr_classification =
               Some (classify truth c.Taj.builder c.Taj.report) })
    rungs
