(** The 22 benchmark applications of Table 2, with the paper's published
    per-configuration results (Table 3) for side-by-side comparison.

    The anonymized identifiers (A, B, I, S, ST) are kept. Synthetic stand-ins
    are generated at a configurable [scale] of the paper's application-scope
    method counts; each app's pattern count is derived from its hybrid-
    unbounded issue count so the relative taint density is preserved.
    App-specific traits reproduce the paper's qualitative observations:
    BlueBlog, I and SBM carry the cross-thread flows on which CS thin
    slicing has false negatives (2, 1 and 2 respectively, §7.2), BlueBlog
    carries flows long enough for the optimized bounds to cut, and Webgoat
    carries the deep-nested and reflective flows the optimized configuration
    recovers. *)

type paper_result = {
  pr_issues : int option;      (* None = did not complete *)
  pr_seconds : int option;
}

type paper_row = {
  unbounded : paper_result;
  prioritized : paper_result;
  optimized : paper_result;
  cs : paper_result;
  ci : paper_result;
}

type app = {
  name : string;
  version : string;
  files : int;
  lines : int;
  classes_app : int;
  methods_app : int;
  classes_total : int;
  methods_total : int;
  scored : bool;                     (* manually classified in Figure 4 *)
  extra_patterns : (string * int) list;  (* app-specific traits *)
  paper : paper_row;
}

let r i s = { pr_issues = Some i; pr_seconds = Some s }
let dnc = { pr_issues = None; pr_seconds = None }

let row u p o c ci_ = { unbounded = u; prioritized = p; optimized = o;
                        cs = c; ci = ci_ }

let table2 : app list =
  [ { name = "A"; version = "1.0"; files = 121; lines = 746;
      classes_app = 43; methods_app = 2057; classes_total = 4272;
      methods_total = 150339; scored = true;
      extra_patterns = [ ("ejb", 1) ];
      paper = row (r 54 43) (r 33 54) (r 37 23) (r 51 554) (r 73 88) };
    { name = "B"; version = "-"; files = 314; lines = 1680;
      classes_app = 246; methods_app = 9252; classes_total = 14552;
      methods_total = 328941; scored = true;
      extra_patterns = [ ("ejb", 2) ];
      paper = row (r 25 1160) (r 7 242) (r 1 217) dnc (r 67 564) };
    { name = "Blojsom"; version = "3.1"; files = 225; lines = 19984;
      classes_app = 254; methods_app = 7216; classes_total = 10688;
      methods_total = 354114; scored = false;
      extra_patterns = [];
      paper = row (r 238 783) (r 162 222) (r 123 207) dnc (r 504 275) };
    { name = "BlueBlog"; version = "1.0"; files = 32; lines = 650;
      classes_app = 38; methods_app = 1044; classes_total = 7628;
      methods_total = 269056; scored = true;
      extra_patterns = [ ("thread", 2); ("long-real", 1) ];
      paper = row (r 19 5) (r 19 5) (r 12 6) (r 14 376) (r 30 7) };
    { name = "Dlog"; version = "3.0-BETA-2"; files = 240; lines = 17229;
      classes_app = 268; methods_app = 12957; classes_total = 7790;
      methods_total = 284808; scored = false;
      extra_patterns = [];
      paper = row (r 21 873) (r 11 243) (r 6 221) dnc (r 168 602) };
    { name = "Friki"; version = "2.1.1-58"; files = 40; lines = 2339;
      classes_app = 35; methods_app = 1133; classes_total = 3848;
      methods_total = 116480; scored = true;
      extra_patterns = [];
      paper = row (r 60 11) (r 60 10) (r 7 9) (r 14 1392) (r 125 11) };
    { name = "GestCV"; version = "1.0"; files = 159; lines = 107494;
      classes_app = 124; methods_app = 5139; classes_total = 13673;
      methods_total = 473574; scored = true;
      extra_patterns = [ ("ejb", 1) ];
      paper = row (r 21 2461) (r 20 182) (r 7 209) dnc (r 255 760) };
    { name = "Ginp"; version = "1.0"; files = 121; lines = 387;
      classes_app = 73; methods_app = 2941; classes_total = 8076;
      methods_total = 277680; scored = false;
      extra_patterns = [];
      paper = row (r 67 40) (r 67 45) (r 49 28) (r 43 1028) (r 309 75) };
    { name = "GridSphere"; version = "2.2.10"; files = 698; lines = 44767;
      classes_app = 676; methods_app = 32134; classes_total = 10671;
      methods_total = 385609; scored = false;
      extra_patterns = [];
      paper = row (r 803 6505) (r 116 735) (r 261 2467) dnc (r 853 1281) };
    { name = "I"; version = "1.0"; files = 30; lines = 281;
      classes_app = 25; methods_app = 996; classes_total = 4254;
      methods_total = 149278; scored = true;
      extra_patterns = [ ("thread", 1) ];
      paper = row (r 3 8) (r 3 8) (r 3 8) (r 2 16) (r 17 15) };
    { name = "JSPWiki"; version = "2.6"; files = 724; lines = 27000;
      classes_app = 429; methods_app = 13087; classes_total = 9863;
      methods_total = 335828; scored = false;
      extra_patterns = [];
      paper = row (r 68 159) (r 67 270) (r 26 118) dnc (r 381 192) };
    { name = "Lutece"; version = "1.0"; files = 1039; lines = 3065;
      classes_app = 467; methods_app = 12398; classes_total = 7606;
      methods_total = 237137; scored = false;
      extra_patterns = [];
      paper = row (r 3 824) (r 2 28) (r 4 59) dnc (r 41 99) };
    { name = "MVNForum"; version = "1.0.2"; files = 969; lines = 8860;
      classes_app = 608; methods_app = 19722; classes_total = 8979;
      methods_total = 315527; scored = false;
      extra_patterns = [];
      paper = row (r 260 313) (r 100 228) (r 293 205) dnc (r 374 213) };
    { name = "PersonalBlog"; version = "1.2.6"; files = 135; lines = 47007;
      classes_app = 38; methods_app = 1644; classes_total = 4951;
      methods_total = 157794; scored = false;
      extra_patterns = [];
      paper = row (r 454 3708) (r 108 386) (r 48 740) dnc (r 1854 604) };
    { name = "Roller"; version = "0.9.9"; files = 325; lines = 4865;
      classes_app = 251; methods_app = 9786; classes_total = 7200;
      methods_total = 246390; scored = false;
      extra_patterns = [];
      paper = row (r 650 1495) (r 87 175) (r 230 268) dnc (r 3171 794) };
    { name = "S"; version = "-"; files = 168; lines = 2064;
      classes_app = 100; methods_app = 10965; classes_total = 6219;
      methods_total = 393204; scored = true;
      extra_patterns = [ ("ejb", 2) ];
      paper = row (r 395 602) (r 25 398) (r 24 263) dnc (r 697 729) };
    { name = "SBM"; version = "1.08"; files = 125; lines = 5165;
      classes_app = 143; methods_app = 6506; classes_total = 8047;
      methods_total = 283069; scored = true;
      extra_patterns = [ ("thread", 2) ];
      paper = row (r 154 9) (r 154 7) (r 159 6) (r 125 26) (r 161 10) };
    { name = "SnipSnap"; version = "1.0-BETA-1"; files = 828; lines = 85325;
      classes_app = 571; methods_app = 17960; classes_total = 12493;
      methods_total = 455410; scored = false;
      extra_patterns = [];
      paper = row (r 91 279) (r 89 167) (r 94 153) dnc (r 397 291) };
    { name = "SPLC"; version = "1.0"; files = 106; lines = 12447;
      classes_app = 69; methods_app = 3526; classes_total = 6538;
      methods_total = 229417; scored = false;
      extra_patterns = [];
      paper = row (r 40 188) (r 37 279) (r 36 116) dnc (r 103 272) };
    { name = "ST"; version = "-"; files = 1451; lines = 594;
      classes_app = 5956; methods_app = 31309; classes_total = 24221;
      methods_total = 822362; scored = false;
      extra_patterns = [];
      paper = row (r 731 933) (r 369 207) (r 347 277) dnc (r 1830 565) };
    { name = "VQWiki"; version = "1.0"; files = 280; lines = 31325;
      classes_app = 185; methods_app = 6164; classes_total = 4803;
      methods_total = 152341; scored = false;
      extra_patterns = [];
      paper = row (r 888 2450) (r 303 383) (r 545 565) dnc (r 2284 784) };
    { name = "Webgoat"; version = "5.1-20080213"; files = 245; lines = 17656;
      classes_app = 192; methods_app = 14309; classes_total = 6663;
      methods_total = 254726; scored = true;
      extra_patterns = [ ("deep-carrier", 2); ("long-real", 1); ("ejb", 1) ];
      paper = row (r 48 276) (r 27 180) (r 39 193) dnc (r 102 485) };
  ]

(* Ground-truth apps for the context-sensitive sanitization analysis.
   Kept OUT of [table2] (whose length and drawn pattern mixes are frozen
   — tests and the incremental cache key off them) but resolvable by
   name, so `taj generate`/`score` and the contexts bench reach them. *)
let contexts_apps : app list =
  let small name patterns =
    { name; version = "1.0"; files = 4; lines = 120;
      classes_app = 4; methods_app = 600; classes_total = 4;
      methods_total = 600; scored = true;
      extra_patterns = patterns;
      paper = row dnc dnc dnc dnc dnc }
  in
  [ small "CtxForum"
      [ ("mismatch-html-sql", 1); ("mismatch-quote-raw", 1) ];
    small "CtxGallery" [ ("mismatch-path", 1); ("mismatch-html-sql", 1) ];
    small "CtxLedger" [ ("mismatch-quote-raw", 2) ] ]

let find name =
  List.find_opt
    (fun a -> String.equal a.name name)
    (table2 @ contexts_apps)

let scored_apps = List.filter (fun a -> a.scored) table2

(* ------------------------------------------------------------------ *)
(* Spec derivation                                                    *)
(* ------------------------------------------------------------------ *)

(** Derive a generator spec at the given scale. Pattern count tracks the
    paper's hybrid-unbounded issue count; cold mass fills the rest of the
    scaled method budget. *)
let spec_of ?(scale = 0.05) (a : app) : Codegen.spec =
  let rng = Rng.of_string ("spec:" ^ a.name) in
  let issues =
    match a.paper.unbounded.pr_issues with Some i -> i | None -> 20
  in
  let n_patterns = max 3 (int_of_float (float_of_int issues *. 0.12)) in
  let mix = Codegen.draw_mix ~rng ~n:n_patterns in
  let mix =
    List.fold_left
      (fun acc (kind, n) ->
         match List.assoc_opt kind acc with
         | Some m ->
           (kind, n + m) :: List.remove_assoc kind acc
         | None -> (kind, n) :: acc)
      mix a.extra_patterns
  in
  let pattern_methods =
    5 * List.fold_left (fun acc (_, n) -> acc + n) 0 mix
  in
  let target_methods =
    int_of_float (float_of_int a.methods_app *. scale)
  in
  let chain = 8 in
  let cold_classes =
    max 1 ((target_methods - pattern_methods) / (2 * chain))
  in
  { Codegen.sp_name = a.name;
    sp_patterns = List.sort compare mix;
    sp_cold_classes = cold_classes;
    sp_cold_chain = chain }

let generate ?scale (a : app) : Codegen.generated =
  Codegen.generate (spec_of ?scale a)
