(** Vulnerability-pattern generators for synthetic benchmark applications.

    Each generator emits one MJava class group containing a planted flow and
    records its ground truth. Sinks are always routed through dedicated
    wrapper methods ([emitR*] for semantically real flows, [emitF*] for
    spurious ones), so reports can be attributed precisely. The catalog
    covers every code-modeling feature of the paper and includes the
    imprecision traps that separate the five algorithm configurations:

    - [ci_merge]: a shared helper method — context-insensitive slicing
      conflates the two return flows and reports the clean sink;
    - [heap_merge]: one allocation site reached from two call sites — the
      hybrid algorithm's context-free heap merges the objects while the CS
      configuration keeps them apart;
    - [thread_flow]: a store and load on different threads — CS misses it
      (the paper's documented unsoundness), hybrid and CI find it;
    - [long_real]/[long_fake]: bucket brigades longer than the optimized
      configuration's flow-length cap;
    - [deep_carrier]: taint nested 4 field-dereferences deep, past the
      optimized nested-taint bound of 2. *)

type output = {
  source : string;
  descriptor_lines : string list;
  planted : Ground_truth.planted list;
}

type gen = id:int -> rng:Rng.t -> output

let plant ~id ~kind ~cls ~meth ~issue ~real =
  { Ground_truth.p_id = id; p_kind = kind; p_class = cls;
    p_sink_method = meth; p_issue = issue; p_real = real;
    p_expect = None }

(* a planted mismatched-sanitizer pattern: [expect] is the (applied
   sanitizer id, required context name) pair the judge must report *)
let plant_expect ~expect ~id ~kind ~cls ~meth ~issue ~real =
  { (plant ~id ~kind ~cls ~meth ~issue ~real) with
    Ground_truth.p_expect = Some expect }

(* ------------------------------------------------------------------ *)

let direct : gen = fun ~id ~rng ->
  let cls = Printf.sprintf "PDirect%d" id in
  let variant = Rng.int rng 4 in
  let source, issue =
    match variant with
    | 0 ->
      ( Printf.sprintf
          {|class %s extends HttpServlet {
              void emitR(PrintWriter w, String x) { w.println(x); }
              public void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String x = req.getParameter("p%d");
                this.emitR(resp.getWriter(), x);
              }
            }|}
          cls id,
        Core.Rules.Xss )
    | 1 ->
      ( Printf.sprintf
          {|class %s extends HttpServlet {
              void emitR(Statement st, String q) { st.executeQuery(q); }
              public void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String u = req.getParameter("user%d");
                Connection c = DriverManager.getConnection("jdbc:app");
                this.emitR(c.createStatement(), "SELECT * FROM t WHERE u='" + u + "'");
              }
            }|}
          cls id,
        Core.Rules.Sqli )
    | 2 ->
      ( Printf.sprintf
          {|class %s extends HttpServlet {
              void emitR(String cmd) { Runtime.getRuntime().exec(cmd); }
              public void doGet(HttpServletRequest req, HttpServletResponse resp) {
                this.emitR("convert " + req.getParameter("f%d"));
              }
            }|}
          cls id,
        Core.Rules.Command_injection )
    | _ ->
      ( Printf.sprintf
          {|class %s extends HttpServlet {
              void emitR(String path) { FileInputStream f = new FileInputStream(path); }
              public void doGet(HttpServletRequest req, HttpServletResponse resp) {
                this.emitR(req.getParameter("doc%d"));
              }
            }|}
          cls id,
        Core.Rules.Malicious_file )
  in
  { source;
    descriptor_lines = [];
    planted = [ plant ~id ~kind:"direct" ~cls ~meth:"emitR" ~issue ~real:true ] }

let sanitized : gen = fun ~id ~rng ->
  let cls = Printf.sprintf "PSanitized%d" id in
  let sqli = Rng.bool rng in
  let source, issue =
    if sqli then
      ( Printf.sprintf
          {|class %s extends HttpServlet {
              void emitF(Statement st, String q) { st.executeQuery(q); }
              public void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String u = Sanitizer.escapeSql(req.getParameter("u%d"));
                Connection c = DriverManager.getConnection("jdbc:app");
                this.emitF(c.createStatement(), "SELECT v FROM t WHERE u='" + u + "'");
              }
            }|}
          cls id,
        Core.Rules.Sqli )
    else
      ( Printf.sprintf
          {|class %s extends HttpServlet {
              void emitF(PrintWriter w, String x) { w.println(x); }
              public void doGet(HttpServletRequest req, HttpServletResponse resp) {
                String x = URLEncoder.encode(req.getParameter("p%d"));
                this.emitF(resp.getWriter(), x);
              }
            }|}
          cls id,
        Core.Rules.Xss )
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"sanitized" ~cls ~meth:"emitF" ~issue ~real:false ] }

(* shared helper: CI conflates the tainted and clean returns *)
let ci_merge : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PCiMerge%d" id in
  let source =
    Printf.sprintf
      {|class %s extends HttpServlet {
          String channel(String s) { return s; }
          void emitR(PrintWriter w, String x) { w.println(x); }
          void emitF(PrintWriter w, String x) { w.println(x); }
          void emitF2(Statement st, String q) { st.executeQuery(q); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            PrintWriter w = resp.getWriter();
            String t = this.channel(req.getParameter("q%d"));
            String c = this.channel("constant");
            String c2 = this.channel("select 1");
            this.emitR(w, t);
            this.emitF(w, c);
            Connection conn = DriverManager.getConnection("jdbc:app");
            this.emitF2(conn.createStatement(), c2);
          }
        }|}
      cls id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"ci-merge" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true;
        plant ~id ~kind:"ci-merge" ~cls ~meth:"emitF" ~issue:Core.Rules.Xss
          ~real:false;
        plant ~id ~kind:"ci-merge" ~cls ~meth:"emitF2" ~issue:Core.Rules.Sqli
          ~real:false ] }

(* one allocation site, two call sites: hybrid heap merge FP *)
let heap_merge : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PHeapMerge%d" id in
  let source =
    Printf.sprintf
      {|class Box%d {
          String v;
        }
        class BoxMaker%d {
          static Box%d make(String s) {
            Box%d b = new Box%d();
            b.v = s;
            return b;
          }
        }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          void emitF(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            PrintWriter w = resp.getWriter();
            Box%d a = BoxMaker%d.make(req.getParameter("h%d"));
            Box%d b = BoxMaker%d.make("fixed");
            this.emitR(w, a.v);
            this.emitF(w, b.v);
          }
        }|}
      id id id id id cls id id id id id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"heap-merge" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true;
        plant ~id ~kind:"heap-merge" ~cls ~meth:"emitF" ~issue:Core.Rules.Xss
          ~real:false ] }

let container : gen = fun ~id ~rng ->
  let cls = Printf.sprintf "PContainer%d" id in
  let vector = Rng.bool rng in
  let source =
    Printf.sprintf
      {|class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            %s l = new %s();
            l.add(req.getParameter("item%d"));
            String s = (String) l.get(0);
            this.emitR(resp.getWriter(), s);
          }
        }|}
      cls
      (if vector then "Vector" else "ArrayList")
      (if vector then "Vector" else "ArrayList")
      id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"container" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true ] }

(* constant-key dictionary: same key flows, distinct keys must not *)
let dict : gen = fun ~id ~rng ->
  let cls = Printf.sprintf "PDict%d" id in
  let session = Rng.bool rng in
  let source =
    if session then
      Printf.sprintf
        {|class %s extends HttpServlet {
            void emitR(PrintWriter w, String x) { w.println(x); }
            void emitF(PrintWriter w, String x) { w.println(x); }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              HttpSession s = req.getSession();
              s.setAttribute("user%d", req.getParameter("u%d"));
              s.setAttribute("theme%d", "plain");
              PrintWriter w = resp.getWriter();
              this.emitR(w, (String) s.getAttribute("user%d"));
              this.emitF(w, (String) s.getAttribute("theme%d"));
            }
          }|}
        cls id id id id id
    else
      Printf.sprintf
        {|class %s extends HttpServlet {
            void emitR(PrintWriter w, String x) { w.println(x); }
            void emitF(PrintWriter w, String x) { w.println(x); }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              HashMap m = new HashMap();
              m.put("name%d", req.getParameter("n%d"));
              m.put("lang%d", "en");
              PrintWriter w = resp.getWriter();
              this.emitR(w, (String) m.get("name%d"));
              this.emitF(w, (String) m.get("lang%d"));
            }
          }|}
        cls id id id id id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"dict" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true;
        plant ~id ~kind:"dict" ~cls ~meth:"emitF" ~issue:Core.Rules.Xss
          ~real:false ] }

(* taint carrier: tainted state inside an object passed to the sink *)
let carrier : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PCarrier%d" id in
  let source =
    Printf.sprintf
      {|class Bean%d {
          String payload;
          public Bean%d(String p) { this.payload = p; }
          public String toString() { return this.payload; }
        }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, Object o) { w.println(o); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Bean%d b = new Bean%d(req.getParameter("b%d"));
            this.emitR(resp.getWriter(), b);
          }
        }|}
      id id cls id id id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"carrier" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true ] }

(* taint nested four dereferences deep: past the optimized depth bound *)
let deep_carrier : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PDeepCarrier%d" id in
  let source =
    Printf.sprintf
      {|class D3x%d { String s; }
        class D2x%d { D3x%d inner; }
        class D1x%d { D2x%d inner; }
        class D0x%d { D1x%d inner; }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, Object o) { w.println(o); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            D3x%d d3 = new D3x%d();
            d3.s = req.getParameter("deep%d");
            D2x%d d2 = new D2x%d();
            d2.inner = d3;
            D1x%d d1 = new D1x%d();
            d1.inner = d2;
            D0x%d d0 = new D0x%d();
            d0.inner = d1;
            this.emitR(resp.getWriter(), d0);
          }
        }|}
      id id id id id id id cls id id id id id id id id id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"deep-carrier" ~cls ~meth:"emitR"
          ~issue:Core.Rules.Xss ~real:true ] }

let reflect : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PReflect%d" id in
  let source =
    Printf.sprintf
      {|class RTarget%d {
          public String render(String s) { return s; }
        }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Class k = Class.forName("RTarget%d");
            Method m = k.getMethod("render");
            RTarget%d t = (RTarget%d) k.newInstance();
            String out = (String) m.invoke(t, new Object[] { req.getParameter("r%d") });
            this.emitR(resp.getWriter(), out);
          }
        }|}
      id cls id id id id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"reflect" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true ] }

let exception_leak : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PExnLeak%d" id in
  let source =
    Printf.sprintf
      {|class %s extends HttpServlet {
          void fail%d(int x) { if (x > 0) { throw new Exception("config path secret"); } }
          void emitR(PrintWriter w, Object o) { w.println(o); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            try {
              this.fail%d(1);
            } catch (Exception e) {
              this.emitR(resp.getWriter(), e);
            }
          }
        }|}
      cls id id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"exception-leak" ~cls ~meth:"emitR"
          ~issue:Core.Rules.Info_leak ~real:true ] }

(* store on a spawned thread, load on the request thread: CS misses it *)
let thread_flow : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PThread%d" id in
  let source =
    Printf.sprintf
      {|class TChannel%d { static String slot; }
        class TWorker%d extends Thread {
          HttpServletRequest req;
          public TWorker%d(HttpServletRequest r) { this.req = r; }
          public void run() { TChannel%d.slot = this.req.getParameter("async%d"); }
        }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            TWorker%d worker = new TWorker%d(req);
            worker.start();
            this.emitR(resp.getWriter(), TChannel%d.slot);
          }
        }|}
      id id id id id cls id id id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"thread" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true ] }

let brigade ~cell ~n ~from_var =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s c0 = new %s(); c0.v = %s;\n" cell cell from_var);
  for i = 1 to n do
    Buffer.add_string buf
      (Printf.sprintf "%s c%d = new %s(); c%d.v = c%d.v;\n" cell i cell i
         (i - 1))
  done;
  (Buffer.contents buf, Printf.sprintf "c%d.v" n)

(* a real flow longer than the optimized flow-length cap *)
let long_real : gen = fun ~id ~rng ->
  let cls = Printf.sprintf "PLongReal%d" id in
  let cell = Printf.sprintf "LCell%d" id in
  let hops = Rng.range rng 9 12 in
  let chain, last = brigade ~cell ~n:hops ~from_var:"x" in
  let source =
    Printf.sprintf
      {|class %s { String v; }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String x = req.getParameter("long%d");
            %s
            this.emitR(resp.getWriter(), %s);
          }
        }|}
      cell cls id chain last
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"long-real" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true ] }

(* a heap-merge false positive whose spurious path is also long: unbounded
   and prioritized report it, optimized filters it by length *)
let long_fake : gen = fun ~id ~rng ->
  let cls = Printf.sprintf "PLongFake%d" id in
  let cell = Printf.sprintf "FCell%d" id in
  let hops = Rng.range rng 9 12 in
  let chain, last = brigade ~cell ~n:hops ~from_var:"b.v" in
  let source =
    Printf.sprintf
      {|class %s { String v; }
        class FBox%d { String v; }
        class FMaker%d {
          static FBox%d make(String s) {
            FBox%d b = new FBox%d();
            b.v = s;
            return b;
          }
        }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          void emitF(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            PrintWriter w = resp.getWriter();
            FBox%d a = FMaker%d.make(req.getParameter("lf%d"));
            this.emitR(w, a.v);
            FBox%d b = FMaker%d.make("benign");
            %s
            this.emitF(w, %s);
          }
        }|}
      cell id id id id id cls id id id id id chain last
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"long-fake" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true;
        plant ~id ~kind:"long-fake" ~cls ~meth:"emitF" ~issue:Core.Rules.Xss
          ~real:false ] }

let struts : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PStrutsAction%d" id in
  let form = Printf.sprintf "PStrutsForm%d" id in
  let source =
    Printf.sprintf
      {|class %s extends ActionForm {
          String account;
          String note;
        }
        class %s extends Action {
          void emitR(PrintWriter w, String x) { w.println(x); }
          public ActionForward execute(ActionMapping mapping, ActionForm form,
                                       HttpServletRequest req, HttpServletResponse resp) {
            %s f = (%s) form;
            this.emitR(resp.getWriter(), f.account);
            return null;
          }
        }|}
      form cls form form
  in
  { source;
    descriptor_lines = [ Printf.sprintf "action /p%d %s %s" id cls form ];
    planted =
      [ plant ~id ~kind:"struts" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true ] }

let ejb : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PEjbPage%d" id in
  let iface = Printf.sprintf "EService%d" id in
  let home = Printf.sprintf "EService%dHome" id in
  let bean = Printf.sprintf "EService%dBean" id in
  let jndi = Printf.sprintf "java:comp/env/ejb/EService%d" id in
  let source =
    Printf.sprintf
      {|interface %s {
          String lookup(String key);
        }
        interface %s extends EJBHome {
          %s create();
        }
        class %s implements %s {
          public String lookup(String key) { return "v:" + key; }
        }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            InitialContext ctx = new InitialContext();
            Object ref = ctx.lookup("%s");
            %s home = (%s) PortableRemoteObject.narrow(ref, %s.class);
            %s svc = home.create();
            this.emitR(resp.getWriter(), svc.lookup(req.getParameter("k%d")));
          }
        }|}
      iface home iface bean iface cls jndi home home home iface id
  in
  { source;
    descriptor_lines = [ Printf.sprintf "ejb %s %s %s" jndi home bean ];
    planted =
      [ plant ~id ~kind:"ejb" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true ] }

(* virtual-dispatch over-approximation through an array of interface
   implementations: the static resolution of the dispatch merges array
   elements, so every configuration (CS included) reports the clean path —
   the organic kind of false positive that keeps even the most precise
   algorithm's accuracy below 1.0 (§6.2.2's "static resolution of
   reflective and virtual calls" over-approximations) *)
let poly_fp : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PPoly%d" id in
  let iface = Printf.sprintf "Render%d" id in
  let source =
    Printf.sprintf
      {|interface %s {
          String go(String s);
        }
        class Clean%s implements %s {
          public String go(String s) { return "safe"; }
        }
        class Echo%s implements %s {
          public String go(String s) { return s; }
        }
        class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          void emitF(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            PrintWriter w = resp.getWriter();
            %s[] rs = new %s[2];
            rs[0] = new Clean%s();
            rs[1] = new Echo%s();
            String x = req.getParameter("poly%d");
            %s clean = rs[0];
            %s echo = rs[1];
            this.emitR(w, echo.go(x));
            this.emitF(w, clean.go(x));
          }
        }|}
      iface iface iface iface iface cls iface iface iface iface id iface iface
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"poly" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true;
        plant ~id ~kind:"poly" ~cls ~meth:"emitF" ~issue:Core.Rules.Xss
          ~real:false ] }

(* a JSP page compiled to a servlet (§1): the expression tag echoes a
   parameter; a second, encoded expression stays clean *)
let jsp_page : gen = fun ~id ~rng ->
  let cls = Printf.sprintf "PJsp%d" id in
  let tainted = Rng.bool rng in
  let page =
    if tainted then
      Printf.sprintf
        {|<html><body>
<h2>Entry %d</h2>
<p>Posted by <%%= request.getParameter("author%d") %%></p>
</body></html>|}
        id id
    else
      Printf.sprintf
        {|<html><body>
<p>Posted by <%%= URLEncoder.encode(request.getParameter("author%d")) %%></p>
</body></html>|}
        id
  in
  let source = Models.Jsp.translate ~name:cls page in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"jsp" ~cls ~meth:"doGet" ~issue:Core.Rules.Xss
          ~real:tainted ] }

(* cookie values are attacker-controlled *)
let cookie : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PCookie%d" id in
  let source =
    Printf.sprintf
      {|class %s extends HttpServlet {
          void emitR(PrintWriter w, String x) { w.println(x); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Cookie[] jar = req.getCookies();
            Cookie c = jar[0];
            this.emitR(resp.getWriter(), c.getValue());
          }
        }|}
      cls
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"cookie" ~cls ~meth:"emitR" ~issue:Core.Rules.Xss
          ~real:true ] }

(* a complete flow in unreachable code: must stay silent *)
let dead_code : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PDead%d" id in
  let source =
    Printf.sprintf
      {|class %s {
          void emitF(PrintWriter w, String x) { w.println(x); }
          void never(HttpServletRequest req, HttpServletResponse resp) {
            this.emitF(resp.getWriter(), req.getParameter("ghost%d"));
          }
        }|}
      cls id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant ~id ~kind:"dead" ~cls ~meth:"emitF" ~issue:Core.Rules.Xss
          ~real:false ] }

(* ------------------------------------------------------------------ *)
(* Mismatched-sanitizer patterns (context-sensitive sanitization)     *)
(* ------------------------------------------------------------------ *)

(* HTML-escaped value reaching a SQL sink through a helper method whose
   query prefix is carried by a static field: the sanitizer protects
   html-text, the sink demands sql-quoted. Reported either way (the
   HTML encoder is no SQLi sanitizer), annotated mismatched with
   contexts on. *)
let mismatch_html_sql : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PMismatchHtmlSql%d" id in
  let source =
    Printf.sprintf
      {|class %s extends HttpServlet {
          static String PREFIX = "SELECT v FROM logs WHERE tag='";
          String build(String t) { return %s.PREFIX + t + "'"; }
          void emitR(Statement st, String q) { st.executeQuery(q); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String t = Sanitizer.encodeHtml(req.getParameter("tag%d"));
            Connection c = DriverManager.getConnection("jdbc:app");
            this.emitR(c.createStatement(), this.build(t));
          }
        }|}
      cls cls id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant_expect ~expect:("Sanitizer.encodeHtml/1", "sql-quoted") ~id ~kind:"mismatch-html-sql" ~cls ~meth:"emitR"
          ~issue:Core.Rules.Sqli ~real:true ] }

(* SQL-quote-escaped value in a raw (numeric) SQL position, assembled
   through a StringBuilder chain: quote escaping is useless where no
   quote encloses the value. The classic kill silently endorses this
   flow — the sanitizer IS the SQLi sanitizer — so this is the finding
   class that exists only with contexts on. *)
let mismatch_quote_raw : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PMismatchQuoteRaw%d" id in
  let source =
    Printf.sprintf
      {|class %s extends HttpServlet {
          void emitR(Statement st, String q) { st.executeQuery(q); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String n = Sanitizer.escapeSql(req.getParameter("n%d"));
            StringBuilder sb = new StringBuilder("SELECT v FROM t WHERE id = ");
            sb.append(n);
            Connection c = DriverManager.getConnection("jdbc:app");
            this.emitR(c.createStatement(), sb.toString());
          }
        }|}
      cls id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant_expect ~expect:("Sanitizer.escapeSql/1", "sql-raw") ~id ~kind:"mismatch-quote-raw" ~cls ~meth:"emitR"
          ~issue:Core.Rules.Sqli ~real:true ] }

(* HTML-escaped value opening a file: the HTML encoder preserves path
   traversal. Reported either way (it is no path sanitizer), annotated
   mismatched with contexts on. *)
let mismatch_path : gen = fun ~id ~rng:_ ->
  let cls = Printf.sprintf "PMismatchPath%d" id in
  let source =
    Printf.sprintf
      {|class %s extends HttpServlet {
          void emitR(String path) { FileInputStream f = new FileInputStream(path); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String p = Sanitizer.encodeHtml(req.getParameter("doc%d"));
            this.emitR("/var/data/" + p);
          }
        }|}
      cls id
  in
  { source;
    descriptor_lines = [];
    planted =
      [ plant_expect ~expect:("Sanitizer.encodeHtml/1", "path") ~id ~kind:"mismatch-path" ~cls ~meth:"emitR"
          ~issue:Core.Rules.Malicious_file ~real:true ] }

(** The full catalog with relative weights: the proportions determine how
    many imprecision traps a generated app contains relative to real
    flows. *)
let catalog : (string * int * gen) list =
  [ ("direct", 14, direct);
    ("sanitized", 8, sanitized);
    ("ci-merge", 15, ci_merge);
    ("heap-merge", 16, heap_merge);
    ("poly", 10, poly_fp);
    ("container", 6, container);
    ("dict", 6, dict);
    ("carrier", 6, carrier);
    ("reflect", 4, reflect);
    ("exception-leak", 4, exception_leak);
    ("long-fake", 5, long_fake);
    ("dead", 3, dead_code);
    ("jsp", 5, jsp_page);
    ("cookie", 3, cookie);
    ("struts", 3, struts) ]

let find_gen name : gen =
  match List.find_opt (fun (n, _, _) -> String.equal n name) catalog with
  | Some (_, _, g) -> g
  | None ->
    (match name with
     | "thread" -> thread_flow
     | "long-real" -> long_real
     | "deep-carrier" -> deep_carrier
     | "ejb" -> ejb
     (* context-sensitive sanitization patterns: resolvable by name for
        the contexts apps, deliberately NOT in the weighted catalog —
        changing catalog weights would perturb every drawn mix and
        regenerate all 22 table-2 apps *)
     | "mismatch-html-sql" -> mismatch_html_sql
     | "mismatch-quote-raw" -> mismatch_quote_raw
     | "mismatch-path" -> mismatch_path
     | _ -> invalid_arg ("unknown pattern kind: " ^ name))
