(** The 22 benchmark applications of Table 2, with the paper's published
    per-configuration results (Table 3) for side-by-side comparison, and
    derivation of generator specs at a configurable scale. *)

type paper_result = {
  pr_issues : int option;      (** None = did not complete *)
  pr_seconds : int option;
}

type paper_row = {
  unbounded : paper_result;
  prioritized : paper_result;
  optimized : paper_result;
  cs : paper_result;
  ci : paper_result;
}

type app = {
  name : string;
  version : string;
  files : int;
  lines : int;
  classes_app : int;
  methods_app : int;
  classes_total : int;
  methods_total : int;
  scored : bool;                          (** classified in Figure 4 *)
  extra_patterns : (string * int) list;   (** app-specific traits *)
  paper : paper_row;
}

val table2 : app list

(** Ground-truth apps for the context-sensitive sanitization analysis:
    planted mismatched-sanitizer flows with expected (applied, required)
    pairs. Not part of [table2]; resolvable by name via [find]. *)
val contexts_apps : app list

(** Searches [table2] and [contexts_apps]. *)
val find : string -> app option

val scored_apps : app list

(** Derive a generator spec; pattern count tracks the paper's hybrid-
    unbounded issue count, cold mass fills the scaled method budget. *)
val spec_of : ?scale:float -> app -> Codegen.spec

val generate : ?scale:float -> app -> Codegen.generated
