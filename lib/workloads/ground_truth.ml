(** Ground truth for generated benchmark applications.

    Every planted vulnerability pattern routes its sink call through a
    dedicated wrapper method, so a reported issue can be attributed to its
    pattern by the (class, method) of the sink statement. [p_real] records
    whether the flow semantically exists — the stand-in for the paper's
    manual true/false-positive classification (§7.2). *)

type planted = {
  p_id : int;
  p_kind : string;               (* pattern kind tag, e.g. "direct" *)
  p_class : string;              (* class containing the sink *)
  p_sink_method : string;        (* method containing the sink call *)
  p_issue : Core.Rules.issue;
  p_real : bool;
  p_expect : (string * string) option;
      (* for planted mismatched-sanitizer patterns: the (applied
         sanitizer id, required context name) pair the judge must
         report; None for every other pattern *)
}

type t = planted list

let pp_planted ppf p =
  Fmt.pf ppf "#%d %s %s.%s %a %s" p.p_id p.p_kind p.p_class p.p_sink_method
    Core.Rules.pp_issue p.p_issue
    (if p.p_real then "REAL" else "FAKE")

(** Find the planted pattern a sink location belongs to. *)
let attribute (t : t) ~cls ~meth : planted option =
  List.find_opt
    (fun p -> String.equal p.p_class cls && String.equal p.p_sink_method meth)
    t

let real_count t = List.length (List.filter (fun p -> p.p_real) t)
let fake_count t = List.length (List.filter (fun p -> not p.p_real) t)
