(** Scoring: run a configuration on a generated app and classify the
    reported issues against the generator's ground truth — the mechanized
    counterpart of the paper's manual evaluation (Figure 4, §7.2). *)

type classification = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;      (** planted real flows with no report *)
  unattributed : int;         (** reports whose sink matches no pattern *)
}

val accuracy : classification -> float

type refined = {
  confirmed_issues : int;
  plausible_issues : int;
  confirmed_tp : int;
  confirmed_fp : int;
      (** the headline precision metric: false positives among the
          Confirmed subset vs. the overall false-positive count *)
}

type sanitization = {
  sz_mismatched : int;     (** issues judged mismatched-sanitizer *)
  sz_unsanitized : int;
  sz_expected : int;       (** planted patterns carrying an expected pair *)
  sz_matched : int;
      (** of those, reported as mismatched with exactly the expected
          (applied sanitizer, required context); the acceptance gate is
          [sz_matched = sz_expected] *)
}

type run = {
  r_app : string;
  r_algorithm : Core.Config.algorithm;
  r_completed : bool;
  r_issues : int;
  r_seconds : float;
  r_cg_nodes : int;
  r_classification : classification option;  (** None = did not complete *)
  r_phases : Core.Taj.phase_times option;    (** None = did not complete *)
  r_refined : refined option;                (** None unless refine ran *)
  r_sanitization : sanitization option;      (** None unless contexts ran *)
}

(** Attribute each reported issue to its planted pattern and classify. *)
val classify :
  Ground_truth.t -> Sdg.Builder.t -> Core.Report.t -> classification

(** Classify a subset of a report's issues (used for per-verdict rates). *)
val classify_issues :
  Ground_truth.t -> Sdg.Builder.t -> Core.Report.issue_report list ->
  classification

val run_config :
  ?jobs:int -> ?refine:bool -> ?refine_k:int -> ?refine_steps:int ->
  ?triage_filter:bool -> ?contexts:bool ->
  loaded:Core.Taj.loaded -> truth:Ground_truth.t ->
  app:string -> scale:float -> Core.Config.algorithm -> run

(** Run the given configurations (default: all five) over one app.
    [jobs] sizes the worker pool inside each analysis (frontend parse and
    per-rule tabulation); default 1 = sequential. [triage_filter] (default
    on) lets the metamorphic CI check score with the pre-filter disabled —
    the reports must not change. *)
val run_app :
  ?scale:float -> ?jobs:int -> ?refine:bool -> ?refine_k:int ->
  ?refine_steps:int -> ?triage_filter:bool -> ?contexts:bool ->
  ?algorithms:Core.Config.algorithm list ->
  Apps.app -> run list

(** {!run_app}, but a failure comes back as [Error (phase, error)] with
    [phase] one of ["generate"], ["frontend"], ["analysis"] — so partial
    bench runs stay machine-readable. *)
val run_app_result :
  ?scale:float -> ?jobs:int -> ?refine:bool -> ?refine_k:int ->
  ?refine_steps:int -> ?triage_filter:bool -> ?contexts:bool ->
  ?algorithms:Core.Config.algorithm list ->
  Apps.app -> (run list, string * string) result

(** One row of the per-rung score table ({!run_rungs}). *)
type rung_run = {
  rr_rung : string;               (** {!Core.Config.rung_label} *)
  rr_completed : bool;
  rr_seconds : float;
  rr_issues : int;                (** issues, or triage findings at rung 0 *)
  rr_classification : classification option;  (** None = did not complete *)
}

(** Classify triage sink findings against the planted ground truth by the
    (class, method) carried on each finding — no SDG builder required. *)
val classify_triage :
  Ground_truth.t -> Triage.finding list -> classification

(** Score every rung of [algorithm]'s degradation ladder (default:
    Hybrid_optimized) over one app: the requested configuration first,
    then each supervisor fallback, ending at the type-triage rung zero.
    Rung zero must not lose a planted true positive — it over-approximates
    — so only its precision column is allowed to drop. *)
val run_rungs :
  ?scale:float -> ?jobs:int -> ?algorithm:Core.Config.algorithm ->
  Apps.app -> rung_run list
