(** Scoring: run a configuration on a generated app and classify the
    reported issues against the generator's ground truth — the mechanized
    counterpart of the paper's manual evaluation (Figure 4, §7.2). *)

type classification = {
  true_positives : int;
  false_positives : int;
  false_negatives : int;      (** planted real flows with no report *)
  unattributed : int;         (** reports whose sink matches no pattern *)
}

val accuracy : classification -> float

type refined = {
  confirmed_issues : int;
  plausible_issues : int;
  confirmed_tp : int;
  confirmed_fp : int;
      (** the headline precision metric: false positives among the
          Confirmed subset vs. the overall false-positive count *)
}

type run = {
  r_app : string;
  r_algorithm : Core.Config.algorithm;
  r_completed : bool;
  r_issues : int;
  r_seconds : float;
  r_cg_nodes : int;
  r_classification : classification option;  (** None = did not complete *)
  r_phases : Core.Taj.phase_times option;    (** None = did not complete *)
  r_refined : refined option;                (** None unless refine ran *)
}

(** Attribute each reported issue to its planted pattern and classify. *)
val classify :
  Ground_truth.t -> Sdg.Builder.t -> Core.Report.t -> classification

(** Classify a subset of a report's issues (used for per-verdict rates). *)
val classify_issues :
  Ground_truth.t -> Sdg.Builder.t -> Core.Report.issue_report list ->
  classification

val run_config :
  ?jobs:int -> ?refine:bool -> ?refine_k:int -> ?refine_steps:int ->
  loaded:Core.Taj.loaded -> truth:Ground_truth.t ->
  app:string -> scale:float -> Core.Config.algorithm -> run

(** Run the given configurations (default: all five) over one app.
    [jobs] sizes the worker pool inside each analysis (frontend parse and
    per-rule tabulation); default 1 = sequential. *)
val run_app :
  ?scale:float -> ?jobs:int -> ?refine:bool -> ?refine_k:int ->
  ?refine_steps:int -> ?algorithms:Core.Config.algorithm list ->
  Apps.app -> run list

(** {!run_app}, but a failure comes back as [Error (phase, error)] with
    [phase] one of ["generate"], ["frontend"], ["analysis"] — so partial
    bench runs stay machine-readable. *)
val run_app_result :
  ?scale:float -> ?jobs:int -> ?refine:bool -> ?refine_k:int ->
  ?refine_steps:int -> ?algorithms:Core.Config.algorithm list ->
  Apps.app -> (run list, string * string) result
