(** Ground truth for generated benchmark applications: every planted
    pattern routes its sink through a dedicated wrapper method, so reports
    are attributed by the (class, method) of the sink statement. [p_real]
    stands in for the paper's manual true/false-positive classification. *)

type planted = {
  p_id : int;
  p_kind : string;               (** pattern kind tag, e.g. "direct" *)
  p_class : string;              (** class containing the sink *)
  p_sink_method : string;        (** method containing the sink call *)
  p_issue : Core.Rules.issue;
  p_real : bool;
  p_expect : (string * string) option;
      (** for planted mismatched-sanitizer patterns: the (applied
          sanitizer id, required context name) pair the judge must
          report; [None] for every other pattern *)
}

type t = planted list

val pp_planted : Format.formatter -> planted -> unit

(** Find the planted pattern a sink location belongs to. *)
val attribute : t -> cls:string -> meth:string -> planted option

val real_count : t -> int
val fake_count : t -> int
