(** The model JDK: synthetic MJava implementations of the library surface the
    analysis needs (§4.2 of the paper).

    Following TAJ, library code is replaced by succinct models that are sound
    with respect to taint flow: collection classes store their contents in
    summary fields, [StringBuffer]/[StringBuilder] bottom out in the [String]
    carrier intrinsics, and security-relevant methods ([getParameter],
    [println], [executeQuery], ...) are natives whose semantics come from
    security rules and default library transfer. All classes here are loaded
    with [~library:true], which makes them the library side of the LCP
    boundary (§5). *)

let lang =
  {|
class Object {
  public Object() {}
  public String toString() { return ""; }
  public boolean equals(Object o) { return true; }
  public int hashCode() { return 0; }
  public Class getClass() { return null; }
}

class String {
  public native String concat(String s);
  public native String substring(int b, int e);
  public native String trim();
  public native String toUpperCase();
  public native String toLowerCase();
  public native String replace(String a, String b);
  public native String intern();
  public native String toString();
  public native boolean equals(Object o);
  public native boolean equalsIgnoreCase(String s);
  public native boolean startsWith(String s);
  public native boolean endsWith(String s);
  public native boolean contains(String s);
  public native boolean isEmpty();
  public native int length();
  public native int indexOf(String s);
  public native int compareTo(String s);
  public native char charAt(int i);
  public static native String valueOf(Object o);
}

class StringBuffer {
  String content;
  public StringBuffer() { this.content = ""; }
  public StringBuffer(String s) { this.content = s; }
  public StringBuffer append(Object o) {
    String s = String.valueOf(o);
    this.content = this.content.concat(s);
    return this;
  }
  public String toString() { return this.content; }
  public int length() { return this.content.length(); }
}

class StringBuilder {
  String content;
  public StringBuilder() { this.content = ""; }
  public StringBuilder(String s) { this.content = s; }
  public StringBuilder append(Object o) {
    String s = String.valueOf(o);
    this.content = this.content.concat(s);
    return this;
  }
  public String toString() { return this.content; }
  public int length() { return this.content.length(); }
}

class Integer {
  int value;
  public Integer(int v) { this.value = v; }
  public static native int parseInt(String s);
  public static Integer valueOf(int v) { return new Integer(v); }
  public int intValue() { return this.value; }
  public String toString() { return ""; }
}

class Boolean {
  boolean value;
  public Boolean(boolean v) { this.value = v; }
  public boolean booleanValue() { return this.value; }
}

class Character {
  char value;
  public Character(char c) { this.value = c; }
}

class Math {
  public static native int abs(int x);
  public static native int max(int a, int b);
  public static native int min(int a, int b);
  public static native int random();
}

class System {
  public static PrintStream out = new PrintStream();
  public static PrintStream err = new PrintStream();
  public static native void arraycopy(Object src, int sp, Object dst, int dp, int n);
  public static native int currentTimeMillis();
  public static native String getProperty(String key);
  public static native void exit(int code);
}

class Thread {
  public Thread() {}
  // start dispatches to run on a new thread; the analyzable artifact keeps
  // the call edge so run() is reachable, while the dependence builder marks
  // the crossing as a thread boundary
  public void start() { this.run(); }
  public void run() {}
  public static native void sleep(int ms);
}

class Class {
  public static native Class forName(String name);
  public native Method[] getMethods();
  public native Method getMethod(String name);
  public native Object newInstance();
  public native String getName();
}

class Method {
  public native String getName();
  public native Object invoke(Object recv, Object[] args);
}

class Throwable {
  String msg;
  public Throwable() {}
  public Throwable(String m) { this.msg = m; }
  public native String getMessage();
  public String toString() { return this.getMessage(); }
  public native void printStackTrace();
}
class Exception extends Throwable {
  public Exception() {}
  public Exception(String m) { super(m); }
}
class RuntimeException extends Exception {
  public RuntimeException() {}
  public RuntimeException(String m) { super(m); }
}
class IOException extends Exception {
  public IOException() {}
  public IOException(String m) { super(m); }
}
class SQLException extends Exception {
  public SQLException() {}
  public SQLException(String m) { super(m); }
}
class ServletException extends Exception {
  public ServletException() {}
  public ServletException(String m) { super(m); }
}
class NumberFormatException extends RuntimeException {
  public NumberFormatException() {}
}
class Error extends Throwable {
  public Error() {}
}

class Date {
  public Date() {}
  public static native String getDate();
  public String toString() { return ""; }
}

class Random {
  public Random() {}
  public native int nextInt(int bound);
}

class Runtime {
  public static Runtime getRuntime() { return new Runtime(); }
  public native Process exec(String cmd);
}
class Process {
  public native InputStream getInputStream();
  public native int waitFor();
}

class URLEncoder {
  public static native String encode(String s);
}
class Sanitizer {
  public static native String encodeHtml(String s);
  public static native String escapeSql(String s);
  public static native String cleansePath(String s);
}
class URLDecoder {
  public static native String decode(String s);
}

class StringTokenizer {
  String src;
  public StringTokenizer(String s) { this.src = s; }
  public native boolean hasMoreTokens();
  public String nextToken() { return this.src; }
}
|}

let collections =
  {|
interface Collection {
  boolean add(Object o);
  int size();
  Iterator iterator();
}
interface List extends Collection {
  Object get(int i);
}
interface Map {
  Object put(Object key, Object value);
  Object get(Object key);
  boolean containsKey(Object key);
  Iterator keys();
}
interface Set extends Collection {
  boolean contains(Object o);
}
interface Iterator {
  boolean hasNext();
  Object next();
}
interface Enumeration {
  boolean hasMoreElements();
  Object nextElement();
}

class ArrayList implements List {
  Object elems;
  int count;
  public ArrayList() { this.count = 0; }
  public boolean add(Object o) { this.elems = o; this.count = this.count + 1; return true; }
  public Object get(int i) { return this.elems; }
  public Object remove(int i) { return this.elems; }
  public int size() { return this.count; }
  public Iterator iterator() { return new SeqIterator(this.elems); }
}

class Vector implements List {
  Object elems;
  int count;
  public Vector() { this.count = 0; }
  public boolean add(Object o) { this.elems = o; this.count = this.count + 1; return true; }
  public void addElement(Object o) { this.elems = o; }
  public Object get(int i) { return this.elems; }
  public Object elementAt(int i) { return this.elems; }
  public int size() { return this.count; }
  public Iterator iterator() { return new SeqIterator(this.elems); }
  public Enumeration elements() { return new SeqEnumeration(this.elems); }
}

class LinkedList implements List {
  Object elems;
  public LinkedList() {}
  public boolean add(Object o) { this.elems = o; return true; }
  public Object get(int i) { return this.elems; }
  public Object getFirst() { return this.elems; }
  public int size() { return 0; }
  public Iterator iterator() { return new SeqIterator(this.elems); }
}

class HashSet implements Set {
  Object elems;
  public HashSet() {}
  public boolean add(Object o) { this.elems = o; return true; }
  public boolean contains(Object o) { return true; }
  public int size() { return 0; }
  public Iterator iterator() { return new SeqIterator(this.elems); }
}

class SeqIterator implements Iterator {
  Object cursor;
  public SeqIterator(Object elems) { this.cursor = elems; }
  public boolean hasNext() { return true; }
  public Object next() { return this.cursor; }
}
class SeqEnumeration implements Enumeration {
  Object cursor;
  public SeqEnumeration(Object elems) { this.cursor = elems; }
  public boolean hasMoreElements() { return true; }
  public Object nextElement() { return this.cursor; }
}

// Hash dictionaries: put/get calls are rewritten by the constant-key model
// (Models.Collections); these bodies are the fallback documentation of the
// summary-field semantics.
class HashMap implements Map {
  public HashMap() {}
  public native Object put(Object key, Object value);
  public native Object get(Object key);
  public native boolean containsKey(Object key);
  public native Iterator keys();
}
class Hashtable implements Map {
  public Hashtable() {}
  public native Object put(Object key, Object value);
  public native Object get(Object key);
  public native boolean containsKey(Object key);
  public native Iterator keys();
}
class Properties {
  public Properties() {}
  public native String getProperty(String key);
  public native void setProperty(String key, String value);
}
|}

let io =
  {|
class InputStream {
  public InputStream() {}
  public native int read();
  public native void close();
}
class OutputStream {
  public OutputStream() {}
  public native void write(int b);
  public native void close();
}
class Reader {
  public Reader() {}
  public native int read();
  public native void close();
}
class Writer {
  public Writer() {}
  public native void write(String s);
  public native void close();
}
class PrintStream extends OutputStream {
  public PrintStream() {}
  public native void println(Object o);
  public native void print(Object o);
}
class PrintWriter extends Writer {
  public PrintWriter() {}
  public native void println(Object o);
  public native void print(Object o);
  public native void flush();
}
class File {
  String path;
  public File(String path) { this.path = path; }
  public String getPath() { return this.path; }
  public native boolean exists();
  public native boolean delete();
}
class FileInputStream extends InputStream {
  public FileInputStream(String path) {}
  public native String readContent();
}
class FileOutputStream extends OutputStream {
  public FileOutputStream(String path) {}
}
class FileReader extends Reader {
  public FileReader(String path) {}
}
class FileWriter extends Writer {
  public FileWriter(String path) {}
}
class BufferedReader extends Reader {
  Reader inner;
  public BufferedReader(Reader r) { this.inner = r; }
  public native String readLine();
}
class RandomAccessFile {
  public RandomAccessFile(String path, String mode) {}
  public native void readFully(Object buffer);
  public native void close();
}
class ObjectInputStream extends InputStream {
  public ObjectInputStream(InputStream in) {}
  public native Object readObject();
}
|}

let servlet =
  {|
class HttpServletRequest {
  public HttpServletRequest() {}
  public native String getParameter(String name);
  public native String[] getParameterValues(String name);
  public native String getHeader(String name);
  public native String getQueryString();
  public native String getRequestURI();
  public native Cookie[] getCookies();
  public native Object getAttribute(String name);
  public native void setAttribute(String name, Object value);
  public HttpSession getSession() { return new HttpSession(); }
  public native BufferedReader getReader();
  public native RequestDispatcher getRequestDispatcher(String path);
}
class HttpServletResponse {
  public HttpServletResponse() {}
  public native PrintWriter getWriter();
  public native ServletOutputStream getOutputStream();
  public native void sendRedirect(String url);
  public native void addHeader(String name, String value);
  public native void setContentType(String t);
  public native void sendError(int code, String msg);
}
class ServletOutputStream extends OutputStream {
  public ServletOutputStream() {}
  public native void println(Object o);
  public native void print(Object o);
}
class HttpSession {
  public HttpSession() {}
  public native Object getAttribute(String name);
  public native void setAttribute(String name, Object value);
  public native void invalidate();
}
class Cookie {
  String name;
  String value;
  public Cookie(String name, String value) { this.name = name; this.value = value; }
  public native String getValue();
  public String getName() { return this.name; }
}
class RequestDispatcher {
  public RequestDispatcher() {}
  public native void forward(HttpServletRequest req, HttpServletResponse resp);
  public native void include(HttpServletRequest req, HttpServletResponse resp);
}
class ServletConfig {
  public ServletConfig() {}
  public native String getInitParameter(String name);
}
class ServletContext {
  public ServletContext() {}
  public native Object getAttribute(String name);
  public native void setAttribute(String name, Object value);
}
class HttpServlet {
  public HttpServlet() {}
  public void doGet(HttpServletRequest req, HttpServletResponse resp) {}
  public void doPost(HttpServletRequest req, HttpServletResponse resp) {}
  public void service(HttpServletRequest req, HttpServletResponse resp) {
    this.doGet(req, resp);
    this.doPost(req, resp);
  }
  public void init(ServletConfig config) {}
}
|}

let jdbc =
  {|
class DriverManager {
  public static native Connection getConnection(String url);
}
class Connection {
  public Connection() {}
  public native Statement createStatement();
  public native PreparedStatement prepareStatement(String sql);
  public native void close();
}
class Statement {
  public Statement() {}
  public native ResultSet executeQuery(String sql);
  public native int executeUpdate(String sql);
  public native boolean execute(String sql);
  public native void close();
}
class PreparedStatement extends Statement {
  public PreparedStatement() {}
  public native void setString(int i, String v);
  public native ResultSet runQuery();
}
class ResultSet {
  public ResultSet() {}
  public native boolean next();
  public native String getString(String column);
  public native int getInt(String column);
  public native void close();
}
|}

let frameworks =
  {|
// --- Struts ---
class ActionForm {
  public ActionForm() {}
  public void reset() {}
}
class ActionMapping {
  public ActionMapping() {}
  public native ActionForward findForward(String name);
}
class ActionForward {
  public ActionForward() {}
}
class Action {
  public Action() {}
  public ActionForward execute(ActionMapping mapping, ActionForm form,
                               HttpServletRequest req, HttpServletResponse resp) {
    return null;
  }
}

// --- EJB ---
interface EJBHome {
}
interface EJBObject {
}
class Context {
  public Context() {}
  public native Object lookup(String name);
}
class InitialContext extends Context {
  public InitialContext() {}
}
class PortableRemoteObject {
  public static Object narrow(Object o, Class k) { return o; }
}

// --- Logging ---
class Logger {
  public static Logger getLogger(String name) { return new Logger(); }
  public native void info(String msg);
  public native void warning(String msg);
  public native void severe(String msg);
}
|}

(** All compilation-unit sources of the model JDK, in load order. *)
let sources = [ lang; collections; io; servlet; jdbc; frameworks ]

(* Parse-once cache. Not [Lazy.t]: the frontend may be entered from
   several domains at once (parallel bench rows each call [Taj.load]),
   and concurrently forcing a shared lazy raises
   [CamlinternalLazy.Undefined]. The [Atomic] publishes the parsed
   (immutable) units with release/acquire ordering; the mutex only
   serializes the first computation. *)
let units_memo : Jir.Ast.compilation_unit list option Atomic.t =
  Atomic.make None

let units_lock = Mutex.create ()

(** Parse the model JDK into compilation units (cached, domain-safe). *)
let units () : Jir.Ast.compilation_unit list =
  match Atomic.get units_memo with
  | Some u -> u
  | None ->
    Mutex.lock units_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock units_lock) @@ fun () ->
    (match Atomic.get units_memo with
     | Some u -> u
     | None ->
       let u = List.map Jir.Parser.parse sources in
       Atomic.set units_memo (Some u);
       u)

(** Names of the dictionary-like classes whose [put]/[get]-style access is
    subject to the constant-key model (§4.2.1). *)
let dictionary_classes =
  [ "HashMap"; "Hashtable"; "Map"; "Properties"; "HttpSession";
    "HttpServletRequest"; "ServletContext" ]
