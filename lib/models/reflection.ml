(** Reflection modeling (§4.2.3) and EJB lookup bypass (§4.2.2).

    A per-method abstract interpretation over SSA def-use chains tracks
    string constants, [Class] objects, [Method] values and [Object[]]
    argument-array literals. Where a reflective call's operands can be
    inferred, the call is replaced by a synthesized direct abstraction:

    - [Method.invoke(m, recv, args)] becomes a direct virtual call when [m]
      resolves to a single named method, or a call to a synthesized
      [$Reflect.dispatch$N] method that fans out to every candidate when [m]
      is only known to be "some method of class C" (the conservative
      resolution the paper accepts for [getMethods] loops);
    - [Class.newInstance(k)] becomes an allocation plus constructor call;
    - [Context.lookup("jndi:...")] consults the deployment descriptor's
      registry and becomes an allocation of the mapped home implementation,
      which is what lets EJB remote calls dispatch to the bean class without
      analyzing any container code.

    Unresolvable reflective calls are left in place and fall back to the
    default native transfer, mirroring TAJ's behaviour. *)

open Jir

type absval =
  | Null                          (* null constant: bottom for joins *)
  | Str of string
  | Class_obj of string
  | Methods_of of string          (* Method[] of all methods of a class *)
  | Method_any of string          (* some method of a class *)
  | Method_named of string * string
  | Obj_array of Tac.var list     (* Object[]{v0, v1, ...} *)
  | Top

(* [Null] is below everything: a variable initialized to null and then
   assigned a method object (the Figure 1 idiom) keeps the method value. *)
let join a b =
  match a, b with
  | Null, x | x, Null -> x
  | _ -> if a = b then a else Top

(* ------------------------------------------------------------------ *)
(* Abstract evaluation over SSA                                       *)
(* ------------------------------------------------------------------ *)

type evaluator = {
  m : Tac.meth;
  defs : Ssa.def_site option array;
  memo : (int, absval) Hashtbl.t;
  mutable visiting : int list;
  array_stores : (int, Tac.var list) Hashtbl.t;  (* base var -> stored vars *)
}

let make_evaluator (m : Tac.meth) : evaluator =
  let array_stores = Hashtbl.create 8 in
  Array.iter
    (fun (b : Tac.block) ->
       Array.iter
         (fun ins ->
            match ins with
            | Tac.Astore (base, _, v) ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt array_stores base)
              in
              Hashtbl.replace array_stores base (prev @ [ v ])
            | _ -> ())
         b.Tac.instrs)
    m.Tac.m_blocks;
  { m; defs = Ssa.def_sites m; memo = Hashtbl.create 16; visiting = [];
    array_stores }

let rec eval (ev : evaluator) (v : Tac.var) : absval =
  match Hashtbl.find_opt ev.memo v with
  | Some a -> a
  | None ->
    if List.mem v ev.visiting then Top
    else begin
      ev.visiting <- v :: ev.visiting;
      let result = eval_uncached ev v in
      ev.visiting <- List.tl ev.visiting;
      Hashtbl.replace ev.memo v result;
      result
    end

and eval_uncached ev v =
  if v < 0 || v >= Array.length ev.defs then Top
  else
    match ev.defs.(v) with
    | None | Some (Ssa.Def_param _) -> Top
    | Some (Ssa.Def_phi (b, i)) ->
      let phi = List.nth ev.m.Tac.m_blocks.(b).Tac.phis i in
      (match phi.Tac.phi_args with
       | [] -> Top
       | (_, first) :: rest ->
         List.fold_left
           (fun acc (_, arg) -> join acc (eval ev arg))
           (eval ev first) rest)
    | Some (Ssa.Def_instr (b, i)) ->
      (match ev.m.Tac.m_blocks.(b).Tac.instrs.(i) with
       | Tac.Const (_, Tac.Cstr s) -> Str s
       | Tac.Const (_, Tac.Cnull) -> Null
       | Tac.Move (_, s) | Tac.Cast (_, _, s) -> eval ev s
       | Tac.Strcat (_, x, y) ->
         (* constant folding: "com." + "Foo" resolves reflective names *)
         (match eval ev x, eval ev y with
          | Str a, Str b -> Str (a ^ b)
          | _ -> Top)
       | Tac.New_array (d, Ast.Tclass "Object", _, _) ->
         Obj_array
           (Option.value ~default:[] (Hashtbl.find_opt ev.array_stores d))
       | Tac.Aload (_, arr, _) ->
         (match eval ev arr with
          | Methods_of c -> Method_any c
          | _ -> Top)
       | Tac.Call { target = { Tac.rclass = "Class"; rname = "forName"; rarity = 1 }; args = [ a ]; _ } ->
         (match eval ev a with Str s -> Class_obj s | _ -> Top)
       | Tac.Call { target = { Tac.rname = "getMethods"; rarity = 1; _ }; args = [ k ]; _ } ->
         (match eval ev k with Class_obj c -> Methods_of c | _ -> Top)
       | Tac.Call { target = { Tac.rname = "getMethod"; rarity = 2; _ }; args = [ k; n ]; _ } ->
         (match eval ev k, eval ev n with
          | Class_obj c, Str name -> Method_named (c, name)
          | _ -> Top)
       | _ -> Top)

(* ------------------------------------------------------------------ *)
(* Dispatcher synthesis                                               *)
(* ------------------------------------------------------------------ *)

(** Build [$Reflect.dispatch$N(recv, a1..ak)]: a synthetic static method
    virtual-calling every candidate and returning the merged result. The
    body is emitted directly in SSA form. [idx] is the per-program
    dispatcher ordinal (threaded from {!rewrite_program} rather than a
    process-global counter, so that names are deterministic per load and
    concurrent loads on sibling domains never share state). *)
let make_dispatcher (prog : Program.t) ~idx ~arity
    ~(candidates : (string * string) list) : Tac.meth =
  let n = List.length candidates in
  assert (n >= 1);
  let name = Printf.sprintf "dispatch$%d" idx in
  let meth_id = Printf.sprintf "$Reflect.%s/%d" name arity in
  let nv = ref arity in
  let fresh () = let v = !nv in incr nv; v in
  let args = List.init arity (fun i -> i) in
  (* block layout: decisions 0..n-2 | calls n-1..2n-2 | exit 2n-1 *)
  let call_block j = (n - 1) + j in
  let exit_block = 2 * n - 1 in
  let decision i =
    let cond = fresh () in
    let next = if i + 1 <= n - 2 then i + 1 else call_block (n - 1) in
    { Tac.phis = [];
      instrs = [| Tac.Const (cond, Tac.Cbool true) |];
      term = Tac.If (cond, call_block i, next);
      handlers = [] }
  in
  let rets = List.map (fun _ -> fresh ()) candidates in
  let call j (cls, mname) rj =
    let target = { Tac.rclass = cls; rname = mname; rarity = arity } in
    let site =
      Program.fresh_site prog ~meth:meth_id ~kind:(Program.Call_site target)
    in
    ignore j;
    { Tac.phis = [];
      instrs =
        [| Tac.Call { ret = Some rj; kind = Tac.Virtual; target; args; site } |];
      term = Tac.Goto exit_block;
      handlers = [] }
  in
  let merged = fresh () in
  let exit =
    { Tac.phis =
        [ { Tac.phi_lhs = merged;
            phi_args = List.mapi (fun j rj -> (call_block j, rj)) rets } ];
      instrs = [||];
      term = Tac.Return (Some merged);
      handlers = [] }
  in
  let blocks =
    Array.concat
      [ Array.init (n - 1) decision;
        Array.of_list
          (List.mapi (fun j (c, rj) -> call j c rj)
             (List.combine candidates rets));
        [| exit |] ]
  in
  { Tac.m_class = "$Reflect";
    m_name = name;
    m_arity = arity;
    m_static = true;
    m_ret = Ast.Tclass "Object";
    m_param_types = List.init arity (fun _ -> Ast.Tclass "Object");
    m_blocks = blocks;
    m_nvars = !nv;
    m_synthetic = true;
    m_library = false;
    m_has_body = true }

(* ------------------------------------------------------------------ *)
(* Rewriting                                                          *)
(* ------------------------------------------------------------------ *)

(** Candidate (class, method-name) pairs for an abstract [Method] value
    invoked with [k] explicit arguments. *)
let invoke_candidates table mv ~arity : (string * string) list =
  match mv with
  | Method_named (c, n) ->
    (match Classtable.lookup_method table c n arity with
     | Some mi when not mi.Classtable.mi_static -> [ (mi.Classtable.mi_class, n) ]
     | _ -> [])
  | Method_any c ->
    (match Classtable.find_opt table c with
     | None -> []
     | Some cls ->
       Hashtbl.fold
         (fun (name, a) (mi : Classtable.minfo) acc ->
            if a = arity && not mi.Classtable.mi_static
               && not (String.equal name "<init>")
            then (c, name) :: acc
            else acc)
         cls.Classtable.cl_methods []
       |> List.sort_uniq compare)
  | _ -> []

type stats = {
  mutable invokes_resolved : int;
  mutable invokes_unresolved : int;
  mutable new_instances : int;
  mutable lookups : int;
}

let rewrite_method (prog : Program.t) ~(ejb_registry : (string * string) list)
    ~(dispatch_idx : int ref) (m : Tac.meth) (st : stats) : unit =
  let table = prog.Program.table in
  let ev = make_evaluator m in
  let meth_id = Tac.method_id m in
  let changed = ref false in
  let rewrite_one ins : Tac.instr list option =
    match ins with
    | Tac.Call { ret;
                 target = { Tac.rclass = "Method"; rname = "invoke"; rarity = 3 };
                 args = [ mvar; recv; arr ]; _ } ->
      let mv = eval ev mvar in
      (match eval ev arr with
       | Obj_array elems ->
         let arity = List.length elems + 1 in
         (match invoke_candidates table mv ~arity with
          | [] -> st.invokes_unresolved <- st.invokes_unresolved + 1; None
          | [ (cls, name) ] ->
            st.invokes_resolved <- st.invokes_resolved + 1;
            let target = { Tac.rclass = cls; rname = name; rarity = arity } in
            let site =
              Program.fresh_site prog ~meth:meth_id
                ~kind:(Program.Call_site target)
            in
            Some
              [ Tac.Call
                  { ret; kind = Tac.Virtual; target; args = recv :: elems;
                    site } ]
          | candidates ->
            st.invokes_resolved <- st.invokes_resolved + 1;
            let idx = !dispatch_idx in
            incr dispatch_idx;
            let d = make_dispatcher prog ~idx ~arity ~candidates in
            Program.add_method prog d;
            let target =
              { Tac.rclass = "$Reflect"; rname = d.Tac.m_name; rarity = arity }
            in
            let site =
              Program.fresh_site prog ~meth:meth_id
                ~kind:(Program.Call_site target)
            in
            Some
              [ Tac.Call
                  { ret; kind = Tac.Static; target; args = recv :: elems;
                    site } ])
       | _ -> st.invokes_unresolved <- st.invokes_unresolved + 1; None)
    | Tac.Call { ret = Some d;
                 target = { Tac.rclass = "Class"; rname = "newInstance"; rarity = 1 };
                 args = [ k ]; _ } ->
      (match eval ev k with
       | Class_obj c when Classtable.mem table c ->
         st.new_instances <- st.new_instances + 1;
         let asite =
           Program.fresh_site prog ~meth:meth_id ~kind:(Program.Alloc_site c)
         in
         let target = { Tac.rclass = c; rname = "<init>"; rarity = 1 } in
         let csite =
           Program.fresh_site prog ~meth:meth_id ~kind:(Program.Call_site target)
         in
         Some
           [ Tac.New (d, c, asite);
             Tac.Call
               { ret = None; kind = Tac.Special; target; args = [ d ];
                 site = csite } ]
       | _ -> None)
    | Tac.Call { ret = Some d;
                 target = { Tac.rclass = "Context" | "InitialContext";
                            rname = "lookup"; rarity = 2 };
                 args = [ _ctx; namev ]; _ } ->
      (match eval ev namev with
       | Str jndi ->
         (match List.assoc_opt jndi ejb_registry with
          | Some impl when Classtable.mem table impl ->
            st.lookups <- st.lookups + 1;
            let asite =
              Program.fresh_site prog ~meth:meth_id
                ~kind:(Program.Alloc_site impl)
            in
            let target = { Tac.rclass = impl; rname = "<init>"; rarity = 1 } in
            let csite =
              Program.fresh_site prog ~meth:meth_id
                ~kind:(Program.Call_site target)
            in
            Some
              [ Tac.New (d, impl, asite);
                Tac.Call
                  { ret = None; kind = Tac.Special; target; args = [ d ];
                    site = csite } ]
          | _ -> None)
       | _ -> None)
    | _ -> None
  in
  Array.iter
    (fun (b : Tac.block) ->
       let out = ref [] in
       Array.iter
         (fun ins ->
            match rewrite_one ins with
            | Some replacement ->
              changed := true;
              List.iter (fun r -> out := r :: !out) replacement
            | None -> out := ins :: !out)
         b.Tac.instrs;
       if !changed then b.Tac.instrs <- Array.of_list (List.rev !out))
    m.Tac.m_blocks

(** Run the reflection/lookup rewrite over every method. Returns statistics
    about resolved and unresolved reflective calls. *)
let rewrite_program ?(ejb_registry = []) (prog : Program.t) : stats =
  let st =
    { invokes_resolved = 0; invokes_unresolved = 0; new_instances = 0;
      lookups = 0 }
  in
  (* snapshot the method list first: dispatcher synthesis adds methods *)
  let ids = Program.all_method_ids prog in
  let dispatch_idx = ref 0 in
  List.iter
    (fun id ->
       match Program.find_method prog id with
       | Some m -> rewrite_method prog ~ejb_registry ~dispatch_idx m st
       | None -> ())
    ids;
  st
