(** The model JDK: synthetic MJava implementations of the library surface
    (§4.2). Collection classes store contents in summary fields,
    [StringBuffer]/[StringBuilder] bottom out in the [String] carrier
    intrinsics, and security-relevant methods are natives whose semantics
    come from rules and transfer summaries. All classes load as library
    code (the LCP boundary of §5). *)

(** The compilation-unit sources, in load order. *)
val sources : string list

(** Parsed model-JDK compilation units. Cached after the first call;
    safe to call from several domains at once (a shared [Lazy.t] is not:
    concurrent forcing raises). *)
val units : unit -> Jir.Ast.compilation_unit list

(** Dictionary-like classes subject to the constant-key model (§4.2.1). *)
val dictionary_classes : string list
