(** The syntactic-context lattice for context-sensitive sanitization.

    A sink consumes its string value in some syntactic context — between
    HTML tags, inside an HTML attribute value, inside a quoted SQL string
    literal, in a raw SQL position, as a filesystem path, or as a shell
    command word. A sanitizer protects a {e set} of these contexts (its
    effect set, see {!Effects}); a flow is safely endorsed only when some
    sanitizer on its path covers the context the sink actually places the
    attacker-controlled fragment in. [Unknown] is the lattice top: when
    the template cannot pin the context down, any applied sanitizer is
    accepted (never report a mismatch we cannot demonstrate). *)

type t =
  | Html_text        (** between tags: classic script injection *)
  | Html_attribute   (** inside a quoted attribute value *)
  | Sql_quoted       (** inside a '...' SQL string literal *)
  | Sql_raw          (** raw SQL position (numeric, keyword, identifier) *)
  | Path             (** filesystem path component *)
  | Shell            (** shell command word *)
  | Unknown

let all = [ Html_text; Html_attribute; Sql_quoted; Sql_raw; Path; Shell ]

let name = function
  | Html_text -> "html-text"
  | Html_attribute -> "html-attribute"
  | Sql_quoted -> "sql-quoted"
  | Sql_raw -> "sql-raw"
  | Path -> "path"
  | Shell -> "shell"
  | Unknown -> "unknown"

let of_name = function
  | "html-text" -> Some Html_text
  | "html-attribute" -> Some Html_attribute
  | "sql-quoted" -> Some Sql_quoted
  | "sql-raw" -> Some Sql_raw
  | "path" -> Some Path
  | "shell" -> Some Shell
  | "unknown" -> Some Unknown
  | _ -> None

let pp ppf c = Fmt.string ppf (name c)

(* ------------------------------------------------------------------ *)
(* Sanitization verdict                                               *)
(* ------------------------------------------------------------------ *)

(** The per-flow sanitization axis, orthogonal to the refinement verdict:
    what sanitization the path carries and whether it matches the sink's
    context. [applied] lists canonical sanitizer method ids in path
    order. *)
type verdict =
  | Sanitized
      (** some sanitizer on the path covers the sink context — the flow
          reproduces the classic endorse-and-kill outcome *)
  | Mismatched_sanitizer of { applied : string list; required : t }
      (** sanitizers were applied, but none covers the context the sink
          places the value in — the finding class this analysis adds *)
  | Unsanitized  (** no sanitizer anywhere on the path *)

let verdict_name = function
  | Sanitized -> "sanitized"
  | Mismatched_sanitizer _ -> "mismatched-sanitizer"
  | Unsanitized -> "unsanitized"

let pp_verdict ppf = function
  | Sanitized -> Fmt.string ppf "sanitized"
  | Mismatched_sanitizer { applied; required } ->
    Fmt.pf ppf "mismatched-sanitizer (applied %s; required %s)"
      (String.concat "," applied) (name required)
  | Unsanitized -> Fmt.string ppf "unsanitized"
