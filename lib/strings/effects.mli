(** Per-sanitizer effect sets over the context lattice, inferred from the
    model-library method names plus rule metadata. *)

type table

(** Effect set suggested by the method name alone ([] if silent). *)
val of_name : string -> Context.t list

(** Effect set implied by an issue name ([] if unrecognized). *)
val of_issue : string -> Context.t list

(** Build the table from (canonical sanitizer id, issue names of the
    rules listing it) pairs. *)
val infer : sanitizers:(string * string list) list -> table

(** The effect set of a canonical sanitizer id; [] when unknown. *)
val effects : table -> string -> Context.t list

(** Does the effect set cover the required context? [Unknown] is covered
    by any non-empty set. *)
val covers : Context.t list -> Context.t -> bool
