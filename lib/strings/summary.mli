(** Interprocedural string-template reconstruction: memoized per-method
    return summaries plus path-aware sink-template walks. *)

(** A summary piece: the method's return value as a function of its
    inputs. *)
type piece =
  | S_lit of string             (** constant fragment *)
  | S_param of int              (** the caller's argument in this position *)
  | S_field of string * string  (** a field-carried fragment (class, name) *)
  | S_opaque                    (** anything the walk cannot see through *)

type t = piece list

(** Hooks into a persistent summary cache (the [strings] tier of the
    incremental cache). [sc_lookup] must validate against the method
    body on its side; both hooks may be called from worker domains. *)
type cache = {
  sc_lookup : Jir.Tac.meth -> t option;
  sc_store : Jir.Tac.meth -> t -> unit;
}

(** Pure, cache-key-friendly summary of a method body (no environment
    needed; exposed for the cache tier and tests). *)
val summarize : Jir.Tac.meth -> t

type env

(** [make ?cache ?prog builder] — [prog] enables field-carried constant
    fragments; [cache] persists per-method summaries. *)
val make : ?cache:cache -> ?prog:Jir.Program.t -> Sdg.Builder.t -> env

(** The (memoized, cache-backed) return summary of a method. *)
val of_method : env -> Jir.Tac.meth -> t

(** Reconstruct the template of the value flowing into [sink] along
    [path]. [None] when the sink argument cannot be recovered. *)
val sink_template :
  env -> path:Sdg.Stmt.t list -> sink:Sdg.Stmt.t -> Template.t option
