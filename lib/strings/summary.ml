(** Interprocedural string-template reconstruction.

    Two layers:

    - {e Per-method summaries} ({!of_method}): the template of a method's
      return value as a pure function of its body — literals, parameter
      references, field references, and opaque fragments. Memoized per
      method id, and pluggable into the persistent incremental cache as
      its own tier (the summary never mentions call-graph nodes or other
      methods, so a body-digest key validates it).

    - {e Sink templates} ({!sink_template}): the template of the value
      reaching a reported flow's sink, reconstructed by walking SSA
      definitions through concatenations, calls (instantiating callee
      summaries), [StringBuilder]/[StringBuffer] append chains, and
      field-carried constant fragments. Fragments whose defining
      statement lies on the flow path become [Tainted]; everything else
      unknown becomes [Hole]. This replaces the SSA-local walk that
      [Core.String_context] started with (§9's string-analysis
      direction). *)

module Tac = Jir.Tac
module Stmt = Sdg.Stmt
module Telemetry = Obs.Telemetry

let m_summaries = Telemetry.counter "strings.summaries"
let m_templates = Telemetry.counter "strings.templates"
let m_fragments = Telemetry.counter "strings.field_fragments"

(* ------------------------------------------------------------------ *)
(* Per-method summaries                                               *)
(* ------------------------------------------------------------------ *)

type piece =
  | S_lit of string             (** constant fragment *)
  | S_param of int              (** the caller's argument in this position *)
  | S_field of string * string  (** a field-carried fragment (class, name) *)
  | S_opaque                    (** anything the walk cannot see through *)

type t = piece list

(** Hooks into a persistent summary cache (the [strings] tier of
    [Cache.Incr]). Like the def/use tier, validation lives on the cache
    side: [sc_lookup] must answer only when its stored body digest
    matches the method passed. Both may be called from worker domains
    and must synchronize internally. *)
type cache = {
  sc_lookup : Tac.meth -> t option;
  sc_store : Tac.meth -> t -> unit;
}

let norm (s : t) : t =
  let rec go = function
    | S_lit a :: S_lit b :: rest -> go (S_lit (a ^ b) :: rest)
    | S_lit "" :: rest -> go rest
    | p :: rest -> p :: go rest
    | [] -> []
  in
  go s

(* String-library pass-throughs: model-JDK natives whose result is their
   input (possibly case-folded — which preserves the quoting structure
   classification reads). Keyed by resolved target id; the model JDK is
   immutable, so the raw ids are stable. *)
let string_identity = function
  | "String.valueOf/1" | "String.toString/1" | "String.trim/1"
  | "String.intern/1" | "String.toUpperCase/1" | "String.toLowerCase/1" ->
    Some 0
  | _ -> None

(* The return-value summary of a method body: walk SSA definitions from
   every [return v] terminator. Pure function of the body — calls other
   than the string-identity natives are opaque, fields stay symbolic. *)
let summarize (m : Tac.meth) : t =
  if not m.Tac.m_has_body then [ S_opaque ]
  else begin
    let defs : (Tac.var, Tac.instr) Hashtbl.t = Hashtbl.create 32 in
    let phis : (Tac.var, Tac.phi) Hashtbl.t = Hashtbl.create 8 in
    let returns = ref [] in
    Array.iter
      (fun (b : Tac.block) ->
         List.iter (fun p -> Hashtbl.replace phis p.Tac.phi_lhs p) b.Tac.phis;
         Array.iter
           (fun ins ->
              List.iter (fun v -> Hashtbl.replace defs v ins) (Tac.defs ins))
           b.Tac.instrs;
         match b.Tac.term with
         | Tac.Return (Some v) -> returns := v :: !returns
         | _ -> ())
      m.Tac.m_blocks;
    let rec walk v fuel seen : t =
      if fuel <= 0 || List.mem v seen then [ S_opaque ]
      else if v < m.Tac.m_arity then [ S_param v ]
      else
        let seen = v :: seen in
        match Hashtbl.find_opt defs v with
        | Some (Tac.Const (_, Tac.Cstr s)) -> [ S_lit s ]
        | Some (Tac.Const (_, Tac.Cint n)) -> [ S_lit (string_of_int n) ]
        | Some (Tac.Move (_, s)) | Some (Tac.Cast (_, _, s)) ->
          walk s (fuel - 1) seen
        | Some (Tac.Strcat (_, a, b)) ->
          walk a (fuel - 1) seen @ walk b (fuel - 1) seen
        | Some (Tac.Call c) ->
          (match string_identity (Tac.mref_id c.Tac.target) with
           | Some i ->
             (match List.nth_opt c.Tac.args i with
              | Some a -> walk a (fuel - 1) seen
              | None -> [ S_opaque ])
           | None when Tac.mref_id c.Tac.target = "String.concat/2" ->
             (match c.Tac.args with
              | [ recv; arg ] ->
                walk recv (fuel - 1) seen @ walk arg (fuel - 1) seen
              | _ -> [ S_opaque ])
           | None -> [ S_opaque ])
        | Some (Tac.Load (_, _, f)) | Some (Tac.Sload (_, f)) ->
          [ S_field (f.Tac.fclass, f.Tac.fname) ]
        | Some _ -> [ S_opaque ]
        | None ->
          (match Hashtbl.find_opt phis v with
           | Some p ->
             (* a phi joins: keep the template only when every incoming
                branch agrees, so the summary stays deterministic *)
             (match
                List.map (fun (_, a) -> walk a (fuel - 1) seen) p.Tac.phi_args
              with
              | [] -> [ S_opaque ]
              | first :: rest ->
                if List.for_all (fun s -> norm s = norm first) rest then first
                else [ S_opaque ])
           | None -> [ S_opaque ])
    in
    match List.rev !returns with
    | [] -> []
    | first :: rest ->
      let s0 = norm (walk first 48 []) in
      if List.for_all (fun v -> norm (walk v 48 []) = s0) rest then s0
      else [ S_opaque ]
  end

(** Is the summary all-literal (a usable constant fragment)? *)
let literal_only (s : t) =
  List.for_all (function S_lit _ -> true | _ -> false) s

(* ------------------------------------------------------------------ *)
(* Environment                                                        *)
(* ------------------------------------------------------------------ *)

type env = {
  builder : Sdg.Builder.t;
  prog : Jir.Program.t option;   (* enables field-carried fragments *)
  cache : cache option;
  memo : (string, t) Hashtbl.t;
  mutable field_frags : ((string * string) * Template.t) list option;
      (* lazily computed: fields whose every program-wide store is the
         same all-literal template *)
}

let make ?cache ?prog (builder : Sdg.Builder.t) : env =
  { builder; prog; cache; memo = Hashtbl.create 64; field_frags = None }

(** The (memoized, cache-backed) return summary of a method. *)
let of_method (env : env) (m : Tac.meth) : t =
  let key = Tac.method_id m in
  match Hashtbl.find_opt env.memo key with
  | Some s -> s
  | None ->
    let s =
      match Option.bind env.cache (fun c -> c.sc_lookup m) with
      | Some s -> s
      | None ->
        Telemetry.incr m_summaries;
        let s = summarize m in
        (match env.cache with Some c -> c.sc_store m s | None -> ());
        s
    in
    Hashtbl.replace env.memo key s;
    s

(* All-literal template stored into (class, field), joined program-wide:
   a field with exactly one distinct all-literal stored template is a
   usable constant fragment; anything else is not. *)
let field_fragments (env : env) : ((string * string) * Template.t) list =
  match env.field_frags with
  | Some l -> l
  | None ->
    let l =
      match env.prog with
      | None -> []
      | Some prog ->
        let stores : (string * string, t list) Hashtbl.t =
          Hashtbl.create 64
        in
        let record f (sum : t) =
          let key = (f.Tac.fclass, f.Tac.fname) in
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt stores key)
          in
          if not (List.mem sum prev) then
            Hashtbl.replace stores key (sum :: prev)
        in
        List.iter
          (fun mid ->
             match Jir.Program.find_method prog mid with
             | None -> ()
             | Some m ->
               if m.Tac.m_has_body then begin
                 (* summarize stored values with the same shallow walker:
                    wrap the body so each stored var reads like a return *)
                 let defs : (Tac.var, Tac.instr) Hashtbl.t =
                   Hashtbl.create 16
                 in
                 Array.iter
                   (fun (b : Tac.block) ->
                      Array.iter
                        (fun ins ->
                           List.iter
                             (fun v -> Hashtbl.replace defs v ins)
                             (Tac.defs ins))
                        b.Tac.instrs)
                   m.Tac.m_blocks;
                 let rec walk v fuel : t =
                   if fuel <= 0 then [ S_opaque ]
                   else if v < m.Tac.m_arity then [ S_param v ]
                   else
                     match Hashtbl.find_opt defs v with
                     | Some (Tac.Const (_, Tac.Cstr s)) -> [ S_lit s ]
                     | Some (Tac.Const (_, Tac.Cint n)) ->
                       [ S_lit (string_of_int n) ]
                     | Some (Tac.Move (_, s)) | Some (Tac.Cast (_, _, s)) ->
                       walk s (fuel - 1)
                     | Some (Tac.Strcat (_, a, b)) ->
                       walk a (fuel - 1) @ walk b (fuel - 1)
                     | _ -> [ S_opaque ]
                 in
                 Array.iter
                   (fun (b : Tac.block) ->
                      Array.iter
                        (fun ins ->
                           match ins with
                           | Tac.Store (_, f, v) | Tac.Sstore (f, v) ->
                             record f (norm (walk v 16))
                           | _ -> ())
                        b.Tac.instrs)
                   m.Tac.m_blocks
               end)
          (Jir.Program.all_method_ids prog);
        Hashtbl.fold
          (fun key sums acc ->
             match sums with
             | [ s ] when literal_only s ->
               Telemetry.incr m_fragments;
               ( key,
                 List.map (function
                   | S_lit l -> Template.Lit l
                   | _ -> assert false) s )
               :: acc
             | _ -> acc)
          stores []
        |> List.sort compare
    in
    env.field_frags <- Some l;
    l

let fragment (env : env) (f : Tac.field) : Template.t option =
  List.assoc_opt (f.Tac.fclass, f.Tac.fname) (field_fragments env)

(* ------------------------------------------------------------------ *)
(* Sink templates                                                     *)
(* ------------------------------------------------------------------ *)

let is_builder_class c = c = "StringBuilder" || c = "StringBuffer"

let is_append (c : Tac.call) =
  is_builder_class c.Tac.target.Tac.rclass
  && c.Tac.target.Tac.rname = "append"
  && c.Tac.target.Tac.rarity = 2

let is_builder_to_string (c : Tac.call) =
  is_builder_class c.Tac.target.Tac.rclass
  && c.Tac.target.Tac.rname = "toString"
  && c.Tac.target.Tac.rarity = 1

(* walk parameters threaded through the mutually recursive functions *)
type wctx = {
  env : env;
  path_set : Stmt.Set.t;
}

let atomic (w : wctx) (def : Stmt.t) : Template.t =
  if Stmt.Set.mem def w.path_set then [ Template.Tainted ]
  else [ Template.Hole ]

(* When a call's definition lies on the flow path but instantiating its
   summary produced no tainted fragment, the taint traversed a part the
   summary could not see: pin it on the first unknown fragment so the
   constant context around it survives. *)
let mark_on_path (w : wctx) (def : Stmt.t) (tpl : Template.t) : Template.t =
  if
    (not (Stmt.Set.mem def w.path_set))
    || List.mem Template.Tainted tpl
  then tpl
  else
    let rec first_hole = function
      | Template.Hole :: rest -> Some (Template.Tainted :: rest)
      | p :: rest ->
        Option.map (fun r -> p :: r) (first_hole rest)
      | [] -> None
    in
    match first_hole tpl with
    | Some t -> t
    | None -> [ Template.Tainted ]

let rec walk (w : wctx) ~node v fuel depth : Template.t =
  if fuel <= 0 then [ Template.Hole ]
  else
    match Sdg.Builder.def_of w.env.builder ~node v with
    | None -> [ Template.Hole ]
    | Some def ->
      (match Sdg.Builder.instr_of w.env.builder def with
       | Some (Tac.Strcat (_, a, b)) ->
         walk w ~node a (fuel - 1) depth @ walk w ~node b (fuel - 1) depth
       | Some (Tac.Move (_, s)) | Some (Tac.Cast (_, _, s)) ->
         walk w ~node s (fuel - 1) depth
       | Some (Tac.Const (_, Tac.Cstr s)) -> [ Template.Lit s ]
       | Some (Tac.Const (_, Tac.Cint n)) ->
         [ Template.Lit (string_of_int n) ]
       | Some (Tac.Load (_, _, f)) | Some (Tac.Sload (_, f)) ->
         (match fragment w.env f with
          | Some t -> t
          | None -> atomic w def)
       | Some (Tac.Call c) -> call_template w ~node def c fuel depth
       | Some _ -> atomic w def
       | None ->
         (match def.Stmt.kind with
          | Stmt.K_param i -> param_template w ~node def i fuel depth
          | _ -> atomic w def))

(* A formal parameter: cross to the caller and continue from the actual
   argument. The flow path disambiguates call sites — the caller passing
   a value defined on the path is the one the flow traversed; with no
   path evidence a unique caller is still usable. *)
and param_template (w : wctx) ~node (def : Stmt.t) i fuel depth : Template.t =
  if depth <= 0 then atomic w def
  else
    let b = w.env.builder in
    let candidates =
      List.filter_map
        (fun (cs : Stmt.t) ->
           match Sdg.Builder.call_of b cs with
           | Some c ->
             Option.map
               (fun a -> (cs.Stmt.node, a))
               (List.nth_opt c.Tac.args i)
           | None -> None)
        (Sdg.Builder.callers_of_node b ~callee:node)
    in
    let on_path (pnode, a) =
      match Sdg.Builder.def_of b ~node:pnode a with
      | Some d -> Stmt.Set.mem d w.path_set
      | None -> false
    in
    let cross (pnode, a) =
      mark_on_path w def (walk w ~node:pnode a (fuel - 1) (depth - 1))
    in
    (match List.find_opt on_path candidates with
     | Some c -> cross c
     | None ->
       (match candidates with
        | [ c ] -> cross c
        | _ -> atomic w def))

and call_template (w : wctx) ~node (def : Stmt.t) (c : Tac.call) fuel depth :
  Template.t =
  let arg i =
    match List.nth_opt c.Tac.args i with
    | Some a -> walk w ~node a (fuel - 1) depth
    | None -> [ Template.Hole ]
  in
  if is_builder_to_string c then
    (match c.Tac.args with
     | recv :: _ -> mark_on_path w def (chain_template w ~node recv fuel depth)
     | [] -> atomic w def)
  else
    match string_identity (Tac.mref_id c.Tac.target) with
    | Some i -> mark_on_path w def (arg i)
    | None when Tac.mref_id c.Tac.target = "String.concat/2" ->
      mark_on_path w def (arg 0 @ arg 1)
    | None ->
      if depth <= 0 then atomic w def
      else
        (match Sdg.Builder.callees_of_call w.env.builder def c with
         | [ callee ] ->
           let m = Sdg.Builder.node_meth w.env.builder callee in
           (match of_method w.env m with
            | [] -> atomic w def
            | [ S_opaque ] -> atomic w def
            | summary ->
              let tpl =
                List.concat_map
                  (function
                    | S_lit s -> [ Template.Lit s ]
                    | S_param i ->
                      (match List.nth_opt c.Tac.args i with
                       | Some a -> walk w ~node a (fuel - 1) (depth - 1)
                       | None -> [ Template.Hole ])
                    | S_field (fclass, fname) ->
                      (match
                         fragment w.env { Tac.fclass; fname }
                       with
                       | Some t -> t
                       | None -> [ Template.Hole ])
                    | S_opaque -> [ Template.Hole ])
                  summary
              in
              mark_on_path w def tpl)
         | _ -> atomic w def)

(* A StringBuilder/StringBuffer accumulation: the constructor argument
   followed by every appended value, in program order of the append call
   sites. The receiver may be the allocation itself or the fluent result
   of an earlier append; both root to the allocation, from which every
   alias (append results) is explored through the use index. *)
and chain_template (w : wctx) ~node recv fuel depth : Template.t =
  let b = w.env.builder in
  (* root the receiver chain at the allocation *)
  let rec root v guard =
    if guard <= 0 then v
    else
      match Sdg.Builder.def_of b ~node v with
      | None -> v
      | Some def ->
        (match Sdg.Builder.instr_of b def with
         | Some (Tac.Move (_, s)) | Some (Tac.Cast (_, _, s)) ->
           root s (guard - 1)
         | Some (Tac.Call c) when is_append c ->
           (match c.Tac.args with
            | r :: _ -> root r (guard - 1)
            | [] -> v)
         | _ -> v)
  in
  let r0 = root recv 16 in
  (* explore aliases: the allocation plus every append result *)
  let appended : (Stmt.t * Tac.var) list ref = ref [] in
  let ctor_arg : Tac.var option ref = ref None in
  let seen = Hashtbl.create 8 in
  let rec explore v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      List.iter
        (fun (u : Sdg.Builder.use) ->
           match u with
           | Sdg.Builder.U_plain stmt ->
             (* follow copies of the builder reference *)
             (match Sdg.Builder.instr_of b stmt with
              | Some (Tac.Move (d, _)) | Some (Tac.Cast (d, _, _)) ->
                explore d
              | _ -> ())
           | Sdg.Builder.U_arg (stmt, 0) ->
             (match Sdg.Builder.call_of b stmt with
              | Some c when is_append c ->
                (match c.Tac.args with
                 | _ :: value :: _ ->
                   if
                     not
                       (List.exists
                          (fun (s, _) -> Stmt.equal s stmt)
                          !appended)
                   then appended := (stmt, value) :: !appended;
                   (match c.Tac.ret with
                    | Some r -> explore r
                    | None -> ())
                 | _ -> ())
              | Some c
                when c.Tac.kind = Tac.Special
                     && c.Tac.target.Tac.rname = "<init>"
                     && is_builder_class c.Tac.target.Tac.rclass
                     && c.Tac.target.Tac.rarity = 2 ->
                (match c.Tac.args with
                 | _ :: init :: _ -> ctor_arg := Some init
                 | _ -> ())
              | _ -> ())
           | _ -> ())
        (Sdg.Builder.uses_of b ~node v)
    end
  in
  explore r0;
  let appends =
    List.sort (fun (a, _) (b', _) -> Stmt.compare a b') !appended
  in
  if appends = [] && !ctor_arg = None then [ Template.Hole ]
  else
    let init =
      match !ctor_arg with
      | Some v -> walk w ~node v (fuel - 1) depth
      | None -> []
    in
    List.fold_left
      (fun acc (_, v) -> acc @ walk w ~node v (fuel - 1) depth)
      init appends

(** Reconstruct the template of the value flowing into [sink] along
    [path]. Returns [None] when the sink argument cannot be recovered. *)
let sink_template (env : env) ~(path : Stmt.t list) ~(sink : Stmt.t) :
  Template.t option =
  match Sdg.Builder.call_of env.builder sink with
  | None -> None
  | Some call ->
    Telemetry.incr m_templates;
    let w = { env; path_set = Stmt.Set.of_list path } in
    let node = sink.Stmt.node in
    let args = call.Tac.args in
    let on_path v =
      match Sdg.Builder.def_of env.builder ~node v with
      | Some def -> Stmt.Set.mem def w.path_set
      | None -> false
    in
    (* find the sensitive argument: prefer one whose def lies on the
       path; fall back to the last argument *)
    let arg =
      match args with
      | [] -> None
      | hd :: tl ->
        (match List.find_opt on_path (tl @ [ hd ]) with
         | Some v -> Some v
         | None -> List.nth_opt args (List.length args - 1))
    in
    (match arg with
     | Some v -> Some (Template.normalize (walk w ~node v 64 4))
     | None -> None)
