(** The string-template algebra: abstract concatenations of constant,
    tainted and unknown fragments, with syntactic-context classification
    of the tainted position. *)

type piece =
  | Lit of string     (** a known constant fragment *)
  | Tainted           (** the attacker-controlled part (on the flow path) *)
  | Hole              (** statically unknown fragment *)

type t = piece list

val pp_piece : Format.formatter -> piece -> unit
val pp : Format.formatter -> t -> unit

(** Canonical form: adjacent literals merged, empty literals dropped. *)
val normalize : t -> t

(** Monoid operation: concatenation in canonical form (associative). *)
val concat : t -> t -> t

(** [normalize] plus adjacent-hole absorption; classification is
    invariant under it. *)
val compact : t -> t

(** The constant prefix before the tainted fragment, or [None] when an
    unknown fragment (or the template's end) intervenes. *)
val prefix_before_taint : t -> string option

(** [Html_text], [Html_attribute] or [Unknown]. *)
val html_context : t -> Context.t

(** [Sql_quoted], [Sql_raw] or [Unknown]. A template whose first piece is
    [Tainted] (no leading literal) classifies as [Sql_raw]: the attacker
    controls the statement head. *)
val sql_context : t -> Context.t
