(** The syntactic-context lattice for context-sensitive sanitization and
    the per-flow sanitization verdict. *)

type t =
  | Html_text        (** between tags: classic script injection *)
  | Html_attribute   (** inside a quoted attribute value *)
  | Sql_quoted       (** inside a '...' SQL string literal *)
  | Sql_raw          (** raw SQL position (numeric, keyword, identifier) *)
  | Path             (** filesystem path component *)
  | Shell            (** shell command word *)
  | Unknown          (** lattice top: context not statically determined *)

(** Every concrete context, [Unknown] excluded. *)
val all : t list

val name : t -> string
val of_name : string -> t option
val pp : Format.formatter -> t -> unit

type verdict =
  | Sanitized
  | Mismatched_sanitizer of { applied : string list; required : t }
  | Unsanitized

val verdict_name : verdict -> string
val pp_verdict : Format.formatter -> verdict -> unit
