(** The string-template algebra.

    A template is an abstract concatenation: known constant fragments
    ([Lit]), the attacker-controlled fragment ([Tainted]), and statically
    unknown fragments ([Hole]). Templates form a monoid under
    concatenation with [normalize] as the canonical form (adjacent
    literals merged, empty literals dropped); classification reads the
    constant prefix before the tainted fragment to decide the syntactic
    context the attacker lands in. *)

type piece =
  | Lit of string     (** a known constant fragment *)
  | Tainted           (** the attacker-controlled part (on the flow path) *)
  | Hole              (** statically unknown fragment *)

type t = piece list

let pp_piece ppf = function
  | Lit s -> Fmt.pf ppf "%S" s
  | Tainted -> Fmt.string ppf "TAINT"
  | Hole -> Fmt.string ppf "?"

let pp = Fmt.list ~sep:(Fmt.any " ++ ") pp_piece

(** Merge adjacent literals, drop empty ones. Does {e not} collapse
    adjacent holes — hole multiplicity is printed in diagnostics, so the
    canonical form keeps it; classification is insensitive to it (see
    {!compact}). *)
let normalize (t : t) : t =
  let rec go = function
    | Lit a :: Lit b :: rest -> go (Lit (a ^ b) :: rest)
    | Lit "" :: rest -> go rest
    | p :: rest -> p :: go rest
    | [] -> []
  in
  go t

(** Monoid operation: concatenation in canonical form. Associative up to
    [normalize] (tested by the QCheck algebra properties). *)
let concat (a : t) (b : t) : t = normalize (a @ b)

(** [normalize] plus adjacent-hole absorption: two unknown fragments in a
    row carry exactly the information of one. Classification is invariant
    under [compact]. *)
let compact (t : t) : t =
  let rec go = function
    | Hole :: Hole :: rest -> go (Hole :: rest)
    | p :: rest -> p :: go rest
    | [] -> []
  in
  go (normalize t)

(** The known constant prefix before the tainted fragment, or [None] when
    an unknown fragment (or the template's end) intervenes. *)
let prefix_before_taint (t : t) : string option =
  let rec go acc = function
    | Lit s :: rest -> go (acc ^ s) rest
    | Tainted :: _ -> Some acc
    | Hole :: _ -> None
    | [] -> None
  in
  go "" t

(* ------------------------------------------------------------------ *)
(* Context classification                                             *)
(* ------------------------------------------------------------------ *)

(** Where in the surrounding HTML the tainted fragment lands: scans the
    constant prefix with a tag/quote state machine. *)
let html_context (t : t) : Context.t =
  match prefix_before_taint t with
  | None -> Context.Unknown
  | Some prefix ->
    (* inside a tag if a '<' is open; inside an attribute if additionally
       a quote is open *)
    let lt = ref false and quote = ref None in
    String.iter
      (fun c ->
         match c with
         | '<' -> lt := true
         | '>' -> lt := false; quote := None
         | '"' | '\'' when !lt ->
           (match !quote with
            | Some q when q = c -> quote := None
            | Some _ -> ()
            | None -> quote := Some c)
         | _ -> ())
      prefix;
    if !lt && !quote <> None then Context.Html_attribute
    else if !lt then Context.Unknown (* inside a tag but unquoted *)
    else Context.Html_text

(** Whether the tainted fragment lands inside a SQL string literal
    (odd number of quotes open in the prefix) or in a raw position. A
    template that {e starts} with the tainted fragment — no leading
    literal at all — is explicitly a raw position: the attacker controls
    the statement head. *)
let sql_context (t : t) : Context.t =
  match normalize t with
  | Tainted :: _ -> Context.Sql_raw
  | _ ->
    (match prefix_before_taint t with
     | None -> Context.Unknown
     | Some prefix ->
       let quotes = ref 0 in
       String.iter (fun c -> if c = '\'' then incr quotes) prefix;
       if !quotes mod 2 = 1 then Context.Sql_quoted else Context.Sql_raw)
