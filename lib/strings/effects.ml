(** Per-sanitizer effect sets over the context lattice.

    Every sanitizer protects a set of syntactic contexts — its {e effect
    set}. The set is inferred from two signals: the sanitizer's name (the
    model-library surface encodes its purpose: [encodeHtml], [escapeSql],
    [cleansePath], [URLEncoder.encode]) and, as a fallback, the issue
    type of the rules that list it (a sanitizer registered only for the
    SQL-injection rule is presumed to protect quoted SQL positions). The
    inference is deliberately name-driven so user-supplied rule files get
    useful effect sets without annotations; unknown sanitizers fall back
    to the rule-metadata signal alone. *)

type table = (string * Context.t list) list

(* Does the lowercased method name contain [needle]? *)
let has ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (sub i 0 || at (i + 1))
  and sub i j = j = nl || (hay.[i + j] = needle.[j] && sub i (j + 1)) in
  nl > 0 && at 0

(* "Class.name/arity" -> (lowercased class, lowercased name) *)
let split_id id =
  let stem =
    match String.rindex_opt id '/' with
    | Some slash -> String.sub id 0 slash
    | None -> id
  in
  match String.rindex_opt stem '.' with
  | Some dot ->
    ( String.lowercase_ascii (String.sub stem 0 dot),
      String.lowercase_ascii
        (String.sub stem (dot + 1) (String.length stem - dot - 1)) )
  | None -> ("", String.lowercase_ascii stem)

(** Effect set suggested by the method name alone; [] when the name says
    nothing. *)
let of_name (id : string) : Context.t list =
  let cls, name = split_id id in
  if has ~needle:"html" name then [ Context.Html_text; Context.Html_attribute ]
  else if has ~needle:"sql" name then [ Context.Sql_quoted ]
  else if has ~needle:"path" name || has ~needle:"file" name then
    [ Context.Path ]
  else if has ~needle:"shell" name || has ~needle:"cmd" name
          || has ~needle:"command" name then [ Context.Shell ]
  else if has ~needle:"url" cls || has ~needle:"url" name then
    (* percent-encoding escapes <, >, quotes and slashes: it protects
       both HTML contexts and path components, but not SQL *)
    [ Context.Html_text; Context.Html_attribute; Context.Path ]
  else []

(** Effect set implied by an issue type a rule associates the sanitizer
    with (rule names as in [Rules.issue_name]). *)
let of_issue (issue : string) : Context.t list =
  match String.lowercase_ascii issue with
  | "xss" | "cross-site scripting" ->
    [ Context.Html_text; Context.Html_attribute ]
  | "sqli" | "sql injection" -> [ Context.Sql_quoted ]
  | "malicious-file" | "malicious file" -> [ Context.Path ]
  | "command-injection" | "command injection" -> [ Context.Shell ]
  | _ -> []

let dedup l =
  List.rev
    (List.fold_left (fun acc c -> if List.mem c acc then acc else c :: acc)
       [] l)

(** Build the effect table. [sanitizers] pairs each canonical sanitizer
    method id with the issue names of the rules listing it. The name
    signal wins when it speaks; otherwise the union of the issue
    fallbacks. *)
let infer ~(sanitizers : (string * string list) list) : table =
  List.map
    (fun (id, issues) ->
       let effs =
         match of_name id with
         | [] -> dedup (List.concat_map of_issue issues)
         | e -> e
       in
       (id, effs))
    (List.sort_uniq compare sanitizers)

(** The effect set of a canonical sanitizer id; [] when unknown. *)
let effects (t : table) (id : string) : Context.t list =
  Option.value ~default:[] (List.assoc_opt id t)

(** Does an effect set cover a required context? [Unknown] is covered by
    any non-empty effect set: a mismatch is only reported when the sink
    context is demonstrated. *)
let covers (effs : Context.t list) (required : Context.t) : bool =
  match required with
  | Context.Unknown -> effs <> []
  | c -> List.mem c effs
