(** Sharded multi-process analysis cluster: a single-threaded coordinator
    forks [size] worker processes (each a full {!Service} engine), routes
    jobs to them by consistent hash of {!Service.job_key}, and supervises
    them — a worker lost to a segfault or [kill -9] has its in-flight
    jobs rerouted to peers (or answered [failed:worker_crashed] past the
    retry budget) and is respawned under exponential backoff behind a
    per-worker circuit breaker. Every submitted job still reaches exactly
    one terminal response; drain aggregates per-worker health and
    telemetry into one cluster snapshot. *)

type config = {
  size : int;                      (** worker processes *)
  ring_replicas : int;             (** virtual ring nodes per worker *)
  crash_retries : int;             (** worker crashes one job survives *)
  respawn_base : float;            (** first respawn backoff, seconds *)
  respawn_factor : float;
  respawn_max : float;
  worker_breaker_threshold : int;  (** consecutive crashes to open *)
  worker_breaker_cooldown : float;
  worker_trace_prefix : string option;
      (** [Some p]: worker [i] writes its trace to [p.worker-<i>.json]
          at drain, merged by {!write_merged_trace} *)
  flight_dump : string option;
      (** [Some p]: the merged flight-recorder dump is written to [p] on
          worker crash, SIGUSR1, or an admin [dump] command. Worker [i]
          keeps a ring snapshot current at [p.worker-<i>.json] (rewritten
          before each result frame is sent, so any observed result is
          covered) and a SIGKILLed worker's recent events still
          reach the merge. [None] disables dumping. *)
  forward_logs : bool;
      (** workers send their {!Obs.Log} lines over the supervised pipe
          (pre-rendered, with per-worker context) so the coordinator's
          sink carries one merged stream *)
  announce : bool;                 (** worker lifecycle lines on stderr *)
  service : Service.config;        (** per-worker engine configuration *)
}

val default_config : config

(** Pure per-slot respawn schedule (capped exponential in consecutive
    crashes). *)
val respawn_delay : config -> crashes:int -> float

type t

(** Fork the initial worker set. The calling process must not have live
    domains of its own (the coordinator never spawns any, keeping every
    later respawn fork safe too). *)
val create : ?config:config -> unit -> t

(** Preferred worker for a routing key (ring lookup only — ignores
    liveness and breakers). Deterministic; exposed for tests. *)
val route : t -> string -> int

(** Pids of currently-live workers, in slot order. *)
val worker_pids : t -> int list

(** Route and dispatch one job. The respond callback fires exactly once,
    always from the coordinator thread (during a {!pump}, {!submit} or
    drain call). *)
val submit : t -> Service.request -> respond:(Service.response -> unit) -> unit

(** One supervision step: read worker frames, detect crashes ([waitpid] /
    closed pipe), deliver due reroutes, respawn due slots. Interleave
    with transport reads; [timeout] bounds the internal select. *)
val pump : t -> timeout:float -> unit

(** No job in flight and no reroute parked. *)
val idle : t -> bool

(** Stop admitting, flush parked reroutes, send every live worker a drain
    frame. Idempotent. *)
val request_drain : t -> unit

(** Pump until every worker has drained (final health frame) or crashed,
    every job is terminal, and all children are reaped. *)
val await_drained : t -> unit

(** SIGINT/SIGTERM set a drain flag (no domains involved); transports
    poll {!signal_pending}. SIGUSR1 sets a dump flag; the next {!pump}
    writes the merged flight dump. *)
val install_signals : t -> unit

val signal_pending : t -> bool

(** {1 Health} *)

type worker_health = {
  wh_index : int;
  wh_pid : int;
  wh_up : bool;
  wh_crashes : int;                (** consecutive, at snapshot time *)
  wh_spawns : int;
  wh_health : Service.health option;
      (** the final drain snapshot, or the most recent interim answer to
          an admin health request *)
}

type health = {
  ch_uptime : float;
  ch_size : int;
  ch_submitted : int;
  ch_completed : int;
  ch_degraded : int;
  ch_failed : int;
  ch_rejected : int;
  ch_shed : int;
  ch_rejected_full : int;
  ch_crashes : int;                (** worker processes lost *)
  ch_respawns : int;
  ch_rerouted : int;               (** jobs moved off a dead worker *)
  ch_crash_failed : int;           (** jobs failed past the crash budget *)
  ch_workers : worker_health list;
}

val health : t -> health

(** Same promise as {!Service.clean_drain}: nothing shed, nothing turned
    away by a full queue. Crash recovery does not make a drain unclean. *)
val clean_drain : health -> bool

val health_json : health -> string

(** Coordinator-level lifecycle diagnostics, in arrival order. *)
val events : t -> Core.Diagnostics.degradation list

(** Merge the coordinator's telemetry with the per-worker trace files
    into one Chrome trace (one pid lane per process). *)
val write_merged_trace : t -> string -> unit

(** {1 Admin channel} *)

(** Aggregated health: each live worker is asked for a fresh interim
    snapshot over its pipe (bounded by [timeout] seconds, default 1.0); a
    worker that dies or stalls mid-collect keeps its last known one. *)
val admin_health : ?timeout:float -> t -> health

(** Coordinator registry merged with a fresh telemetry snapshot from
    every live worker: counters and gauges sum, histograms merge
    bucket-wise (see {!Obs.Export.merge}). *)
val admin_metrics :
  ?timeout:float -> t -> (string * Obs.Telemetry.value) list

(** Write the merged flight-recorder dump (coordinator ring on pid 1,
    worker rings on pid index+2 — fresh [Dump] replies where possible,
    on-disk ring snapshots for dead workers) to [config.flight_dump].
    Returns the path written, [None] when dumping is disabled. *)
val flight_dump : t -> cause:string -> string option

(** One admin command line → one reply, same command set as
    {!Service.admin_reply} (["health"], ["metrics"], ["metrics.json"],
    ["dump"]), answered with cluster-wide aggregates. *)
val admin_reply : t -> string -> string

(** {1 Transports} (NDJSON, same wire protocol as {!Service}) *)

(** [admin] opens the admin socket at that path, served from the
    coordinator's supervision loop. *)
val run_stdio :
  ?stdin:Unix.file_descr -> ?stdout:Unix.file_descr -> ?admin:string ->
  t -> health

val run_socket : ?admin:string -> t -> string -> health
