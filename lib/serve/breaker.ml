(** Per-key circuit breakers: closed -> open -> half-open -> closed.

    A key (normally the application name) that keeps failing terminally
    stops consuming worker slots: after [threshold] consecutive terminal
    failures the breaker {e opens} and jobs for that key fail fast without
    running. After [cooldown] seconds the next acquire transitions to
    {e half-open} and is admitted as a single probe; the probe's success
    closes the breaker (and resets the failure count), its failure
    re-opens it for another cooldown. While a half-open probe is in flight
    every other acquire for the key still fails fast — except the probe
    job's own re-execution: the cell remembers which job holds the probe
    slot, so a probe whose run failed {e transiently} (and will be
    retried) is re-admitted as the same probe rather than fast-failed,
    which would leave the breaker wedged half-open forever.

    Only {e terminal} failures count: a transient failure that the retry
    policy will re-run carries no new information about the key, and a
    fast-fail must not re-trip the breaker it came from. The clock is
    injectable ([now]) so the state machine is unit-testable without real
    waiting. *)

type state =
  | Closed
  | Open of float                      (** opened at (clock value) *)
  | Half_open                          (** one probe in flight *)

let state_name = function
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"

type cell = {
  mutable c_state : state;
  mutable c_failures : int;            (* consecutive terminal failures *)
  mutable c_probe : string option;     (* job holding the half-open slot *)
}

type t = {
  threshold : int;
  cooldown : float;
  now : unit -> float;
  cells : (string, cell) Hashtbl.t;
  lock : Mutex.t;
  on_transition : key:string -> state -> unit;
}

let m_opens = Obs.Telemetry.counter "serve.breaker.opens"
let m_fast_fails = Obs.Telemetry.counter "serve.breaker.fast_fails"

let create ?(now = Unix.gettimeofday)
    ?(on_transition = fun ~key:_ _ -> ()) ~threshold ~cooldown () =
  { threshold = max 1 threshold; cooldown; now;
    cells = Hashtbl.create 16; lock = Mutex.create (); on_transition }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let cell t key =
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
    let c = { c_state = Closed; c_failures = 0; c_probe = None } in
    Hashtbl.replace t.cells key c;
    c

let transition t ~key c st =
  c.c_state <- st;
  Obs.Telemetry.instant "serve.breaker"
    ~args:[ ("key", key); ("state", state_name st) ];
  t.on_transition ~key st

(** Admission decision for one execution of a job keyed [key]. [job]
    identifies the execution so that the half-open probe's own retry can
    reclaim the probe slot it already holds. *)
let acquire ?job t key : [ `Proceed | `Probe | `Fast_fail ] =
  locked t (fun () ->
    let c = cell t key in
    match c.c_state with
    | Closed -> `Proceed
    | Half_open ->
      (match job, c.c_probe with
       | Some j, Some p when j = p -> `Probe   (* the probe's own retry *)
       | _ ->
         Obs.Telemetry.incr m_fast_fails;
         `Fast_fail)
    | Open since ->
      if t.now () -. since >= t.cooldown then begin
        transition t ~key c Half_open;
        c.c_probe <- job;
        `Probe
      end
      else begin
        Obs.Telemetry.incr m_fast_fails;
        `Fast_fail
      end)

(** Record a successful (or degraded-but-terminal-success) execution. The
    cell is then indistinguishable from a fresh one, so it is evicted:
    the table holds only keys with live failure streaks or open breakers,
    not one entry per key ever seen. *)
let success t key =
  locked t (fun () ->
    let c = cell t key in
    c.c_failures <- 0;
    c.c_probe <- None;
    (match c.c_state with
     | Half_open | Open _ -> transition t ~key c Closed
     | Closed -> ());
    Hashtbl.remove t.cells key)

(** Record a terminal failure. Returns [true] when this failure opened
    (or re-opened) the breaker. *)
let failure t key =
  locked t (fun () ->
    let c = cell t key in
    c.c_failures <- c.c_failures + 1;
    c.c_probe <- None;
    match c.c_state with
    | Half_open ->
      Obs.Telemetry.incr m_opens;
      transition t ~key c (Open (t.now ()));
      true
    | Closed when c.c_failures >= t.threshold ->
      Obs.Telemetry.incr m_opens;
      transition t ~key c (Open (t.now ()));
      true
    | Closed | Open _ -> false)

(* Read-only accessors must not materialize cells, or health polling
   would re-grow the table that [success] prunes. *)
let state t key =
  locked t (fun () ->
    match Hashtbl.find_opt t.cells key with
    | Some c -> c.c_state
    | None -> Closed)

let consecutive_failures t key =
  locked t (fun () ->
    match Hashtbl.find_opt t.cells key with
    | Some c -> c.c_failures
    | None -> 0)

(** Keys whose breaker is currently not closed, for health snapshots. *)
let open_keys t =
  locked t (fun () ->
    Hashtbl.fold
      (fun key c acc -> if c.c_state = Closed then acc else key :: acc)
      t.cells [])
  |> List.sort String.compare
