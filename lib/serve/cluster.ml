(** Sharded multi-process analysis cluster: a coordinator that forks N
    worker processes, each running the single-process {!Service} engine,
    and supervises them so a hard worker crash (segfault, OOM kill,
    [kill -9]) is an ordinary recoverable event instead of the end of the
    service.

    Topology and responsibilities:

    - {e Routing}: jobs are routed by consistent hash of {!Service.job_key}
      (application name, or a hash of the inline source) over a ring of
      virtual nodes, so repeated submissions of one application land on the
      same warm worker and adding/removing a worker only moves the keys
      adjacent to it.
    - {e Supervision}: each worker talks to the coordinator over a
      socketpair carrying {!Proto} frames. A crash is detected by EOF on
      that socketpair (and confirmed by [waitpid]); the worker slot enters
      a down state and is respawned after an exponential per-slot backoff.
      A per-worker {!Breaker} (keys ["worker-<i>"]) takes a crash-looping
      worker out of the routing ring until its cooldown probe succeeds.
    - {e Zero lost jobs}: the coordinator keeps every dispatched job in an
      in-flight table until its [Result] frame arrives. Jobs in flight on
      a crashed worker are classified with {!Core.Fault.classify} (a dead
      peer is a transient infrastructure failure) and rerouted to a peer
      after the service's seeded backoff, up to [crash_retries] crashes;
      beyond that they are answered [failed:worker_crashed]. Every
      submitted job still reaches exactly one terminal response.
    - {e Drain}: on SIGTERM/SIGINT or end of input the coordinator stops
      admitting, flushes pending reroutes, sends each worker a [Drain]
      frame; workers drain their engines, emit a final [Health] frame and
      exit 0; the coordinator reaps them and aggregates a cluster health
      snapshot with per-worker counters.

    The coordinator deliberately runs no domains of its own — it is a
    single-threaded select pump — so [Unix.fork] stays safe not only at
    startup but at every respawn. *)

open Core

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type config = {
  size : int;                      (** worker processes *)
  ring_replicas : int;             (** virtual nodes per worker *)
  crash_retries : int;             (** worker crashes one job survives *)
  respawn_base : float;            (** first respawn backoff, seconds *)
  respawn_factor : float;
  respawn_max : float;
  worker_breaker_threshold : int;  (** consecutive crashes to open *)
  worker_breaker_cooldown : float;
  worker_trace_prefix : string option;
      (** [Some p]: worker [i] writes its telemetry trace to
          [p ^ ".worker-<i>.json"] at drain, for {!merged_trace} *)
  flight_dump : string option;
      (** [Some p]: the merged flight-recorder dump is written to [p] on
          worker crash, SIGUSR1 or an admin [dump] request; worker [i]
          keeps its ring snapshot current at [p ^ ".worker-<i>.json"]
          after every result, so even a SIGKILLed worker's last events
          survive into the merge *)
  forward_logs : bool;
      (** workers replace their inherited {!Obs.Log} sink with a
          [Log_line] pipe forwarder, so the coordinator's sink carries
          one merged stream *)
  announce : bool;                 (** log lifecycle lines to stderr *)
  service : Service.config;        (** per-worker engine configuration *)
}

let default_config =
  { size = 2; ring_replicas = 32; crash_retries = 2;
    respawn_base = 0.2; respawn_factor = 2.0; respawn_max = 5.0;
    worker_breaker_threshold = 3; worker_breaker_cooldown = 5.0;
    worker_trace_prefix = None; flight_dump = None; forward_logs = false;
    announce = true; service = Service.default_config }

(** Pure per-slot respawn schedule: exponential in the number of
    consecutive crashes, capped. *)
let respawn_delay cfg ~crashes =
  let exp =
    cfg.respawn_base *. (cfg.respawn_factor ** float_of_int (max 0 crashes - 1))
  in
  Float.min cfg.respawn_max exp

(* ------------------------------------------------------------------ *)
(* State                                                              *)
(* ------------------------------------------------------------------ *)

type cjob = {
  cj_req : Service.request;
  cj_respond : Service.response -> unit;
  cj_submitted : float;
  mutable cj_crashes : int;        (* worker crashes survived so far *)
}

type slot_state =
  | Up
  | Down of float                  (* respawn due at this clock value *)

type slot = {
  s_index : int;
  mutable s_pid : int;
  mutable s_fd : Unix.file_descr;
  mutable s_reader : Proto.reader;
  mutable s_state : slot_state;
  mutable s_crashes : int;         (* consecutive, reset on a result *)
  mutable s_spawns : int;
  mutable s_drain_sent : bool;
  mutable s_reaped : bool;
  mutable s_health : Service.health option;
      (* the final snapshot of an orderly drain — only ever set after
         the drain frame went out, so admin replies can't be mistaken
         for it *)
  mutable s_admin_health : Service.health option;   (* last Health_req reply *)
  mutable s_admin_metrics : (string * Obs.Telemetry.value) list option;
  mutable s_admin_dump : string option;             (* last Dump reply *)
  s_inflight : (string, cjob) Hashtbl.t;
}

type t = {
  cfg : config;
  started_at : float;
  slots : slot array;
  ring : (int * int) array;        (* (hash point, worker index), sorted *)
  breaker : Breaker.t;
  diagnostics : Diagnostics.t;
  diag_lock : Mutex.t;
  mutable pending : (float * cjob) list;  (* reroutes waiting on backoff *)
  mutable draining : bool;
  sig_drain : bool Atomic.t;
  sig_dump : bool Atomic.t;        (* SIGUSR1: flight dump requested *)
  (* terminal-response accounting, for the aggregated health snapshot *)
  mutable n_submitted : int;
  mutable n_completed : int;
  mutable n_degraded : int;
  mutable n_failed : int;
  mutable n_rejected : int;
  mutable n_shed : int;            (* responses with reason "shed" *)
  mutable n_rejected_full : int;   (* responses with reason "queue_full" *)
  mutable n_crashes : int;
  mutable n_respawns : int;
  mutable n_rerouted : int;
  mutable n_crash_failed : int;
}

let now t = t.cfg.service.Service.now ()

let record_diag t d =
  Mutex.lock t.diag_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.diag_lock)
    (fun () -> Diagnostics.record t.diagnostics d)

let announce t fmt =
  if t.cfg.announce then Printf.eprintf ("cluster: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

(* ------------------------------------------------------------------ *)
(* Worker process                                                     *)
(* ------------------------------------------------------------------ *)

let worker_trace_file cfg index =
  Option.map
    (fun p -> Printf.sprintf "%s.worker-%d.json" p index)
    cfg.worker_trace_prefix

(* The worker's flight-ring snapshot file: rewritten (atomically, via
   temp+rename) after every result, so when the process is SIGKILLed the
   coordinator can still merge the worker's recent events from disk. *)
let worker_flight_file cfg index =
  Option.map
    (fun p -> Printf.sprintf "%s.worker-%d.json" p index)
    cfg.flight_dump

(* Runs in the forked child; never returns. The engine (and its domains)
   is created only after the fork — the child starts single-domain. All
   communication with the coordinator is Proto frames on [fd]; stdio is
   inherited but never written to, so cluster stdout stays the
   coordinator's alone. *)
let worker_main cfg ~index fd : 'a =
  Io.ignore_sigpipe ();
  (* drain is driven by the coordinator (Drain frame / EOF), not by the
     terminal's signal broadcast: a ^C must not make workers race their
     coordinator's orderly drain *)
  Sys.set_signal Sys.sigterm Sys.Signal_ignore;
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  (* a SIGUSR1 aimed at the process group must dump once, from the
     coordinator (whose merge includes the worker snapshots below) *)
  Sys.set_signal Sys.sigusr1 Sys.Signal_ignore;
  let exit_code = ref 0 in
  (try
     let wlock = Mutex.create () in
     let send m =
       Mutex.lock wlock;
       Fun.protect
         ~finally:(fun () -> Mutex.unlock wlock)
         (fun () ->
            try Proto.write fd m
            with Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
              (* coordinator gone: nothing left to report to *)
              ())
     in
     if cfg.forward_logs then begin
       (* the inherited file sink belongs to the coordinator; this
          worker's lines travel the supervised pipe instead, pre-rendered
          with the worker's sticky context *)
       Obs.Log.set_sink (Some (fun line -> send (Proto.Log_line line)));
       Obs.Log.set_context [ ("proc", Printf.sprintf "worker-%d" index) ]
     end;
     let flight_file = worker_flight_file cfg index in
     let flight_lock = Mutex.create () in
     let flight_snapshot () =
       match flight_file with
       | Some path
         when Obs.Telemetry.flight_armed () || Obs.Telemetry.enabled () ->
         Mutex.lock flight_lock;
         Fun.protect
           ~finally:(fun () -> Mutex.unlock flight_lock)
           (fun () ->
             try Io.write_file path (Obs.Telemetry.flight_json ())
             with Unix.Unix_error _ | Sys_error _ -> ())
       | _ -> ()
     in
     let service = Service.create ~config:cfg.service () in
     let reader = Proto.reader fd in
     let rec pump () =
       match Proto.read_block reader with
       | `Msg (Proto.Job rq) ->
         Service.submit service rq ~respond:(fun r ->
           (* snapshot BEFORE the result frame: once the coordinator can
              observe the result, the ring covering it must already be on
              disk — a SIGKILL right after the send still leaves the
              worker's last spans for the crash dump *)
           flight_snapshot ();
           send (Proto.Result r));
         pump ()
       | `Msg Proto.Health_req ->
         send (Proto.Health (Service.health service));
         pump ()
       | `Msg Proto.Metrics_req ->
         send (Proto.Metrics (Obs.Telemetry.metrics ()));
         pump ()
       | `Msg Proto.Dump_req ->
         flight_snapshot ();
         send (Proto.Dump (Obs.Telemetry.flight_json ()));
         pump ()
       | `Msg Proto.Drain | `Eof | `Error _ -> ()
       | `Msg _ -> pump ()
     in
     pump ();
     Service.request_drain service;
     Service.await_drained service;
     (match worker_trace_file cfg index with
      | Some path when Obs.Telemetry.enabled () ->
        (try Obs.Telemetry.write_trace path with Sys_error _ -> ())
      | _ -> ());
     flight_snapshot ();
     send (Proto.Health (Service.health service));
     (try Unix.close fd with Unix.Unix_error _ -> ())
   with e ->
     Printf.eprintf "cluster: worker %d fatal: %s\n%!" index
       (Printexc.to_string e);
     exit_code := 1);
  (* _exit, not exit: at-exit handlers and stdio buffers inherited from
     the coordinator must not run/flush twice *)
  Unix._exit !exit_code

let spawn_slot t (s : slot) =
  flush stdout;
  flush stderr;
  let parent_fd, child_fd =
    Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  match Unix.fork () with
  | 0 ->
    (try Unix.close parent_fd with Unix.Unix_error _ -> ());
    (* drop the other workers' pipe ends so their EOF semantics are owned
       by the coordinator alone *)
    Array.iter
      (fun (o : slot) ->
         if o.s_index <> s.s_index && o.s_state = Up then
           try Unix.close o.s_fd with Unix.Unix_error _ -> ())
      t.slots;
    worker_main t.cfg ~index:s.s_index child_fd
  | pid ->
    (try Unix.close child_fd with Unix.Unix_error _ -> ());
    s.s_pid <- pid;
    s.s_fd <- parent_fd;
    s.s_reader <- Proto.reader parent_fd;
    s.s_state <- Up;
    s.s_spawns <- s.s_spawns + 1;
    s.s_drain_sent <- false;
    s.s_reaped <- false;
    s.s_health <- None;
    s.s_admin_health <- None;
    s.s_admin_metrics <- None;
    s.s_admin_dump <- None

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring                                               *)
(* ------------------------------------------------------------------ *)

let build_ring ~size ~replicas =
  let points =
    Array.init (size * replicas) (fun i ->
      let w = i / replicas and r = i mod replicas in
      (Hashtbl.hash ("cluster-ring", w, r), w))
  in
  Array.sort compare points;
  points

(* First ring point at or after the key's hash (wrapping), then the ring
   order of distinct workers from there: the routing preference list. *)
let ring_order ring ~size key =
  let h = Hashtbl.hash key in
  let n = Array.length ring in
  let start =
    (* binary search: least index with point >= h, else 0 (wrap) *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst ring.(mid) < h then lo := mid + 1 else hi := mid
    done;
    if !lo = n then 0 else !lo
  in
  let seen = Array.make size false in
  let order = ref [] in
  let found = ref 0 in
  let i = ref start in
  while !found < size do
    let _, w = ring.(!i mod n) in
    if not seen.(w) then begin
      seen.(w) <- true;
      order := w :: !order;
      incr found
    end;
    incr i
  done;
  List.rev !order

(* ------------------------------------------------------------------ *)
(* Creation                                                           *)
(* ------------------------------------------------------------------ *)

let worker_key i = Printf.sprintf "worker-%d" i

let create ?(config = default_config) () =
  let config = { config with size = max 1 config.size } in
  Io.ignore_sigpipe ();
  let t =
    { cfg = config;
      started_at = config.service.Service.now ();
      slots =
        Array.init config.size (fun i ->
          { s_index = i; s_pid = 0; s_fd = Unix.stdin;
            s_reader = Proto.reader Unix.stdin; s_state = Down 0.0;
            s_crashes = 0; s_spawns = 0; s_drain_sent = false;
            s_reaped = true; s_health = None;
            s_admin_health = None; s_admin_metrics = None;
            s_admin_dump = None;
            s_inflight = Hashtbl.create 16 });
      ring = build_ring ~size:config.size ~replicas:(max 1 config.ring_replicas);
      breaker =
        Breaker.create ~now:config.service.Service.now
          ~threshold:config.worker_breaker_threshold
          ~cooldown:config.worker_breaker_cooldown ();
      diagnostics = Diagnostics.create ();
      diag_lock = Mutex.create ();
      pending = []; draining = false; sig_drain = Atomic.make false;
      sig_dump = Atomic.make false;
      n_submitted = 0; n_completed = 0; n_degraded = 0; n_failed = 0;
      n_rejected = 0; n_shed = 0; n_rejected_full = 0;
      n_crashes = 0; n_respawns = 0; n_rerouted = 0; n_crash_failed = 0 }
  in
  Array.iter
    (fun s ->
       spawn_slot t s;
       record_diag t
         (Diagnostics.Worker_spawned { worker = s.s_index; pid = s.s_pid });
       announce t "worker %d spawned (pid %d)" s.s_index s.s_pid)
    t.slots;
  t

let worker_pids t =
  Array.to_list t.slots
  |> List.filter_map (fun s ->
    if s.s_state = Up then Some s.s_pid else None)

let route t key =
  match ring_order t.ring ~size:t.cfg.size key with
  | w :: _ -> w
  | [] -> 0

(* ------------------------------------------------------------------ *)
(* Trace splicing and the merged flight dump                          *)
(* ------------------------------------------------------------------ *)

(* Each worker writes its own Chrome trace with ["pid":1]; splice their
   traceEvents into one document, rewriting the pid to [worker index + 2]
   (the coordinator keeps pid 1) so about://tracing shows one lane per
   process. String surgery is safe here because the trace format is ours
   ({!Obs.Telemetry.trace_json}) and the pid field is emitted verbatim. *)
let splice_events ~pid json =
  match String.index_opt json '[' with
  | None -> None
  | Some start ->
    let stop = String.rindex_opt json ']' in
    (match stop with
     | Some stop when stop > start ->
       let events = String.trim (String.sub json (start + 1) (stop - start - 1)) in
       if events = "" then None
       else begin
         let buf = Buffer.create (String.length events + 64) in
         let old = "\"pid\":1," in
         let replacement = Printf.sprintf "\"pid\":%d," pid in
         let n = String.length events and m = String.length old in
         let i = ref 0 in
         while !i < n do
           if !i + m <= n && String.sub events !i m = old then begin
             Buffer.add_string buf replacement;
             i := !i + m
           end
           else begin
             Buffer.add_char buf events.[!i];
             incr i
           end
         done;
         Some (Buffer.contents buf)
       end
     | _ -> None)

let splice_docs docs =
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
  ^ String.concat ",\n" (List.filter_map Fun.id docs)
  ^ "\n]}\n"

(* The merged flight-recorder document: the coordinator's own ring on
   pid 1 plus each worker's ring on pid [index + 2] — from a fresh
   [Dump] reply when one exists, otherwise from the snapshot file the
   worker keeps current after every result. The file is all that is
   left of a SIGKILLed worker, which is exactly the crash this dump is
   for. *)
let merged_flight t =
  let own = splice_events ~pid:1 (Obs.Telemetry.flight_json ()) in
  let workers =
    Array.to_list t.slots
    |> List.map (fun s ->
      let doc =
        match s.s_admin_dump with
        | Some d -> Some d
        | None ->
          Option.bind (worker_flight_file t.cfg s.s_index) (fun path ->
            match Io.read_file path with
            | json -> Some json
            | exception (Unix.Unix_error _ | Sys_error _) -> None)
      in
      Option.bind doc (fun d -> splice_events ~pid:(s.s_index + 2) d))
  in
  splice_docs (own :: workers)

(** Write the merged flight dump to [cfg.flight_dump]. Triggered by a
    worker crash, SIGUSR1, or an admin [dump] command; cheap enough to
    run inline in the supervision pump. Returns the path written, or
    [None] when dumping is off. *)
let flight_dump t ~cause =
  match t.cfg.flight_dump with
  | None -> None
  | Some path ->
    (try
       let oc = open_out path in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc (merged_flight t))
     with Sys_error _ -> ());
    Obs.Telemetry.instant "obs.flight_dump"
      ~args:[ ("cause", cause); ("path", path) ];
    Some path

let signal_dump_pending t =
  if Atomic.exchange t.sig_dump false then
    ignore (flight_dump t ~cause:"sigusr1")

(* ------------------------------------------------------------------ *)
(* Terminal accounting                                                *)
(* ------------------------------------------------------------------ *)

let answer t (cj : cjob) (r : Service.response) =
  (match r.Service.rp_status with
   | Service.Completed -> t.n_completed <- t.n_completed + 1
   | Service.Degraded -> t.n_degraded <- t.n_degraded + 1
   | Service.Failed -> t.n_failed <- t.n_failed + 1
   | Service.Rejected ->
     t.n_rejected <- t.n_rejected + 1;
     (match r.Service.rp_reason with
      | "shed" -> t.n_shed <- t.n_shed + 1
      | "queue_full" -> t.n_rejected_full <- t.n_rejected_full + 1
      | _ -> ()));
  cj.cj_respond r

let synth_response t (cj : cjob) status reason =
  { Service.rp_id = cj.cj_req.Service.rq_id; rp_status = status;
    rp_reason = reason; rp_verdict = None; rp_issues = 0;
    rp_attempts = cj.cj_crashes;
    rp_degradations = 0; rp_seconds = now t -. cj.cj_submitted;
    rp_mismatched = None }

(* ------------------------------------------------------------------ *)
(* Dispatch and crash handling                                        *)
(* ------------------------------------------------------------------ *)

(* First worker in ring preference order that is up and whose breaker
   admits this job (a [`Probe] admission MUST be used — the acquire call
   seized the half-open probe slot for this job id). *)
let choose_slot t (cj : cjob) =
  let key = Service.job_key cj.cj_req in
  let job = cj.cj_req.Service.rq_id in
  List.find_map
    (fun w ->
       let s = t.slots.(w) in
       if s.s_state <> Up || s.s_drain_sent then None
       else
         match Breaker.acquire ~job t.breaker (worker_key w) with
         | `Proceed | `Probe -> Some s
         | `Fast_fail -> None)
    (ring_order t.ring ~size:t.cfg.size key)

let rec dispatch t (cj : cjob) =
  match choose_slot t cj with
  | None ->
    if t.draining then
      answer t cj (synth_response t cj Service.Failed "worker_crashed")
    else begin
      (* whole cluster momentarily unroutable (crash storm / breakers
         open): park the job and let the pump retry it shortly *)
      t.pending <- (now t +. 0.05, cj) :: t.pending
    end
  | Some s ->
    (* Hashtbl.add, not replace: duplicate client ids are two distinct
       jobs and each must keep its own terminal answer *)
    Hashtbl.add s.s_inflight cj.cj_req.Service.rq_id cj;
    (match Proto.write s.s_fd (Proto.Job cj.cj_req) with
     | () -> ()
     | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
       (* found dead before waitpid/EOF did; [slot_died] reroutes the
          in-flight jobs — including the one just added *)
       slot_died t s ~reason:"write failed")

(* A worker is gone: fail its breaker, reroute or fail its in-flight
   jobs, and schedule the respawn. [reason] is diagnostic text. *)
and slot_died t (s : slot) ~reason =
  if s.s_state = Up then begin
    let inflight = Hashtbl.fold (fun _ cj acc -> cj :: acc) s.s_inflight [] in
    Hashtbl.reset s.s_inflight;
    t.n_crashes <- t.n_crashes + 1;
    s.s_crashes <- s.s_crashes + 1;
    ignore (Breaker.failure t.breaker (worker_key s.s_index));
    (try Unix.close s.s_fd with Unix.Unix_error _ -> ());
    reap t s;
    let delay = respawn_delay t.cfg ~crashes:s.s_crashes in
    s.s_state <- Down (now t +. delay);
    record_diag t
      (Diagnostics.Worker_exited
         { worker = s.s_index; pid = s.s_pid; reason;
           in_flight = List.length inflight });
    announce t "worker %d (pid %d) died: %s, %d in flight, respawn in %.3fs"
      s.s_index s.s_pid reason (List.length inflight) delay;
    (* the worker's flight-ring snapshot file survives the SIGKILL; merge
       it into a dump now, while the crash context is fresh *)
    ignore
      (flight_dump t
         ~cause:(Printf.sprintf "worker_crash:%d:%s" s.s_index reason));
    List.iter
      (fun cj ->
         cj.cj_crashes <- cj.cj_crashes + 1;
         (* a dead peer is the moral equivalent of a reset connection:
            classify it with the shared taxonomy so cluster retry policy
            and single-process retry policy can never drift apart *)
         let severity =
           Fault.classify (Unix.Unix_error (Unix.EPIPE, "worker", reason))
         in
         if
           severity = Fault.Transient
           && cj.cj_crashes <= t.cfg.crash_retries
           && not t.draining
         then begin
           let delay =
             Service.backoff_delay t.cfg.service
               ~id:cj.cj_req.Service.rq_id ~attempt:cj.cj_crashes
           in
           t.n_rerouted <- t.n_rerouted + 1;
           record_diag t
             (Diagnostics.Job_rerouted
                { job = cj.cj_req.Service.rq_id; from_worker = s.s_index;
                  crashes = cj.cj_crashes; delay });
           t.pending <- (now t +. delay, cj) :: t.pending
         end
         else begin
           t.n_crash_failed <- t.n_crash_failed + 1;
           answer t cj (synth_response t cj Service.Failed "worker_crashed")
         end)
      inflight
  end

and reap _t (s : slot) =
  if not s.s_reaped then begin
    (* the fd is closed (EOF seen or close forced), so the child is dead
       or moments from it; make sure, then wait without hanging *)
    (try Unix.kill s.s_pid Sys.sigkill
     with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
    (try ignore (Io.retry_eintr (fun () -> Unix.waitpid [] s.s_pid))
     with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
    s.s_reaped <- true
  end

(* ------------------------------------------------------------------ *)
(* Event pump                                                         *)
(* ------------------------------------------------------------------ *)

let handle_msg t (s : slot) = function
  | Proto.Result r ->
    (match Hashtbl.find_opt s.s_inflight r.Service.rp_id with
     | None -> () (* response for a job already answered elsewhere *)
     | Some cj ->
       Hashtbl.remove s.s_inflight r.Service.rp_id;
       s.s_crashes <- 0;
       Breaker.success t.breaker (worker_key s.s_index);
       answer t cj r)
  | Proto.Health h ->
    (* only a post-drain-frame snapshot is the worker's final word; any
       other Health frame answers an admin Health_req *)
    if s.s_drain_sent then s.s_health <- Some h;
    s.s_admin_health <- Some h
  | Proto.Metrics kvs -> s.s_admin_metrics <- Some kvs
  | Proto.Dump trace -> s.s_admin_dump <- Some trace
  | Proto.Log_line line ->
    (* forwarded worker log line, pre-rendered: append verbatim to the
       coordinator's sink so one merged stream exists *)
    Obs.Log.raw line
  | Proto.Job _ | Proto.Drain | Proto.Health_req | Proto.Metrics_req
  | Proto.Dump_req ->
    () (* coordinator-bound only *)

let drain_slot_frames t (s : slot) =
  let rec go () =
    match Proto.read_nonblock s.s_reader with
    | `Msg m -> handle_msg t s m; go ()
    | `Pending -> ()
    | `Eof | `Error _ ->
      if t.draining && s.s_health <> None then begin
        (* orderly exit after its final health frame *)
        (try Unix.close s.s_fd with Unix.Unix_error _ -> ());
        reap t s;
        if s.s_state = Up then s.s_state <- Down infinity;
        record_diag t
          (Diagnostics.Worker_exited
             { worker = s.s_index; pid = s.s_pid; reason = "drained";
               in_flight = 0 })
      end
      else slot_died t s ~reason:"pipe closed"
  in
  if s.s_state = Up then go ()

let respawn_due t =
  if not t.draining then
    Array.iter
      (fun s ->
         match s.s_state with
         | Down due when now t >= due && due < infinity ->
           spawn_slot t s;
           t.n_respawns <- t.n_respawns + 1;
           record_diag t
             (Diagnostics.Worker_respawned
                { worker = s.s_index; pid = s.s_pid;
                  crashes = s.s_crashes;
                  backoff = respawn_delay t.cfg ~crashes:s.s_crashes });
           announce t "worker %d respawned (pid %d) after %d crash(es)"
             s.s_index s.s_pid s.s_crashes
         | _ -> ())
      t.slots

let flush_pending t ~force =
  let tnow = now t in
  let due, later =
    List.partition (fun (d, _) -> force || tnow >= d) t.pending
  in
  t.pending <- later;
  List.iter (fun (_, cj) -> dispatch t cj) due

(** One supervision step: poll worker pipes (crash detection included),
    deliver due reroutes, refill due respawn slots. [timeout] bounds the
    select wait; keep it small when interleaving with a transport. *)
let pump t ~timeout =
  signal_dump_pending t;
  let fds =
    Array.to_list t.slots
    |> List.filter_map (fun s ->
      if s.s_state = Up then Some s.s_fd else None)
  in
  (* wake early if a reroute or respawn comes due before [timeout] *)
  let tnow = now t in
  let next_due =
    List.fold_left
      (fun a (d, _) -> Float.min a d)
      (Array.fold_left
         (fun a s ->
            match s.s_state with
            | Down due when due < infinity -> Float.min a due
            | _ -> a)
         infinity t.slots)
      t.pending
  in
  let timeout =
    if next_due = infinity then timeout
    else Float.max 0.0 (Float.min timeout (next_due -. tnow))
  in
  let ready, _, _ = if fds = [] then ([], [], []) else Io.select fds [] [] timeout in
  if fds = [] && timeout > 0.0 then t.cfg.service.Service.sleep (Float.min timeout 0.05);
  List.iter
    (fun fd ->
       match
         Array.to_list t.slots
         |> List.find_opt (fun s -> s.s_state = Up && s.s_fd = fd)
       with
       | Some s -> drain_slot_frames t s
       | None -> ())
    ready;
  (* catch a death whose EOF we haven't selected yet (e.g. no inflight
     traffic): waitpid with WNOHANG is cheap and definitive *)
  Array.iter
    (fun s ->
       if s.s_state = Up then
         match Unix.waitpid [ Unix.WNOHANG ] s.s_pid with
         | 0, _ -> ()
         | _, _ ->
           s.s_reaped <- true;
           drain_slot_frames t s;
           (* if the remaining frames didn't conclude drain, it died *)
           if s.s_state = Up then slot_died t s ~reason:"process exited"
         | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
           s.s_reaped <- true;
           if s.s_state = Up then slot_died t s ~reason:"process exited")
    t.slots;
  respawn_due t;
  flush_pending t ~force:false

(* ------------------------------------------------------------------ *)
(* Admission                                                          *)
(* ------------------------------------------------------------------ *)

let submit t rq ~respond =
  t.n_submitted <- t.n_submitted + 1;
  let cj =
    { cj_req = rq; cj_respond = respond; cj_submitted = now t;
      cj_crashes = 0 }
  in
  if t.draining then
    answer t cj (synth_response t cj Service.Rejected "draining")
  else dispatch t cj

let inflight_count t =
  Array.fold_left (fun a s -> a + Hashtbl.length s.s_inflight) 0 t.slots

let idle t = inflight_count t = 0 && t.pending = []

(* ------------------------------------------------------------------ *)
(* Drain                                                              *)
(* ------------------------------------------------------------------ *)

let install_signals t =
  let handler = Sys.Signal_handle (fun _ -> Atomic.set t.sig_drain true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  (* flight dump on demand; the handler only sets a flag, [pump] writes *)
  Sys.set_signal Sys.sigusr1
    (Sys.Signal_handle (fun _ -> Atomic.set t.sig_dump true))

let signal_pending t = Atomic.get t.sig_drain

let request_drain t =
  if not t.draining then begin
    (* give parked reroutes their last chance on live workers before the
       drain frames go out *)
    flush_pending t ~force:true;
    t.draining <- true;
    Array.iter
      (fun s ->
         if s.s_state = Up && not s.s_drain_sent then begin
           s.s_drain_sent <- true;
           match Proto.write s.s_fd Proto.Drain with
           | () -> ()
           | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _)
             ->
             slot_died t s ~reason:"write failed"
         end)
      t.slots;
    (* jobs that were parked because no worker would take them can no
       longer be rerouted: answer them *)
    flush_pending t ~force:true
  end

let drained t =
  t.pending = []
  && Array.for_all
       (fun s -> s.s_state <> Up && Hashtbl.length s.s_inflight = 0)
       t.slots

let await_drained t =
  request_drain t;
  let deadline =
    now t +. Option.value ~default:60.0 t.cfg.service.Service.drain_grace
            +. 30.0
  in
  while (not (drained t)) && now t < deadline do
    pump t ~timeout:0.1;
    (* during drain a crashed worker's jobs are failed directly, but new
       drain frames are never sent to respawns (none happen: respawn_due
       is a no-op while draining) *)
    Array.iter
      (fun s ->
         if s.s_state = Up && not s.s_drain_sent then begin
           s.s_drain_sent <- true;
           try Proto.write s.s_fd Proto.Drain
           with Unix.Unix_error _ -> slot_died t s ~reason:"write failed"
         end)
      t.slots
  done;
  (* hard stop for anything that outlived the grace *)
  Array.iter
    (fun s ->
       if s.s_state = Up then slot_died t s ~reason:"drain timeout")
    t.slots;
  flush_pending t ~force:true;
  Array.iter (fun s -> reap t s) t.slots

(* ------------------------------------------------------------------ *)
(* Health                                                             *)
(* ------------------------------------------------------------------ *)

type worker_health = {
  wh_index : int;
  wh_pid : int;
  wh_up : bool;
  wh_crashes : int;                (** consecutive, at snapshot time *)
  wh_spawns : int;
  wh_health : Service.health option;
}

type health = {
  ch_uptime : float;
  ch_size : int;
  ch_submitted : int;
  ch_completed : int;
  ch_degraded : int;
  ch_failed : int;
  ch_rejected : int;
  ch_shed : int;
  ch_rejected_full : int;
  ch_crashes : int;
  ch_respawns : int;
  ch_rerouted : int;
  ch_crash_failed : int;
  ch_workers : worker_health list;
}

let health t =
  { ch_uptime = now t -. t.started_at;
    ch_size = t.cfg.size;
    ch_submitted = t.n_submitted;
    ch_completed = t.n_completed;
    ch_degraded = t.n_degraded;
    ch_failed = t.n_failed;
    ch_rejected = t.n_rejected;
    ch_shed = t.n_shed;
    ch_rejected_full = t.n_rejected_full;
    ch_crashes = t.n_crashes;
    ch_respawns = t.n_respawns;
    ch_rerouted = t.n_rerouted;
    ch_crash_failed = t.n_crash_failed;
    ch_workers =
      Array.to_list t.slots
      |> List.map (fun s ->
        { wh_index = s.s_index; wh_pid = s.s_pid;
          wh_up = (s.s_state = Up); wh_crashes = s.s_crashes;
          wh_spawns = s.s_spawns;
          wh_health =
            (* the final drain snapshot when there is one, else the most
               recent interim answer to an admin [Health_req] *)
            (match s.s_health with
             | Some _ as h -> h
             | None -> s.s_admin_health) }) }

(** Same promise as the single-process service: clean when no admitted
    job was shed and none was turned away by a full worker queue. Crash
    recovery (reroutes, respawns, even crash-failed jobs) does not make a
    drain unclean — those jobs got terminal answers. *)
let clean_drain h = h.ch_shed = 0 && h.ch_rejected_full = 0

let health_json (h : health) =
  let num n = Json.Num (float_of_int n) in
  Json.to_string
    (Json.Obj
       [ ("event", Json.Str "health");
         ("cluster", num h.ch_size);
         ("uptime", Json.Num (Float.round (h.ch_uptime *. 1000.) /. 1000.));
         ("submitted", num h.ch_submitted);
         ("completed", num h.ch_completed);
         ("degraded", num h.ch_degraded);
         ("failed", num h.ch_failed);
         ("rejected", num h.ch_rejected);
         ("shed", num h.ch_shed);
         ("rejected_full", num h.ch_rejected_full);
         ("worker_crashes", num h.ch_crashes);
         ("worker_respawns", num h.ch_respawns);
         ("jobs_rerouted", num h.ch_rerouted);
         ("jobs_crash_failed", num h.ch_crash_failed);
         ("clean_drain", Json.Bool (clean_drain h));
         ("workers",
          Json.Arr
            (List.map
               (fun w ->
                  Json.Obj
                    ([ ("worker", num w.wh_index);
                       ("pid", num w.wh_pid);
                       ("up", Json.Bool w.wh_up);
                       ("spawns", num w.wh_spawns) ]
                     @
                     match w.wh_health with
                     | None -> []
                     | Some h -> [ ("health", Proto.health_json h) ]))
               h.ch_workers)) ])

let events t =
  Mutex.lock t.diag_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.diag_lock)
    (fun () -> Diagnostics.events t.diagnostics)

(* ------------------------------------------------------------------ *)
(* Admin channel: per-worker aggregation                              *)
(* ------------------------------------------------------------------ *)

let broadcast t m =
  Array.iter
    (fun s ->
       if s.s_state = Up then
         match Proto.write s.s_fd m with
         | () -> ()
         | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _)
           ->
           slot_died t s ~reason:"write failed")
    t.slots

(* Ask every live worker [req] and pump until each answered ([got]) or
   ~[timeout] real seconds passed. The cleared mailboxes are restored
   from [saved] when a worker dies (or stalls) mid-collect, so the
   aggregate falls back to its last known snapshot instead of dropping
   the worker silently. *)
let collect t req ~clear ~restore ~got ~timeout =
  Array.iter clear t.slots;
  broadcast t req;
  let deadline = Unix.gettimeofday () +. timeout in
  let outstanding () =
    Array.exists (fun s -> s.s_state = Up && not (got s)) t.slots
  in
  while outstanding () && Unix.gettimeofday () < deadline do
    pump t ~timeout:0.02
  done;
  Array.iteri (fun i s -> if not (got s) then restore i s) t.slots

(** Aggregated health with interim per-worker snapshots refreshed over
    the pipes — the live counterpart of the final drain snapshot. *)
let admin_health ?(timeout = 1.0) t =
  let saved = Array.map (fun s -> s.s_admin_health) t.slots in
  collect t Proto.Health_req
    ~clear:(fun s -> s.s_admin_health <- None)
    ~restore:(fun i s -> s.s_admin_health <- saved.(i))
    ~got:(fun s -> s.s_admin_health <> None)
    ~timeout;
  health t

(** The coordinator's own telemetry registry merged with a fresh
    [Metrics] snapshot from every live worker (counters and gauges sum,
    histograms merge bucket-wise). *)
let admin_metrics ?(timeout = 1.0) t =
  let saved = Array.map (fun s -> s.s_admin_metrics) t.slots in
  collect t Proto.Metrics_req
    ~clear:(fun s -> s.s_admin_metrics <- None)
    ~restore:(fun i s -> s.s_admin_metrics <- saved.(i))
    ~got:(fun s -> s.s_admin_metrics <> None)
    ~timeout;
  let workers =
    Array.to_list t.slots |> List.filter_map (fun s -> s.s_admin_metrics)
  in
  Obs.Export.merge (Obs.Telemetry.metrics () :: workers)

(* Fresh [Dump] replies where workers still answer; [merged_flight]
   falls back to the on-disk snapshot files for the rest. *)
let admin_dump ?(timeout = 1.0) t =
  let saved = Array.map (fun s -> s.s_admin_dump) t.slots in
  collect t Proto.Dump_req
    ~clear:(fun s -> s.s_admin_dump <- None)
    ~restore:(fun i s -> s.s_admin_dump <- saved.(i))
    ~got:(fun s -> s.s_admin_dump <> None)
    ~timeout;
  flight_dump t ~cause:"admin"

(** Mirror of {!Service.admin_reply}, aggregating the coordinator and
    every live worker into one answer. *)
let admin_reply t line =
  match String.trim line with
  | "health" -> health_json (admin_health t)
  | "metrics" -> Obs.Export.prometheus_of (admin_metrics t)
  | "metrics.json" -> Obs.Export.json_of (admin_metrics t)
  | "dump" ->
    (match admin_dump t with
     | Some path ->
       Json.to_string
         (Json.Obj
            [ ("event", Json.Str "dump"); ("path", Json.Str path) ])
     | None ->
       Json.to_string
         (Json.Obj
            [ ("event", Json.Str "error");
              ("error", Json.Str "flight_dump_disabled") ]))
  | other ->
    Json.to_string
      (Json.Obj
         [ ("event", Json.Str "error");
           ("error", Json.Str "unknown_command");
           ("command", Json.Str other) ])

(* ------------------------------------------------------------------ *)
(* Trace merging                                                      *)
(* ------------------------------------------------------------------ *)

let merged_trace t =
  let own = splice_events ~pid:1 (Obs.Telemetry.trace_json ()) in
  let workers =
    Array.to_list t.slots
    |> List.map (fun s ->
      match worker_trace_file t.cfg s.s_index with
      | None -> None
      | Some path ->
        (match Io.read_file path with
         | json -> splice_events ~pid:(s.s_index + 2) json
         | exception (Unix.Unix_error _ | Sys_error _) -> None))
  in
  splice_docs (own :: workers)

let write_merged_trace t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (merged_trace t))

(* ------------------------------------------------------------------ *)
(* Transports                                                         *)
(* ------------------------------------------------------------------ *)

(* NDJSON request parsing, mirroring the single-process service's
   transport contract: even an unparsable line gets a terminal answer. *)
let handle_line t ~write line =
  let line = String.trim line in
  if line <> "" then begin
    match
      match Json.parse line with
      | Error e -> Error ("bad_json: " ^ e)
      | Ok j -> Service.request_of_json j
    with
    | Error reason ->
      let id =
        match Json.parse line with
        | Ok j ->
          (match Json.str_member "id" j with
           | Some id -> Json.Str id
           | None -> Json.Null)
        | Error _ -> Json.Null
      in
      write
        (Json.to_string
           (Json.Obj
              [ ("id", id);
                ("status", Json.Str "rejected");
                ("reason", Json.Str reason) ]))
    | Ok rq ->
      submit t rq ~respond:(fun r -> write (Service.response_json r))
  end

let finish t write =
  request_drain t;
  await_drained t;
  let h = health t in
  write (health_json h);
  h

let run_stdio ?(stdin = Unix.stdin) ?(stdout = Unix.stdout) ?admin t =
  Io.ignore_sigpipe ();
  install_signals t;
  let adm = Option.map Admin.create admin in
  let admin_fds () =
    match adm with Some a -> Admin.fds a | None -> []
  in
  let write =
    Io.make_writer stdout ~on_error:(fun e ->
      record_diag t
        (Diagnostics.Client_disconnected
           { peer = "stdout"; error = Unix.error_message e }))
  in
  let reader = Io.line_reader stdin in
  let rec loop () =
    if signal_pending t then ()
    else begin
      match Io.read_line_nonblock reader with
      | `Line l ->
        handle_line t ~write l;
        (* interleave supervision so worker results are drained while a
           large batch is still streaming in *)
        pump t ~timeout:0.0;
        loop ()
      | `Eof -> ()
      | `Pending ->
        let ready, _, _ =
          Io.select (stdin :: admin_fds ()) [] [] 0.02
        in
        (match adm with
         | Some a -> Admin.step a ~reply:(admin_reply t) ready
         | None -> ());
        pump t ~timeout:0.05;
        loop ()
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Admin.close adm)
    (fun () ->
       loop ();
       finish t write)

let run_socket ?admin t path =
  let listen_fd =
    match Io.bind_unix_socket path with
    | Ok fd -> fd
    | Error `Live ->
      raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
  in
  Unix.listen listen_fd 16;
  Io.ignore_sigpipe ();
  install_signals t;
  let adm = Option.map Admin.create admin in
  let admin_fds () =
    match adm with Some a -> Admin.fds a | None -> []
  in
  let clients = ref [] in
  let close_client (fd, _, _) =
    clients := List.filter (fun (f, _, _) -> f <> fd) !clients;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    if signal_pending t then ()
    else begin
      let fds =
        (listen_fd :: List.map (fun (fd, _, _) -> fd) !clients)
        @ admin_fds ()
      in
      let ready, _, _ = Io.select fds [] [] 0.05 in
      (match adm with
       | Some a -> Admin.step a ~reply:(admin_reply t) ready
       | None -> ());
      List.iter
        (fun fd ->
           if fd = listen_fd then begin
             let cfd, _ = Io.accept listen_fd in
             let peer = Printf.sprintf "client-%d" (List.length !clients) in
             let write =
               Io.make_writer cfd ~on_error:(fun e ->
                 record_diag t
                   (Diagnostics.Client_disconnected
                      { peer; error = Unix.error_message e }))
             in
             clients := (cfd, Io.line_reader cfd, write) :: !clients
           end
           else
             match List.find_opt (fun (f, _, _) -> f = fd) !clients with
             | None -> ()
             | Some ((_, reader, write) as client) ->
               let rec drain_lines () =
                 match Io.read_line_nonblock reader with
                 | `Line l -> handle_line t ~write l; drain_lines ()
                 | `Eof -> close_client client
                 | `Pending -> ()
               in
               drain_lines ())
        ready;
      pump t ~timeout:0.05;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Admin.close adm;
      List.iter (fun (fd, _, _) -> try Unix.close fd with _ -> ()) !clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
       loop ();
       let h =
         finish t (fun line ->
           List.iter (fun (_, _, write) -> write line) !clients)
       in
       h)
