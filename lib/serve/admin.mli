(** The admin Unix socket listener shared by the serve transports.

    A second, line-oriented socket next to the job transport: clients
    send one command per line and get the reply the owner's [reply]
    function produces (one JSON line for [health] / [metrics.json] /
    [dump], a Prometheus exposition block ending in a ["# EOF"] line
    for [metrics]). The owning transport folds {!fds} into its select
    loop and calls {!step} with the ready descriptors. *)

type t

val create : string -> t
(** Bind and listen on the given path. A stale socket file is unlinked;
    a live server raises [Unix.Unix_error (EADDRINUSE, _, _)]. *)

val path : t -> string

val fds : t -> Unix.file_descr list
(** The listener plus every connected admin client. *)

val step : t -> reply:(string -> string) -> Unix.file_descr list -> unit
(** Handle the subset of ready fds that belong to this listener. The
    reply string gets a trailing newline appended; a reply may itself
    span multiple lines (Prometheus). *)

val close : t -> unit
(** Close every client and the listener, and unlink the socket path. *)
