(** Bounded admission queue with explicit backpressure: at capacity, a
    push either rejects the newcomer or evicts (and returns) the oldest
    strictly-lower-priority entry — overload is always visible, nothing is
    dropped silently. Dequeue order is highest priority first, FIFO within
    a class. Safe to share between admission paths and worker domains. *)

type 'a t

type 'a push_result =
  | Admitted
  | Admitted_shedding of 'a            (** the evicted lower-priority job *)
  | Rejected_full

(** [now] and [sleep] drive delayed (retry-backoff) entries; both are
    injectable for deterministic tests. *)
val create :
  ?now:(unit -> float) -> ?sleep:(float -> unit) -> cap:int -> unit -> 'a t

(** Bounded push; never blocks. *)
val push : 'a t -> priority:int -> 'a -> 'a push_result

(** Unbounded push for retries: a job that was already admitted must not
    lose its admission to later arrivals — forced entries bypass the
    bound and are exempt from shedding. [delay] (seconds) makes the entry
    eligible for {!pop} only once due; the wait happens on the idle
    popping worker, not the pushing one. *)
val push_forced : 'a t -> priority:int -> ?delay:float -> 'a -> unit

(** Blocking pop; [None] once drain mode is on and the queue is empty. *)
val pop : 'a t -> 'a option

(** Stop blocking pops once the queue empties; queued entries still drain. *)
val set_draining : 'a t -> unit

val draining : 'a t -> bool
val length : 'a t -> int
