(** Bounded admission queue with explicit backpressure.

    The service's first robustness rule is that overload is *visible*:
    when the queue is at capacity an arriving job is either rejected with
    [Rejected_full] (the client sees [rejected:queue_full]) or admitted by
    evicting the oldest strictly-lower-priority entry, which is returned
    to the caller so the shed job can be answered too — nothing is ever
    dropped silently.

    Dequeue order is highest priority first, FIFO within a priority class.
    The queue is shared between the admission path (transport / bench
    clients) and the worker domains; a mutex + condition pair keeps it
    simple and the critical sections are a few list operations. Retries
    re-enter through {!push_forced}, which bypasses the bound: a job that
    was already admitted must not lose its admission to later arrivals. *)

type 'a entry = {
  e_seq : int;
  e_priority : int;
  e_item : 'a;
}

type 'a t = {
  cap : int;
  mutable entries : 'a entry list;     (* unordered; selection scans *)
  mutable next_seq : int;
  mutable draining : bool;
  lock : Mutex.t;
  nonempty : Condition.t;
}

type 'a push_result =
  | Admitted
  | Admitted_shedding of 'a            (** the evicted lower-priority job *)
  | Rejected_full

let create ~cap =
  { cap = max 1 cap; entries = []; next_seq = 0; draining = false;
    lock = Mutex.create (); nonempty = Condition.create () }

let locked q f =
  Mutex.lock q.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.lock) f

let length q = locked q (fun () -> List.length q.entries)

let draining q = locked q (fun () -> q.draining)

let insert q ~priority item =
  q.entries <-
    { e_seq = q.next_seq; e_priority = priority; e_item = item } :: q.entries;
  q.next_seq <- q.next_seq + 1;
  Condition.signal q.nonempty

(* Oldest entry of the lowest priority class that is strictly below
   [priority] — the shedding victim, if any. *)
let victim entries ~priority =
  List.fold_left
    (fun best e ->
       if e.e_priority >= priority then best
       else
         match best with
         | None -> Some e
         | Some b ->
           if e.e_priority < b.e_priority
              || (e.e_priority = b.e_priority && e.e_seq < b.e_seq)
           then Some e
           else best)
    None entries

let push q ~priority item =
  locked q (fun () ->
    if List.length q.entries < q.cap then begin
      insert q ~priority item;
      Admitted
    end
    else
      match victim q.entries ~priority with
      | None -> Rejected_full
      | Some v ->
        q.entries <- List.filter (fun e -> e.e_seq <> v.e_seq) q.entries;
        insert q ~priority item;
        Admitted_shedding v.e_item)

let push_forced q ~priority item =
  locked q (fun () -> insert q ~priority item)

(* Highest priority first, FIFO (lowest seq) within a class. *)
let select_next entries =
  List.fold_left
    (fun best e ->
       match best with
       | None -> Some e
       | Some b ->
         if e.e_priority > b.e_priority
            || (e.e_priority = b.e_priority && e.e_seq < b.e_seq)
         then Some e
         else best)
    None entries

(** Blocking pop: waits for an entry, or for drain mode with an empty
    queue, in which case [None] tells the worker to exit. Entries still
    queued when drain begins are handed out normally — an admitted job is
    finished, not abandoned. *)
let pop q =
  locked q (fun () ->
    let rec wait () =
      match select_next q.entries with
      | Some e ->
        q.entries <- List.filter (fun x -> x.e_seq <> e.e_seq) q.entries;
        Some e.e_item
      | None ->
        if q.draining then None
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
    in
    wait ())

(** Enter drain mode: no effect on queued entries, but every blocked and
    future [pop] returns [None] once the queue is empty. *)
let set_draining q =
  locked q (fun () ->
    q.draining <- true;
    Condition.broadcast q.nonempty)
