(** Bounded admission queue with explicit backpressure.

    The service's first robustness rule is that overload is *visible*:
    when the queue is at capacity an arriving job is either rejected with
    [Rejected_full] (the client sees [rejected:queue_full]) or admitted by
    evicting the oldest strictly-lower-priority entry, which is returned
    to the caller so the shed job can be answered too — nothing is ever
    dropped silently.

    Dequeue order is highest priority first, FIFO within a priority class.
    The queue is shared between the admission path (transport / bench
    clients) and the worker domains; a mutex + condition pair keeps it
    simple and the critical sections are a few list operations. Retries
    re-enter through {!push_forced}, which bypasses the bound *and* is
    exempt from shedding: a job that was already admitted must not lose
    its admission to later arrivals. A forced entry may carry a [delay]
    (retry backoff); it becomes eligible for {!pop} only once due, and
    waiting for it happens on the idle popping worker, never by sleeping
    a worker that could be running other jobs. *)

type 'a entry = {
  e_seq : int;
  e_priority : int;
  e_ready : float;                     (* absolute clock value when due *)
  e_exempt : bool;                     (* forced (retry): never shed *)
  e_item : 'a;
}

type 'a t = {
  cap : int;
  mutable entries : 'a entry list;     (* unordered; selection scans *)
  mutable next_seq : int;
  mutable draining : bool;
  lock : Mutex.t;
  nonempty : Condition.t;
  now : unit -> float;
  sleep : float -> unit;               (* off-lock wait for delayed entries *)
}

type 'a push_result =
  | Admitted
  | Admitted_shedding of 'a            (** the evicted lower-priority job *)
  | Rejected_full

let create ?(now = Unix.gettimeofday) ?(sleep = Io.sleepf) ~cap () =
  { cap = max 1 cap; entries = []; next_seq = 0; draining = false;
    lock = Mutex.create (); nonempty = Condition.create (); now; sleep }

let locked q f =
  Mutex.lock q.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.lock) f

let length q = locked q (fun () -> List.length q.entries)

let draining q = locked q (fun () -> q.draining)

let insert q ~priority ~ready ~exempt item =
  q.entries <-
    { e_seq = q.next_seq; e_priority = priority; e_ready = ready;
      e_exempt = exempt; e_item = item }
    :: q.entries;
  q.next_seq <- q.next_seq + 1;
  Condition.signal q.nonempty

(* Oldest entry of the lowest priority class that is strictly below
   [priority] — the shedding victim, if any. Forced (retry) entries are
   exempt: an already-admitted job never loses its admission. *)
let victim entries ~priority =
  List.fold_left
    (fun best e ->
       if e.e_exempt || e.e_priority >= priority then best
       else
         match best with
         | None -> Some e
         | Some b ->
           if e.e_priority < b.e_priority
              || (e.e_priority = b.e_priority && e.e_seq < b.e_seq)
           then Some e
           else best)
    None entries

let push q ~priority item =
  locked q (fun () ->
    if List.length q.entries < q.cap then begin
      insert q ~priority ~ready:0.0 ~exempt:false item;
      Admitted
    end
    else
      match victim q.entries ~priority with
      | None -> Rejected_full
      | Some v ->
        q.entries <- List.filter (fun e -> e.e_seq <> v.e_seq) q.entries;
        insert q ~priority ~ready:0.0 ~exempt:false item;
        Admitted_shedding v.e_item)

let push_forced q ~priority ?(delay = 0.0) item =
  locked q (fun () ->
    let ready = if delay > 0.0 then q.now () +. delay else 0.0 in
    insert q ~priority ~ready ~exempt:true item)

(* Highest priority first, FIFO (lowest seq) within a class, considering
   only entries already due at [now]. *)
let select_next ~now entries =
  List.fold_left
    (fun best e ->
       if e.e_ready > now then best
       else
         match best with
         | None -> Some e
         | Some b ->
           if e.e_priority > b.e_priority
              || (e.e_priority = b.e_priority && e.e_seq < b.e_seq)
           then Some e
           else best)
    None entries

(** Blocking pop: waits for a due entry, or for drain mode with an empty
    queue, in which case [None] tells the worker to exit. Entries still
    queued when drain begins are handed out normally — an admitted job is
    finished, not abandoned, including delayed retries. *)
let pop q =
  Mutex.lock q.lock;
  let rec wait () =
    let tnow = q.now () in
    match select_next ~now:tnow q.entries with
    | Some e ->
      q.entries <- List.filter (fun x -> x.e_seq <> e.e_seq) q.entries;
      Some e.e_item
    | None ->
      if q.entries = [] then
        if q.draining then None
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
      else begin
        (* only not-yet-due retry entries remain: poll until the earliest
           is due, sleeping outside the lock so pushes are never blocked
           and a newly pushed due entry is picked up within one quantum *)
        let earliest =
          List.fold_left (fun a e -> Float.min a e.e_ready) infinity
            q.entries
        in
        Mutex.unlock q.lock;
        q.sleep (Float.max 0.001 (Float.min 0.01 (earliest -. tnow)));
        Mutex.lock q.lock;
        wait ()
      end
  in
  let r = wait () in
  Mutex.unlock q.lock;
  r

(** Enter drain mode: no effect on queued entries, but every blocked and
    future [pop] returns [None] once the queue is empty. *)
let set_draining q =
  locked q (fun () ->
    q.draining <- true;
    Condition.broadcast q.nonempty)
