(** Re-export of {!Core.Io}. The EINTR-safe syscall wrappers moved to
    [core] so that the persistent cache store and the frontend's source
    reads share one I/O path with the transports; this alias keeps every
    existing [Serve.Io] call site working unchanged. *)

include Core.Io
