(* The admin Unix socket: a second, line-oriented listener every serve
   transport folds into its select loop. Clients send one command per
   line ("health", "metrics", "metrics.json", "dump") and get back a
   reply whose shape the command fixes — one JSON line, or a Prometheus
   exposition block ending in "# EOF". The reply function is supplied
   by the owner (Service answers locally; the cluster coordinator
   aggregates across workers), so this module only owns accept/read/
   write mechanics. *)

type client = {
  c_fd : Unix.file_descr;
  c_reader : Io.line_reader;
  c_write : string -> unit;
}

type t = {
  a_listen : Unix.file_descr;
  a_path : string;
  mutable a_clients : client list;
}

let create path =
  let listen_fd =
    match Io.bind_unix_socket path with
    | Ok fd -> fd
    | Error `Live ->
      raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
  in
  Unix.listen listen_fd 16;
  { a_listen = listen_fd; a_path = path; a_clients = [] }

let path t = t.a_path

let fds t = t.a_listen :: List.map (fun c -> c.c_fd) t.a_clients

let drop t client =
  t.a_clients <- List.filter (fun c -> c.c_fd <> client.c_fd) t.a_clients;
  try Unix.close client.c_fd with Unix.Unix_error _ -> ()

(* An admin peer that vanishes mid-reply is routine (a scraper timed
   out); the writer swallows the error and the next read sees EOF. *)
let accept t =
  let cfd, _ = Io.accept t.a_listen in
  let write = Io.make_writer cfd ~on_error:(fun _ -> ()) in
  t.a_clients <-
    { c_fd = cfd; c_reader = Io.line_reader cfd; c_write = write }
    :: t.a_clients

(* The client writer appends one newline per reply; a multi-line reply
   (Prometheus) already ends in one, so chomp it to keep the stream
   free of blank separator lines. *)
let chomp s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

(** Handle the subset of [ready] fds that belong to this listener:
    accept new admin clients, and answer every complete command line
    with [reply line ^ "\n"]. Empty lines are ignored. *)
let step t ~reply ready =
  let mine fd = List.memq fd (fds t) in
  List.iter
    (fun fd ->
      if fd = t.a_listen then accept t
      else if mine fd then
        match List.find_opt (fun c -> c.c_fd = fd) t.a_clients with
        | None -> ()
        | Some client ->
          let rec drain () =
            match Io.read_line_nonblock client.c_reader with
            | `Line l ->
              if String.trim l <> "" then client.c_write (chomp (reply l));
              drain ()
            | `Eof -> drop t client
            | `Pending -> ()
          in
          drain ())
    ready

let close t =
  List.iter
    (fun c -> try Unix.close c.c_fd with Unix.Unix_error _ -> ())
    t.a_clients;
  t.a_clients <- [];
  (try Unix.close t.a_listen with Unix.Unix_error _ -> ());
  try Unix.unlink t.a_path with Unix.Unix_error _ -> ()
