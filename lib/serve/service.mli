(** The resilient analysis service: accepts a stream of analysis jobs and
    runs each under {!Core.Supervisor} on a pool of worker domains, with a
    bounded admission queue, transient-failure retries (exponential
    backoff, deterministic seeded jitter), per-application circuit
    breakers, a memory watchdog, and graceful drain.

    Invariant: every submitted job reaches {e exactly one} terminal state
    ([Completed | Degraded | Rejected | Failed]), delivered through its
    response callback. *)

(** {1 Protocol} *)

type request = {
  rq_id : string;
  rq_app : string option;          (** named benchmark application … *)
  rq_source : string option;       (** … or inline MJava unit source *)
  rq_descriptor : string;
  rq_algorithm : Core.Config.algorithm;
  rq_scale : float;
  rq_deadline : float option;      (** per-job wall-clock seconds *)
  rq_priority : int;               (** higher survives shedding longer *)
  rq_contexts : bool;
      (** run the sanitization-context judge and report the
          mismatched-sanitizer count on the response *)
}

val request :
  ?app:string ->
  ?source:string ->
  ?descriptor:string ->
  ?algorithm:Core.Config.algorithm ->
  ?scale:float ->
  ?deadline:float ->
  ?priority:int ->
  ?contexts:bool ->
  string ->
  request

type status = Completed | Degraded | Rejected | Failed

val status_name : status -> string

(** Stable key identifying the workload of a request: the application
    name, or a hash of the inline source. Used for the per-app circuit
    breakers and as the cluster's consistent-hash routing key. *)
val job_key : request -> string

type response = {
  rp_id : string;
  rp_status : status;
  rp_reason : string;
      (** "" | [queue_full] | [shed] | [draining] | [breaker_open] | … *)
  rp_verdict : string option;
      (** ["type_only"] when the answer came from the degradation
          ladder's triage floor (sink findings without flow paths);
          [None] for full-analysis answers *)
  rp_issues : int;
  rp_attempts : int;               (** executions, incl. the final one *)
  rp_degradations : int;
  rp_seconds : float;              (** submit-to-terminal wall clock *)
  rp_mismatched : int option;
      (** mismatched-sanitizer issue count when the request asked for
          the sanitization judge; [None] otherwise *)
}

(** {1 Configuration} *)

type config = {
  workers : int;
  job_jobs : int;                  (** [Core.Parallel] pool inside a job *)
  queue_cap : int;
  max_retries : int;
  retry_base : float;
  retry_factor : float;
  retry_max_delay : float;
  seed : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  mem_soft_limit_mb : int option;
  drain_grace : float option;      (** deadline cap for runs during drain *)
  cache_dir : string option;
      (** incremental-cache store directory ({!Cache.Incr}); [None]
          disables caching. A restarted service pointed at the same
          directory starts warm. *)
  flight_dump : string option;
      (** where the flight-recorder ring is written as a Chrome trace on
          SIGUSR1, an admin [dump] command, or a terminal job failure;
          [None] disables dumping *)
  now : unit -> float;
  sleep : float -> unit;
      (** the queue's poll wait for delayed retries; injectable for tests *)
}

val default_config : config

(** Pure function of [(seed, id, attempt)]: the backoff before re-running
    a job whose [attempt]-th execution failed transiently. Identical
    across runs and worker-pool sizes. *)
val backoff_delay : config -> id:string -> attempt:int -> float

(** {1 Lifecycle} *)

type t

val create : ?config:config -> unit -> t

(** Admission. The response callback fires exactly once, from an
    arbitrary domain, when the job reaches its terminal state — possibly
    before [submit] returns (immediate rejection). *)
val submit : t -> request -> respond:(response -> unit) -> unit

(** Stop admitting; admitted jobs keep running. Idempotent. *)
val request_drain : t -> unit

val draining : t -> bool

(** Block until every worker has exited — i.e. every admitted job has
    reached its terminal state. Implies {!request_drain}. Idempotent. *)
val await_drained : t -> unit

(** Install SIGINT/SIGTERM handlers that trigger the drain protocol, and
    a SIGUSR1 handler that requests a flight-recorder dump. Handlers only
    set atomic flags; a watcher domain (joined by {!await_drained})
    performs the drain, and the transport pumps perform the dump. *)
val install_signals : t -> unit

val signal_pending : t -> bool

(** {1 Flight recorder} *)

(** Write the flight-recorder ring (recent spans/instants, bounded per
    domain — see {!Obs.Telemetry.arm_flight}) as a Chrome trace at
    [cfg.flight_dump]. Safe from any domain; serialized internally.
    Returns the path written, [None] when dumping is disabled. *)
val flight_dump : t -> cause:string -> string option

(** {1 Health} *)

type health = {
  h_uptime : float;
  h_queue_depth : int;
  h_pressure : int;
  h_rung : string;
      (** the degradation-ladder rung jobs currently run at, by name
          (["triage"] once pressure reaches the type-only floor) *)
  h_submitted : int;
  h_admitted : int;
  h_completed : int;
  h_degraded : int;
  h_failed : int;
  h_rejected_full : int;
  h_rejected_draining : int;
  h_shed : int;
  h_retries : int;
  h_breaker_fast_fails : int;
  h_breaker_opens : int;
  h_open_breakers : string list;
  h_events : int;
  h_latency_p50 : int;
      (** submit-to-terminal latency percentiles in ms, estimated from
          the log2 [serve.latency_ms] histogram (0 when telemetry off) *)
  h_latency_p95 : int;
  h_latency_p99 : int;
  h_cache_hits : int;
      (** incremental-cache tier counters ({!Cache.Incr}); in a cluster
          worker these are the worker's own post-fork counts *)
  h_cache_misses : int;
  h_cache_invalidated : int;
}

val health : t -> health

(** No admitted job was shed and none was turned away by a full queue. *)
val clean_drain : health -> bool

(** Service-level degradation events, in arrival order. *)
val events : t -> Core.Diagnostics.degradation list

(** {1 Wire protocol (NDJSON)} *)

val request_of_json : Json.t -> (request, string) result
val response_json : response -> string
val health_json : health -> string

(** {1 Admin channel} *)

(** One admin command line → one reply: ["health"] (JSON line),
    ["metrics"] (Prometheus text exposition ending in ["# EOF"]),
    ["metrics.json"] (JSON line), ["dump"] (write the flight ring,
    answer a receipt). Unknown commands get a one-line JSON error. *)
val admin_reply : t -> string -> string

(** Serve newline-delimited JSON requests over stdin/stdout until EOF or
    SIGINT/SIGTERM; drains and returns (and writes, as the final line)
    the health snapshot. [admin] opens the admin socket at that path. *)
val run_stdio :
  ?stdin:Unix.file_descr -> ?stdout:Unix.file_descr -> ?admin:string ->
  t -> health

(** Serve over a Unix domain socket at [path], multiplexing clients. *)
val run_socket : ?admin:string -> t -> string -> health
