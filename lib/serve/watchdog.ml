(** Memory watchdog: degrade before the process OOMs.

    Workers sample [Gc.quick_stat] between jobs. When the major heap
    exceeds the soft limit the pressure level rises (capped); when it
    falls back under three quarters of the limit the level decays. The
    service maps pressure level [p] to the [p]-th rung of the job's
    {!Core.Config.degradation_ladder}, so under memory pressure new jobs
    run with progressively stricter bounds — the §6 philosophy (trade
    precision for termination) applied to the life of the process instead
    of a single run. Every level change is a telemetry instant and a
    {!Core.Diagnostics.Resource_pressure} event. *)

type t = {
  soft_limit_mb : int option;
  max_level : int;
  level : int Atomic.t;
  read_heap : unit -> int;
}

let g_pressure = Obs.Telemetry.gauge "serve.pressure"
let g_heap_mb = Obs.Telemetry.gauge "serve.heap_mb"

let heap_mb () =
  let words = (Gc.quick_stat ()).Gc.heap_words in
  words * (Sys.word_size / 8) / 1_000_000

(* [heap] is injectable so the ladder transitions are unit-testable with
   a scripted heap profile; production uses the real [Gc.quick_stat]. *)
let create ?(max_level = 4) ?(heap = heap_mb) ~soft_limit_mb () =
  { soft_limit_mb; max_level = max 1 max_level; level = Atomic.make 0;
    read_heap = heap }

let level t = Atomic.get t.level

(** Take one sample; returns the (possibly new) pressure level. The CAS
    keeps concurrent samples from different workers monotone: a sample
    only moves the level one step from the value it read. [on_event]
    receives the {!Core.Diagnostics.Resource_pressure} event on a level
    change (the service records it under its diagnostics lock). *)
let sample ?(on_event = fun (_ : Core.Diagnostics.degradation) -> ()) t =
  match t.soft_limit_mb with
  | None -> 0
  | Some limit ->
    let mb = t.read_heap () in
    Obs.Telemetry.set g_heap_mb mb;
    let cur = Atomic.get t.level in
    let want =
      if mb >= limit then min t.max_level (cur + 1)
      else if mb < limit * 3 / 4 then max 0 (cur - 1)
      else cur
    in
    if want <> cur && Atomic.compare_and_set t.level cur want then begin
      Obs.Telemetry.set g_pressure want;
      Obs.Telemetry.instant "serve.pressure"
        ~args:
          [ ("level", string_of_int want); ("heap_mb", string_of_int mb) ];
      on_event
        (Core.Diagnostics.Resource_pressure { level = want; heap_mb = mb });
      want
    end
    else Atomic.get t.level

(** Config for a job admitted at pressure [p]: the [p]-th rung of its
    degradation ladder (or the strictest rung the ladder has). *)
let degrade_config ~scale (config : Core.Config.t) p =
  if p <= 0 then (scale, config)
  else begin
    let ladder = Core.Config.degradation_ladder ~scale config in
    match ladder with
    | [] -> (scale, config)
    | _ ->
      let n = List.length ladder in
      List.nth ladder (min p n - 1)
  end
