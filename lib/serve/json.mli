(** Minimal self-contained JSON codec for the service's newline-delimited
    job protocol (no new dependencies). Numbers are floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
val to_string : t -> string
val escape : string -> string

val member : string -> t -> t option
val str_member : string -> t -> string option
val num_member : string -> t -> float option
val int_member : string -> t -> int option
