(** Framed coordinator↔worker messages for the analysis cluster: 4-byte
    big-endian length prefix + one JSON document per frame, over the
    socketpair the coordinator shares with each forked worker. A frame
    torn by a worker crash is detected and dropped; the job it carried
    stays in flight on the coordinator side and is rerouted. *)

type msg =
  | Job of Service.request           (** coordinator → worker *)
  | Result of Service.response       (** worker → coordinator, terminal *)
  | Drain                            (** coordinator → worker: flush *)
  | Health of Service.health
      (** worker → coordinator: final snapshot at drain, or interim
          answer to [Health_req] *)
  | Health_req                       (** coordinator → worker: admin *)
  | Metrics_req                      (** coordinator → worker: admin *)
  | Metrics of (string * Obs.Telemetry.value) list
      (** worker → coordinator: telemetry-registry snapshot *)
  | Dump_req                         (** coordinator → worker: admin *)
  | Dump of string
      (** worker → coordinator: flight ring as a Chrome-trace document *)
  | Log_line of string
      (** worker → coordinator: one forwarded NDJSON log line *)

val write : Unix.file_descr -> msg -> unit

(** Buffered frame reader over a descriptor. *)
type reader

val reader : Unix.file_descr -> reader

(** Non-blocking: [`Pending] when no complete frame is available yet;
    [`Eof] once the peer is gone (torn trailing bytes dropped); [`Error]
    on a malformed frame (treat the channel as dead). *)
val read_nonblock :
  reader -> [ `Msg of msg | `Eof | `Pending | `Error of string ]

(** Blocking variant for the worker's receive loop. *)
val read_block : reader -> [ `Msg of msg | `Eof | `Error of string ]

(** {1 JSON codecs} (exposed for tests) *)

val request_json : Service.request -> Json.t
val response_json : Service.response -> Json.t
val response_of_json : Json.t -> (Service.response, string) result
val health_json : Service.health -> Json.t
val health_of_json : Json.t -> (Service.health, string) result
val value_json : Obs.Telemetry.value -> Json.t
val value_of_json : Json.t -> (Obs.Telemetry.value, string) result
