(** The resilient analysis service: a long-running engine that accepts a
    stream of analysis jobs and stays up no matter what individual jobs
    do.

    One job = one supervised analysis ({!Core.Supervisor.run}) of either a
    named synthetic benchmark application or inline MJava source. Around
    that single-run resilience the service composes the process-lifetime
    mechanics the ROADMAP's serving goal needs:

    - a {e bounded admission queue} ({!Queue}) with explicit backpressure
      and priority-aware load shedding — overload is answered, never
      silently dropped;
    - {e retry with exponential backoff and deterministic seeded jitter}
      for failures {!Core.Fault.classify}d transient; permanent failures
      fail fast;
    - a {e per-application circuit breaker} ({!Breaker}) so a repeatedly
      crashing app stops consuming worker slots;
    - a {e memory watchdog} ({!Watchdog}) that pushes jobs down the
      degradation ladder before the process OOMs;
    - {e graceful drain} on SIGINT/SIGTERM or end of input: stop
      admitting, finish every admitted job, emit a final health snapshot.

    The invariant every transport and test leans on: {e every submitted
    job reaches exactly one terminal state} — [completed], [degraded],
    [rejected] or [failed] — delivered through its response callback. *)

open Core

(* ------------------------------------------------------------------ *)
(* Protocol types                                                     *)
(* ------------------------------------------------------------------ *)

type request = {
  rq_id : string;
  rq_app : string option;          (** named benchmark application … *)
  rq_source : string option;       (** … or inline MJava unit source *)
  rq_descriptor : string;
  rq_algorithm : Config.algorithm;
  rq_scale : float;
  rq_deadline : float option;      (** per-job wall-clock seconds *)
  rq_priority : int;               (** higher survives shedding longer *)
  rq_contexts : bool;              (** sanitization-context judge on *)
}

let request ?app ?source ?(descriptor = "")
    ?(algorithm = Config.Hybrid_optimized) ?(scale = 0.05) ?deadline
    ?(priority = 1) ?(contexts = false) id =
  { rq_id = id; rq_app = app; rq_source = source;
    rq_descriptor = descriptor; rq_algorithm = algorithm; rq_scale = scale;
    rq_deadline = deadline; rq_priority = priority; rq_contexts = contexts }

type status = Completed | Degraded | Rejected | Failed

let status_name = function
  | Completed -> "completed"
  | Degraded -> "degraded"
  | Rejected -> "rejected"
  | Failed -> "failed"

type response = {
  rp_id : string;
  rp_status : status;
  rp_reason : string;              (** "" | queue_full | shed | draining
                                       | breaker_open | … *)
  rp_verdict : string option;
      (** ["type_only"] when the answer came from rung zero (triage sink
          findings, no flow paths); [None] for full-analysis answers *)
  rp_issues : int;
  rp_attempts : int;               (** executions, incl. the final one *)
  rp_degradations : int;           (** supervisor events of the last run *)
  rp_seconds : float;              (** submit-to-terminal wall clock *)
  rp_mismatched : int option;
      (** mismatched-sanitizer issue count when the request asked for
          the sanitization judge; [None] otherwise *)
}

(* ------------------------------------------------------------------ *)
(* Configuration                                                      *)
(* ------------------------------------------------------------------ *)

type config = {
  workers : int;                   (** worker domains executing jobs *)
  job_jobs : int;                  (** [Core.Parallel] pool inside a job *)
  queue_cap : int;
  max_retries : int;               (** transient re-executions per job *)
  retry_base : float;              (** first backoff, seconds *)
  retry_factor : float;
  retry_max_delay : float;
  seed : int;                      (** jitter seed *)
  breaker_threshold : int;
  breaker_cooldown : float;
  mem_soft_limit_mb : int option;
  drain_grace : float option;      (** deadline cap for runs during drain *)
  cache_dir : string option;
      (** incremental-cache store directory; a restarted service points
          at the same directory and starts warm *)
  flight_dump : string option;
      (** where the flight-recorder ring is dumped as a Chrome trace on
          SIGUSR1, an admin [dump] request, or a terminal job failure;
          [None] disables dumping (the ring itself is armed by the CLI
          via {!Obs.Telemetry.arm_flight}) *)
  now : unit -> float;
  sleep : float -> unit;
      (** the queue's poll wait for delayed retries; injectable for tests *)
}

let default_config =
  { workers = 2; job_jobs = 1; queue_cap = 64; max_retries = 2;
    retry_base = 0.05; retry_factor = 2.0; retry_max_delay = 2.0;
    seed = 0; breaker_threshold = 5; breaker_cooldown = 30.0;
    mem_soft_limit_mb = None; drain_grace = Some 30.0; cache_dir = None;
    flight_dump = None; now = Unix.gettimeofday; sleep = Io.sleepf }

(** The retry schedule is a pure function of (seed, job id, attempt):
    byte-identical across runs and across worker-pool sizes. [attempt] is
    the execution that just failed (1-based). *)
let backoff_delay cfg ~id ~attempt =
  let h = Hashtbl.hash (cfg.seed, id, attempt) in
  let jitter = float_of_int (h land 0xFFFF) /. 65536.0 in
  let exp =
    cfg.retry_base *. (cfg.retry_factor ** float_of_int (attempt - 1))
  in
  Float.min cfg.retry_max_delay (exp *. (0.5 +. jitter))

(* ------------------------------------------------------------------ *)
(* Service state                                                      *)
(* ------------------------------------------------------------------ *)

type job = {
  j_req : request;
  j_submitted : float;
  mutable j_attempts : int;
  j_respond : response -> unit;
}

type t = {
  cfg : config;
  queue : job Queue.t;
  breaker : Breaker.t;
  watchdog : Watchdog.t;
  cache : Cache.Incr.t option;
  diagnostics : Diagnostics.t;     (* service-level events *)
  diag_lock : Mutex.t;
  (* terminal-state accounting; atomics because workers race *)
  n_submitted : int Atomic.t;
  n_admitted : int Atomic.t;
  n_completed : int Atomic.t;
  n_degraded : int Atomic.t;
  n_failed : int Atomic.t;
  n_rejected_full : int Atomic.t;
  n_rejected_draining : int Atomic.t;
  n_shed : int Atomic.t;
  n_retries : int Atomic.t;
  n_breaker_fast_fails : int Atomic.t;
  n_breaker_opens : int Atomic.t;
  started_at : float;
  sig_drain : bool Atomic.t;       (* set (only) by signal handlers *)
  sig_dump : bool Atomic.t;        (* SIGUSR1: flight dump requested *)
  dump_lock : Mutex.t;             (* one flight dump writes at a time *)
  drain_started : bool Atomic.t;
  joined : bool Atomic.t;
  mutable domains : unit Domain.t list;
  join_lock : Mutex.t;
}

let m_submitted = Obs.Telemetry.counter "serve.submitted"
let m_admitted = Obs.Telemetry.counter "serve.admitted"
let m_completed = Obs.Telemetry.counter "serve.completed"
let m_degraded = Obs.Telemetry.counter "serve.degraded"
let m_failed = Obs.Telemetry.counter "serve.failed"
let m_rejected = Obs.Telemetry.counter "serve.rejected"
let m_shed = Obs.Telemetry.counter "serve.shed"
let m_retries = Obs.Telemetry.counter "serve.retries"
let m_latency_ms = Obs.Telemetry.histogram "serve.latency_ms"
let m_queue_wait_ms = Obs.Telemetry.histogram "serve.queue_wait_ms"
let g_queue_depth = Obs.Telemetry.gauge "serve.queue_depth"

let record_diag t d =
  Mutex.lock t.diag_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.diag_lock)
    (fun () -> Diagnostics.record t.diagnostics d)

(* Inline jobs are keyed by a hash of their source, not their (unique)
   request id: a repeatedly crashing inline unit trips a breaker like a
   named app does, and the breaker table stays bounded by distinct
   workloads rather than growing one dead cell per inline job. *)
let breaker_key (rq : request) =
  match rq.rq_app, rq.rq_source with
  | Some a, _ -> a
  | None, Some src -> Printf.sprintf "inline:%08x" (Hashtbl.hash src)
  | None, None -> "inline:invalid"

(* The same key doubles as the cluster's consistent-hash routing key, so
   repeated submissions of one application land on one warm worker. *)
let job_key = breaker_key

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)
(* ------------------------------------------------------------------ *)

(** Dump the flight-recorder ring (the bounded per-domain buffers of
    recent spans/instants) as a Chrome trace at [cfg.flight_dump].
    Safe from any domain — the ring is snapshotted racily — and
    serialized so concurrent triggers never interleave in the file.
    Returns the path written, or [None] when dumping is off. *)
let flight_dump t ~cause =
  match t.cfg.flight_dump with
  | None -> None
  | Some path ->
    Mutex.lock t.dump_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.dump_lock)
      (fun () ->
        (try Obs.Telemetry.write_flight path
         with Sys_error _ -> ());
        Obs.Telemetry.instant "obs.flight_dump"
          ~args:[ ("cause", cause); ("path", path) ];
        Some path)

(* SIGUSR1 handlers only set this flag; transport pumps turn it into a
   dump from a safe context. *)
let signal_dump_pending t =
  if Atomic.exchange t.sig_dump false then
    ignore (flight_dump t ~cause:"sigusr1")

(* ------------------------------------------------------------------ *)
(* Job execution                                                      *)
(* ------------------------------------------------------------------ *)

let respond ?verdict ?mismatched t (job : job) status reason ~issues
    ~degradations =
  (match status with
   | Completed -> Atomic.incr t.n_completed; Obs.Telemetry.incr m_completed
   | Degraded -> Atomic.incr t.n_degraded; Obs.Telemetry.incr m_degraded
   | Failed -> Atomic.incr t.n_failed; Obs.Telemetry.incr m_failed
   | Rejected -> Obs.Telemetry.incr m_rejected);
  let seconds = t.cfg.now () -. job.j_submitted in
  Obs.Telemetry.observe m_latency_ms (int_of_float (seconds *. 1000.0));
  Obs.Telemetry.instant "serve.terminal"
    ~args:
      [ ("job", job.j_req.rq_id); ("status", status_name status);
        ("reason", reason) ];
  let r =
    { rp_id = job.j_req.rq_id; rp_status = status; rp_reason = reason;
      rp_verdict = verdict; rp_issues = issues;
      rp_attempts = job.j_attempts;
      rp_degradations = degradations; rp_seconds = seconds;
      rp_mismatched = mismatched }
  in
  (* a failing response sink must not take down the worker *)
  try job.j_respond r with _ -> ()

let build_input (rq : request) : (Taj.input, string) result =
  match rq.rq_app, rq.rq_source with
  | Some app, _ ->
    (match Workloads.Apps.find app with
     | None -> Error "unknown_app"
     | Some a ->
       Ok (Workloads.Codegen.to_input
             (Workloads.Apps.generate ~scale:rq.rq_scale a)))
  | None, Some src ->
    Ok { Taj.name = rq.rq_id; app_sources = [ src ];
         descriptor = rq.rq_descriptor }
  | None, None -> Error "empty_request"

type exec_outcome =
  | Exec_ok of {
      st : status;
      why : string;
      issues : int;
      degradations : int;
      verdict : string option;      (* Some "type_only" for rung zero *)
      mismatched : int option;      (* judged sanitizer mismatches *)
    }
  | Exec_failed of {
      reason : string;
      severity : Fault.severity;
      breaker_counts : bool;
          (* a run that merely exhausted the client's own per-job deadline
             says nothing about the key — two clients with different
             deadlines must not poison each other's breaker — so it does
             not count toward opening it; crashes always do *)
    }

(* One execution of the job under the supervisor, under the current
   memory-pressure level. Supervisor.run never raises; anything that does
   escape here (injected worker faults, infrastructure errors) is
   classified for the retry policy. *)
let execute t (job : job) : exec_outcome =
  let rq = job.j_req in
  match
    Fault.tick Fault.site_worker;
    Fault.tick (Fault.site_job rq.rq_id);
    build_input rq
  with
  | exception e ->
    Exec_failed
      { reason = Printexc.to_string e; severity = Fault.classify e;
        breaker_counts = true }
  | Error reason ->
    Exec_failed { reason; severity = Fault.Permanent; breaker_counts = true }
  | Ok input ->
    let pressure =
      Watchdog.sample ~on_event:(record_diag t) t.watchdog
    in
    let scale, config =
      Watchdog.degrade_config ~scale:rq.rq_scale
        { (Config.preset ~scale:rq.rq_scale rq.rq_algorithm) with
          Config.contexts = rq.rq_contexts }
        pressure
    in
    (* per-rung execution counters ("serve.rung.<algorithm>"): bounded
       cardinality, so the Prometheus exposition shows how much of the
       fleet's work runs degraded and how much hit the triage floor *)
    Obs.Telemetry.incr
      (Obs.Telemetry.counter
         ("serve.rung." ^ Config.algorithm_name config.Config.algorithm));
    let deadline =
      (* during drain, cap each run so a pathological job cannot hold the
         shutdown hostage; its flows so far become a degraded result *)
      if Atomic.get t.drain_started then
        match rq.rq_deadline, t.cfg.drain_grace with
        | Some d, Some g -> Some (Float.min d g)
        | Some d, None -> Some d
        | None, g -> g
      else rq.rq_deadline
    in
    let session =
      Option.map (fun c -> Cache.Incr.start c ~app:input.Taj.name) t.cache
    in
    (match Option.bind session Cache.Incr.corruption with
     | Some d -> record_diag t d
     | None -> ());
    let result_key =
      Cache.Incr.result_key ~rules:Rules.default_rules ~config input
    in
    (* a memory-pressure run answers Degraded even when complete, so it
       neither consults nor feeds the result tier *)
    let cached =
      if pressure > 0 then None
      else
        Option.bind session (fun s ->
          Cache.Incr.lookup_result s ~key:result_key)
    in
    match cached with
    | Some cr ->
      Exec_ok
        { st = Completed; why = ""; issues = cr.Cache.Incr.cr_issues;
          degradations = 0; verdict = None; mismatched = None }
    | None ->
      let options =
        { Supervisor.default_options with
          deadline; scale; jobs = t.cfg.job_jobs;
          cache =
            (match session with
             | Some s -> Cache.Incr.hooks s
             | None -> Cache_iface.none) }
      in
      match Supervisor.run ~options ~config input with
      | exception e ->
        Exec_failed
          { reason = Printexc.to_string e; severity = Fault.classify e;
            breaker_counts = true }
      | outcome ->
        let degradations = List.length outcome.Supervisor.sv_diagnostics in
        let commit ?completed () =
          match session with
          | None -> ()
          | Some s ->
            (match completed, outcome.Supervisor.sv_analysis with
             | Some c, Some analysis ->
               let cr =
                 { Cache.Incr.cr_report =
                     Cache.Incr.render_report c.Taj.builder c.Taj.report;
                   cr_issues = Report.issue_count c.Taj.report;
                   cr_flows = Report.flow_count c.Taj.report }
               in
               let keys =
                 result_key
                 :: Option.to_list
                      (Cache.Incr.ast_result_key
                         ~rules:Rules.default_rules ~config
                         ~loaded:analysis.Taj.loaded s)
               in
               Cache.Incr.commit
                 ~results:(List.map (fun k -> (k, cr)) keys)
                 ~analysis:c s
             | _ -> Cache.Incr.commit s)
        in
        (match outcome.Supervisor.sv_triage with
         | Some v ->
           (* rung zero answered: a terminal, degraded response carrying
              the triage sink findings — never a failure. This is the
              floor under "every admitted job gets an answer". *)
           commit ();
           Exec_ok
             { st = Degraded; why = "type_only";
               issues = List.length (Triage.findings v);
               degradations; verdict = Some "type_only";
               mismatched = None }
         | None ->
         match outcome.Supervisor.sv_analysis with
         | Some { Taj.result = Taj.Completed c; _ } ->
           let issues = Report.issue_count c.Taj.report in
           let mismatched =
             Option.map fst (Report.sanitization_counts c.Taj.report)
           in
           if
             Report.is_partial c.Taj.report
             || outcome.Supervisor.sv_diagnostics <> []
           then begin
             commit ();
             Exec_ok
               { st = Degraded; why = "supervisor_degraded"; issues;
                 degradations; verdict = None; mismatched }
           end
           else if pressure > 0 then begin
             commit ();
             Exec_ok
               { st = Degraded; why = "memory_pressure"; issues;
                 degradations; verdict = None; mismatched }
           end
           else begin
             commit ~completed:c ();
             Exec_ok
               { st = Completed; why = ""; issues; degradations;
                 verdict = None; mismatched }
           end
         | Some { Taj.result = Taj.Did_not_complete reason; _ } ->
           commit ();
           Exec_failed
             { reason = "did_not_complete: " ^ reason;
               severity = Fault.Permanent;
               breaker_counts = rq.rq_deadline = None }
         | None ->
           commit ();
           Exec_failed
             { reason = "load_failed"; severity = Fault.Permanent;
               breaker_counts = true })

let process t (job : job) =
  let key = breaker_key job.j_req in
  match Breaker.acquire t.breaker ~job:job.j_req.rq_id key with
  | `Fast_fail ->
    Atomic.incr t.n_breaker_fast_fails;
    respond t job Failed "breaker_open" ~issues:0 ~degradations:0
  | (`Proceed | `Probe) as admission ->
    job.j_attempts <- job.j_attempts + 1;
    (match execute t job with
     | Exec_ok { st; why; issues; degradations; verdict; mismatched } ->
       Breaker.success t.breaker key;
       respond ?verdict ?mismatched t job st why ~issues ~degradations
     | Exec_failed { reason; severity; breaker_counts } ->
       let retryable =
         severity = Fault.Transient
         && job.j_attempts <= t.cfg.max_retries
         && not (Atomic.get t.drain_started)
       in
       if retryable then begin
         (* not a terminal state: the breaker is not consulted — a
            half-open probe keeps its slot and its re-execution is
            re-admitted as the probe — and the job re-enters the queue
            tagged due after its deterministic backoff, so the worker is
            free for other jobs instead of sleeping out the delay *)
         Atomic.incr t.n_retries;
         Obs.Telemetry.incr m_retries;
         let delay =
           backoff_delay t.cfg ~id:job.j_req.rq_id ~attempt:job.j_attempts
         in
         record_diag t
           (Diagnostics.Job_retried
              { job = job.j_req.rq_id; attempt = job.j_attempts;
                delay; reason });
         Obs.Telemetry.instant "serve.retry"
           ~args:
             [ ("job", job.j_req.rq_id);
               ("attempt", string_of_int job.j_attempts);
               ("delay", Printf.sprintf "%.4f" delay);
               ("reason", reason) ];
         Queue.push_forced t.queue ~priority:job.j_req.rq_priority ~delay
           job
       end
       else begin
         (* a held probe slot must always be resolved, even when the
            failure itself does not count (client-deadline expiry):
            leaving the cell half-open would wedge the key forever *)
         if breaker_counts || admission = `Probe then
           ignore (Breaker.failure t.breaker key);
         respond t job Failed reason ~issues:0 ~degradations:0;
         (* a terminal failure is exactly the moment the recent-event
            ring pays off: dump it while the evidence is still inside *)
         ignore (flight_dump t ~cause:("failed:" ^ job.j_req.rq_id))
       end)

let worker t () =
  Obs.Telemetry.with_span "serve.worker" @@ fun () ->
  let rec loop () =
    match Queue.pop t.queue with
    | None -> ()                       (* drained and empty *)
    | Some job ->
      Obs.Telemetry.observe m_queue_wait_ms
        (int_of_float ((t.cfg.now () -. job.j_submitted) *. 1000.0));
      process t job;
      loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let create ?(config = default_config) () =
  let cfg =
    { config with
      workers = max 1 config.workers;
      max_retries = max 0 config.max_retries }
  in
  let diag_lock = Mutex.create () in
  let diagnostics = Diagnostics.create () in
  let n_breaker_opens = Atomic.make 0 in
  let record ~key st =
    (* breaker transitions land in the service diagnostics; the callback
       runs under the breaker lock, so only counters and the (separate)
       diagnostics lock are touched *)
    Mutex.lock diag_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock diag_lock)
      (fun () ->
         Diagnostics.record diagnostics
           (Diagnostics.Breaker_transition
              { key; state = Breaker.state_name st }));
    match st with
    | Breaker.Open _ -> Atomic.incr n_breaker_opens
    | Breaker.Closed | Breaker.Half_open -> ()
  in
  let t =
    { cfg;
      queue = Queue.create ~now:cfg.now ~sleep:cfg.sleep ~cap:cfg.queue_cap ();
      breaker =
        Breaker.create ~now:cfg.now ~on_transition:record
          ~threshold:cfg.breaker_threshold ~cooldown:cfg.breaker_cooldown ();
      watchdog = Watchdog.create ~soft_limit_mb:cfg.mem_soft_limit_mb ();
      cache = Option.map (fun dir -> Cache.Incr.create ~dir) cfg.cache_dir;
      diagnostics; diag_lock;
      n_submitted = Atomic.make 0; n_admitted = Atomic.make 0;
      n_completed = Atomic.make 0; n_degraded = Atomic.make 0;
      n_failed = Atomic.make 0; n_rejected_full = Atomic.make 0;
      n_rejected_draining = Atomic.make 0; n_shed = Atomic.make 0;
      n_retries = Atomic.make 0;
      n_breaker_fast_fails = Atomic.make 0; n_breaker_opens;
      started_at = cfg.now ();
      sig_drain = Atomic.make false;
      sig_dump = Atomic.make false; dump_lock = Mutex.create ();
      drain_started = Atomic.make false;
      joined = Atomic.make false; domains = []; join_lock = Mutex.create () }
  in
  t.domains <- List.init cfg.workers (fun _ -> Domain.spawn (worker t));
  t

(** Admission. The response callback fires exactly once, from an arbitrary
    domain, when the job reaches its terminal state — possibly before
    [submit] returns (immediate rejection). *)
let submit t (rq : request) ~(respond : response -> unit) =
  Atomic.incr t.n_submitted;
  Obs.Telemetry.incr m_submitted;
  let job =
    { j_req = rq; j_submitted = t.cfg.now (); j_attempts = 0;
      j_respond = respond }
  in
  let reject job reason counter =
    Atomic.incr counter;
    Obs.Telemetry.incr m_rejected;
    Obs.Telemetry.instant "serve.rejected"
      ~args:[ ("job", job.j_req.rq_id); ("reason", reason) ];
    let r =
      { rp_id = job.j_req.rq_id; rp_status = Rejected; rp_reason = reason;
        rp_verdict = None; rp_issues = 0; rp_attempts = job.j_attempts;
        rp_degradations = 0;
        rp_seconds = t.cfg.now () -. job.j_submitted;
        rp_mismatched = None }
    in
    try job.j_respond r with _ -> ()
  in
  if Atomic.get t.drain_started || Atomic.get t.sig_drain then
    reject job "draining" t.n_rejected_draining
  else begin
    match Queue.push t.queue ~priority:rq.rq_priority job with
    | Queue.Admitted ->
      Atomic.incr t.n_admitted;
      Obs.Telemetry.incr m_admitted;
      Obs.Telemetry.set g_queue_depth (Queue.length t.queue);
      Obs.Telemetry.instant "serve.admit" ~args:[ ("job", rq.rq_id) ]
    | Queue.Admitted_shedding victim ->
      Atomic.incr t.n_admitted;
      Obs.Telemetry.incr m_admitted;
      Obs.Telemetry.incr m_shed;
      Atomic.incr t.n_shed;
      record_diag t
        (Diagnostics.Job_shed
           { job = victim.j_req.rq_id;
             priority = victim.j_req.rq_priority });
      Obs.Telemetry.instant "serve.shed"
        ~args:[ ("job", victim.j_req.rq_id) ];
      reject victim "shed" (Atomic.make 0 (* shed counted above *));
      Obs.Telemetry.instant "serve.admit" ~args:[ ("job", rq.rq_id) ]
    | Queue.Rejected_full -> reject job "queue_full" t.n_rejected_full
  end

(** Stop admitting; admitted jobs keep running. Idempotent; safe from any
    domain (but not from a signal handler — handlers only set a flag). *)
let request_drain t =
  if not (Atomic.exchange t.drain_started true) then begin
    Obs.Telemetry.instant "serve.drain"
      ~args:[ ("queued", string_of_int (Queue.length t.queue)) ];
    Queue.set_draining t.queue
  end

let draining t = Atomic.get t.drain_started

(** Block until every worker (and the signal watcher) has exited — i.e.
    every admitted job has reached its terminal state. Idempotent. *)
let await_drained t =
  request_drain t;
  Mutex.lock t.join_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.join_lock)
    (fun () ->
       if not (Atomic.get t.joined) then begin
         List.iter Domain.join t.domains;
         t.domains <- [];
         Atomic.set t.joined true;
         Obs.Telemetry.instant "serve.drained"
       end)

(* ------------------------------------------------------------------ *)
(* Signals                                                            *)
(* ------------------------------------------------------------------ *)

(** Handlers may run at any allocation point, so they only set an atomic
    flag; a watcher domain turns the flag into the drain protocol from a
    safe context. Transports also poll {!signal_pending} so a blocked
    read never delays the drain. *)
let install_signals t =
  let handler = Sys.Signal_handle (fun _ -> Atomic.set t.sig_drain true) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigusr1
    (Sys.Signal_handle (fun _ -> Atomic.set t.sig_dump true));
  let watcher () =
    let rec loop () =
      if Atomic.get t.sig_drain then request_drain t
      else if not (Atomic.get t.drain_started) then begin
        Io.sleepf 0.02;
        loop ()
      end
    in
    loop ()
  in
  t.domains <- Domain.spawn watcher :: t.domains

let signal_pending t = Atomic.get t.sig_drain

(* ------------------------------------------------------------------ *)
(* Health                                                             *)
(* ------------------------------------------------------------------ *)

type health = {
  h_uptime : float;
  h_queue_depth : int;
  h_pressure : int;
  h_rung : string;
      (** name of the degradation-ladder rung jobs currently run at
          (the default ladder's rung for [h_pressure]; ["triage"] when
          pressure has pushed execution down to the type-only floor) *)
  h_submitted : int;
  h_admitted : int;
  h_completed : int;
  h_degraded : int;
  h_failed : int;
  h_rejected_full : int;
  h_rejected_draining : int;
  h_shed : int;
  h_retries : int;
  h_breaker_fast_fails : int;
  h_breaker_opens : int;
  h_open_breakers : string list;
  h_events : int;                  (** service-level diagnostics recorded *)
  h_latency_p50 : int;             (** submit-to-terminal ms (log2 est.) *)
  h_latency_p95 : int;
  h_latency_p99 : int;
  h_cache_hits : int;              (** incremental-cache tier hits … *)
  h_cache_misses : int;
  h_cache_invalidated : int;       (** … and evicted stale entries *)
}

(* Latency percentiles and cache-tier counters come from the telemetry
   registry (zero when telemetry is off): the histogram is fed by
   [respond], the cache counters by [Cache.Incr]. In a cluster worker
   process this reads the worker's own post-fork registry, so the
   aggregated health sums per-worker cache behaviour. *)
let telemetry_counter name =
  match Obs.Telemetry.find_value name with
  | Some (Obs.Telemetry.V_counter n) -> n
  | _ -> 0

let latency_quantile q =
  match Obs.Telemetry.find_value "serve.latency_ms" with
  | Some (Obs.Telemetry.V_histogram s) -> Obs.Telemetry.snapshot_quantile s q
  | _ -> 0

let health t =
  { h_uptime = t.cfg.now () -. t.started_at;
    h_queue_depth = Queue.length t.queue;
    h_pressure = Watchdog.level t.watchdog;
    h_rung =
      Config.pressure_rung_name
        (Config.preset Config.Hybrid_optimized)
        (Watchdog.level t.watchdog);
    h_submitted = Atomic.get t.n_submitted;
    h_admitted = Atomic.get t.n_admitted;
    h_completed = Atomic.get t.n_completed;
    h_degraded = Atomic.get t.n_degraded;
    h_failed = Atomic.get t.n_failed;
    h_rejected_full = Atomic.get t.n_rejected_full;
    h_rejected_draining = Atomic.get t.n_rejected_draining;
    h_shed = Atomic.get t.n_shed;
    h_retries = Atomic.get t.n_retries;
    h_breaker_fast_fails = Atomic.get t.n_breaker_fast_fails;
    h_breaker_opens = Atomic.get t.n_breaker_opens;
    h_open_breakers = Breaker.open_keys t.breaker;
    h_events =
      (Mutex.lock t.diag_lock;
       Fun.protect
         ~finally:(fun () -> Mutex.unlock t.diag_lock)
         (fun () -> Diagnostics.count t.diagnostics));
    h_latency_p50 = latency_quantile 0.50;
    h_latency_p95 = latency_quantile 0.95;
    h_latency_p99 = latency_quantile 0.99;
    h_cache_hits = telemetry_counter "cache.hit";
    h_cache_misses = telemetry_counter "cache.miss";
    h_cache_invalidated = telemetry_counter "cache.invalidated" }

(** A drain is clean when no admitted job was shed and no job was turned
    away by a full queue: the service kept every promise it made. Failed
    and degraded jobs are terminal answers, not lost work. *)
let clean_drain h = h.h_shed = 0 && h.h_rejected_full = 0

let events t =
  Mutex.lock t.diag_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.diag_lock)
    (fun () -> Diagnostics.events t.diagnostics)

(* ------------------------------------------------------------------ *)
(* Wire protocol                                                      *)
(* ------------------------------------------------------------------ *)

let algorithm_of_string = function
  | "hybrid" | "hybrid-unbounded" -> Ok Config.Hybrid_unbounded
  | "prioritized" | "hybrid-prioritized" -> Ok Config.Hybrid_prioritized
  | "optimized" | "hybrid-optimized" -> Ok Config.Hybrid_optimized
  | "cs" -> Ok Config.Cs_thin_slicing
  | "ci" -> Ok Config.Ci_thin_slicing
  | "triage" -> Ok Config.Type_triage
  | other -> Error (Printf.sprintf "unknown algorithm %S" other)

let request_of_json (j : Json.t) : (request, string) result =
  match Json.str_member "id" j with
  | None -> Error "missing id"
  | Some id ->
    let app = Json.str_member "app" j in
    let source = Json.str_member "source" j in
    if app = None && source = None then Error "missing app or source"
    else begin
      match
        match Json.str_member "algorithm" j with
        | None -> Ok Config.Hybrid_optimized
        | Some s -> algorithm_of_string s
      with
      | Error e -> Error e
      | Ok algorithm ->
        Ok
          (request id ?app ?source
             ?descriptor:(Json.str_member "descriptor" j)
             ~algorithm
             ?scale:(Json.num_member "scale" j)
             ?deadline:(Json.num_member "deadline" j)
             ?priority:(Json.int_member "priority" j)
             ?contexts:
               (match Json.member "contexts" j with
                | Some (Json.Bool b) -> Some b
                | _ -> None))
    end

let response_json (r : response) =
  Json.to_string
    (Json.Obj
       ([ ("id", Json.Str r.rp_id);
          ("status", Json.Str (status_name r.rp_status));
          ("reason", Json.Str r.rp_reason) ]
        @ (match r.rp_verdict with
           | Some v -> [ ("verdict", Json.Str v) ]
           | None -> [])
        @ (match r.rp_mismatched with
           | Some n -> [ ("mismatched", Json.Num (float_of_int n)) ]
           | None -> [])
        @ [ ("issues", Json.Num (float_of_int r.rp_issues));
            ("attempts", Json.Num (float_of_int r.rp_attempts));
            ("degradations", Json.Num (float_of_int r.rp_degradations));
            ("seconds",
             Json.Num (Float.round (r.rp_seconds *. 1000.) /. 1000.)) ]))

let health_json (h : health) =
  let num n = Json.Num (float_of_int n) in
  Json.to_string
    (Json.Obj
       [ ("event", Json.Str "health");
         ("uptime", Json.Num (Float.round (h.h_uptime *. 1000.) /. 1000.));
         ("queue_depth", num h.h_queue_depth);
         ("pressure", num h.h_pressure);
         (* the watchdog pressure level selects the degradation-ladder
            rung jobs currently run at; the rung is surfaced by name so
            dashboards need no level-to-preset mapping *)
         ("rung", Json.Str h.h_rung);
         ("submitted", num h.h_submitted);
         ("admitted", num h.h_admitted);
         ("completed", num h.h_completed);
         ("degraded", num h.h_degraded);
         ("failed", num h.h_failed);
         ("rejected_full", num h.h_rejected_full);
         ("rejected_draining", num h.h_rejected_draining);
         ("shed", num h.h_shed);
         ("retries", num h.h_retries);
         ("breaker_fast_fails", num h.h_breaker_fast_fails);
         ("breaker_opens", num h.h_breaker_opens);
         ("open_breakers",
          Json.Arr (List.map (fun k -> Json.Str k) h.h_open_breakers));
         ("latency_ms_p50", num h.h_latency_p50);
         ("latency_ms_p95", num h.h_latency_p95);
         ("latency_ms_p99", num h.h_latency_p99);
         ("cache_hits", num h.h_cache_hits);
         ("cache_misses", num h.h_cache_misses);
         ("cache_invalidated", num h.h_cache_invalidated);
         ("clean_drain", Json.Bool (clean_drain h)) ])

(* ------------------------------------------------------------------ *)
(* Admin channel                                                      *)
(* ------------------------------------------------------------------ *)

(** One admin command line → one reply. Commands:
    - ["health"]: the live health snapshot as one JSON line;
    - ["metrics"]: the telemetry registry as Prometheus text exposition,
      terminated by a ["# EOF"] line;
    - ["metrics.json"]: the same registry as one JSON line;
    - ["dump"]: write the flight-recorder ring to the configured dump
      path and answer with a one-line receipt.
    Unknown commands get a one-line JSON error, never silence. *)
let admin_reply t line =
  match String.trim line with
  | "health" -> health_json (health t)
  | "metrics" -> Obs.Export.prometheus ()
  | "metrics.json" -> Obs.Export.json ()
  | "dump" ->
    (match flight_dump t ~cause:"admin" with
     | Some path ->
       Json.to_string
         (Json.Obj
            [ ("event", Json.Str "dump"); ("path", Json.Str path) ])
     | None ->
       Json.to_string
         (Json.Obj
            [ ("event", Json.Str "error");
              ("error", Json.Str "flight_dump_disabled") ]))
  | other ->
    Json.to_string
      (Json.Obj
         [ ("event", Json.Str "error");
           ("error", Json.Str "unknown_command");
           ("command", Json.Str other) ])

(* ------------------------------------------------------------------ *)
(* Transports                                                         *)
(* ------------------------------------------------------------------ *)

(* Submissions arrive on the transport domain; responses are written by
   worker domains. One lock serializes the NDJSON output stream. A peer
   that vanishes mid-response becomes a per-connection diagnostic, never
   a crash: SIGPIPE is ignored on every transport and the EPIPE shows up
   here exactly once. *)
let make_writer t ~peer fd =
  Io.make_writer fd
    ~on_error:(fun e ->
      record_diag t
        (Diagnostics.Client_disconnected
           { peer; error = Unix.error_message e }))

let handle_line t ~write line =
  let line = String.trim line in
  if line <> "" then begin
    match
      match Json.parse line with
      | Error e -> Error ("bad_json: " ^ e)
      | Ok j -> request_of_json j
    with
    | Error reason ->
      (* even an unparsable request gets a terminal answer *)
      let id =
        match Json.parse line with
        | Ok j ->
          (match Json.str_member "id" j with
           | Some id -> Json.Str id
           | None -> Json.Null)
        | Error _ -> Json.Null
      in
      write
        (Json.to_string
           (Json.Obj
              [ ("id", id);
                ("status", Json.Str "rejected");
                ("reason", Json.Str reason) ]))
    | Ok rq -> submit t rq ~respond:(fun r -> write (response_json r))
  end

(** Serve newline-delimited JSON over stdin/stdout until EOF or a drain
    signal; returns the final health snapshot (also written as the last
    output line). [admin] opens the admin socket next to the stream. *)
let run_stdio ?(stdin = Unix.stdin) ?(stdout = Unix.stdout) ?admin t =
  Io.ignore_sigpipe ();
  install_signals t;
  let adm = Option.map Admin.create admin in
  let admin_fds () =
    match adm with Some a -> Admin.fds a | None -> []
  in
  let write = make_writer t ~peer:"stdout" stdout in
  let reader = Io.line_reader stdin in
  let rec pump () =
    if signal_pending t || draining t then ()
    else begin
      signal_dump_pending t;
      match Io.read_line_nonblock reader with
      | `Line l -> handle_line t ~write l; pump ()
      | `Eof -> ()
      | `Pending ->
        let ready, _, _ = Io.select (stdin :: admin_fds ()) [] [] 0.2 in
        (match adm with
         | Some a -> Admin.step a ~reply:(admin_reply t) ready
         | None -> ());
        pump ()
    end
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Admin.close adm)
    (fun () ->
      pump ();
      request_drain t;
      await_drained t;
      let h = health t in
      write (health_json h);
      h)

(** Serve over a Unix domain socket, multiplexing any number of clients
    with [select]; each client gets its jobs' responses on its own
    connection. Returns the final health snapshot at drain. *)
let run_socket ?admin t path =
  (* a stale socket file from an unclean shutdown is probed and unlinked;
     a live server on the path is never stolen from *)
  let listen_fd =
    match Io.bind_unix_socket path with
    | Ok fd -> fd
    | Error `Live ->
      raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", path))
  in
  Unix.listen listen_fd 16;
  Io.ignore_sigpipe ();
  install_signals t;
  let adm = Option.map Admin.create admin in
  let admin_fds () =
    match adm with Some a -> Admin.fds a | None -> []
  in
  let clients = ref [] in        (* (fd, reader, writer) *)
  let close_client (fd, _, _) =
    clients := List.filter (fun (f, _, _) -> f <> fd) !clients;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec pump () =
    if signal_pending t || draining t then ()
    else begin
      signal_dump_pending t;
      let fds =
        (listen_fd :: List.map (fun (fd, _, _) -> fd) !clients)
        @ admin_fds ()
      in
      let ready, _, _ = Io.select fds [] [] 0.2 in
      (match adm with
       | Some a -> Admin.step a ~reply:(admin_reply t) ready
       | None -> ());
      List.iter
        (fun fd ->
           if fd = listen_fd then begin
             let cfd, _ = Io.accept listen_fd in
             let peer =
               Printf.sprintf "client-%d" (List.length !clients)
             in
             clients :=
               (cfd, Io.line_reader cfd, make_writer t ~peer cfd)
               :: !clients
           end
           else
             match List.find_opt (fun (f, _, _) -> f = fd) !clients with
             | None -> ()
             | Some ((_, reader, write) as client) ->
               let rec drain_lines () =
                 match Io.read_line_nonblock reader with
                 | `Line l -> handle_line t ~write l; drain_lines ()
                 | `Eof -> close_client client
                 | `Pending -> ()
               in
               drain_lines ())
        ready;
      pump ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Admin.close adm;
      List.iter (fun (fd, _, _) -> try Unix.close fd with _ -> ())
        !clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
       pump ();
       request_drain t;
       await_drained t;
       let h = health t in
       let line = health_json h in
       List.iter (fun (_, _, write) -> write line) !clients;
       h)
