(** Memory watchdog: samples [Gc.quick_stat] between jobs and maintains a
    pressure level; the service maps level [p] to the [p]-th rung of a
    job's degradation ladder so the process degrades before it OOMs.
    [soft_limit_mb = None] disables the watchdog (level stays 0). *)

type t

(** [heap] overrides the heap measurement (default: real [Gc.quick_stat])
    so level transitions can be driven deterministically in tests. *)
val create :
  ?max_level:int -> ?heap:(unit -> int) -> soft_limit_mb:int option ->
  unit -> t

(** Current pressure level (0 = none). *)
val level : t -> int

(** Major-heap size in MB, as the watchdog measures it. *)
val heap_mb : unit -> int

(** Take one sample, adjusting the level at most one step; a level change
    is recorded to telemetry and handed to [on_event] as a
    [Resource_pressure] diagnostic. *)
val sample : ?on_event:(Core.Diagnostics.degradation -> unit) -> t -> int

(** The configuration a job should run at under pressure level [p]: the
    [p]-th rung of its ladder, with the scale that rung was built at. *)
val degrade_config :
  scale:float -> Core.Config.t -> int -> float * Core.Config.t
