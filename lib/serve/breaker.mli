(** Per-key (per-application) circuit breakers: after [threshold]
    consecutive terminal failures a key's jobs fail fast instead of
    consuming worker slots; after [cooldown] seconds one probe is admitted
    (half-open) and its outcome closes or re-opens the breaker. Transient,
    to-be-retried failures and fast-fails do not count. The half-open
    probe slot is owned by the probing job's id, so the probe's own retry
    is re-admitted instead of fast-failed (a wedged half-open state would
    otherwise be unrecoverable). Cells that return to a clean closed state
    are evicted, bounding the table. The clock is injectable for
    deterministic tests. *)

type state =
  | Closed
  | Open of float                      (** opened at (clock value) *)
  | Half_open                          (** one probe in flight *)

val state_name : state -> string

type t

val create :
  ?now:(unit -> float) ->
  ?on_transition:(key:string -> state -> unit) ->
  threshold:int -> cooldown:float -> unit -> t

(** Admission decision for one execution keyed [key]: run it, run it as
    the half-open probe, or fail fast. [job] identifies the execution so
    a retried probe can reclaim the probe slot it already holds. *)
val acquire : ?job:string -> t -> string -> [ `Proceed | `Probe | `Fast_fail ]

val success : t -> string -> unit

(** Record a terminal failure; [true] when it opened the breaker. *)
val failure : t -> string -> bool

val state : t -> string -> state
val consecutive_failures : t -> string -> int
val open_keys : t -> string list
