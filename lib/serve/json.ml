(** Minimal JSON codec for the service's newline-delimited job protocol.

    The repository deliberately avoids new dependencies, so the request /
    response schema is handled by this small self-contained parser and
    printer. It covers the full JSON value grammar (objects, arrays,
    strings with escapes, numbers, booleans, null); numbers are parsed as
    floats, which is exact for every count the protocol carries. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let fail c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') -> advance c; skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected '%c'" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c; Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
       | Some '"' -> Buffer.add_char buf '"'; advance c
       | Some '\\' -> Buffer.add_char buf '\\'; advance c
       | Some '/' -> Buffer.add_char buf '/'; advance c
       | Some 'n' -> Buffer.add_char buf '\n'; advance c
       | Some 't' -> Buffer.add_char buf '\t'; advance c
       | Some 'r' -> Buffer.add_char buf '\r'; advance c
       | Some 'b' -> Buffer.add_char buf '\b'; advance c
       | Some 'f' -> Buffer.add_char buf '\012'; advance c
       | Some 'u' ->
         advance c;
         let hex4 () =
           if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
           match int_of_string_opt ("0x" ^ String.sub c.s c.pos 4) with
           | None -> fail c "bad \\u escape"
           | Some code -> c.pos <- c.pos + 4; code
         in
         let code = hex4 () in
         let code =
           (* surrogate pairs: a high surrogate must be followed by an
              escaped low surrogate, together encoding one supplementary
              code point; lone surrogates have no valid UTF-8 form *)
           if code >= 0xD800 && code <= 0xDBFF then begin
             if
               not
                 (c.pos + 2 <= String.length c.s
                  && c.s.[c.pos] = '\\' && c.s.[c.pos + 1] = 'u')
             then fail c "lone high surrogate";
             c.pos <- c.pos + 2;
             let lo = hex4 () in
             if lo < 0xDC00 || lo > 0xDFFF then fail c "lone high surrogate";
             0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
           end
           else if code >= 0xDC00 && code <= 0xDFFF then
             fail c "lone low surrogate"
           else code
         in
         (* decode as UTF-8; the protocol only round-trips ASCII but
            arbitrary escapes must not corrupt the stream *)
         if code < 0x80 then Buffer.add_char buf (Char.chr code)
         else if code < 0x800 then begin
           Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else if code < 0x10000 then begin
           Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
           Buffer.add_char buf
             (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
         else begin
           Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
           Buffer.add_char buf
             (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
           Buffer.add_char buf
             (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
           Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
         end
       | _ -> fail c "bad escape");
      go ()
    | Some ch -> Buffer.add_char buf ch; advance c; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.s start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin advance c; Obj [] end
    else begin
      let rec members acc =
        skip_ws c;
        expect c '"';
        let k = parse_string_body c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; members ((k, v) :: acc)
        | Some '}' -> advance c; Obj (List.rev ((k, v) :: acc))
        | _ -> fail c "expected ',' or '}'"
      in
      members []
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin advance c; Arr [] end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; elements (v :: acc)
        | Some ']' -> advance c; Arr (List.rev (v :: acc))
        | _ -> fail c "expected ',' or ']'"
      in
      elements []
    end
  | Some '"' -> advance c; Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected '%c'" ch)

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing garbage" else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | ch when Char.code ch < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
       | ch -> Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%g" f
  | Str s -> "\"" ^ escape s ^ "\""
  | Arr vs -> "[" ^ String.concat "," (List.map to_string vs) ^ "]"
  | Obj kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v)
           kvs)
    ^ "}"

(* ------------------------------------------------------------------ *)
(* Accessors                                                          *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_str_opt = function Some (Str s) -> Some s | _ -> None
let to_num_opt = function Some (Num f) -> Some f | _ -> None

let to_int_opt v =
  match to_num_opt v with Some f -> Some (int_of_float f) | None -> None

let str_member k v = to_str_opt (member k v)
let num_member k v = to_num_opt (member k v)
let int_member k v = to_int_opt (member k v)
