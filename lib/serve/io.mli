(** EINTR-safe Unix IO for the serving layer — an alias of {!Core.Io},
    where the wrappers now live so cache and source reads share one I/O
    path with the transports. See {!Core.Io} for documentation. *)

include module type of Core.Io
