(** Framed coordinator↔worker messages for the analysis cluster.

    The NDJSON client protocol is line-oriented because humans and shell
    pipelines speak it; between the coordinator and its forked workers we
    want something a [kill -9] can tear mid-write without corrupting the
    stream, so each message is a 4-byte big-endian length prefix followed
    by one JSON document. A partially written frame is detected by the
    length check and simply discarded at EOF — the coordinator treats the
    job it carried as still in flight and reroutes it, which is exactly
    the zero-lost-jobs behaviour the supervision layer needs.

    Message kinds flowing over a worker socketpair:
    - [Job]: coordinator → worker, a full analysis request;
    - [Result]: worker → coordinator, the terminal response for one job;
    - [Drain]: coordinator → worker, stop admitting and flush;
    - [Health]: worker → coordinator, a health snapshot — the final one
      once the worker has drained (its last frame), or an interim one
      answering [Health_req];
    - [Health_req] / [Metrics_req] / [Dump_req]: coordinator → worker,
      the admin channel's live queries;
    - [Metrics]: worker → coordinator, the worker's telemetry-registry
      snapshot (merged by {!Obs.Export.merge} for aggregated scrapes);
    - [Dump]: worker → coordinator, the worker's flight-recorder ring as
      a complete Chrome-trace document (spliced into the merged dump);
    - [Log_line]: worker → coordinator, one pre-rendered NDJSON log line
      forwarded to the coordinator's sink so one merged stream exists. *)

type msg =
  | Job of Service.request
  | Result of Service.response
  | Drain
  | Health of Service.health
  | Health_req
  | Metrics_req
  | Metrics of (string * Obs.Telemetry.value) list
  | Dump_req
  | Dump of string
  | Log_line of string

(* Frames above this are a protocol violation (a desynchronized or
   corrupted stream), not a plausible request. *)
let max_frame = 64 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* JSON codecs                                                        *)
(* ------------------------------------------------------------------ *)

let num n = Json.Num (float_of_int n)

let opt_str k = function
  | Some s -> [ (k, Json.Str s) ]
  | None -> []

let opt_num k = function
  | Some f -> [ (k, Json.Num f) ]
  | None -> []

let request_json (rq : Service.request) =
  Json.Obj
    ([ ("id", Json.Str rq.rq_id) ]
     @ opt_str "app" rq.rq_app
     @ opt_str "source" rq.rq_source
     @ [ ("descriptor", Json.Str rq.rq_descriptor);
         ("algorithm",
          Json.Str (Core.Config.algorithm_name rq.rq_algorithm));
         ("scale", Json.Num rq.rq_scale) ]
     @ opt_num "deadline" rq.rq_deadline
     @ [ ("priority", num rq.rq_priority) ]
     @ (if rq.Service.rq_contexts then [ ("contexts", Json.Bool true) ]
        else []))

let status_of_string = function
  | "completed" -> Ok Service.Completed
  | "degraded" -> Ok Service.Degraded
  | "rejected" -> Ok Service.Rejected
  | "failed" -> Ok Service.Failed
  | other -> Error (Printf.sprintf "unknown status %S" other)

let response_json (r : Service.response) =
  Json.Obj
    ([ ("id", Json.Str r.rp_id);
       ("status", Json.Str (Service.status_name r.rp_status));
       ("reason", Json.Str r.rp_reason) ]
     @ (match r.rp_verdict with
        | Some v -> [ ("verdict", Json.Str v) ]
        | None -> [])
     @ (match r.rp_mismatched with
        | Some n -> [ ("mismatched", num n) ]
        | None -> [])
     @ [ ("issues", num r.rp_issues);
         ("attempts", num r.rp_attempts);
         ("degradations", num r.rp_degradations);
         ("seconds", Json.Num r.rp_seconds) ])

let response_of_json j : (Service.response, string) result =
  match Json.str_member "id" j, Json.str_member "status" j with
  | None, _ -> Error "result: missing id"
  | _, None -> Error "result: missing status"
  | Some id, Some status_s ->
    (match status_of_string status_s with
     | Error e -> Error e
     | Ok status ->
       let int k = Option.value ~default:0 (Json.int_member k j) in
       Ok
         { Service.rp_id = id; rp_status = status;
           rp_reason = Option.value ~default:"" (Json.str_member "reason" j);
           rp_verdict = Json.str_member "verdict" j;
           rp_issues = int "issues";
           rp_attempts = int "attempts";
           rp_degradations = int "degradations";
           rp_seconds =
             Option.value ~default:0.0 (Json.num_member "seconds" j);
           rp_mismatched = Json.int_member "mismatched" j })

let health_json (h : Service.health) =
  Json.Obj
    [ ("uptime", Json.Num h.h_uptime);
      ("queue_depth", num h.h_queue_depth);
      ("pressure", num h.h_pressure);
      ("rung", Json.Str h.h_rung);
      ("submitted", num h.h_submitted);
      ("admitted", num h.h_admitted);
      ("completed", num h.h_completed);
      ("degraded", num h.h_degraded);
      ("failed", num h.h_failed);
      ("rejected_full", num h.h_rejected_full);
      ("rejected_draining", num h.h_rejected_draining);
      ("shed", num h.h_shed);
      ("retries", num h.h_retries);
      ("breaker_fast_fails", num h.h_breaker_fast_fails);
      ("breaker_opens", num h.h_breaker_opens);
      ("open_breakers",
       Json.Arr (List.map (fun k -> Json.Str k) h.h_open_breakers));
      ("events", num h.h_events);
      ("latency_p50", num h.h_latency_p50);
      ("latency_p95", num h.h_latency_p95);
      ("latency_p99", num h.h_latency_p99);
      ("cache_hits", num h.h_cache_hits);
      ("cache_misses", num h.h_cache_misses);
      ("cache_invalidated", num h.h_cache_invalidated) ]

let health_of_json j : (Service.health, string) result =
  let int k = Option.value ~default:0 (Json.int_member k j) in
  match Json.num_member "uptime" j with
  | None -> Error "health: missing uptime"
  | Some uptime ->
    Ok
      { Service.h_uptime = uptime;
        h_queue_depth = int "queue_depth";
        h_pressure = int "pressure";
        h_rung = Option.value ~default:"" (Json.str_member "rung" j);
        h_submitted = int "submitted";
        h_admitted = int "admitted";
        h_completed = int "completed";
        h_degraded = int "degraded";
        h_failed = int "failed";
        h_rejected_full = int "rejected_full";
        h_rejected_draining = int "rejected_draining";
        h_shed = int "shed";
        h_retries = int "retries";
        h_breaker_fast_fails = int "breaker_fast_fails";
        h_breaker_opens = int "breaker_opens";
        h_open_breakers =
          (match Json.member "open_breakers" j with
           | Some (Json.Arr vs) ->
             List.filter_map
               (function Json.Str s -> Some s | _ -> None)
               vs
           | _ -> []);
        h_events = int "events";
        h_latency_p50 = int "latency_p50";
        h_latency_p95 = int "latency_p95";
        h_latency_p99 = int "latency_p99";
        h_cache_hits = int "cache_hits";
        h_cache_misses = int "cache_misses";
        h_cache_invalidated = int "cache_invalidated" }

(* Telemetry values, for the [Metrics] frame. Kind is a one-letter tag;
   histograms carry their sparse log2 buckets as [lo, count] pairs. *)
let value_json (v : Obs.Telemetry.value) =
  match v with
  | Obs.Telemetry.V_counter n ->
    Json.Obj [ ("k", Json.Str "c"); ("v", num n) ]
  | Obs.Telemetry.V_gauge n ->
    Json.Obj [ ("k", Json.Str "g"); ("v", num n) ]
  | Obs.Telemetry.V_histogram h ->
    Json.Obj
      [ ("k", Json.Str "h");
        ("count", num h.Obs.Telemetry.hs_count);
        ("sum", num h.Obs.Telemetry.hs_sum);
        ("max", num h.Obs.Telemetry.hs_max);
        ("buckets",
         Json.Arr
           (List.map
              (fun (lo, n) -> Json.Arr [ num lo; num n ])
              h.Obs.Telemetry.hs_buckets)) ]

let value_of_json j : (Obs.Telemetry.value, string) result =
  let int k = Option.value ~default:0 (Json.int_member k j) in
  match Json.str_member "k" j with
  | Some "c" -> Ok (Obs.Telemetry.V_counter (int "v"))
  | Some "g" -> Ok (Obs.Telemetry.V_gauge (int "v"))
  | Some "h" ->
    Ok
      (Obs.Telemetry.V_histogram
         { Obs.Telemetry.hs_count = int "count";
           hs_sum = int "sum";
           hs_max = int "max";
           hs_buckets =
             (match Json.member "buckets" j with
              | Some (Json.Arr vs) ->
                List.filter_map
                  (function
                    | Json.Arr [ Json.Num lo; Json.Num n ] ->
                      Some (int_of_float lo, int_of_float n)
                    | _ -> None)
                  vs
              | _ -> []) })
  | Some other -> Error (Printf.sprintf "metrics: unknown kind %S" other)
  | None -> Error "metrics: missing kind"

let metrics_json kvs =
  Json.Arr
    (List.map
       (fun (name, v) ->
         Json.Obj [ ("n", Json.Str name); ("v", value_json v) ])
       kvs)

let metrics_of_json j : ((string * Obs.Telemetry.value) list, string) result
    =
  match j with
  | Json.Arr items ->
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun acc ->
            match Json.str_member "n" item, Json.member "v" item with
            | Some name, Some vj ->
              Result.map (fun v -> (name, v) :: acc) (value_of_json vj)
            | _ -> Error "metrics: entry missing n or v"))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "metrics: expected array"

let msg_json = function
  | Job rq -> Json.Obj [ ("t", Json.Str "job"); ("rq", request_json rq) ]
  | Result r ->
    Json.Obj [ ("t", Json.Str "result"); ("rp", response_json r) ]
  | Drain -> Json.Obj [ ("t", Json.Str "drain") ]
  | Health h ->
    Json.Obj [ ("t", Json.Str "health"); ("h", health_json h) ]
  | Health_req -> Json.Obj [ ("t", Json.Str "health_req") ]
  | Metrics_req -> Json.Obj [ ("t", Json.Str "metrics_req") ]
  | Metrics kvs ->
    Json.Obj [ ("t", Json.Str "metrics"); ("m", metrics_json kvs) ]
  | Dump_req -> Json.Obj [ ("t", Json.Str "dump_req") ]
  | Dump trace -> Json.Obj [ ("t", Json.Str "dump"); ("d", Json.Str trace) ]
  | Log_line line ->
    Json.Obj [ ("t", Json.Str "log"); ("l", Json.Str line) ]

let msg_of_json j : (msg, string) result =
  let field k =
    match Json.member k j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "frame: missing %S" k)
  in
  match Json.str_member "t" j with
  | Some "job" ->
    Result.bind (field "rq") (fun rq ->
      Result.map (fun r -> Job r) (Service.request_of_json rq))
  | Some "result" ->
    Result.bind (field "rp") (fun rp ->
      Result.map (fun r -> Result r) (response_of_json rp))
  | Some "drain" -> Ok Drain
  | Some "health" ->
    Result.bind (field "h") (fun h ->
      Result.map (fun h -> Health h) (health_of_json h))
  | Some "health_req" -> Ok Health_req
  | Some "metrics_req" -> Ok Metrics_req
  | Some "metrics" ->
    Result.bind (field "m") (fun m ->
      Result.map (fun kvs -> Metrics kvs) (metrics_of_json m))
  | Some "dump_req" -> Ok Dump_req
  | Some "dump" ->
    (match Json.str_member "d" j with
     | Some trace -> Ok (Dump trace)
     | None -> Error "dump: missing d")
  | Some "log" ->
    (match Json.str_member "l" j with
     | Some line -> Ok (Log_line line)
     | None -> Error "log: missing l")
  | Some other -> Error (Printf.sprintf "frame: unknown type %S" other)
  | None -> Error "frame: missing type"

(* ------------------------------------------------------------------ *)
(* Framing                                                            *)
(* ------------------------------------------------------------------ *)

let write fd m =
  let payload = Json.to_string (msg_json m) in
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Io.write_all fd (Bytes.unsafe_to_string b)

type reader = {
  r_fd : Unix.file_descr;
  r_buf : Buffer.t;
  r_chunk : bytes;
  mutable r_eof : bool;
}

let reader fd =
  { r_fd = fd; r_buf = Buffer.create 4096;
    r_chunk = Bytes.create 65536; r_eof = false }

(* Decode one complete frame from the front of the buffer, if present. *)
let take_frame r =
  let s = Buffer.contents r.r_buf in
  let len = String.length s in
  if len < 4 then None
  else begin
    let n =
      (Char.code s.[0] lsl 24)
      lor (Char.code s.[1] lsl 16)
      lor (Char.code s.[2] lsl 8)
      lor Char.code s.[3]
    in
    if n > max_frame then Some (Error "frame too large")
    else if len < 4 + n then None
    else begin
      let payload = String.sub s 4 n in
      Buffer.clear r.r_buf;
      Buffer.add_substring r.r_buf s (4 + n) (len - 4 - n);
      match Json.parse payload with
      | Error e -> Some (Error ("frame: " ^ e))
      | Ok j -> Some (msg_of_json j)
    end
  end

(** Non-blocking read: [`Msg m] when a complete frame is buffered or
    readable right now, [`Eof] once the peer is gone and the buffer holds
    no complete frame (trailing bytes of a torn frame are dropped),
    [`Error] on a malformed or oversized frame — the peer is babbling and
    the caller should treat the channel as dead. *)
let rec read_nonblock r =
  match take_frame r with
  | Some (Ok m) -> `Msg m
  | Some (Error e) -> `Error e
  | None ->
    if r.r_eof then `Eof
    else begin
      match Io.select [ r.r_fd ] [] [] 0.0 with
      | [], _, _ -> `Pending
      | _ ->
        (match Io.read r.r_fd r.r_chunk 0 (Bytes.length r.r_chunk) with
         | 0 -> r.r_eof <- true
         | n -> Buffer.add_subbytes r.r_buf r.r_chunk 0 n
         | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
           r.r_eof <- true);
        read_nonblock r
    end

(** Blocking read for the worker loop: waits until a frame, EOF or a
    protocol error. *)
let rec read_block r =
  match read_nonblock r with
  | (`Msg _ | `Eof | `Error _) as v -> v
  | `Pending ->
    ignore (Io.select [ r.r_fd ] [] [] 0.5);
    read_block r
