(** Pipeline-wide observability: span tracing, a metrics registry,
    instant events, and a bounded always-on flight recorder.

    Spans and instants are recorded into {e per-domain} buffers and
    exported as Chrome trace-event JSON; counters, gauges and log2
    histograms live in a global registry snapshotted by {!metrics} and
    rendered live by {!Export}.

    {2 Disabled fast path}

    Telemetry is globally off by default. Every probe — {!with_span},
    {!instant}, {!incr}, {!add}, {!set}, {!observe} — begins with a
    single [Atomic.get] of the recording flag and returns immediately
    when it is false: no allocation, no syscall, no lock. ({!instant}
    additionally performs one atomic load for the {!Log} sink.) The
    overhead guard in [test/test_telemetry.ml] fails if the estimated
    full-pipeline overhead of the disabled probes exceeds 2%.

    Recording is on when {e either} full tracing ({!enable}) or the
    flight recorder ({!arm_flight}) is active; only {!enabled} — i.e.
    full tracing — implies unbounded buffers and exit-time trace files.

    {2 Which functions are safe from worker domains}

    {b Safe from any domain, any time}: all probes ({!with_span},
    {!phase}, {!instant}, {!timed}), all metric creation and updates
    ({!counter}, {!gauge}, {!histogram}, {!incr}, {!add}, {!set},
    {!observe}), {!metrics} / {!find_value} / {!snapshot_quantile}
    reads (single atomic loads per cell), and the flight-recorder dump
    ({!flight_events}, {!flight_json}, {!write_flight}) — the latter
    reads other domains' buffers racily, which under the OCaml 5 memory
    model yields a valid (possibly slightly stale) snapshot, never a
    torn one.

    {b Main domain after joins only}: {!events}, {!trace_json},
    {!write_trace} and {!reset} assume no domain is concurrently
    recording; the pipeline only drains full traces after its parallel
    stages have joined. *)

(** {1 Enabling} *)

val enabled : unit -> bool
(** Whether {e full} tracing is on (unbounded buffers, exit-time
    exports). False when only the flight recorder is armed. *)

val enable : unit -> unit
val disable : unit -> unit

val arm_flight : int -> unit
(** [arm_flight cap] turns recording on with bounded per-domain ring
    buffers: each domain keeps (roughly) its most recent [cap] events —
    the list is trimmed back to [cap] whenever it reaches [2*cap], so
    the amortized cost per event stays O(1). [arm_flight 0] disarms.
    Full tracing, when also on, takes precedence over the bound. *)

val flight_armed : unit -> bool

(** {1 Clock} *)

val now : unit -> float
(** Wall-clock seconds (the one clock of the repository). *)

val epoch : float
val us_of : float -> float

val timed : (unit -> 'a) -> 'a * float
(** [timed f] is [(f (), wall-clock seconds f took)] — always measured,
    telemetry enabled or not. *)

(** {1 Spans and instants} *)

type phase_kind = Span | Instant

type event = {
  ev_name : string;
  ev_kind : phase_kind;
  ev_ts : float;                       (* µs since [epoch] *)
  ev_dur : float;                      (* µs; 0 for instants *)
  ev_tid : int;                        (* recording domain's id *)
  ev_args : (string * string) list;
}

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the closure under a complete span on the current domain's
    track; the span is recorded even when the closure raises. *)

val phase :
  ?args:(string * string) list -> string -> (unit -> 'a) -> 'a * float
(** {!timed} + {!with_span}: duration always measured, span recorded
    only when recording is on. *)

val instant : ?args:(string * string) list -> string -> unit
(** Mark a point in time on the current domain's track. Also routes
    through {!Log.emit_instant} whenever a log sink is installed,
    independently of tracing. *)

(** {1 Metrics registry} *)

type counter
type gauge
type histogram
(** log2 buckets: bucket [i] counts observations [v] with
    [2^(i-1) <= v < 2^i]; bucket 0 counts [v <= 0]. *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram
(** Idempotent per name; raises [Invalid_argument] if the name is
    already registered with a different kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> int -> unit
val observe : histogram -> int -> unit

val counter_value : counter -> int
val gauge_value : gauge -> int

type histogram_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_max : int;
  hs_buckets : (int * int) list;       (* bucket lower bound, count *)
}

val histogram_snapshot : histogram -> histogram_snapshot

val snapshot_quantile : histogram_snapshot -> float -> int
(** [snapshot_quantile s q] estimates the [q]-quantile ([0 <= q <= 1]):
    the upper bound of the bucket holding the q-th observation, capped
    at the observed maximum. Good to within a factor of two. *)

type value =
  | V_counter of int
  | V_gauge of int
  | V_histogram of histogram_snapshot

val metrics : unit -> (string * value) list
(** Snapshot of every registered metric, sorted by name. *)

val find_value : string -> value option

val reset : unit -> unit
(** Zero every metric and drop every recorded event; registrations and
    the enabled/armed flags are untouched. Main domain, after joins. *)

(** {1 Export: Chrome trace JSON} *)

val events : unit -> event list
(** All recorded events, oldest first. Main domain, after joins. *)

val trace_json : unit -> string
val write_trace : string -> unit

val flight_events : unit -> event list
(** The most recent events, capped per domain at the flight cap —
    readable {e while} other domains are recording (racy-read
    snapshot); oldest first. *)

val flight_json : unit -> string
(** Chrome-trace document of the flight ring — same shape as
    {!trace_json}, so the cluster's pid-lane splicing applies. *)

val write_flight : string -> unit

(** {1 Export: metrics} *)

val pp_metrics : Format.formatter -> unit -> unit
(** Human-readable metrics table (the [--metrics] stderr report);
    histogram rows include p50/p95/p99. *)

val metrics_json : unit -> string

val json_escape : string -> string
