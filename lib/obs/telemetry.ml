(** Pipeline-wide observability: span tracing, a metrics registry, and
    instant events for the resilience layer.

    The evaluation of the source paper (Tables 1-3, Figure 4) is an
    argument about *where* analysis time and budget go — call-graph
    growth under the node budget, hybrid-slice tabulation, heap-transition
    caps. This module gives every pipeline phase a first-class account of
    that: nested wall-clock {e spans} exported as Chrome trace-event JSON
    (load the file at chrome://tracing or ui.perfetto.dev), {e counters /
    gauges / histograms} for the quantities the bounded-analysis machinery
    reasons about, and {e instant events} marking budget trips,
    degradation-ladder steps and injected faults on the same timeline.

    {2 Cost model}

    Telemetry is globally off by default. Every probe — [with_span],
    [instant], [incr], [observe] — begins with a single [Atomic.get] of
    the enabled flag and returns immediately when it is false: no
    allocation, no syscall, no lock. The overhead guard in
    [test/test_telemetry.ml] measures this fast path against a real
    analysis run and fails if the estimated full-pipeline overhead of the
    disabled probes exceeds 2%.

    {2 Multicore safety}

    Span and instant events are recorded into a {e per-domain} buffer
    (domain-local storage), so worker domains of [Core.Parallel] never
    contend or interleave; each domain's events form its own track in the
    trace ([tid] = domain id). Buffers register themselves in a global
    list at first use and survive their domain's death, so events from
    short-lived workers are still present when the main domain drains the
    trace after the joins. Metric updates are single atomic RMW
    operations on shared cells; sums are therefore order-independent and
    a deterministic parallel stage produces byte-identical counter values
    at any [jobs] (memo hit/miss counters excepted — worker domains keep
    private memos by design).

    Draining ([events], [trace_json], [metrics]) and [reset] must not run
    concurrently with recording; the pipeline only drains after its
    parallel stages have joined. *)

(* ------------------------------------------------------------------ *)
(* Enabled flag                                                       *)
(* ------------------------------------------------------------------ *)

(* [on] is the recording fast-path flag probes test; it is true when
   either full tracing ([enable]) or the bounded flight recorder
   ([arm_flight]) is active. [full] distinguishes the two: only full
   tracing keeps unbounded buffers and triggers end-of-run trace files. *)
let on = Atomic.make false
let full = Atomic.make false
let flight_cap = Atomic.make 0

let enabled () = Atomic.get full

let enable () =
  Atomic.set full true;
  Atomic.set on true

let disable () =
  Atomic.set full false;
  Atomic.set on (Atomic.get flight_cap > 0)

(** Arm the always-on flight recorder: per-domain event buffers become
    rings keeping (roughly) the most recent [cap] events each, and
    metric updates go live, without the unbounded growth or exit-time
    exports of [enable]. [arm_flight 0] disarms. Full tracing takes
    precedence over the ring bound when both are on. *)
let arm_flight cap =
  let cap = max 0 cap in
  Atomic.set flight_cap cap;
  Atomic.set on (cap > 0 || Atomic.get full)

let flight_armed () = Atomic.get flight_cap > 0

(* ------------------------------------------------------------------ *)
(* Clock                                                              *)
(* ------------------------------------------------------------------ *)

(* Wall clock, as everywhere else in the pipeline: deadlines are
   wall-clock by definition and Table 3 reports elapsed time. The epoch
   makes trace timestamps small and stable within one process. *)
let now = Unix.gettimeofday
let epoch = now ()
let us_of t = (t -. epoch) *. 1e6

(** [timed f] is [(f (), wall-clock seconds f took)]. This is the one
    phase timer of the repository — the CLI, the bench harness and
    [Core.Taj] all report durations measured here, telemetry enabled or
    not. *)
let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* ------------------------------------------------------------------ *)
(* Event buffers (one per domain)                                     *)
(* ------------------------------------------------------------------ *)

type phase_kind = Span | Instant

type event = {
  ev_name : string;
  ev_kind : phase_kind;
  ev_ts : float;                       (* µs since [epoch] *)
  ev_dur : float;                      (* µs; 0 for instants *)
  ev_tid : int;                        (* recording domain's id *)
  ev_args : (string * string) list;
}

type buffer = {
  bf_tid : int;
  mutable bf_events : event list;
  mutable bf_count : int;
}

let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* The DLS initializer runs in the recording domain on its first probe;
   the buffer outlives the domain via [registry], so worker events are
   still drainable after the pool joins. *)
let buf_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
    let b = { bf_tid = (Domain.self () :> int); bf_events = []; bf_count = 0 } in
    locked registry_lock (fun () -> registry := b :: !registry);
    b)

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

(* Flight-recorder bound: when armed without full tracing, trim the
   (newest-first) list back to [cap] once it doubles — amortized O(1)
   per event, and each domain always retains its last [cap..2*cap]
   events for post-incident dumps. *)
let record ev =
  let b = Domain.DLS.get buf_key in
  b.bf_events <- ev :: b.bf_events;
  b.bf_count <- b.bf_count + 1;
  if not (Atomic.get full) then begin
    let cap = Atomic.get flight_cap in
    if cap > 0 && b.bf_count > 2 * cap then begin
      b.bf_events <- take cap b.bf_events;
      b.bf_count <- cap
    end
  end

(** All recorded events, oldest first. *)
let events () =
  locked registry_lock (fun () ->
    List.concat_map (fun b -> b.bf_events) !registry)
  |> List.sort (fun a b -> compare (a.ev_ts, a.ev_dur) (b.ev_ts, b.ev_dur))

(* ------------------------------------------------------------------ *)
(* Spans and instants                                                 *)
(* ------------------------------------------------------------------ *)

(** [with_span name f] runs [f] and, when telemetry is enabled, records a
    complete span covering it on the current domain's track. The span is
    recorded even when [f] raises (the balance invariant the tests check:
    a fault mid-phase still leaves a well-formed trace). *)
let with_span ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now () in
        record
          { ev_name = name; ev_kind = Span; ev_ts = us_of t0;
            ev_dur = (t1 -. t0) *. 1e6;
            ev_tid = (Domain.self () :> int); ev_args = args })
      f
  end

(** [phase name f] is [timed] + [with_span]: the duration is always
    measured (phase breakdowns are reported even without [--trace]); the
    span is recorded only when enabled. Raising [f] still records. *)
let phase ?args name f =
  let dt = ref 0.0 in
  let r = with_span ?args name (fun () ->
      let r, d = timed f in
      dt := d;
      r)
  in
  (r, !dt)

(** Mark a point in time on the current domain's track (budget trip,
    ladder step, injected fault, ...). Instants also route through
    {!Log.emit_instant}, so a live NDJSON stream of them exists whenever
    a log sink is installed — independently of tracing being on. *)
let instant ?(args = []) name =
  if Atomic.get on then
    record
      { ev_name = name; ev_kind = Instant; ev_ts = us_of (now ());
        ev_dur = 0.0; ev_tid = (Domain.self () :> int); ev_args = args };
  Log.emit_instant name args

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                   *)
(* ------------------------------------------------------------------ *)

type counter = { c_name : string; c_v : int Atomic.t }
type gauge = { g_name : string; g_v : int Atomic.t }

(* log2 buckets: bucket i counts observations v with 2^(i-1) <= v < 2^i
   (bucket 0 counts v <= 0). 32 buckets cover every practical count. *)
let n_buckets = 32

type histogram = {
  h_name : string;
  h_buckets : int Atomic.t array;
  h_count : int Atomic.t;
  h_sum : int Atomic.t;
  h_max : int Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let metrics_tbl : (string, metric) Hashtbl.t = Hashtbl.create 64
let metrics_lock = Mutex.create ()

(* Metrics are created once, at module initialization of their
   instrumentation site; the lock only guards creation, never updates. *)
let register name make cast =
  locked metrics_lock (fun () ->
    match Hashtbl.find_opt metrics_tbl name with
    | Some m ->
      (match cast m with
       | Some v -> v
       | None ->
         invalid_arg
           (Printf.sprintf "Telemetry: metric %s exists with another kind"
              name))
    | None ->
      let v = make () in
      Hashtbl.replace metrics_tbl name v;
      match cast v with Some v -> v | None -> assert false)

let counter name =
  register name
    (fun () -> Counter { c_name = name; c_v = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> Gauge { g_name = name; g_v = Atomic.make 0 })
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      Histogram
        { h_name = name;
          h_buckets = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0;
          h_max = Atomic.make 0 })
    (function Histogram h -> Some h | _ -> None)

(* All updates share the one-atomic-load disabled fast path. *)

let incr c = if Atomic.get on then Atomic.incr c.c_v
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.c_v n)
let set g v = if Atomic.get on then Atomic.set g.g_v v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then
    atomic_max cell v

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      Stdlib.incr b;
      x := !x lsr 1
    done;
    min (n_buckets - 1) !b
  end

let observe h v =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_of v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    ignore (Atomic.fetch_and_add h.h_sum v);
    atomic_max h.h_max v
  end

let counter_value c = Atomic.get c.c_v
let gauge_value g = Atomic.get g.g_v

type histogram_snapshot = {
  hs_count : int;
  hs_sum : int;
  hs_max : int;
  hs_buckets : (int * int) list;       (* bucket lower bound, count *)
}

let histogram_snapshot h =
  { hs_count = Atomic.get h.h_count;
    hs_sum = Atomic.get h.h_sum;
    hs_max = Atomic.get h.h_max;
    hs_buckets =
      List.filter
        (fun (_, n) -> n > 0)
        (List.init n_buckets (fun i ->
             ((if i = 0 then 0 else 1 lsl (i - 1)), Atomic.get h.h_buckets.(i)))) }

(** [snapshot_quantile s q] estimates the [q]-quantile (0 <= q <= 1) of a
    log2-bucketed snapshot: the upper bound of the bucket holding the
    q-th observation, capped at the observed maximum. Good to within a
    factor of two — enough for the serving layer's latency percentiles. *)
let snapshot_quantile (s : histogram_snapshot) q =
  if s.hs_count = 0 then 0
  else begin
    let rank =
      max 1 (int_of_float (ceil (q *. float_of_int s.hs_count)))
    in
    let rec walk seen = function
      | [] -> s.hs_max
      | (lo, n) :: rest ->
        if seen + n >= rank then
          (if lo = 0 then 0 else min s.hs_max ((2 * lo) - 1))
        else walk (seen + n) rest
    in
    walk 0 s.hs_buckets
  end

type value =
  | V_counter of int
  | V_gauge of int
  | V_histogram of histogram_snapshot

(** Snapshot of every registered metric, sorted by name. *)
let metrics () =
  locked metrics_lock (fun () ->
    Hashtbl.fold (fun _ m acc -> m :: acc) metrics_tbl [])
  |> List.map (fun m ->
      ( metric_name m,
        match m with
        | Counter c -> V_counter (counter_value c)
        | Gauge g -> V_gauge (gauge_value g)
        | Histogram h -> V_histogram (histogram_snapshot h) ))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(** Value of a metric by name, for tests and assertions. *)
let find_value name =
  List.assoc_opt name (metrics ())

(** Zero every metric and drop every recorded event. Buffers stay
    registered (live domains keep appending to theirs); the enabled flag
    is untouched. *)
let reset () =
  locked registry_lock (fun () ->
    List.iter
      (fun b ->
        b.bf_events <- [];
        b.bf_count <- 0)
      !registry);
  locked metrics_lock (fun () ->
    Hashtbl.iter
      (fun _ m ->
         match m with
         | Counter c -> Atomic.set c.c_v 0
         | Gauge g -> Atomic.set g.g_v 0
         | Histogram h ->
           Array.iter (fun b -> Atomic.set b 0) h.h_buckets;
           Atomic.set h.h_count 0;
           Atomic.set h.h_sum 0;
           Atomic.set h.h_max 0)
      metrics_tbl)

(* ------------------------------------------------------------------ *)
(* Export: Chrome trace JSON                                          *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
            Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         args)
  ^ "}"

let event_json ev =
  match ev.ev_kind with
  | Span ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"pid\":1,\
       \"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}"
      (json_escape ev.ev_name) ev.ev_tid ev.ev_ts ev.ev_dur
      (args_json ev.ev_args)
  | Instant ->
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
       \"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":%s}"
      (json_escape ev.ev_name) ev.ev_tid ev.ev_ts (args_json ev.ev_args)

(** The recorded events as a Chrome trace-event JSON document (the
    [chrome://tracing] / Perfetto format): one [pid], one [tid] track per
    domain, spans as complete ("X") events, instants as "i" events. *)
let trace_json () =
  let evs = events () in
  let tids =
    List.sort_uniq compare (List.map (fun ev -> ev.ev_tid) evs)
  in
  let meta =
    Printf.sprintf
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
       \"args\":{\"name\":\"taj\"}}"
    :: List.map
         (fun tid ->
            Printf.sprintf
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
               \"args\":{\"name\":\"domain-%d\"}}"
              tid tid)
         tids
  in
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
  ^ String.concat ",\n" (meta @ List.map event_json evs)
  ^ "\n]}\n"

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (trace_json ()))

(* ------------------------------------------------------------------ *)
(* Flight recorder dump                                               *)
(* ------------------------------------------------------------------ *)

(* The most recent events, capped per domain at the flight cap. Unlike
   [events] this is meant to run while other domains are still
   recording: [bf_events] is read racily, which under the OCaml 5
   memory model yields some previously written (fully initialized,
   immutable) list — a valid, possibly slightly stale snapshot. The
   registry itself is read under its lock. *)
let flight_events () =
  let cap =
    match Atomic.get flight_cap with 0 -> max_int | c -> c
  in
  let bufs = locked registry_lock (fun () -> !registry) in
  List.concat_map (fun b -> take cap b.bf_events) bufs
  |> List.sort (fun a b -> compare (a.ev_ts, a.ev_dur) (b.ev_ts, b.ev_dur))

(* Chrome-trace document of the flight ring; same shape as
   [trace_json] so the two open in the same viewers and the cluster's
   pid-splicing applies unchanged. *)
let flight_json () =
  let evs = flight_events () in
  let tids =
    List.sort_uniq compare (List.map (fun ev -> ev.ev_tid) evs)
  in
  let meta =
    Printf.sprintf
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
       \"args\":{\"name\":\"taj flight\"}}"
    :: List.map
         (fun tid ->
            Printf.sprintf
              "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
               \"args\":{\"name\":\"domain-%d\"}}"
              tid tid)
         tids
  in
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
  ^ String.concat ",\n" (meta @ List.map event_json evs)
  ^ "\n]}\n"

let write_flight path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (flight_json ()))

(* ------------------------------------------------------------------ *)
(* Export: metrics                                                    *)
(* ------------------------------------------------------------------ *)

(** Human-readable metrics table (the [--metrics] stderr report). *)
let pp_metrics ppf () =
  let pp_one (name, v) =
    match v with
    | V_counter n -> Format.fprintf ppf "%-38s %12d@," name n
    | V_gauge n -> Format.fprintf ppf "%-38s %12d  (gauge)@," name n
    | V_histogram h ->
      Format.fprintf ppf
        "%-38s %12d  (sum %d, max %d, mean %.1f, p50 %d, p95 %d, p99 %d)@,"
        name h.hs_count h.hs_sum h.hs_max
        (if h.hs_count = 0 then 0.0
         else float_of_int h.hs_sum /. float_of_int h.hs_count)
        (snapshot_quantile h 0.50) (snapshot_quantile h 0.95)
        (snapshot_quantile h 0.99)
  in
  Format.fprintf ppf "@[<v>";
  List.iter pp_one (metrics ());
  Format.fprintf ppf "@]"

(** The metrics snapshot as a JSON object string (the machine-readable
    block embedded in the CLI's [--json] report). *)
let metrics_json () =
  let field (name, v) =
    match v with
    | V_counter n -> Printf.sprintf "    \"%s\": %d" (json_escape name) n
    | V_gauge n -> Printf.sprintf "    \"%s\": %d" (json_escape name) n
    | V_histogram h ->
      Printf.sprintf
        "    \"%s\": { \"count\": %d, \"sum\": %d, \"max\": %d, \
         \"buckets\": [%s] }"
        (json_escape name) h.hs_count h.hs_sum h.hs_max
        (String.concat ", "
           (List.map
              (fun (lo, n) -> Printf.sprintf "[%d, %d]" lo n)
              h.hs_buckets))
  in
  "{\n" ^ String.concat ",\n" (List.map field (metrics ())) ^ "\n  }"
