(** Leveled structured event log (NDJSON, one object per line).

    Each line carries a monotonic [seq] (atomic counter, so merged
    streams from several domains stay ordered per process), a wall-clock
    [ts], a [level], the [event] name, sticky context fields (see
    {!set_context}) and per-call fields. {!Core.Diagnostics.record} and
    {!Telemetry.instant} route through {!emit_instant}, so enabling a
    sink is enough to get a live event stream out of the serving stack.

    {b Disabled fast path}: with no sink installed every emit function
    is a single atomic load and return, so leaving log calls in hot
    paths is free. All functions are safe to call from any domain; line
    writes are serialized under an internal mutex. In cluster mode a
    worker process replaces the file sink with a pipe forwarder
    ({!set_sink}) and the coordinator writes forwarded lines verbatim
    with {!raw}, yielding one merged stream. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_name : string -> level option

val set_level : level -> unit
(** Minimum level written to the sink; defaults to [Info]. *)

val set_sink : (string -> unit) option -> unit
(** Install a custom sink receiving rendered NDJSON lines (without the
    trailing newline). [None] disables logging. Closes any file sink
    previously installed with {!open_file}. *)

val open_file : string -> unit
(** Open [path] in append mode and install it as the sink. Each line is
    emitted as a single [write] so concurrent processes appending to the
    same file do not interleave within a line. *)

val close : unit -> unit
(** Close the current sink (if a file) and disable logging. *)

val set_context : (string * string) list -> unit
(** Sticky fields added to every subsequent line, e.g.
    [[("proc", "worker-1")]] in a cluster worker. *)

val enabled : unit -> bool
val active : level -> bool
(** [active l] is true when a sink is installed and [l] passes the
    level filter — use to skip expensive field construction. *)

val log : ?level:level -> ?fields:(string * string) list -> string -> unit
(** [log ~level ~fields event] renders and writes one NDJSON line.
    Default level is [Info]. Fields named [seq]/[ts]/[level]/[event]
    are reserved and skipped. *)

val raw : string -> unit
(** Write a pre-rendered line verbatim (cluster log forwarding). *)

val emit_instant : string -> (string * string) list -> unit
(** Hook used by {!Telemetry.instant}: level is inferred from the event
    name ([diag.*] → warn; [serve.*]/[cluster.*]/[obs.*] → info;
    otherwise debug). No-op (one atomic load) when no sink is set. *)

val level_of_event : string -> level

val json_escape : string -> string
