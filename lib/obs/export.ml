(* Live renderings of the Telemetry registry: Prometheus text
   exposition and one-line JSON for the admin socket, plus the metric
   merge used by the cluster coordinator to aggregate per-worker
   snapshots. *)

let quantile_levels = [ ("p50", 0.50); ("p95", 0.95); ("p99", 0.99) ]

(* Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. The registry uses
   dotted names; map every other character to '_' and prefix the
   exporter namespace. *)
let metric_name name =
  let b = Bytes.of_string ("taj_" ^ name) in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ()
      | _ -> Bytes.set b i '_')
    b;
  Bytes.to_string b

(* Cumulative le-buckets from the sparse log2 snapshot. Bucket with
   lower bound [lo] covers values up to [2*lo - 1] inclusive (bucket 0
   covers v <= 0), so those are the le bounds. *)
let histogram_lines pname (h : Telemetry.histogram_snapshot) =
  let buf = Buffer.create 256 in
  let cum = ref 0 in
  List.iter
    (fun (lo, n) ->
      cum := !cum + n;
      let le = if lo = 0 then "0" else string_of_int ((2 * lo) - 1) in
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname le !cum))
    h.Telemetry.hs_buckets;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname h.Telemetry.hs_count);
  Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" pname h.Telemetry.hs_sum);
  Buffer.add_string buf
    (Printf.sprintf "%s_count %d\n" pname h.Telemetry.hs_count);
  Buffer.contents buf

(** Render a metrics snapshot as Prometheus text exposition. Histogram
    quantile estimates are emitted as companion gauges ([name_p50] ...)
    since the classic exposition format has no quantile series on
    histogram type. The output ends with a ["# EOF"] line (OpenMetrics
    terminator), which the admin socket also uses as the end-of-reply
    marker. *)
let prometheus_of snapshot =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let pname = metric_name name in
      match v with
      | Telemetry.V_counter n ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" pname);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" pname n)
      | Telemetry.V_gauge n ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" pname);
        Buffer.add_string buf (Printf.sprintf "%s %d\n" pname n)
      | Telemetry.V_histogram h ->
        Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" pname);
        Buffer.add_string buf (histogram_lines pname h);
        List.iter
          (fun (label, q) ->
            Buffer.add_string buf
              (Printf.sprintf "# TYPE %s_%s gauge\n%s_%s %d\n" pname label
                 pname label
                 (Telemetry.snapshot_quantile h q)))
          quantile_levels)
    snapshot;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let prometheus () = prometheus_of (Telemetry.metrics ())

(** One-line JSON object of a metrics snapshot: counters and gauges as
    numbers, histograms as objects with count/sum/max/quantiles and the
    sparse log2 buckets. Suitable as an NDJSON admin reply. *)
let json_of snapshot =
  let field (name, v) =
    let key = Printf.sprintf "\"%s\"" (Telemetry.json_escape name) in
    match v with
    | Telemetry.V_counter n | Telemetry.V_gauge n ->
      Printf.sprintf "%s:%d" key n
    | Telemetry.V_histogram h ->
      Printf.sprintf
        "%s:{\"count\":%d,\"sum\":%d,\"max\":%d,%s,\"buckets\":[%s]}" key
        h.Telemetry.hs_count h.Telemetry.hs_sum h.Telemetry.hs_max
        (String.concat ","
           (List.map
              (fun (label, q) ->
                Printf.sprintf "\"%s\":%d" label
                  (Telemetry.snapshot_quantile h q))
              quantile_levels))
        (String.concat ","
           (List.map
              (fun (lo, n) -> Printf.sprintf "[%d,%d]" lo n)
              h.Telemetry.hs_buckets))
  in
  "{" ^ String.concat "," (List.map field snapshot) ^ "}"

let json () = json_of (Telemetry.metrics ())

(* ------------------------------------------------------------------ *)
(* Aggregation                                                        *)
(* ------------------------------------------------------------------ *)

let merge_hist (a : Telemetry.histogram_snapshot)
    (b : Telemetry.histogram_snapshot) =
  let tbl = Hashtbl.create 16 in
  let feed (lo, n) =
    Hashtbl.replace tbl lo (n + Option.value ~default:0 (Hashtbl.find_opt tbl lo))
  in
  List.iter feed a.Telemetry.hs_buckets;
  List.iter feed b.Telemetry.hs_buckets;
  {
    Telemetry.hs_count = a.Telemetry.hs_count + b.Telemetry.hs_count;
    hs_sum = a.Telemetry.hs_sum + b.Telemetry.hs_sum;
    hs_max = max a.Telemetry.hs_max b.Telemetry.hs_max;
    hs_buckets =
      Hashtbl.fold (fun lo n acc -> (lo, n) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

(** Merge metric snapshots from several processes into one: counters
    and gauges sum, histograms merge bucket-wise (counts and sums add,
    max of maxes). A name present with different kinds keeps the first
    kind seen and drops conflicting entries — snapshots from homogeneous
    workers never hit that case. *)
let merge snapshots =
  let tbl : (string, Telemetry.value) Hashtbl.t = Hashtbl.create 64 in
  let feed (name, v) =
    match (Hashtbl.find_opt tbl name, v) with
    | None, v -> Hashtbl.replace tbl name v
    | Some (Telemetry.V_counter a), Telemetry.V_counter b ->
      Hashtbl.replace tbl name (Telemetry.V_counter (a + b))
    | Some (Telemetry.V_gauge a), Telemetry.V_gauge b ->
      Hashtbl.replace tbl name (Telemetry.V_gauge (a + b))
    | Some (Telemetry.V_histogram a), Telemetry.V_histogram b ->
      Hashtbl.replace tbl name (Telemetry.V_histogram (merge_hist a b))
    | Some _, _ -> ()
  in
  List.iter (List.iter feed) snapshots;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Exact sample percentiles                                           *)
(* ------------------------------------------------------------------ *)

(** [percentile samples q] is the exact [q]-percentile (nearest-rank) of
    an unsorted array of samples; 0.0 on an empty array. Used by the
    bench harness where raw latency samples are available, versus the
    log2-bucket estimates used everywhere else. *)
let percentile samples q =
  let n = Array.length samples in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy samples in
    Array.sort compare sorted;
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end
