(** Live exports of the {!Telemetry} registry for the admin channel:
    Prometheus text exposition, one-line JSON, cross-process merging,
    and exact sample percentiles.

    All functions here only {e read} metric cells (single atomic loads),
    so they are safe to call while worker domains are recording. *)

val quantile_levels : (string * float) list
(** [("p50", 0.50); ("p95", 0.95); ("p99", 0.99)] — the quantiles
    surfaced on every histogram export. *)

val metric_name : string -> string
(** Prometheus-sanitized name: [taj_] prefix, every character outside
    [[a-zA-Z0-9_]] mapped to ['_']. *)

val prometheus_of : (string * Telemetry.value) list -> string
(** Prometheus text exposition of a snapshot. Log2 histograms become
    cumulative [le]-buckets (bucket with lower bound [lo] has
    [le = 2*lo - 1]); quantile estimates are emitted as companion
    gauges ([name_p50], ...). The output ends with a ["# EOF"] line,
    which the admin socket uses as the end-of-reply marker. *)

val prometheus : unit -> string

val json_of : (string * Telemetry.value) list -> string
(** One-line JSON object: counters/gauges as numbers, histograms as
    [{count, sum, max, p50, p95, p99, buckets}]. *)

val json : unit -> string

val merge :
  (string * Telemetry.value) list list -> (string * Telemetry.value) list
(** Merge snapshots from several processes: counters and gauges sum,
    histograms merge bucket-wise. Sorted by name. *)

val percentile : float array -> float -> float
(** [percentile samples q] — exact nearest-rank percentile of raw
    (unsorted) samples; 0.0 on an empty array. *)
