(* Leveled structured event log: NDJSON lines with monotonic sequence
   numbers, wall-clock timestamps, and sticky per-process context fields.
   The serving layer routes diagnostics and telemetry instants through
   here; cluster workers replace the sink with a pipe forwarder so the
   coordinator owns the single merged stream.

   Fast path: when no sink is installed, [log]/[emit_instant] cost one
   atomic load and return. *)

type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_name = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* [active_flag] mirrors "sink is installed" so the disabled path never
   touches the mutex-guarded state. *)
let active_flag = Atomic.make false
let min_rank = Atomic.make (level_rank Info)
let seq = Atomic.make 0
let lock = Mutex.create ()
let sink : (string -> unit) option ref = ref None
let sink_fd : Unix.file_descr option ref = ref None
let context : (string * string) list ref = ref []

let set_level l = Atomic.set min_rank (level_rank l)
let active l = Atomic.get active_flag && level_rank l >= Atomic.get min_rank
let enabled () = Atomic.get active_flag

let set_context fields =
  Mutex.protect lock (fun () -> context := fields)

let close_fd () =
  match !sink_fd with
  | None -> ()
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    sink_fd := None

let set_sink s =
  Mutex.protect lock (fun () ->
      close_fd ();
      sink := s;
      Atomic.set active_flag (s <> None))

(* Append-mode file sink; each NDJSON line is a single [write] so that
   concurrent processes sharing the fd (O_APPEND) do not interleave. *)
let open_file path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let write line =
    let b = Bytes.of_string (line ^ "\n") in
    let n = Bytes.length b in
    let rec go off =
      if off < n then
        match Unix.write fd b off (n - off) with
        | w -> go (off + w)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    (try go 0 with Unix.Unix_error _ -> ())
  in
  Mutex.protect lock (fun () ->
      close_fd ();
      sink := Some write;
      sink_fd := Some fd;
      Atomic.set active_flag true)

let close () =
  Mutex.protect lock (fun () ->
      close_fd ();
      sink := None;
      Atomic.set active_flag false)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ~level ~fields event =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"seq\":%d,\"ts\":%.6f,\"level\":\"%s\",\"event\":\"%s\""
       (Atomic.fetch_and_add seq 1)
       (Unix.gettimeofday ())
       (level_name level) (json_escape event));
  let add (k, v) =
    (* A field may shadow nothing structural: seq/ts/level/event are
       reserved and skipped to keep lines parseable. *)
    match k with
    | "seq" | "ts" | "level" | "event" -> ()
    | _ ->
      Buffer.add_string buf
        (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v))
  in
  List.iter add !context;
  List.iter add fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* Emit a pre-rendered NDJSON line verbatim (cluster log forwarding:
   workers render locally, the coordinator writes their lines as-is). *)
let raw line =
  if Atomic.get active_flag then
    Mutex.protect lock (fun () ->
        match !sink with None -> () | Some write -> write line)

let log ?(level = Info) ?(fields = []) event =
  if active level then
    Mutex.protect lock (fun () ->
        match !sink with
        | None -> ()
        | Some write -> write (render ~level ~fields event))

(* Telemetry instants funnel through here. Level is inferred from the
   event-name prefix: diagnostics are warnings, serving/cluster
   lifecycle is info, everything else is debug chatter. *)
let level_of_event name =
  if String.length name >= 5 && String.sub name 0 5 = "diag." then Warn
  else if
    (String.length name >= 6 && String.sub name 0 6 = "serve.")
    || (String.length name >= 8 && String.sub name 0 8 = "cluster.")
    || (String.length name >= 4 && String.sub name 0 4 = "obs.")
  then Info
  else Debug

let emit_instant name args =
  if Atomic.get active_flag then begin
    let level = level_of_event name in
    if level_rank level >= Atomic.get min_rank then
      Mutex.protect lock (fun () ->
          match !sink with
          | None -> ()
          | Some write -> write (render ~level ~fields:args name))
  end
