(** Minimal RFC-4180 CSV writing, shared by every exporter that emits
    spreadsheet-ready files (bench csv/incremental/service, the per-rung
    score export). Only quoting and row assembly live here — column
    layout stays with each caller. *)

(** Quote a field iff it needs it: a field containing a comma, double
    quote, CR or LF is wrapped in double quotes with embedded quotes
    doubled (RFC 4180 §2.6–2.7); clean fields pass through byte-for-byte
    so existing numeric columns are unchanged. *)
val field : string -> string

(** Join already-raw fields into one CSV record, quoting each with
    {!field} and terminating with a single ['\n']. *)
val row : string list -> string

(** [write_row oc fields] = [output_string oc (row fields)]. *)
val write_row : out_channel -> string list -> unit
