let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let field s =
  if needs_quoting s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let row fields = String.concat "," (List.map field fields) ^ "\n"

let write_row oc fields = output_string oc (row fields)
