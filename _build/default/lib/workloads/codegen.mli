(** Assembly of complete synthetic benchmark applications: a mix of
    vulnerability patterns plus taint-free "cold mass" that is reachable
    from the entrypoints and consumes call-graph budget (cold servlets sort
    before pattern servlets, so FIFO constraint adding drowns in them —
    the situation §6.1's priority heuristic survives). *)

type spec = {
  sp_name : string;
  sp_patterns : (string * int) list;     (** kind -> instance count *)
  sp_cold_classes : int;
  sp_cold_chain : int;                   (** methods per cold class *)
}

type generated = {
  g_spec : spec;
  g_sources : string list;
  g_descriptor : string;
  g_truth : Ground_truth.t;
}

(** Draw [n] pattern kinds from the weighted catalog. *)
val draw_mix : rng:Rng.t -> n:int -> (string * int) list

val generate : spec -> generated

(** Line count of the generated sources (Table 2 reproduction). *)
val line_count : generated -> int

val to_input : generated -> Core.Taj.input
