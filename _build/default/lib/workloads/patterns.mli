(** Vulnerability-pattern generators for synthetic benchmark applications.
    Sinks are routed through dedicated wrapper methods ([emitR*] for real
    flows, [emitF*] for spurious ones). The catalog includes imprecision
    traps that separate the five algorithm configurations: shared-helper
    merges (CI), shared-allocation-site heap merges (hybrid),
    virtual-dispatch over-approximation (all), cross-thread flows (CS false
    negatives), and over-long or over-deep flows (the optimized bounds). *)

type output = {
  source : string;
  descriptor_lines : string list;
  planted : Ground_truth.planted list;
}

type gen = id:int -> rng:Rng.t -> output

val direct : gen
val sanitized : gen
val ci_merge : gen
val heap_merge : gen
val poly_fp : gen
val container : gen
val dict : gen
val carrier : gen
val deep_carrier : gen
val reflect : gen
val exception_leak : gen
val thread_flow : gen
val long_real : gen
val long_fake : gen
val struts : gen
val ejb : gen
val dead_code : gen
val jsp_page : gen
val cookie : gen

(** The weighted catalog used by {!Codegen.draw_mix}. *)
val catalog : (string * int * gen) list

(** Look up any pattern kind, including the trait-only ones ("thread",
    "long-real", "deep-carrier", "ejb"). Raises [Invalid_argument] on
    unknown kinds. *)
val find_gen : string -> gen
