lib/workloads/codegen.mli: Core Ground_truth Rng
