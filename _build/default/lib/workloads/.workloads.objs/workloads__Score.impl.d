lib/workloads/score.ml: Apps Codegen Config Core Flows Ground_truth Hashtbl Jir List Report Sdg Sys Taj
