lib/workloads/ground_truth.ml: Core Fmt List String
