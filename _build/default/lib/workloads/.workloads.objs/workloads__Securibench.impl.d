lib/workloads/securibench.ml: Core List String
