lib/workloads/rng.ml: Char Int64 List String
