lib/workloads/patterns.ml: Buffer Core Ground_truth List Models Printf Rng String
