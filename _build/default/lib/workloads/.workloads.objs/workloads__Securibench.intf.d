lib/workloads/securibench.mli: Core
