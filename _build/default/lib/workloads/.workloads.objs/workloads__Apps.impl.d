lib/workloads/apps.ml: Codegen List Rng String
