lib/workloads/score.mli: Apps Core Ground_truth Sdg
