lib/workloads/apps.mli: Codegen
