lib/workloads/ground_truth.mli: Core Format
