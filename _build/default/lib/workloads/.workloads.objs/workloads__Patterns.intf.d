lib/workloads/patterns.mli: Ground_truth Rng
