lib/workloads/codegen.ml: Buffer Core Ground_truth Hashtbl List Option Patterns Printf Rng String
