lib/workloads/rng.mli:
