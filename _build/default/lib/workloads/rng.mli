(** Deterministic PRNG (xorshift64-star) so every benchmark app is
    reproducible byte-for-byte across runs and machines. *)

type t

val create : int -> t

(** Seed derived from a string (for per-app generators). *)
val of_string : string -> t

val next : t -> int64

(** Uniform int in [0, bound). *)
val int : t -> int -> int

val bool : t -> bool

(** True with probability [p] percent. *)
val percent : t -> int -> bool

val pick : t -> 'a list -> 'a

(** Uniform in the inclusive range [lo, hi]. *)
val range : t -> int -> int -> int
