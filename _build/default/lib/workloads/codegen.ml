(** Assembly of complete synthetic benchmark applications.

    An app is a mix of vulnerability patterns (drawn from {!Patterns.catalog}
    with app-specific extras) plus "cold mass": taint-free servlet and
    utility classes that are reachable from the entrypoints and consume
    call-graph budget. Cold servlets sort alphabetically before pattern
    servlets ([Aa...] prefix), so under chaotic (FIFO) constraint adding
    they crowd out the taint-relevant methods first — exactly the situation
    §6.1's priority heuristic is designed to survive. *)

type spec = {
  sp_name : string;
  sp_patterns : (string * int) list;     (* kind -> instance count *)
  sp_cold_classes : int;
  sp_cold_chain : int;                   (* methods per cold class *)
}

type generated = {
  g_spec : spec;
  g_sources : string list;
  g_descriptor : string;
  g_truth : Ground_truth.t;
}

(* ------------------------------------------------------------------ *)
(* Cold mass                                                          *)
(* ------------------------------------------------------------------ *)

let cold_util ~idx ~chain =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "class ZUtil%d {\n" idx);
  for i = 0 to chain - 1 do
    if i = chain - 1 then
      Buffer.add_string buf
        (Printf.sprintf "  String u%d(String s) { return s.trim(); }\n" i)
    else
      Buffer.add_string buf
        (Printf.sprintf
           "  String u%d(String s) { return this.u%d(s + \"x%d\"); }\n" i
           (i + 1) i)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let cold_servlet ~idx ~chain ~rng =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "class AaCold%d extends HttpServlet {\n" idx);
  Buffer.add_string buf
    (Printf.sprintf
       "  public void doGet(HttpServletRequest req, HttpServletResponse resp) {\n\
       \    String s = this.m0(\"cfg%d\");\n\
       \    resp.setContentType(s);\n\
       \  }\n"
       idx);
  for i = 0 to chain - 1 do
    if i = chain - 1 then
      Buffer.add_string buf
        (Printf.sprintf
           "  String m%d(String s) { ZUtil%d u = new ZUtil%d(); return u.u0(s); }\n"
           i idx idx)
    else begin
      let op =
        match Rng.int rng 3 with
        | 0 -> Printf.sprintf "this.m%d(s + \"-%d\")" (i + 1) i
        | 1 -> Printf.sprintf "this.m%d(s.toUpperCase())" (i + 1)
        | _ -> Printf.sprintf "this.m%d(s.substring(0, %d))" (i + 1) (i + 1)
      in
      Buffer.add_string buf
        (Printf.sprintf "  String m%d(String s) { return %s; }\n" i op)
    end
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Pattern selection                                                  *)
(* ------------------------------------------------------------------ *)

(* expand (kind, count) pairs into a concrete instance list *)
let instances_of_spec (spec : spec) : string list =
  List.concat_map
    (fun (kind, count) -> List.init count (fun _ -> kind))
    spec.sp_patterns

(** Draw [n] pattern kinds from the weighted catalog. *)
let draw_mix ~rng ~n : (string * int) list =
  let total_weight =
    List.fold_left (fun acc (_, w, _) -> acc + w) 0 Patterns.catalog
  in
  let counts = Hashtbl.create 16 in
  for _ = 1 to n do
    let roll = Rng.int rng total_weight in
    let rec pick acc = function
      | [] -> "direct"
      | (kind, w, _) :: rest ->
        if roll < acc + w then kind else pick (acc + w) rest
    in
    let kind = pick 0 Patterns.catalog in
    Hashtbl.replace counts kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
  done;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare

(* ------------------------------------------------------------------ *)

let generate (spec : spec) : generated =
  let rng = Rng.of_string spec.sp_name in
  let sources = ref [] in
  let descriptor = Buffer.create 128 in
  let truth = ref [] in
  let next_id = ref 0 in
  List.iter
    (fun kind ->
       let id = !next_id in
       incr next_id;
       let gen = Patterns.find_gen kind in
       let out = gen ~id ~rng in
       sources := out.Patterns.source :: !sources;
       List.iter
         (fun line ->
            Buffer.add_string descriptor line;
            Buffer.add_char descriptor '\n')
         out.Patterns.descriptor_lines;
       truth := out.Patterns.planted @ !truth)
    (instances_of_spec spec);
  for idx = 0 to spec.sp_cold_classes - 1 do
    sources := cold_servlet ~idx ~chain:spec.sp_cold_chain ~rng :: !sources;
    sources := cold_util ~idx ~chain:spec.sp_cold_chain :: !sources
  done;
  { g_spec = spec;
    g_sources = List.rev !sources;
    g_descriptor = Buffer.contents descriptor;
    g_truth = List.rev !truth }

(** Line count of the generated sources (for the Table 2 reproduction). *)
let line_count (g : generated) =
  List.fold_left
    (fun acc src ->
       acc + List.length (String.split_on_char '\n' src))
    0 g.g_sources

let to_input (g : generated) : Core.Taj.input =
  { Core.Taj.name = g.g_spec.sp_name;
    app_sources = g.g_sources;
    descriptor = g.g_descriptor }
