(** A micro-benchmark suite in the spirit of Stanford SecuriBench Micro
    (cited by the paper; its Refl1 case inspired the Figure 1 program).

    Each case is a tiny servlet with a known number of vulnerable sinks.
    [expected] is the number of issues a sound thin-slicing-based analysis
    reports with the hybrid configuration; where that deliberately differs
    from ground truth the case says so:

    - [Pred*] cases leak only through control dependence, which thin slices
      exclude by design (§3.2) — expected 0;
    - [StrongUpdates*] cases overwrite tainted state before the sink, but a
      flow-insensitive heap cannot see the overwrite — expected 1 (a known
      false positive of the approach). *)

type case = {
  sb_name : string;
  sb_description : string;
  sb_source : string;
  sb_expected : int;      (* issues under Hybrid_unbounded *)
  sb_vulnerable : int;    (* semantically vulnerable sinks *)
}

let case sb_name sb_description ?(vulnerable = -1) sb_expected sb_source =
  { sb_name; sb_description; sb_source; sb_expected;
    sb_vulnerable = (if vulnerable >= 0 then vulnerable else sb_expected) }

let cases : case list =
  [ (* ---------------- Basic ---------------- *)
    case "Basic1" "simplest direct flow" 1
      {|class Basic1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            resp.getWriter().println(s);
          }
        }|};
    case "Basic2" "flow through a local chain" 1
      {|class Basic2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s1 = req.getParameter("name");
            String s2 = s1;
            String s3 = s2;
            resp.getWriter().println(s3);
          }
        }|};
    case "Basic3" "flow through string concatenation" 1
      {|class Basic3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            resp.getWriter().println("<b>" + s + "</b>");
          }
        }|};
    case "Basic4" "flow through StringBuffer" 1
      {|class Basic4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            StringBuffer sb = new StringBuffer();
            sb.append("Hello ");
            sb.append(req.getParameter("name"));
            resp.getWriter().println(sb.toString());
          }
        }|};
    case "Basic5" "two sources, one sink" 1
      {|class Basic5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String a = req.getParameter("a");
            String b = req.getHeader("b");
            resp.getWriter().println(a + b);
          }
        }|};
    case "Basic6" "one source, two sinks" 2
      {|class Basic6 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            PrintWriter w = resp.getWriter();
            w.println(s);
            w.print(s);
          }
        }|};
    case "Basic7" "untainted constant" 0
      {|class Basic7 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println("hello world");
          }
        }|};
    case "Basic8" "tainted header into response header" 1
      {|class Basic8 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.addHeader("X-Echo", req.getHeader("X-In"));
          }
        }|};
    case "Basic9" "flow through a ternary" 1
      {|class Basic9 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            String out = s == null ? "anon" : s;
            resp.getWriter().println(out);
          }
        }|};
    case "Basic10" "integer arithmetic does not launder taint" 1
      {|class Basic10 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("count");
            int n = Integer.parseInt(s);
            resp.getWriter().println("you said " + n + " -> " + s);
          }
        }|};
    (* ---------------- Aliasing ---------------- *)
    case "Aliasing1" "aliased object field" 1
      {|class AHolder1 { String f; }
        class Aliasing1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            AHolder1 a = new AHolder1();
            AHolder1 b = a;
            a.f = req.getParameter("name");
            resp.getWriter().println(b.f);
          }
        }|};
    case "Aliasing2" "distinct objects do not alias" 0
      {|class AHolder2 { String f; }
        class Aliasing2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            AHolder2 a = new AHolder2();
            AHolder2 b = new AHolder2();
            a.f = req.getParameter("name");
            b.f = "safe";
            resp.getWriter().println(b.f);
          }
        }|};
    case "Aliasing3" "alias established through a call" 1
      {|class AHolder3 { String f; }
        class Aliasing3 extends HttpServlet {
          AHolder3 pick(AHolder3 x) { return x; }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            AHolder3 a = new AHolder3();
            AHolder3 b = this.pick(a);
            a.f = req.getParameter("name");
            resp.getWriter().println(b.f);
          }
        }|};
    case "Aliasing4" "array element aliasing" 1
      {|class Aliasing4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String[] arr = new String[2];
            arr[0] = req.getParameter("name");
            String out = arr[1];
            resp.getWriter().println(out);
          }
        }|};
    (* Aliasing4 note: array contents are merged (one $elem field), so the
       read of arr[1] sees the write to arr[0] — a deliberate
       over-approximation shared with the paper's implementation *)
    (* ---------------- Collections ---------------- *)
    case "Collections1" "through an ArrayList" 1
      {|class Collections1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            ArrayList l = new ArrayList();
            l.add(req.getParameter("name"));
            resp.getWriter().println((String) l.get(0));
          }
        }|};
    case "Collections2" "through an iterator" 1
      {|class Collections2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            ArrayList l = new ArrayList();
            l.add(req.getParameter("name"));
            Iterator it = l.iterator();
            resp.getWriter().println((String) it.next());
          }
        }|};
    case "Collections3" "two lists, only one tainted" 1
      {|class Collections3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            ArrayList dirty = new ArrayList();
            ArrayList clean = new ArrayList();
            dirty.add(req.getParameter("name"));
            clean.add("safe");
            PrintWriter w = resp.getWriter();
            w.println((String) dirty.get(0));
            w.println((String) clean.get(0));
          }
        }|}
      ~vulnerable:1;
    case "Collections4" "map with same constant key" 1
      {|class Collections4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            HashMap m = new HashMap();
            m.put("k", req.getParameter("name"));
            resp.getWriter().println((String) m.get("k"));
          }
        }|};
    case "Collections5" "map with different constant keys" 0
      {|class Collections5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            HashMap m = new HashMap();
            m.put("dirty", req.getParameter("name"));
            m.put("clean", "safe");
            resp.getWriter().println((String) m.get("clean"));
          }
        }|};
    case "Collections6" "unknown key reads everything" 1
      {|class Collections6 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            HashMap m = new HashMap();
            m.put("dirty", req.getParameter("name"));
            resp.getWriter().println((String) m.get(req.getQueryString()));
          }
        }|};
    case "Collections7" "vector through Enumeration" 1
      {|class Collections7 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Vector v = new Vector();
            v.addElement(req.getParameter("name"));
            Enumeration e = v.elements();
            resp.getWriter().println((String) e.nextElement());
          }
        }|};
    (* ---------------- Data structures ---------------- *)
    case "DataStructures1" "taint in a field" 1
      {|class DS1Node { String data; }
        class DataStructures1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            DS1Node n = new DS1Node();
            n.data = req.getParameter("name");
            resp.getWriter().println(n.data);
          }
        }|};
    case "DataStructures2" "linked pair" 1
      {|class DS2Node { String data; DS2Node next; }
        class DataStructures2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            DS2Node a = new DS2Node();
            DS2Node b = new DS2Node();
            a.next = b;
            b.data = req.getParameter("name");
            resp.getWriter().println(a.next.data);
          }
        }|};
    case "DataStructures3" "taint carrier into the sink" 1
      {|class DS3Box {
          String content;
          public DS3Box(String c) { this.content = c; }
          public String toString() { return this.content; }
        }
        class DataStructures3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            DS3Box box = new DS3Box(req.getParameter("name"));
            resp.getWriter().println(box);
          }
        }|};
    case "DataStructures4" "clean carrier into the sink" 0
      {|class DS4Box {
          String content;
          public DS4Box(String c) { this.content = c; }
        }
        class DataStructures4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            DS4Box box = new DS4Box("safe");
            resp.getWriter().println(box);
            resp.setContentType(s);
          }
        }|};
    case "DataStructures5" "static field channel" 1
      {|class DS5Chan { static String slot; }
        class DataStructures5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            DS5Chan.slot = req.getParameter("name");
            resp.getWriter().println(DS5Chan.slot);
          }
        }|};
    (* ---------------- Factories ---------------- *)
    case "Factories1" "factory-made wrapper" 1
      {|class F1Box { String v; }
        class Factories1 extends HttpServlet {
          F1Box make(String s) { F1Box b = new F1Box(); b.v = s; return b; }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            F1Box b = this.make(req.getParameter("name"));
            resp.getWriter().println(b.v);
          }
        }|};
    case "Factories2" "two factory calls, one tainted (heap merge FP)" 2
      ~vulnerable:1
      {|class F2Box { String v; }
        class Factories2 extends HttpServlet {
          F2Box make(String s) { F2Box b = new F2Box(); b.v = s; return b; }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            F2Box dirty = this.make(req.getParameter("name"));
            F2Box clean = this.make("safe");
            PrintWriter w = resp.getWriter();
            w.println(dirty.v);
            w.println(clean.v);
          }
        }|};
    case "Factories3" "library factory disambiguated by call site" 1
      {|class Factories3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Runtime r1 = Runtime.getRuntime();
            r1.exec(req.getParameter("cmd"));
          }
        }|};
    (* ---------------- Interprocedural ---------------- *)
    case "Inter1" "through one call" 1
      {|class Inter1 extends HttpServlet {
          String id(String s) { return s; }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(this.id(req.getParameter("name")));
          }
        }|};
    case "Inter2" "two call sites of the same callee stay separate" 1
      {|class Inter2 extends HttpServlet {
          String id(String s) { return s; }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String dirty = this.id(req.getParameter("name"));
            String clean = this.id("safe");
            PrintWriter w = resp.getWriter();
            w.println(dirty);
            w.println(clean);
          }
        }|};
    case "Inter3" "through a call chain" 1
      {|class Inter3 extends HttpServlet {
          String a(String s) { return this.b(s); }
          String b(String s) { return this.c(s); }
          String c(String s) { return s; }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(this.a(req.getParameter("name")));
          }
        }|};
    case "Inter4" "virtual dispatch to the overriding method" 1
      {|class I4Base {
          String render(String s) { return "safe"; }
        }
        class I4Echo extends I4Base {
          String render(String s) { return s; }
        }
        class Inter4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            I4Base r = new I4Echo();
            resp.getWriter().println(r.render(req.getParameter("name")));
          }
        }|};
    case "Inter5" "dispatch to the non-echoing override" 0
      {|class I5Base {
          String render(String s) { return s; }
        }
        class I5Safe extends I5Base {
          String render(String s) { return "safe"; }
        }
        class Inter5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            I5Safe r = new I5Safe();
            resp.getWriter().println(r.render(req.getParameter("name")));
          }
        }|};
    case "Inter6" "sink inside the callee" 1
      {|class Inter6 extends HttpServlet {
          void show(PrintWriter w, String s) { w.println(s); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            this.show(resp.getWriter(), req.getParameter("name"));
          }
        }|};
    case "Inter7" "source inside the callee" 1
      {|class Inter7 extends HttpServlet {
          String fetch(HttpServletRequest req) { return req.getParameter("name"); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(this.fetch(req));
          }
        }|};
    (* ---------------- Predicates (control dependence) ---------------- *)
    case "Pred1" "leak only through a branch condition" 0 ~vulnerable:1
      {|class Pred1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            String out = "no";
            if (s.equals("admin")) { out = "yes"; }
            resp.getWriter().println(out);
          }
        }|};
    case "Pred2" "value flow guarded by a branch is still value flow" 1
      {|class Pred2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            String out = "no";
            if (s.length() > 3) { out = s; }
            resp.getWriter().println(out);
          }
        }|};
    (* ---------------- Reflection ---------------- *)
    case "Refl1" "constant forName + getMethod + invoke" 1
      {|class R1Target {
          public String id(String s) { return s; }
        }
        class Refl1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Class k = Class.forName("R1Target");
            Method m = k.getMethod("id");
            Object t = k.newInstance();
            String out = (String) m.invoke(t, new Object[] { req.getParameter("name") });
            resp.getWriter().println(out);
          }
        }|};
    case "Refl2" "newInstance of a constant class" 1
      {|class R2Echo {
          public String go(String s) { return s; }
        }
        class Refl2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            R2Echo e = (R2Echo) Class.forName("R2Echo").newInstance();
            resp.getWriter().println(e.go(req.getParameter("name")));
          }
        }|};
    (* ---------------- Sanitizers ---------------- *)
    case "Sanitizers1" "URL-encoded output is endorsed" 0
      {|class Sanitizers1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            resp.getWriter().println(URLEncoder.encode(s));
          }
        }|};
    case "Sanitizers2" "sanitizing one copy leaves the other tainted" 1
      {|class Sanitizers2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            String safe = URLEncoder.encode(s);
            PrintWriter w = resp.getWriter();
            w.println(safe);
            w.println(s);
          }
        }|};
    case "Sanitizers3" "wrong sanitizer for the vector" 1
      {|class Sanitizers3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = Sanitizer.escapeSql(req.getParameter("name"));
            resp.getWriter().println(s);
          }
        }|};
    case "Sanitizers4" "SQL escaping endorses the query" 0
      {|class Sanitizers4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String u = Sanitizer.escapeSql(req.getParameter("u"));
            Connection c = DriverManager.getConnection("jdbc:db");
            Statement st = c.createStatement();
            st.executeQuery("SELECT * FROM t WHERE u='" + u + "'");
          }
        }|};
    (* ---------------- Session ---------------- *)
    case "Session1" "same attribute key" 1
      {|class Session1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            HttpSession s = req.getSession();
            s.setAttribute("user", req.getParameter("name"));
            resp.getWriter().println((String) s.getAttribute("user"));
          }
        }|};
    case "Session2" "different attribute keys" 0
      {|class Session2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            HttpSession s = req.getSession();
            s.setAttribute("user", req.getParameter("name"));
            s.setAttribute("lang", "en");
            resp.getWriter().println((String) s.getAttribute("lang"));
          }
        }|};
    (* ---------------- Strong updates ---------------- *)
    case "StrongUpdates1" "overwrite before the sink (known FP)" 1
      ~vulnerable:0
      {|class SU1Box { String v; }
        class StrongUpdates1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            SU1Box b = new SU1Box();
            b.v = req.getParameter("name");
            b.v = "safe";
            resp.getWriter().println(b.v);
          }
        }|};
    (* ---------------- Exceptions ---------------- *)
    case "Exceptions1" "caught exception rendered to output" 1
      {|class Exceptions1 extends HttpServlet {
          void boom() { throw new Exception("secret"); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            try { this.boom(); }
            catch (Exception e) { resp.getWriter().println(e); }
          }
        }|};
    case "Exceptions2" "exception swallowed silently" 0
      {|class Exceptions2 extends HttpServlet {
          void boom() { throw new Exception("secret"); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            try { this.boom(); }
            catch (Exception e) { resp.setContentType("text/plain"); }
          }
        }|};
    (* ---------------- Arrays ---------------- *)
    case "Arrays1" "through an array slot" 1
      {|class Arrays1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String[] a = new String[4];
            a[0] = req.getParameter("name");
            resp.getWriter().println(a[0]);
          }
        }|};
    case "Arrays2" "two arrays, only one tainted" 1
      {|class Arrays2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String[] dirty = new String[2];
            String[] clean = new String[2];
            dirty[0] = req.getParameter("name");
            clean[0] = "safe";
            resp.getWriter().println(clean[0]);
            resp.getWriter().println(dirty[0]);
          }
        }|};
    case "Arrays3" "array passed to a callee" 1
      {|class Arrays3 extends HttpServlet {
          void dump(PrintWriter w, String[] a) { w.println(a[0]); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String[] a = new String[1];
            a[0] = req.getParameter("name");
            this.dump(resp.getWriter(), a);
          }
        }|};
    case "Arrays4" "tainted array from getParameterValues" 1
      {|class Arrays4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String[] vals = req.getParameterValues("name");
            resp.getWriter().println(vals);
          }
        }|};
    case "Arrays5" "System.arraycopy transfers contents" 1
      {|class Arrays5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String[] src = new String[1];
            String[] dst = new String[1];
            src[0] = req.getParameter("name");
            System.arraycopy(src, 0, dst, 0, 1);
            resp.getWriter().println(dst[0]);
          }
        }|};
    (* ---------------- Strings ---------------- *)
    case "Strings1" "StringBuilder chain" 1
      {|class Strings1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            StringBuilder sb = new StringBuilder("prefix:");
            sb.append(req.getParameter("name"));
            sb.append(":suffix");
            resp.getWriter().println(sb.toString());
          }
        }|};
    case "Strings2" "substring keeps taint" 1
      {|class Strings2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            resp.getWriter().println(s.substring(0, 3));
          }
        }|};
    case "Strings3" "case conversion keeps taint" 1
      {|class Strings3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            resp.getWriter().println(s.toUpperCase().trim());
          }
        }|};
    case "Strings4" "length is not tainted data" 0
      {|class Strings4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            int n = s.length();
            resp.getWriter().println("length " + n);
          }
        }|};
    case "Strings5" "String.valueOf of a tainted value" 1
      {|class Strings5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            resp.getWriter().println(String.valueOf(s));
          }
        }|};
    (* ---------------- More interprocedural ---------------- *)
    case "Inter8" "recursion" 1
      {|class Inter8 extends HttpServlet {
          String bounce(String s, int n) {
            if (n > 0) { return this.bounce(s, n - 1); }
            return s;
          }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(this.bounce(req.getParameter("name"), 3));
          }
        }|};
    case "Inter9" "static helper" 1
      {|class I9Util {
          static String decorate(String s) { return "[" + s + "]"; }
        }
        class Inter9 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(I9Util.decorate(req.getParameter("name")));
          }
        }|};
    case "Inter10" "taint returned through two levels of wrapping" 1
      {|class I10Outer {
          I10Inner inner;
          public I10Outer(I10Inner i) { this.inner = i; }
        }
        class I10Inner {
          String data;
          public I10Inner(String d) { this.data = d; }
        }
        class Inter10 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            I10Outer o = new I10Outer(new I10Inner(req.getParameter("name")));
            resp.getWriter().println(o.inner.data);
          }
        }|};
    (* ---------------- Request attributes & cross-servlet ---------------- *)
    case "Session3" "request attributes with constant keys" 1
      {|class Session3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            req.setAttribute("payload", req.getParameter("name"));
            req.setAttribute("mode", "plain");
            PrintWriter w = resp.getWriter();
            w.println((String) req.getAttribute("payload"));
            w.println((String) req.getAttribute("mode"));
          }
        }|};
    case "Session4" "cross-servlet flow via a static field" 1
      {|class S4Shared { static String slot; }
        class Session4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            S4Shared.slot = req.getParameter("name");
          }
        }
        class Session4Reader extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(S4Shared.slot);
          }
        }|};
    (* ---------------- Other attack vectors ---------------- *)
    case "Vectors1" "command injection" 1
      {|class Vectors1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Runtime.getRuntime().exec("ping " + req.getParameter("host"));
          }
        }|};
    case "Vectors2" "path traversal into FileReader" 1
      {|class Vectors2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            FileReader r = new FileReader("/data/" + req.getParameter("doc"));
          }
        }|};
    case "Vectors3" "request dispatcher with tainted path" 1
      {|class Vectors3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            RequestDispatcher d = req.getRequestDispatcher(req.getParameter("page"));
            d.forward(req, resp);
          }
        }|};
    case "Vectors4" "cookie value is untrusted" 1
      {|class Vectors4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Cookie[] cs = req.getCookies();
            Cookie c = cs[0];
            resp.getWriter().println(c.getValue());
          }
        }|};
    case "Vectors5" "header splitting via addHeader" 1
      {|class Vectors5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.addHeader("Location", req.getParameter("next"));
          }
        }|};
    case "Vectors6" "by-reference source readFully" 1
      {|class Vectors6 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            RandomAccessFile f = new RandomAccessFile("upload.bin", "r");
            String[] buf = new String[16];
            f.readFully(buf);
            resp.getWriter().println(buf[0]);
          }
        }|};
    (* ---------------- Control flow ---------------- *)
    case "Control1" "value flow through a switch case" 1
      {|class Control1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String mode = req.getParameter("mode");
            String payload = req.getParameter("payload");
            String out = "none";
            switch (mode) {
              case "echo": out = payload; break;
              case "quiet": out = "silence"; break;
              default: out = "other";
            }
            resp.getWriter().println(out);
          }
        }|};
    case "Control2" "do-while carries taint" 1
      {|class Control2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String acc = "";
            int i = 0;
            do {
              acc = acc + req.getParameter("chunk");
              i = i + 1;
            } while (i < 3);
            resp.getWriter().println(acc);
          }
        }|};
    case "Refl3" "forName on a concatenated constant" 1
      {|class R3Deep {
          public String id(String s) { return s; }
        }
        class Refl3 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String prefix = "R3";
            Class k = Class.forName(prefix + "Deep");
            R3Deep t = (R3Deep) k.newInstance();
            resp.getWriter().println(t.id(req.getParameter("x")));
          }
        }|};
    (* ---------------- Casting ---------------- *)
    case "Casting1" "taint survives an upcast/downcast pair" 1
      {|class Casting1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Object o = req.getParameter("name");
            String s = (String) o;
            resp.getWriter().println(s);
          }
        }|};
    case "Casting2" "taint through Object-typed helper" 1
      {|class Casting2 extends HttpServlet {
          Object wrap(Object o) { return o; }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = (String) this.wrap(req.getParameter("name"));
            resp.getWriter().println(s);
          }
        }|};
    (* ---------------- Fields & inheritance ---------------- *)
    case "Fields1" "inherited field carries taint" 1
      {|class FBase1 { String shared; }
        class Fields1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            FChild1 c = new FChild1();
            c.shared = req.getParameter("name");
            resp.getWriter().println(c.shared);
          }
        }
        class FChild1 extends FBase1 { }|};
    case "Fields2" "sibling instances do not alias" 0
      {|class FNode2 { String data; }
        class Fields2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            FNode2 dirty = new FNode2();
            FNode2 clean = new FNode2();
            dirty.data = req.getParameter("name");
            clean.data = "safe";
            resp.getWriter().println(clean.data);
          }
        }|};
    case "Fields3" "taint via field of 'this'" 1
      {|class Fields3 extends HttpServlet {
          String stash;
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            this.stash = req.getParameter("name");
            this.show(resp.getWriter());
          }
          void show(PrintWriter w) { w.println(this.stash); }
        }|};
    case "Fields4" "static initializer value is trusted" 0
      {|class FConf4 { static String banner = "welcome"; }
        class Fields4 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(FConf4.banner);
          }
        }|};
    (* ---------------- Sessions across servlets ---------------- *)
    case "Session5" "session attribute crosses servlets" 1
      {|class Session5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            HttpSession s = req.getSession();
            s.setAttribute("handle", req.getParameter("h"));
          }
        }
        class Session5Reader extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            HttpSession s = req.getSession();
            resp.getWriter().println((String) s.getAttribute("handle"));
          }
        }|};
    (* ---------------- Interfaces ---------------- *)
    case "Interfaces1" "flow through an interface method" 1
      {|interface IFmt1 {
          String fmt(String s);
        }
        class IEcho1 implements IFmt1 {
          public String fmt(String s) { return s; }
        }
        class Interfaces1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            IFmt1 f = new IEcho1();
            resp.getWriter().println(f.fmt(req.getParameter("name")));
          }
        }|};
    case "Interfaces2" "only the instantiated implementation runs" 0
      {|interface IFmt2 {
          String fmt(String s);
        }
        class IEcho2 implements IFmt2 {
          public String fmt(String s) { return s; }
        }
        class ISafe2 implements IFmt2 {
          public String fmt(String s) { return "safe"; }
        }
        class Interfaces2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            IFmt2 f = new ISafe2();
            resp.getWriter().println(f.fmt(req.getParameter("name")));
          }
        }|};
    (* ---------------- Sanitizer subtleties ---------------- *)
    case "Sanitizers5" "sanitizing the copy, printing the original" 1
      {|class Sanitizers5 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            String t = s;
            String clean = URLEncoder.encode(t);
            resp.getWriter().println(s);
          }
        }|};
    case "Sanitizers6" "double encoding is still clean" 0
      {|class Sanitizers6 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = URLEncoder.encode(URLEncoder.encode(req.getParameter("n")));
            resp.getWriter().println(s);
          }
        }|};
    case "Sanitizers7" "sanitizer inside a helper" 0
      {|class Sanitizers7 extends HttpServlet {
          String clean(String s) { return URLEncoder.encode(s); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(this.clean(req.getParameter("n")));
          }
        }|};
    (* ---------------- Info leak ---------------- *)
    case "Leak1" "system property to output" 1
      {|class Leak1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(System.getProperty("java.home"));
          }
        }|};
    case "Leak2" "exception message concatenated" 1
      {|class Leak2 extends HttpServlet {
          void fragile() { throw new RuntimeException("db password"); }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            try { this.fragile(); }
            catch (RuntimeException e) {
              resp.getWriter().println("error: " + e.getMessage());
            }
          }
        }|};
    (* ---------------- More dictionaries ---------------- *)
    case "Dict1" "Hashtable behaves like HashMap" 1
      {|class Dict1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Hashtable h = new Hashtable();
            h.put("v", req.getParameter("v"));
            h.put("w", "safe");
            PrintWriter out = resp.getWriter();
            out.println((String) h.get("v"));
            out.println((String) h.get("w"));
          }
        }|};
    case "Dict2" "Properties with constant keys" 0
      {|class Dict2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Properties p = new Properties();
            p.setProperty("greeting", "hello");
            p.setProperty("user", req.getParameter("u"));
            resp.getWriter().println(p.getProperty("greeting"));
          }
        }|};
    case "Dict3" "ServletContext attributes" 1
      {|class Dict3 extends HttpServlet {
          ServletContext ctx;
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            ServletContext c = new ServletContext();
            c.setAttribute("motd", req.getParameter("m"));
            resp.getWriter().println((String) c.getAttribute("motd"));
          }
        }|};
    (* ---------------- Class initializers ---------------- *)
    case "Clinit1" "static initializer runs" 1
      {|class CConf1 {
          static String origin = CProvider1.fetch();
        }
        class CProvider1 {
          static String fetch() { return "const"; }
        }
        class Clinit1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            CConf1.origin = req.getParameter("o");
            resp.getWriter().println(CConf1.origin);
          }
        }|};
    (* ---------------- Object arrays as carriers ---------------- *)
    case "Carriers1" "array of wrappers" 1
      {|class CBox1 {
          String v;
          public CBox1(String v) { this.v = v; }
          public String toString() { return this.v; }
        }
        class Carriers1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            CBox1[] boxes = new CBox1[2];
            boxes[0] = new CBox1(req.getParameter("b"));
            resp.getWriter().println(boxes[0]);
          }
        }|};
    case "Carriers2" "carrier in a list" 1
      {|class CBox2 {
          String v;
          public CBox2(String v) { this.v = v; }
        }
        class Carriers2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            ArrayList l = new ArrayList();
            l.add(new CBox2(req.getParameter("b")));
            resp.getWriter().println(l.get(0));
          }
        }|};
    (* ---------------- String comparisons ---------------- *)
    case "StringOps1" "equality checks do not launder values" 1
      {|class StringOps1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            String s = req.getParameter("name");
            if (s.equals("admin")) {
              resp.getWriter().println(s);
            }
          }
        }|};
    case "StringOps2" "StringBuilder round trip via length" 1
      {|class StringOps2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            StringBuilder sb = new StringBuilder(req.getParameter("q"));
            if (sb.length() > 0) {
              resp.getWriter().println(sb.toString());
            }
          }
        }|};
    (* ---------------- Recursion with heap ---------------- *)
    case "Recursion1" "taint through a recursive list build" 1
      {|class RNode1 { String data; RNode1 next; }
        class Recursion1 extends HttpServlet {
          RNode1 build(int n, String payload) {
            RNode1 node = new RNode1();
            node.data = payload;
            if (n > 0) { node.next = this.build(n - 1, payload); }
            return node;
          }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            RNode1 head = this.build(3, req.getParameter("p"));
            resp.getWriter().println(head.next.data);
          }
        }|};
    (* ---------------- Multi-servlet ---------------- *)
    case "Multi1" "producer and consumer servlets" 1
      {|class MChannel1 { static String mailbox; }
        class Multi1 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            MChannel1.mailbox = req.getParameter("msg");
          }
        }
        class Multi1Reader extends HttpServlet {
          public void doPost(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(MChannel1.mailbox);
          }
        }|};
    case "Multi2" "consumer guarded by encode" 0
      {|class MChannel2 { static String mailbox; }
        class Multi2 extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            MChannel2.mailbox = req.getParameter("msg");
          }
        }
        class Multi2Reader extends HttpServlet {
          public void doPost(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(URLEncoder.encode(MChannel2.mailbox));
          }
        }|} ]

(** Analyze one case under the given configuration; returns the number of
    reported issues. *)
let run_case ?(algorithm = Core.Config.Hybrid_unbounded) (c : case) : int =
  let input =
    { Core.Taj.name = c.sb_name;
      app_sources = [ c.sb_source ];
      descriptor = "" }
  in
  let analysis =
    Core.Taj.run (Core.Taj.load input) (Core.Config.preset algorithm)
  in
  match analysis.Core.Taj.result with
  | Core.Taj.Completed r -> Core.Report.issue_count r.Core.Taj.report
  | Core.Taj.Did_not_complete _ -> -1

let find name = List.find_opt (fun c -> String.equal c.sb_name name) cases
