(** A micro-benchmark suite in the spirit of Stanford SecuriBench Micro
    (cited by the paper; its Refl1 case inspired the Figure 1 program).
    Each case is a tiny servlet with a known number of vulnerable sinks and
    the number of issues a thin-slicing analysis is expected to report —
    deviations (control-dependence blind spot, flow-insensitive-heap false
    positives) are explicit in the data. *)

type case = {
  sb_name : string;
  sb_description : string;
  sb_source : string;
  sb_expected : int;      (** issues under Hybrid_unbounded *)
  sb_vulnerable : int;    (** semantically vulnerable sinks *)
}

val cases : case list

(** Analyze one case; returns the number of reported issues (-1 when the
    analysis does not complete). *)
val run_case : ?algorithm:Core.Config.algorithm -> case -> int

val find : string -> case option
