(** Deterministic PRNG (xorshift64-star) so every benchmark app is
    reproducible byte-for-byte across runs and machines. *)

type t = { mutable state : int64 }

let create (seed : int) : t =
  let s = Int64.of_int (if seed = 0 then 0x9E3779B9 else seed) in
  { state = s }

(** Seed derived from a string (for per-app generators). *)
let of_string (s : string) : t =
  let h = ref 1469598103934665603L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
              1099511628211L)
    s;
  { state = (if Int64.equal !h 0L then 1L else !h) }

let next (t : t) : int64 =
  let x = t.state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.state <- x;
  Int64.mul x 2685821657736338717L

(** Uniform int in [0, bound). *)
let int (t : t) (bound : int) : int =
  if bound <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 2)
                       (Int64.of_int bound))

let bool (t : t) : bool = int t 2 = 0

(** True with probability [p] (in percent). *)
let percent (t : t) (p : int) : bool = int t 100 < p

let pick (t : t) (xs : 'a list) : 'a =
  List.nth xs (int t (List.length xs))

let range (t : t) lo hi = lo + int t (hi - lo + 1)
