(** Backward thin slicing — the original direction of the thin-slicing
    paper: from a value at a program point, collect the producer statements
    it is data-dependent on, ignoring base-pointer dependencies. Heap
    dependence follows the direct edges in reverse; interprocedural steps
    are context-insensitive upward. Answers "where could this value have
    come from?" for report consumption. *)

type result = {
  slice : Stmt.Set.t;              (** producer statements *)
  endpoints : Stmt.t list;         (** defs with no further producers:
                                       constants, natives, allocations *)
  visited_values : int;
  truncated : bool;                (** the statement budget was hit *)
}

(** Backward thin slice from argument [arg] of the call statement [from]. *)
val slice :
  Builder.t -> table:Jir.Classtable.t -> from:Stmt.t -> arg:int ->
  ?max_stmts:int -> unit -> result

(** Endpoints that are calls to methods satisfying [is_source]. *)
val source_endpoints :
  Builder.t -> result -> is_source:(Jir.Tac.mref -> bool) -> Stmt.t list
