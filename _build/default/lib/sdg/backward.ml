(** Backward thin slicing — the original direction of Sridharan, Fink and
    Bodík's thin slices, which the paper adapts to forward taint tracking
    (§3.2: "in [33] the term thin slice refers to a backward thin slice").

    Given a value at a program point (typically a sensitive sink argument),
    the backward slice collects the producer statements the value is
    data-dependent on, ignoring base-pointer dependencies. Heap dependence
    follows the HSDG's direct edges in reverse (load → matching stores);
    interprocedural steps are context-insensitive upward (a formal
    parameter expands to the corresponding actual at every caller), which
    is the CI variant of backward thin slicing. The result answers the
    report-consumption question "where could this value have come from?" —
    used by the CLI's [explain] command. *)

module Int_set = Builder.Int_set
module Keys = Pointer.Keys
open Jir

type result = {
  slice : Stmt.Set.t;              (** producer statements *)
  endpoints : Stmt.t list;         (** defs with no further producers:
                                       constants, natives, allocations *)
  visited_values : int;
  truncated : bool;                (** the statement budget was hit *)
}

type state = {
  b : Builder.t;
  table : Classtable.t;
  max_stmts : int option;
  mutable slice : Stmt.Set.t;
  mutable endpoints : Stmt.t list;
  seen_values : (int * Tac.var, unit) Hashtbl.t;
  seen_stores : unit Stmt.Table.t;
  queue : (int * Tac.var) Queue.t;
  mutable truncated : bool;
}

let budget_ok st =
  match st.max_stmts with
  | Some m when Stmt.Set.cardinal st.slice >= m ->
    st.truncated <- true;
    false
  | _ -> true

let add_stmt st s =
  if budget_ok st then st.slice <- Stmt.Set.add s st.slice

let push_value st node v =
  if not (Hashtbl.mem st.seen_values (node, v)) then begin
    Hashtbl.replace st.seen_values (node, v) ();
    Queue.add (node, v) st.queue
  end

let endpoint st s =
  add_stmt st s;
  st.endpoints <- s :: st.endpoints

(* the stored value of a store-like statement, for reverse heap edges *)
let stored_value_of st (s : Stmt.t) : Tac.var option =
  match Builder.instr_of st.b s with
  | Some (Tac.Store (_, _, v)) | Some (Tac.Astore (_, _, v))
  | Some (Tac.Sstore (_, v)) -> Some v
  | Some (Tac.Call _) ->
    (match Builder.dict_op_of st.b s with
     | Some (Models.Dict_model.Dict_put { value; _ }) -> Some value
     | _ -> None)
  | _ -> None

let follow_store st (store : Stmt.t) =
  if not (Stmt.Table.mem st.seen_stores store) then begin
    Stmt.Table.replace st.seen_stores store ();
    add_stmt st store;
    match stored_value_of st store with
    | Some v -> push_value st store.Stmt.node v
    | None -> ()
  end

let expand_load st (def : Stmt.t) base_pts fields =
  add_stmt st def;
  Int_set.iter
    (fun ik ->
       List.iter
         (fun field ->
            List.iter (follow_store st)
              (Builder.stores_writing st.b ~ik ~field))
         fields)
    base_pts

let process_value st (node, v) =
  match Builder.def_of st.b ~node v with
  | None -> ()
  | Some def ->
    (match def.Stmt.kind with
     | Stmt.K_param i ->
       add_stmt st def;
       (* expand to the matching actual at every caller *)
       List.iter
         (fun call_stmt ->
            match Builder.call_of st.b call_stmt with
            | Some c ->
              (match List.nth_opt c.Tac.args i with
               | Some actual ->
                 add_stmt st call_stmt;
                 push_value st call_stmt.Stmt.node actual
               | None -> ())
            | None -> ())
         (Builder.callers_of_node st.b ~callee:node)
     | Stmt.K_ret -> ()
     | Stmt.K_phi (bi, pi) ->
       add_stmt st def;
       let m = Builder.node_meth st.b node in
       let phi = List.nth m.Tac.m_blocks.(bi).Tac.phis pi in
       List.iter (fun (_, a) -> push_value st node a) phi.Tac.phi_args
     | Stmt.K_instr _ ->
       (match Builder.instr_of st.b def with
        | Some (Tac.Const _) | Some (Tac.New _) | Some (Tac.New_array _) ->
          endpoint st def
        | Some (Tac.Move (_, s)) | Some (Tac.Cast (_, _, s))
        | Some (Tac.Unop (_, _, s)) | Some (Tac.Array_len (_, s))
        | Some (Tac.Instance_of (_, _, s)) ->
          add_stmt st def;
          push_value st node s
        | Some (Tac.Binop (_, _, a, b)) | Some (Tac.Strcat (_, a, b)) ->
          add_stmt st def;
          push_value st node a;
          push_value st node b
        | Some (Tac.Load (_, o, f)) ->
          expand_load st def
            (Builder.pts_of_var st.b ~node o)
            [ Keys.field_of_tac f ]
        | Some (Tac.Aload (_, a, _)) ->
          expand_load st def
            (Builder.pts_of_var st.b ~node a)
            [ Keys.elem_field ]
        | Some (Tac.Sload (_, f)) ->
          add_stmt st def;
          List.iter (follow_store st)
            (Builder.static_stores_of st.b (Keys.field_of_tac f))
        | Some (Tac.Catch_entry (_, cls)) ->
          add_stmt st def;
          List.iter
            (fun throw_stmt ->
               add_stmt st throw_stmt;
               (* the thrown value is the terminator's use *)
               let m = Builder.node_meth st.b throw_stmt.Stmt.node in
               (match throw_stmt.Stmt.kind with
                | Stmt.K_instr (bi, _) ->
                  (match m.Tac.m_blocks.(bi).Tac.term with
                   | Tac.Throw tv -> push_value st throw_stmt.Stmt.node tv
                   | _ -> ())
                | _ -> ()))
            (Builder.throws_for st.b ~table:st.table cls)
        | Some (Tac.Call c) ->
          add_stmt st def;
          (match Builder.dict_op_of st.b def with
           | Some (Models.Dict_model.Dict_get { recv; key; _ }) ->
             expand_load st def
               (Builder.pts_of_var st.b ~node recv)
               (List.map Keys.field_of_tac (Models.Dict_model.get_fields key))
           | _ ->
             let callees = Builder.callees_of_call st.b def c in
             if callees = [] then begin
               (* native: the return derives from arguments per summary *)
               endpoint st def;
               List.iter
                 (fun (native : Tac.mref) ->
                    List.iter
                      (fun (tr : Models.Natives.transfer) ->
                         if tr.Models.Natives.t_to = Models.Natives.Ret then
                           match
                             List.nth_opt c.Tac.args tr.Models.Natives.t_from
                           with
                           | Some a -> push_value st node a
                           | None -> ())
                      (Models.Natives.summary ~meth_id:(Tac.mref_id native)
                         ~arity:(List.length c.Tac.args)
                         ~has_ret:(c.Tac.ret <> None)))
                 (Builder.native_targets_of_call st.b def c)
             end
             else
               (* the returned value of each callee *)
               List.iter
                 (fun callee ->
                    let m = Builder.node_meth st.b callee in
                    Array.iter
                      (fun (blk : Tac.block) ->
                         match blk.Tac.term with
                         | Tac.Return (Some rv) -> push_value st callee rv
                         | _ -> ())
                      m.Tac.m_blocks)
                 callees)
        | Some (Tac.Store _) | Some (Tac.Sstore _) | Some (Tac.Astore _)
        | Some Tac.Nop | None -> add_stmt st def))

(** Backward thin slice from argument [arg] of the call statement [from]. *)
let slice (b : Builder.t) ~(table : Classtable.t) ~(from : Stmt.t)
    ~(arg : int) ?max_stmts () : result =
  let st =
    { b; table; max_stmts;
      slice = Stmt.Set.empty;
      endpoints = [];
      seen_values = Hashtbl.create 256;
      seen_stores = Stmt.Table.create 64;
      queue = Queue.create ();
      truncated = false }
  in
  (match Builder.call_of b from with
   | Some c ->
     (match List.nth_opt c.Tac.args arg with
      | Some v -> push_value st from.Stmt.node v
      | None -> ())
   | None -> ());
  while not (Queue.is_empty st.queue) && budget_ok st do
    process_value st (Queue.pop st.queue)
  done;
  { slice = st.slice;
    endpoints = List.rev st.endpoints;
    visited_values = Hashtbl.length st.seen_values;
    truncated = st.truncated }

(** Endpoints that are calls to methods satisfying [is_source] — the
    "where could this come from" answer for a report consumer. *)
let source_endpoints (b : Builder.t) (r : result)
    ~(is_source : Tac.mref -> bool) : Stmt.t list =
  List.filter
    (fun s ->
       match Builder.call_of b s with
       | Some c -> is_source c.Tac.target
       | None -> false)
    r.endpoints
