(** Statement identities for dependence graphs. A statement lives in a
    specific call-graph node (method clone), which is what makes tabulation
    over the no-heap SDG context-sensitive. *)

type kind =
  | K_instr of int * int     (** block, instruction index *)
  | K_phi of int * int       (** block, phi index *)
  | K_param of int           (** formal parameter index *)
  | K_ret                    (** return-value collector of the node *)

type t = { node : int; kind : kind }

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val instr : node:int -> block:int -> index:int -> t
val phi : node:int -> block:int -> index:int -> t
val param : node:int -> index:int -> t
val ret : node:int -> t

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
