lib/sdg/backward.mli: Builder Jir Stmt
