lib/sdg/builder.mli: Int Jir Models Pointer Set Stmt
