lib/sdg/tabulation.ml: Builder Hashtbl Int Jir List Models Pointer Queue Set Stmt Tac
