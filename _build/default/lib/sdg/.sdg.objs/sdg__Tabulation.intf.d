lib/sdg/tabulation.mli: Builder Int Jir Set Stmt
