lib/sdg/stmt.ml: Fmt Hashtbl Map Set
