lib/sdg/builder.ml: Array Classtable Hashtbl Int Jir List Models Option Pointer Program Queue Set Stmt String Tac
