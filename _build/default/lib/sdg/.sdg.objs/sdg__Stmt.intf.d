lib/sdg/stmt.mli: Format Hashtbl Map Set
