lib/sdg/backward.ml: Array Builder Classtable Hashtbl Jir List Models Pointer Queue Stmt Tac
