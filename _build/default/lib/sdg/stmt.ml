(** Statement identities for dependence graphs.

    A statement lives in a specific call-graph node (method clone), so the
    same instruction analyzed under two contexts yields two statements —
    that is what makes tabulation over the no-heap SDG context-sensitive. *)

type kind =
  | K_instr of int * int     (** block, instruction index *)
  | K_phi of int * int       (** block, phi index *)
  | K_param of int           (** formal parameter index *)
  | K_ret                    (** return-value collector of the node *)

type t = {
  node : int;                (** call-graph node id *)
  kind : kind;
}

let compare = compare

let equal (a : t) (b : t) = a = b

let hash = Hashtbl.hash

let instr ~node ~block ~index = { node; kind = K_instr (block, index) }
let phi ~node ~block ~index = { node; kind = K_phi (block, index) }
let param ~node ~index = { node; kind = K_param index }
let ret ~node = { node; kind = K_ret }

let pp ppf s =
  match s.kind with
  | K_instr (b, i) -> Fmt.pf ppf "n%d:B%d.%d" s.node b i
  | K_phi (b, i) -> Fmt.pf ppf "n%d:B%d.phi%d" s.node b i
  | K_param i -> Fmt.pf ppf "n%d:param%d" s.node i
  | K_ret -> Fmt.pf ppf "n%d:ret" s.node

module Set = Set.Make (struct
    type nonrec t = t
    let compare = compare
  end)

module Map = Map.Make (struct
    type nonrec t = t
    let compare = compare
  end)

module Table = Hashtbl.Make (struct
    type nonrec t = t
    let equal = equal
    let hash = hash
  end)
