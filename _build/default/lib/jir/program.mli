(** A lowered program: class table, method bodies, site registry and
    entrypoints. This is the unit of work handed to the analyses. *)

type site_kind =
  | Alloc_site of string          (** allocated class (or "T[]" for arrays) *)
  | Call_site of Tac.mref

type site_info = {
  si_id : int;
  si_method : string;             (** method id of the containing method *)
  si_kind : site_kind;
}

type t = {
  table : Classtable.t;
  methods : (string, Tac.meth) Hashtbl.t;   (** keyed by {!Tac.method_id} *)
  sites : (int, site_info) Hashtbl.t;
  mutable next_site : int;
  mutable entrypoints : string list;        (** method ids, in order *)
  mutable clinits : string list;
}

val create : unit -> t

(** Allocate a globally unique allocation- or call-site id. *)
val fresh_site : t -> meth:string -> kind:site_kind -> int

val site_info : t -> int -> site_info option
val add_method : t -> Tac.meth -> unit
val find_method : t -> string -> Tac.meth option
val add_entrypoint : t -> string -> unit
val iter_methods : t -> (Tac.meth -> unit) -> unit
val method_count : t -> int

(** All method ids, sorted. *)
val all_method_ids : t -> string list

(** Aggregate statistics used by the Table 2 reproduction. *)
type stats = {
  st_classes : int;
  st_methods : int;
  st_app_classes : int;
  st_app_methods : int;
  st_instrs : int;
}

val stats : t -> stats
