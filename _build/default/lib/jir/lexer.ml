(** Hand-written lexer for MJava.

    Produces a token array in one pass; the parser indexes into it. Comments
    ([//] and [/* ... */]) and whitespace are skipped. Errors carry positions.
*)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | CHAR of char
  | KW of string          (* reserved word, kept as its spelling *)
  | PUNCT of string       (* operator or delimiter, kept as its spelling *)
  | EOF

type 'a located = { tok : 'a; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [ "class"; "interface"; "extends"; "implements"; "public"; "private";
    "protected"; "static"; "native"; "abstract"; "final"; "synchronized";
    "void"; "int"; "boolean"; "char"; "if"; "else"; "while"; "for"; "return";
    "new"; "this"; "super"; "null"; "true"; "false"; "try"; "catch"; "throw";
    "throws"; "break"; "continue"; "instanceof"; "switch"; "case"; "default";
    "do" ]

let is_keyword s = List.mem s keywords

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* Multi-character punctuation, longest first so greedy matching is correct. *)
let puncts2 =
  [ "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "+="; "-="; "*="; "/=" ]

let tokenize (src : string) : token located list =
  let n = String.length src in
  let line = ref 1 and bol = ref 0 in
  let pos i = { Ast.line = !line; col = i - !bol + 1 } in
  let toks = ref [] in
  let emit t p = toks := { tok = t; pos = p } :: !toks in
  let i = ref 0 in
  let newline at = incr line; bol := at + 1 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then (newline !i; incr i)
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let p = pos !i in
      i := !i + 2;
      let closed = ref false in
      while not !closed do
        if !i + 1 >= n then raise (Lex_error ("unterminated comment", p));
        if src.[!i] = '\n' then newline !i;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          closed := true; i := !i + 2
        end else incr i
      done
    end
    else if is_ident_start c then begin
      let p = pos !i in
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      emit (if is_keyword s then KW s else IDENT s) p
    end
    else if is_digit c then begin
      let p = pos !i in
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      (match int_of_string_opt s with
       | Some v -> emit (INT v) p
       | None -> raise (Lex_error ("integer literal too large: " ^ s, p)))
    end
    else if c = '"' then begin
      let p = pos !i in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error ("unterminated string", p));
        (match src.[!i] with
         | '"' -> closed := true; incr i
         | '\\' ->
           if !i + 1 >= n then raise (Lex_error ("bad escape", p));
           (match src.[!i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | '\'' -> Buffer.add_char buf '\''
            | '0' -> Buffer.add_char buf '\000'
            | e -> raise (Lex_error (Printf.sprintf "bad escape \\%c" e, p)));
           i := !i + 2
         | '\n' -> raise (Lex_error ("newline in string literal", p))
         | ch -> Buffer.add_char buf ch; incr i)
      done;
      emit (STRING (Buffer.contents buf)) p
    end
    else if c = '\'' then begin
      let p = pos !i in
      if !i + 2 >= n then raise (Lex_error ("unterminated char literal", p));
      let ch, len =
        if src.[!i + 1] = '\\' then
          (match src.[!i + 2] with
           | 'n' -> '\n', 4 | 't' -> '\t', 4 | 'r' -> '\r', 4
           | '\\' -> '\\', 4 | '\'' -> '\'', 4 | '0' -> '\000', 4
           | e -> raise (Lex_error (Printf.sprintf "bad escape \\%c" e, p)))
        else src.[!i + 1], 3
      in
      if !i + len - 1 >= n || src.[!i + len - 1] <> '\'' then
        raise (Lex_error ("unterminated char literal", p));
      emit (CHAR ch) p;
      i := !i + len
    end
    else begin
      let p = pos !i in
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some s when List.mem s puncts2 -> emit (PUNCT s) p; i := !i + 2
      | _ ->
        (match c with
         | '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '.' | '='
         | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '?' | ':'
         | '&' | '|' ->
           emit (PUNCT (String.make 1 c)) p; incr i
         | _ ->
           raise (Lex_error (Printf.sprintf "unexpected character %C" c, p)))
    end
  done;
  emit EOF (pos n);
  List.rev !toks

let pp_token ppf = function
  | IDENT s -> Fmt.pf ppf "identifier %s" s
  | INT v -> Fmt.pf ppf "integer %d" v
  | STRING s -> Fmt.pf ppf "string %S" s
  | CHAR c -> Fmt.pf ppf "char %C" c
  | KW s -> Fmt.pf ppf "keyword '%s'" s
  | PUNCT s -> Fmt.pf ppf "'%s'" s
  | EOF -> Fmt.string ppf "end of input"
