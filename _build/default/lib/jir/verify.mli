(** Well-formedness checks over lowered (and rewritten) method bodies:
    branch targets in range, registers in range, and — in SSA mode — single
    assignment and def-before-use. The reflection and exception rewrites
    must preserve every invariant checked here. *)

type violation = {
  v_method : string;
  v_where : string;
  v_message : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** Check one method. [ssa] (default true) additionally checks the SSA
    invariants. *)
val check_meth : ?ssa:bool -> Tac.meth -> violation list

val check_program : ?ssa:bool -> Program.t -> violation list
