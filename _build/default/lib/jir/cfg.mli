(** Control-flow graph utilities over {!Tac.meth} bodies. Edges include
    exceptional successors (block → handler). *)

type t = {
  nblocks : int;
  succs : int list array;
  preds : int list array;
  rpo : int array;           (** reverse postorder sequence of block ids *)
  rpo_index : int array;     (** position of each block in [rpo], or -1 *)
}

val build : Tac.meth -> t

(** Is the block reachable from the entry? *)
val reachable : t -> int -> bool

(** Remove unreachable blocks and renumber in place; returns the rebuilt
    CFG. *)
val compact : Tac.meth -> t
