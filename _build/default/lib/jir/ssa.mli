(** SSA construction (Cytron et al.) and def-site queries. *)

type def_site =
  | Def_param of int            (** parameter index *)
  | Def_instr of int * int      (** block, instruction index *)
  | Def_phi of int * int        (** block, phi index *)

(** Map each register of an SSA-form method to its unique definition
    ([None] for dead registers). *)
val def_sites : Tac.meth -> def_site option array

(** Convert a method to SSA form in place. Formal parameters keep their
    register numbers 0..arity-1. *)
val convert : Tac.meth -> unit

val convert_program : Program.t -> unit
