(** Lowering from MJava AST to three-address code.

    Beyond the routine translation, this phase implements the paper's
    string-carrier treatment (§4.2.1): calls on receivers of static type
    [String] are replaced by primitive [Strcat]/[Move]/[Const] operations, so
    strings never need to be tracked through the heap by the pointer
    analysis. [StringBuffer]/[StringBuilder] are ordinary model-JDK classes
    whose bodies bottom out in [String] intrinsics.

    Implicit constructor chaining, default constructors, instance field
    initializers and per-class [<clinit>] methods are synthesized here. *)

open Ast

exception Lower_error of string * pos

let errorf pos fmt = Fmt.kstr (fun s -> raise (Lower_error (s, pos))) fmt

(* ------------------------------------------------------------------ *)
(* Block builders                                                     *)
(* ------------------------------------------------------------------ *)

type bbuilder = {
  mutable rinstrs : Tac.instr list;        (* reversed *)
  mutable term : Tac.terminator option;
  mutable bhandlers : int list;
}

type env = {
  prog : Program.t;
  cls : string;
  meth_id : string;
  is_static : bool;
  library : bool;
  synthetic : bool;
  mutable nvars : int;
  locals : (string, Tac.var * typ) Hashtbl.t;
  mutable blocks : bbuilder array;
  mutable nblocks : int;
  mutable cur : int;
  mutable loop_stack : (int * int) list;   (* (break target, continue target) *)
  mutable handlers : int list list;        (* stack of active handler groups *)
}

let fresh_var env =
  let v = env.nvars in
  env.nvars <- v + 1;
  v

let new_block env =
  if env.nblocks = Array.length env.blocks then begin
    let bigger =
      Array.init (2 * env.nblocks + 4) (fun i ->
          if i < env.nblocks then env.blocks.(i)
          else { rinstrs = []; term = None; bhandlers = [] })
    in
    env.blocks <- bigger
  end;
  let idx = env.nblocks in
  env.blocks.(idx) <-
    { rinstrs = []; term = None;
      bhandlers = List.concat env.handlers };
  env.nblocks <- idx + 1;
  idx

let emit env ins =
  let b = env.blocks.(env.cur) in
  if b.term = None then b.rinstrs <- ins :: b.rinstrs

let set_term env t =
  let b = env.blocks.(env.cur) in
  if b.term = None then b.term <- Some t

let terminated env = env.blocks.(env.cur).term <> None

(* Jump to a fresh block and make it current. *)
let start_block env idx =
  env.cur <- idx

(* ------------------------------------------------------------------ *)
(* Best-effort expression typing                                      *)
(* ------------------------------------------------------------------ *)

let rec typeof env (e : expr) : typ option =
  match e.e with
  | Int_lit _ -> Some Tint
  | Bool_lit _ -> Some Tbool
  | Char_lit _ -> Some Tchar
  | Str_lit _ -> Some (Tclass "String")
  | Null_lit -> Some (Tclass "Object")
  | This -> Some (Tclass env.cls)
  | Var name ->
    (match Hashtbl.find_opt env.locals name with
     | Some (_, t) -> Some t
     | None ->
       (match Classtable.resolve_field env.prog.Program.table env.cls name with
        | Some f -> Some f.fi_typ
        | None -> None))
  | Field_access (o, f) ->
    (match typeof env o with
     | Some (Tarray _) when String.equal f "length" -> Some Tint
     | Some (Tclass c) ->
       (match Classtable.resolve_field env.prog.Program.table c f with
        | Some fi -> Some fi.fi_typ
        | None -> None)
     | _ -> None)
  | Static_field (c, f) ->
    (match Classtable.resolve_field env.prog.Program.table c f with
     | Some fi -> Some fi.fi_typ
     | None -> None)
  | Array_index (a, _) ->
    (match typeof env a with
     | Some (Tarray t) -> Some t
     | _ -> None)
  | Array_length _ -> Some Tint
  | Call c -> typeof_call env c
  | New (c, _) -> Some (Tclass c)
  | New_array (t, _) | New_array_init (t, _) -> Some (Tarray t)
  | Class_lit _ -> Some (Tclass "Class")
  | Binary ((Add | Sub | Mul | Div | Mod), a, b) ->
    if is_stringy env a || is_stringy env b then Some (Tclass "String")
    else Some Tint
  | Binary ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> Some Tbool
  | Unary (Neg, _) -> Some Tint
  | Unary (Not, _) -> Some Tbool
  | Cast (t, _) -> Some t
  | Instance_of _ -> Some Tbool
  | Assign (_, rhs) -> typeof env rhs
  | Cond (_, a, b) ->
    (match typeof env a with Some _ as r -> r | None -> typeof env b)

and is_stringy env e =
  match e.e with
  | Str_lit _ -> true
  | _ -> (match typeof env e with
          | Some (Tclass "String") -> true
          | _ -> false)

and typeof_call env (c : call) : typ option =
  let table = env.prog.Program.table in
  let lookup cls arity =
    Classtable.lookup_method table cls c.mname arity
  in
  let nargs = List.length c.args in
  match c.recv with
  | Implicit ->
    (match lookup env.cls (nargs + 1) with
     | Some mi -> Some mi.mi_ret
     | None ->
       (match lookup env.cls nargs with
        | Some mi -> Some mi.mi_ret
        | None -> None))
  | Super ->
    (match Classtable.find_opt table env.cls with
     | Some { cl_super = Some s; _ } ->
       (match lookup s (nargs + 1) with
        | Some mi -> Some mi.mi_ret
        | None -> None)
     | _ -> None)
  | Cls cls ->
    (match lookup cls nargs with
     | Some mi -> Some mi.mi_ret
     | None ->
       (match lookup cls (nargs + 1) with
        | Some mi -> Some mi.mi_ret
        | None -> None))
  | On o ->
    (match typeof env o with
     | Some (Tclass cls) ->
       (match lookup cls (nargs + 1) with
        | Some mi -> Some mi.mi_ret
        | None -> None)
     | _ -> None)

(* ------------------------------------------------------------------ *)
(* String-carrier intrinsics (§4.2.1)                                 *)
(* ------------------------------------------------------------------ *)

let default_const_for = function
  | Tint -> Tac.Cint 0
  | Tbool -> Tac.Cbool true
  | Tchar -> Tac.Cchar ' '
  | _ -> Tac.Cnull

(* [lower_string_intrinsic env ret_typ recv args] models a call on a
   receiver of static type String: a String-returning method yields a value
   derived from the receiver and every String-typed argument; any other
   return type yields an opaque constant. Returns the result register. *)
let lower_string_intrinsic env ~(ret : typ) ~recv ~(string_args : Tac.var list) =
  match ret with
  | Tclass "String" | Tclass "Object" ->
    let folded =
      List.fold_left
        (fun acc a ->
           let d = fresh_var env in
           emit env (Tac.Strcat (d, acc, a));
           d)
        recv string_args
    in
    let d = fresh_var env in
    emit env (Tac.Move (d, folded));
    d
  | t ->
    let d = fresh_var env in
    emit env (Tac.Const (d, default_const_for t));
    d

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                *)
(* ------------------------------------------------------------------ *)

let resolve_field_or env pos cls fname =
  match Classtable.resolve_field env.prog.Program.table cls fname with
  | Some fi -> { Tac.fclass = fi.fi_class; fname = fi.fi_name }
  | None ->
    if Classtable.mem env.prog.Program.table cls then
      errorf pos "unknown field %s.%s" cls fname
    else { Tac.fclass = "Object"; fname }

let rec lower_expr env (e : expr) : Tac.var =
  match e.e with
  | Int_lit v ->
    let d = fresh_var env in emit env (Tac.Const (d, Tac.Cint v)); d
  | Bool_lit b ->
    let d = fresh_var env in emit env (Tac.Const (d, Tac.Cbool b)); d
  | Char_lit c ->
    let d = fresh_var env in emit env (Tac.Const (d, Tac.Cchar c)); d
  | Str_lit s ->
    let d = fresh_var env in emit env (Tac.Const (d, Tac.Cstr s)); d
  | Null_lit ->
    let d = fresh_var env in emit env (Tac.Const (d, Tac.Cnull)); d
  | This ->
    if env.is_static then errorf e.epos "'this' in static context";
    0
  | Var name -> lower_var_read env e.epos name
  | Field_access (o, f) ->
    (match typeof env o, f with
     | Some (Tarray _), "length" ->
       let a = lower_expr env o in
       let d = fresh_var env in
       emit env (Tac.Array_len (d, a));
       d
     | ot, _ ->
       let cls = match ot with Some (Tclass c) -> c | _ -> "Object" in
       let ov = lower_expr env o in
       let fld = resolve_field_or env e.epos cls f in
       let d = fresh_var env in
       emit env (Tac.Load (d, ov, fld));
       d)
  | Static_field (c, f) ->
    let fld = resolve_field_or env e.epos c f in
    let d = fresh_var env in
    emit env (Tac.Sload (d, fld));
    d
  | Array_index (a, i) ->
    let av = lower_expr env a in
    let iv = lower_expr env i in
    let d = fresh_var env in
    emit env (Tac.Aload (d, av, iv));
    d
  | Array_length a ->
    let av = lower_expr env a in
    let d = fresh_var env in
    emit env (Tac.Array_len (d, av));
    d
  | Call c -> lower_call env e.epos c
  | New (c, args) -> lower_new env e.epos c args
  | New_array (t, len) ->
    let lv = lower_expr env len in
    let d = fresh_var env in
    let site =
      Program.fresh_site env.prog ~meth:env.meth_id
        ~kind:(Program.Alloc_site (Fmt.str "%a[]" pp_typ t))
    in
    emit env (Tac.New_array (d, t, lv, site));
    d
  | New_array_init (t, elems) ->
    let lv = fresh_var env in
    emit env (Tac.Const (lv, Tac.Cint (List.length elems)));
    let d = fresh_var env in
    let site =
      Program.fresh_site env.prog ~meth:env.meth_id
        ~kind:(Program.Alloc_site (Fmt.str "%a[]" pp_typ t))
    in
    emit env (Tac.New_array (d, t, lv, site));
    List.iteri
      (fun i elem ->
         let iv = fresh_var env in
         emit env (Tac.Const (iv, Tac.Cint i));
         let ev = lower_expr env elem in
         emit env (Tac.Astore (d, iv, ev)))
      elems;
    d
  | Class_lit name ->
    (* Foo.class lowers to Class.forName("Foo"): the reflection pass then
       resolves it like any constant forName *)
    let sv = fresh_var env in
    emit env (Tac.Const (sv, Tac.Cstr name));
    let target = { Tac.rclass = "Class"; rname = "forName"; rarity = 1 } in
    let site =
      Program.fresh_site env.prog ~meth:env.meth_id
        ~kind:(Program.Call_site target)
    in
    let d = fresh_var env in
    emit env
      (Tac.Call { ret = Some d; kind = Tac.Static; target; args = [ sv ]; site });
    d
  | Binary (Add, a, b) when is_stringy env a || is_stringy env b ->
    let av = lower_expr env a in
    let bv = lower_expr env b in
    let d = fresh_var env in
    emit env (Tac.Strcat (d, av, bv));
    d
  | Binary (op, a, b) ->
    let av = lower_expr env a in
    let bv = lower_expr env b in
    let d = fresh_var env in
    emit env (Tac.Binop (d, op, av, bv));
    d
  | Unary (op, a) ->
    let av = lower_expr env a in
    let d = fresh_var env in
    emit env (Tac.Unop (d, op, av));
    d
  | Cast (t, a) ->
    let av = lower_expr env a in
    let d = fresh_var env in
    emit env (Tac.Cast (d, t, av));
    d
  | Instance_of (a, c) ->
    let av = lower_expr env a in
    let d = fresh_var env in
    emit env (Tac.Instance_of (d, c, av));
    d
  | Assign (lhs, rhs) -> lower_assign env e.epos lhs rhs
  | Cond (c, a, b) ->
    let cv = lower_expr env c in
    let d = fresh_var env in
    let tb = new_block env and eb = new_block env and join = new_block env in
    set_term env (Tac.If (cv, tb, eb));
    start_block env tb;
    let av = lower_expr env a in
    emit env (Tac.Move (d, av));
    set_term env (Tac.Goto join);
    start_block env eb;
    let bv = lower_expr env b in
    emit env (Tac.Move (d, bv));
    set_term env (Tac.Goto join);
    start_block env join;
    d

and lower_var_read env pos name =
  match Hashtbl.find_opt env.locals name with
  | Some (v, _) -> v
  | None ->
    (match Classtable.resolve_field env.prog.Program.table env.cls name with
     | Some fi when fi.fi_static ->
       let d = fresh_var env in
       emit env (Tac.Sload (d, { Tac.fclass = fi.fi_class; fname = name }));
       d
     | Some fi ->
       if env.is_static then errorf pos "instance field %s in static context" name;
       let d = fresh_var env in
       emit env (Tac.Load (d, 0, { Tac.fclass = fi.fi_class; fname = name }));
       d
     | None -> errorf pos "unknown variable %s" name)

and lower_assign env pos lhs rhs =
  match lhs.e with
  | Var name ->
    (match Hashtbl.find_opt env.locals name with
     | Some (v, _) ->
       let rv = lower_expr env rhs in
       emit env (Tac.Move (v, rv));
       v
     | None ->
       (match Classtable.resolve_field env.prog.Program.table env.cls name with
        | Some fi when fi.fi_static ->
          let rv = lower_expr env rhs in
          emit env (Tac.Sstore ({ Tac.fclass = fi.fi_class; fname = name }, rv));
          rv
        | Some fi ->
          if env.is_static then
            errorf pos "instance field %s in static context" name;
          let rv = lower_expr env rhs in
          emit env (Tac.Store (0, { Tac.fclass = fi.fi_class; fname = name }, rv));
          rv
        | None -> errorf pos "unknown variable %s" name))
  | Field_access (o, f) ->
    let cls = match typeof env o with Some (Tclass c) -> c | _ -> "Object" in
    let ov = lower_expr env o in
    let fld = resolve_field_or env pos cls f in
    let rv = lower_expr env rhs in
    emit env (Tac.Store (ov, fld, rv));
    rv
  | Static_field (c, f) ->
    let fld = resolve_field_or env pos c f in
    let rv = lower_expr env rhs in
    emit env (Tac.Sstore (fld, rv));
    rv
  | Array_index (a, i) ->
    let av = lower_expr env a in
    let iv = lower_expr env i in
    let rv = lower_expr env rhs in
    emit env (Tac.Astore (av, iv, rv));
    rv
  | _ -> errorf pos "invalid assignment target"

and lower_new env pos c args =
  let table = env.prog.Program.table in
  if not (Classtable.mem table c) then errorf pos "unknown class %s" c;
  let d = fresh_var env in
  let asite =
    Program.fresh_site env.prog ~meth:env.meth_id ~kind:(Program.Alloc_site c)
  in
  emit env (Tac.New (d, c, asite));
  let argvs = List.map (lower_expr env) args in
  let arity = List.length args + 1 in
  let target = { Tac.rclass = c; rname = "<init>"; rarity = arity } in
  let csite =
    Program.fresh_site env.prog ~meth:env.meth_id
      ~kind:(Program.Call_site target)
  in
  emit env
    (Tac.Call { ret = None; kind = Tac.Special; target; args = d :: argvs;
                site = csite });
  d

and lower_call env pos (c : call) : Tac.var =
  let table = env.prog.Program.table in
  let argvs () = List.map (lower_expr env) c.args in
  let nargs = List.length c.args in
  let emit_call ~kind ~target ~args ~ret_typ =
    let site =
      Program.fresh_site env.prog ~meth:env.meth_id
        ~kind:(Program.Call_site target)
    in
    let ret = fresh_var env in
    emit env (Tac.Call { ret = Some ret; kind; target; args; site });
    ignore ret_typ;
    ret
  in
  let virtual_call recv_cls recv_var =
    (* String receivers are string carriers: replace the call with primitive
       data-flow operations instead of a Call instruction. *)
    if String.equal recv_cls "String" then begin
      let args = argvs () in
      let string_args =
        List.filteri
          (fun i _ ->
             match List.nth_opt c.args i with
             | Some a -> is_stringy env a
             | None -> false)
          args
      in
      let ret =
        match Classtable.lookup_method table "String" c.mname (nargs + 1) with
        | Some mi -> mi.mi_ret
        | None -> Tclass "String"
      in
      lower_string_intrinsic env ~ret ~recv:recv_var ~string_args
    end
    else begin
      let target =
        match Classtable.lookup_method table recv_cls c.mname (nargs + 1) with
        | Some mi ->
          { Tac.rclass = mi.mi_class; rname = c.mname; rarity = nargs + 1 }
        | None ->
          { Tac.rclass = recv_cls; rname = c.mname; rarity = nargs + 1 }
      in
      let args = recv_var :: argvs () in
      emit_call ~kind:Tac.Virtual ~target ~args ~ret_typ:()
    end
  in
  match c.recv with
  | On o ->
    let recv_cls =
      match typeof env o with
      | Some (Tclass cls) -> cls
      | Some (Tarray _) -> "Object"
      | _ -> "Object"
    in
    let recv_var = lower_expr env o in
    virtual_call recv_cls recv_var
  | Implicit ->
    (* instance method of this class (or supers) first, then static *)
    (match Classtable.lookup_method table env.cls c.mname (nargs + 1) with
     | Some mi when not mi.mi_static ->
       if env.is_static then
         errorf pos "instance method %s called from static context" c.mname;
       virtual_call env.cls 0
     | _ ->
       (match Classtable.lookup_method table env.cls c.mname nargs with
        | Some mi when mi.mi_static ->
          let target =
            { Tac.rclass = mi.mi_class; rname = c.mname; rarity = nargs }
          in
          emit_call ~kind:Tac.Static ~target ~args:(argvs ()) ~ret_typ:()
        | _ -> errorf pos "unknown method %s in class %s" c.mname env.cls))
  | Cls cls ->
    (match Classtable.lookup_method table cls c.mname nargs with
     | Some mi when mi.mi_static ->
       let target =
         { Tac.rclass = mi.mi_class; rname = c.mname; rarity = nargs }
       in
       emit_call ~kind:Tac.Static ~target ~args:(argvs ()) ~ret_typ:()
     | _ ->
       if Classtable.mem table cls then
         errorf pos "unknown static method %s.%s/%d" cls c.mname nargs
       else
         (* call on an unknown class: synthesize an opaque static target *)
         let target = { Tac.rclass = cls; rname = c.mname; rarity = nargs } in
         emit_call ~kind:Tac.Static ~target ~args:(argvs ()) ~ret_typ:())
  | Super ->
    if env.is_static then errorf pos "'super' in static context";
    let super =
      match Classtable.find_opt table env.cls with
      | Some { cl_super = Some s; _ } -> s
      | _ -> errorf pos "class %s has no superclass" env.cls
    in
    if String.equal c.mname "<init>" then begin
      let target =
        { Tac.rclass = super; rname = "<init>"; rarity = nargs + 1 }
      in
      let args = 0 :: argvs () in
      let site =
        Program.fresh_site env.prog ~meth:env.meth_id
          ~kind:(Program.Call_site target)
      in
      emit env (Tac.Call { ret = None; kind = Tac.Special; target; args; site });
      0
    end
    else begin
      let target =
        match Classtable.lookup_method table super c.mname (nargs + 1) with
        | Some mi ->
          { Tac.rclass = mi.mi_class; rname = c.mname; rarity = nargs + 1 }
        | None ->
          { Tac.rclass = super; rname = c.mname; rarity = nargs + 1 }
      in
      emit_call ~kind:Tac.Special ~target ~args:(0 :: argvs ()) ~ret_typ:()
    end

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                 *)
(* ------------------------------------------------------------------ *)

let rec lower_stmt env (s : stmt) : unit =
  if terminated env then begin
    (* dead code after return/throw/break: lower into a fresh unreachable
       block so the registers stay well-formed *)
    let b = new_block env in
    start_block env b
  end;
  match s.s with
  | Block stmts -> List.iter (lower_stmt env) stmts
  | Empty -> ()
  | Var_decl (t, name, init) ->
    let v = fresh_var env in
    Hashtbl.replace env.locals name (v, t);
    (match init with
     | Some e ->
       let rv = lower_expr env e in
       emit env (Tac.Move (v, rv))
     | None -> emit env (Tac.Const (v, default_const_for t)))
  | Expr e -> ignore (lower_expr env e)
  | If (cond, then_, else_) ->
    let cv = lower_expr env cond in
    let tb = new_block env in
    let eb = new_block env in
    let join = new_block env in
    set_term env (Tac.If (cv, tb, eb));
    start_block env tb;
    lower_stmt env then_;
    set_term env (Tac.Goto join);
    start_block env eb;
    (match else_ with Some s -> lower_stmt env s | None -> ());
    set_term env (Tac.Goto join);
    start_block env join
  | While (cond, body) ->
    let header = new_block env in
    set_term env (Tac.Goto header);
    start_block env header;
    let cv = lower_expr env cond in
    let bodyb = new_block env in
    let exit = new_block env in
    set_term env (Tac.If (cv, bodyb, exit));
    start_block env bodyb;
    env.loop_stack <- (exit, header) :: env.loop_stack;
    lower_stmt env body;
    env.loop_stack <- List.tl env.loop_stack;
    set_term env (Tac.Goto header);
    start_block env exit
  | For (init, cond, step, body) ->
    (match init with Some s -> lower_stmt env s | None -> ());
    let header = new_block env in
    set_term env (Tac.Goto header);
    start_block env header;
    let cv =
      match cond with
      | Some c -> lower_expr env c
      | None ->
        let d = fresh_var env in
        emit env (Tac.Const (d, Tac.Cbool true));
        d
    in
    let bodyb = new_block env in
    let stepb = new_block env in
    let exit = new_block env in
    set_term env (Tac.If (cv, bodyb, exit));
    start_block env bodyb;
    env.loop_stack <- (exit, stepb) :: env.loop_stack;
    lower_stmt env body;
    env.loop_stack <- List.tl env.loop_stack;
    set_term env (Tac.Goto stepb);
    start_block env stepb;
    (match step with Some e -> ignore (lower_expr env e) | None -> ());
    set_term env (Tac.Goto header);
    start_block env exit
  | Return None -> set_term env (Tac.Return None)
  | Return (Some e) ->
    let v = lower_expr env e in
    set_term env (Tac.Return (Some v))
  | Throw e ->
    let v = lower_expr env e in
    set_term env (Tac.Throw v)
  | Switch (scrutinee, cases, default) ->
    (* no-fall-through switch lowers to an if/else chain on equality *)
    let v = lower_expr env scrutinee in
    let exit = new_block env in
    let lower_body stmts =
      (* break inside a switch exits the switch; continue still targets the
         enclosing loop *)
      let cont =
        match env.loop_stack with (_, c) :: _ -> c | [] -> exit
      in
      env.loop_stack <- (exit, cont) :: env.loop_stack;
      List.iter (lower_stmt env) stmts;
      env.loop_stack <- List.tl env.loop_stack;
      set_term env (Tac.Goto exit)
    in
    let rec chain = function
      | (labels, body) :: rest ->
        (* cond = v == l1 || v == l2 || ... *)
        let cond =
          List.fold_left
            (fun acc label ->
               let lv = lower_expr env label in
               let eq = fresh_var env in
               emit env (Tac.Binop (eq, Ast.Eq, v, lv));
               match acc with
               | None -> Some eq
               | Some prev ->
                 let both = fresh_var env in
                 emit env (Tac.Binop (both, Ast.Or, prev, eq));
                 Some both)
            None labels
        in
        let body_blk = new_block env in
        let next_blk = new_block env in
        (match cond with
         | Some c -> set_term env (Tac.If (c, body_blk, next_blk))
         | None -> set_term env (Tac.Goto next_blk));
        start_block env body_blk;
        lower_body body;
        start_block env next_blk;
        chain rest
      | [] ->
        (match default with
         | Some body -> lower_body body
         | None -> set_term env (Tac.Goto exit))
    in
    chain cases;
    start_block env exit
  | Do_while (body, cond) ->
    let body_blk = new_block env in
    let cond_blk = new_block env in
    let exit = new_block env in
    set_term env (Tac.Goto body_blk);
    start_block env body_blk;
    env.loop_stack <- (exit, cond_blk) :: env.loop_stack;
    lower_stmt env body;
    env.loop_stack <- List.tl env.loop_stack;
    set_term env (Tac.Goto cond_blk);
    start_block env cond_blk;
    let cv = lower_expr env cond in
    set_term env (Tac.If (cv, body_blk, exit));
    start_block env exit
  | Break ->
    (match env.loop_stack with
     | (brk, _) :: _ -> set_term env (Tac.Goto brk)
     | [] -> errorf s.spos "break outside loop")
  | Continue ->
    (match env.loop_stack with
     | (_, cont) :: _ -> set_term env (Tac.Goto cont)
     | [] -> errorf s.spos "continue outside loop")
  | Try (body, clauses) ->
    let handler_blocks = List.map (fun _ -> new_block env) clauses in
    let join = new_block env in
    let try_start = new_block env in
    set_term env (Tac.Goto try_start);
    env.handlers <- handler_blocks :: env.handlers;
    start_block env try_start;
    (* the entry block of the region was created under the handler scope
       above, so it carries the exceptional edges *)
    env.blocks.(try_start).bhandlers <- List.concat env.handlers;
    List.iter (lower_stmt env) body;
    set_term env (Tac.Goto join);
    env.handlers <- List.tl env.handlers;
    List.iter2
      (fun hb (exn_cls, name, cbody) ->
         start_block env hb;
         let v = fresh_var env in
         Hashtbl.replace env.locals name (v, Tclass exn_cls);
         emit env (Tac.Catch_entry (v, exn_cls));
         List.iter (lower_stmt env) cbody;
         set_term env (Tac.Goto join))
      handler_blocks clauses;
    start_block env join

(* ------------------------------------------------------------------ *)
(* Method/class lowering                                              *)
(* ------------------------------------------------------------------ *)

let finish_blocks env : Tac.block array =
  Array.init env.nblocks (fun i ->
      let b = env.blocks.(i) in
      { Tac.phis = [];
        instrs = Array.of_list (List.rev b.rinstrs);
        term = (match b.term with Some t -> t | None -> Tac.Return None);
        handlers = b.bhandlers })

let make_env prog ~cls ~meth_id ~is_static ~library ~synthetic =
  { prog; cls; meth_id; is_static; library; synthetic;
    nvars = 0;
    locals = Hashtbl.create 16;
    blocks = Array.init 8 (fun _ -> { rinstrs = []; term = None; bhandlers = [] });
    nblocks = 0;
    cur = 0;
    loop_stack = [];
    handlers = [] }

let bind_params env ~is_static ~cls params =
  if not is_static then begin
    let v = fresh_var env in
    Hashtbl.replace env.locals "this" (v, Tclass cls)
  end;
  List.iter
    (fun (t, name) ->
       let v = fresh_var env in
       Hashtbl.replace env.locals name (v, t))
    params

let lower_method prog ~library ~synthetic ~cls (md : method_decl) : Tac.meth =
  let is_static = has_mod Static md.md_mods in
  let arity = List.length md.md_params + if is_static then 0 else 1 in
  let meth_id = Printf.sprintf "%s.%s/%d" cls md.md_name arity in
  let env = make_env prog ~cls ~meth_id ~is_static ~library ~synthetic in
  bind_params env ~is_static ~cls md.md_params;
  let entry = new_block env in
  start_block env entry;
  (match md.md_body with
   | Some body -> List.iter (lower_stmt env) body
   | None -> ());
  set_term env (Tac.Return None);
  { Tac.m_class = cls;
    m_name = md.md_name;
    m_arity = arity;
    m_static = is_static;
    m_ret = md.md_ret;
    m_param_types = List.map fst md.md_params;
    m_blocks = finish_blocks env;
    m_nvars = env.nvars;
    m_synthetic = synthetic;
    m_library = library;
    m_has_body = md.md_body <> None }

let lower_ctor prog ~library ~synthetic ~cls ~(fields : field_decl list)
    (cd : ctor_decl) : Tac.meth =
  let arity = List.length cd.cd_params + 1 in
  let meth_id = Printf.sprintf "%s.<init>/%d" cls arity in
  let env = make_env prog ~cls ~meth_id ~is_static:false ~library ~synthetic in
  bind_params env ~is_static:false ~cls cd.cd_params;
  let entry = new_block env in
  start_block env entry;
  (* implicit super() unless the body begins with an explicit super(...) *)
  let explicit_super =
    match cd.cd_body with
    | { s = Expr { e = Call { recv = Super; mname = "<init>"; _ }; _ }; _ } :: _ ->
      true
    | _ -> false
  in
  let table = prog.Program.table in
  (if not explicit_super then
     match Classtable.find_opt table cls with
     | Some { cl_super = Some s; _ } when Classtable.mem table s ->
       let target = { Tac.rclass = s; rname = "<init>"; rarity = 1 } in
       let site =
         Program.fresh_site prog ~meth:meth_id ~kind:(Program.Call_site target)
       in
       emit env
         (Tac.Call { ret = None; kind = Tac.Special; target; args = [ 0 ];
                     site })
     | _ -> ());
  (* instance field initializers *)
  List.iter
    (fun (f : field_decl) ->
       if not (has_mod Static f.f_mods) then
         match f.f_init with
         | Some e ->
           let v = lower_expr env e in
           emit env (Tac.Store (0, { Tac.fclass = cls; fname = f.f_name }, v))
         | None -> ())
    fields;
  List.iter (lower_stmt env) cd.cd_body;
  set_term env (Tac.Return None);
  { Tac.m_class = cls;
    m_name = "<init>";
    m_arity = arity;
    m_static = false;
    m_ret = Tvoid;
    m_param_types = List.map fst cd.cd_params;
    m_blocks = finish_blocks env;
    m_nvars = env.nvars;
    m_synthetic = synthetic;
    m_library = library;
    m_has_body = true }

let lower_clinit prog ~library ~cls (fields : field_decl list) : Tac.meth option =
  let static_inits =
    List.filter
      (fun (f : field_decl) -> has_mod Static f.f_mods && f.f_init <> None)
      fields
  in
  if static_inits = [] then None
  else begin
    let meth_id = Printf.sprintf "%s.<clinit>/0" cls in
    let env =
      make_env prog ~cls ~meth_id ~is_static:true ~library ~synthetic:true
    in
    let entry = new_block env in
    start_block env entry;
    List.iter
      (fun (f : field_decl) ->
         match f.f_init with
         | Some e ->
           let v = lower_expr env e in
           emit env (Tac.Sstore ({ Tac.fclass = cls; fname = f.f_name }, v))
         | None -> ())
      static_inits;
    set_term env (Tac.Return None);
    Some
      { Tac.m_class = cls;
        m_name = "<clinit>";
        m_arity = 0;
        m_static = true;
        m_ret = Tvoid;
        m_param_types = [];
        m_blocks = finish_blocks env;
        m_nvars = env.nvars;
        m_synthetic = true;
        m_library = library;
        m_has_body = true }
  end

let default_ctor pos : ctor_decl =
  { cd_mods = [ Public ]; cd_params = []; cd_body = []; cd_pos = pos }

let lower_class prog ~library (c : class_decl) : unit =
  let ctors = if c.c_ctors = [] then [ default_ctor c.c_pos ] else c.c_ctors in
  List.iter
    (fun cd ->
       let m =
         lower_ctor prog ~library ~synthetic:false ~cls:c.c_name
           ~fields:c.c_fields cd
       in
       Program.add_method prog m)
    ctors;
  List.iter
    (fun md ->
       let m = lower_method prog ~library ~synthetic:false ~cls:c.c_name md in
       Program.add_method prog m)
    c.c_methods;
  (match lower_clinit prog ~library ~cls:c.c_name c.c_fields with
   | Some m ->
     Program.add_method prog m;
     prog.Program.clinits <- prog.Program.clinits @ [ Tac.method_id m ]
   | None -> ());
  (* register the synthesized default ctor in the class table *)
  if c.c_ctors = [] then
    match Classtable.find_opt prog.Program.table c.c_name with
    | Some cl -> cl.cl_ctor_arities <- [ 1 ]
    | None -> ()

(** Register declarations in the class table without lowering bodies.
    Two-phase loading lets mutually recursive classes across files resolve. *)
let declare prog ~library (cu : compilation_unit) =
  List.iter (Classtable.add_decl prog.Program.table ~library) cu

(** Lower all class bodies of a previously declared compilation unit. *)
let define prog ~library (cu : compilation_unit) =
  List.iter
    (function
      | Class c -> lower_class prog ~library c
      | Interface _ -> ())
    cu

(** Convenience: declare then define a batch of compilation units.
    All units are declared before any body is lowered. *)
let load prog units =
  List.iter (fun (library, cu) -> declare prog ~library cu) units;
  List.iter (fun (library, cu) -> define prog ~library cu) units
