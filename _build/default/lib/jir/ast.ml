(** Abstract syntax for MJava, the Java-like input language of the analysis.

    MJava covers the Java subset that TAJ's techniques target: classes with
    single inheritance and interfaces, instance and static fields and methods,
    constructors, arrays, strings with [+] concatenation, exceptions with
    [try]/[catch]/[throw], casts and [instanceof], and the reflection and
    servlet API surfaces (which are ordinary classes of the model JDK).
    Generics are absent, as in pre-Java-5 enterprise code; raw collections
    plus casts are used instead. *)

type pos = { line : int; col : int }

let dummy_pos = { line = 0; col = 0 }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

(** Types as written in source. Reference types are not resolved yet. *)
type typ =
  | Tint
  | Tbool
  | Tchar
  | Tvoid
  | Tclass of string
  | Tarray of typ

let rec pp_typ ppf = function
  | Tint -> Fmt.string ppf "int"
  | Tbool -> Fmt.string ppf "boolean"
  | Tchar -> Fmt.string ppf "char"
  | Tvoid -> Fmt.string ppf "void"
  | Tclass c -> Fmt.string ppf c
  | Tarray t -> Fmt.pf ppf "%a[]" pp_typ t

let rec typ_equal a b =
  match a, b with
  | Tint, Tint | Tbool, Tbool | Tchar, Tchar | Tvoid, Tvoid -> true
  | Tclass c, Tclass d -> String.equal c d
  | Tarray s, Tarray t -> typ_equal s t
  | (Tint | Tbool | Tchar | Tvoid | Tclass _ | Tarray _), _ -> false

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

let pp_binop ppf op =
  Fmt.string ppf
    (match op with
     | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
     | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
     | Eq -> "==" | Ne -> "!="
     | And -> "&&" | Or -> "||")

type unop = Neg | Not

type expr = { e : expr_node; epos : pos }

and expr_node =
  | Int_lit of int
  | Bool_lit of bool
  | Str_lit of string
  | Char_lit of char
  | Null_lit
  | Var of string                          (* local, param, or implicit field *)
  | This
  | Field_access of expr * string
  | Static_field of string * string        (* Class.field *)
  | Array_index of expr * expr
  | Array_length of expr
  | Call of call
  | New of string * expr list
  | New_array of typ * expr
  | New_array_init of typ * expr list      (* new T[] { e1, e2, ... } *)
  | Class_lit of string                    (* Foo.class *)
  | Binary of binop * expr * expr
  | Unary of unop * expr
  | Cast of typ * expr
  | Instance_of of expr * string
  | Assign of expr * expr                  (* lhs must be lvalue *)
  | Cond of expr * expr * expr             (* e ? a : b *)

and call = {
  recv : receiver;
  mname : string;
  args : expr list;
}

and receiver =
  | Implicit                                (* this.m(..) or static in class *)
  | Super
  | On of expr
  | Cls of string                           (* static call Class.m(..) *)

type stmt = { s : stmt_node; spos : pos }

and stmt_node =
  | Block of stmt list
  | Var_decl of typ * string * expr option
  | Expr of expr
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of stmt option * expr option * expr option * stmt
  | Return of expr option
  | Throw of expr
  | Try of stmt list * (string * string * stmt list) list
      (* try body, [catch (ExnClass name) body] clauses *)
  | Switch of expr * (expr list * stmt list) list * stmt list option
      (* scrutinee, cases (labels, body), default body. MJava switch has no
         fall-through: each case body is implicitly terminated. *)
  | Do_while of stmt * expr
  | Break
  | Continue
  | Empty

type modifier =
  | Public | Private | Protected | Static | Native | Abstract | Final
  | Synchronized

type field_decl = {
  f_mods : modifier list;
  f_typ : typ;
  f_name : string;
  f_init : expr option;
  f_pos : pos;
}

type method_decl = {
  md_mods : modifier list;
  md_ret : typ;
  md_name : string;
  md_params : (typ * string) list;
  md_throws : string list;
  md_body : stmt list option;              (* None for abstract/native *)
  md_pos : pos;
}

type ctor_decl = {
  cd_mods : modifier list;
  cd_params : (typ * string) list;
  cd_body : stmt list;
  cd_pos : pos;
}

type class_decl = {
  c_name : string;
  c_super : string option;
  c_ifaces : string list;
  c_fields : field_decl list;
  c_methods : method_decl list;
  c_ctors : ctor_decl list;
  c_abstract : bool;
  c_pos : pos;
}

type iface_decl = {
  i_name : string;
  i_supers : string list;
  i_methods : method_decl list;            (* bodies are None *)
  i_pos : pos;
}

type decl = Class of class_decl | Interface of iface_decl

type compilation_unit = decl list

let has_mod m mods = List.exists (fun x -> x = m) mods

let decl_name = function
  | Class c -> c.c_name
  | Interface i -> i.i_name

(** Apply [f] to every expression (pre-order) in a statement list. *)
let rec iter_exprs (f : expr -> unit) (stmts : stmt list) : unit =
  List.iter (iter_stmt_exprs f) stmts

and iter_stmt_exprs f (s : stmt) : unit =
  match s.s with
  | Block stmts -> iter_exprs f stmts
  | Var_decl (_, _, init) -> Option.iter (iter_expr f) init
  | Expr e -> iter_expr f e
  | If (c, t, e) ->
    iter_expr f c;
    iter_stmt_exprs f t;
    Option.iter (iter_stmt_exprs f) e
  | While (c, body) -> iter_expr f c; iter_stmt_exprs f body
  | For (init, cond, step, body) ->
    Option.iter (iter_stmt_exprs f) init;
    Option.iter (iter_expr f) cond;
    Option.iter (iter_expr f) step;
    iter_stmt_exprs f body
  | Return e -> Option.iter (iter_expr f) e
  | Throw e -> iter_expr f e
  | Try (body, clauses) ->
    iter_exprs f body;
    List.iter (fun (_, _, cbody) -> iter_exprs f cbody) clauses
  | Switch (e, cases, default) ->
    iter_expr f e;
    List.iter
      (fun (labels, body) ->
         List.iter (iter_expr f) labels;
         iter_exprs f body)
      cases;
    Option.iter (iter_exprs f) default
  | Do_while (body, cond) -> iter_stmt_exprs f body; iter_expr f cond
  | Break | Continue | Empty -> ()

and iter_expr f (e : expr) : unit =
  f e;
  match e.e with
  | Int_lit _ | Bool_lit _ | Str_lit _ | Char_lit _ | Null_lit | This
  | Var _ | Static_field _ | Class_lit _ -> ()
  | Field_access (o, _) | Array_length o | Unary (_, o)
  | Cast (_, o) | Instance_of (o, _) -> iter_expr f o
  | Array_index (a, i) -> iter_expr f a; iter_expr f i
  | Call { recv; args; _ } ->
    (match recv with
     | On o -> iter_expr f o
     | Implicit | Super | Cls _ -> ());
    List.iter (iter_expr f) args
  | New (_, args) -> List.iter (iter_expr f) args
  | New_array (_, len) -> iter_expr f len
  | New_array_init (_, elems) -> List.iter (iter_expr f) elems
  | Binary (_, a, b) | Assign (a, b) -> iter_expr f a; iter_expr f b
  | Cond (c, a, b) -> iter_expr f c; iter_expr f a; iter_expr f b
