(** A lowered program: class table, method bodies, site registry and
    entrypoints. This is the unit of work handed to the analyses. *)

type site_kind =
  | Alloc_site of string          (** allocated class (or "T[]" for arrays) *)
  | Call_site of Tac.mref

type site_info = {
  si_id : int;
  si_method : string;             (** method id of the containing method *)
  si_kind : site_kind;
}

type t = {
  table : Classtable.t;
  methods : (string, Tac.meth) Hashtbl.t;       (* keyed by Tac.method_id *)
  sites : (int, site_info) Hashtbl.t;
  mutable next_site : int;
  mutable entrypoints : string list;            (* method ids, in order *)
  mutable clinits : string list;
}

let create () =
  { table = Classtable.create ();
    methods = Hashtbl.create 512;
    sites = Hashtbl.create 1024;
    next_site = 0;
    entrypoints = [];
    clinits = [] }

let fresh_site p ~meth ~kind =
  let id = p.next_site in
  p.next_site <- id + 1;
  Hashtbl.replace p.sites id { si_id = id; si_method = meth; si_kind = kind };
  id

let site_info p id = Hashtbl.find_opt p.sites id

let add_method p (m : Tac.meth) =
  Hashtbl.replace p.methods (Tac.method_id m) m

let find_method p id = Hashtbl.find_opt p.methods id

let add_entrypoint p id =
  if not (List.mem id p.entrypoints) then p.entrypoints <- p.entrypoints @ [ id ]

let iter_methods p f = Hashtbl.iter (fun _ m -> f m) p.methods

let method_count p = Hashtbl.length p.methods

let all_method_ids p =
  Hashtbl.fold (fun id _ acc -> id :: acc) p.methods []
  |> List.sort String.compare

(** Aggregate statistics used by the Table 2 reproduction. *)
type stats = {
  st_classes : int;
  st_methods : int;
  st_app_classes : int;
  st_app_methods : int;
  st_instrs : int;
}

let stats p =
  let classes = Classtable.all_classes p.table in
  let app_classes =
    List.filter (fun (c : Classtable.cls) -> not c.cl_library) classes
  in
  let methods = ref 0 and app_methods = ref 0 and instrs = ref 0 in
  iter_methods p (fun m ->
      incr methods;
      if not m.Tac.m_library then incr app_methods;
      Array.iter
        (fun (b : Tac.block) -> instrs := !instrs + Array.length b.instrs)
        m.Tac.m_blocks);
  { st_classes = List.length classes;
    st_methods = !methods;
    st_app_classes = List.length app_classes;
    st_app_methods = !app_methods;
    st_instrs = !instrs }
