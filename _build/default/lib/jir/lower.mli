(** Lowering from MJava AST to three-address code, including the
    string-carrier intrinsics of §4.2.1, implicit constructor chaining,
    default constructors, field initializers and per-class [<clinit>]
    synthesis. *)

exception Lower_error of string * Ast.pos

(** Register declarations in the class table without lowering bodies.
    Two-phase loading lets mutually recursive classes across files
    resolve. *)
val declare : Program.t -> library:bool -> Ast.compilation_unit -> unit

(** Lower all class bodies of a previously declared compilation unit. *)
val define : Program.t -> library:bool -> Ast.compilation_unit -> unit

(** Declare then define a batch of [(library, unit)] pairs; all units are
    declared before any body is lowered. *)
val load : Program.t -> (bool * Ast.compilation_unit) list -> unit
