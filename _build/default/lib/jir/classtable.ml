(** Class hierarchy: registration, subtyping, field and method resolution.

    The table is built from parsed declarations before lowering. Virtual
    dispatch during call-graph construction asks {!dispatch} for the concrete
    implementation reached from a runtime receiver class. *)

type kind = Class_kind | Interface_kind

type minfo = {
  mi_class : string;       (* declaring class *)
  mi_name : string;
  mi_arity : int;          (* formals incl. receiver for instance methods *)
  mi_static : bool;
  mi_abstract : bool;
  mi_native : bool;
  mi_ret : Ast.typ;
  mi_params : Ast.typ list; (* declared parameter types, excl. receiver *)
}

type finfo = {
  fi_class : string;
  fi_name : string;
  fi_typ : Ast.typ;
  fi_static : bool;
}

type cls = {
  cl_name : string;
  cl_kind : kind;
  cl_super : string option;
  cl_ifaces : string list;
  cl_abstract : bool;
  cl_library : bool;
  cl_fields : (string, finfo) Hashtbl.t;
  cl_methods : (string * int, minfo) Hashtbl.t;
  mutable cl_ctor_arities : int list;
}

type t = {
  classes : (string, cls) Hashtbl.t;
  mutable subclass_cache : (string * string, bool) Hashtbl.t;
}

exception Unknown_class of string
exception Hierarchy_error of string

let create () =
  { classes = Hashtbl.create 256; subclass_cache = Hashtbl.create 1024 }

let mem t name = Hashtbl.mem t.classes name

let find t name =
  match Hashtbl.find_opt t.classes name with
  | Some c -> c
  | None -> raise (Unknown_class name)

let find_opt t name = Hashtbl.find_opt t.classes name

let iter t f = Hashtbl.iter (fun _ c -> f c) t.classes

let all_classes t =
  Hashtbl.fold (fun _ c acc -> c :: acc) t.classes []
  |> List.sort (fun a b -> String.compare a.cl_name b.cl_name)

(* ------------------------------------------------------------------ *)
(* Registration                                                       *)
(* ------------------------------------------------------------------ *)

let arity_of_decl (m : Ast.method_decl) =
  let static = Ast.has_mod Ast.Static m.md_mods in
  List.length m.md_params + if static then 0 else 1

let add_decl t ~library (d : Ast.decl) =
  let name = Ast.decl_name d in
  if Hashtbl.mem t.classes name then
    raise (Hierarchy_error ("duplicate class " ^ name));
  let cls =
    match d with
    | Ast.Class c ->
      let fields = Hashtbl.create 8 in
      List.iter
        (fun (f : Ast.field_decl) ->
           Hashtbl.replace fields f.f_name
             { fi_class = name; fi_name = f.f_name; fi_typ = f.f_typ;
               fi_static = Ast.has_mod Ast.Static f.f_mods })
        c.c_fields;
      let methods = Hashtbl.create 8 in
      List.iter
        (fun (m : Ast.method_decl) ->
           let static = Ast.has_mod Ast.Static m.md_mods in
           let arity = arity_of_decl m in
           Hashtbl.replace methods (m.md_name, arity)
             { mi_class = name; mi_name = m.md_name; mi_arity = arity;
               mi_static = static;
               mi_abstract = Ast.has_mod Ast.Abstract m.md_mods
                             || m.md_body = None
                                && not (Ast.has_mod Ast.Native m.md_mods);
               mi_native = Ast.has_mod Ast.Native m.md_mods;
               mi_ret = m.md_ret;
               mi_params = List.map fst m.md_params })
        c.c_methods;
      let ctor_arities =
        match c.c_ctors with
        | [] -> [ 1 ]                       (* synthesized default ctor *)
        | ks -> List.map (fun (k : Ast.ctor_decl) -> List.length k.cd_params + 1) ks
      in
      List.iter
        (fun arity ->
           Hashtbl.replace methods ("<init>", arity)
             { mi_class = name; mi_name = "<init>"; mi_arity = arity;
               mi_static = false; mi_abstract = false; mi_native = false;
               mi_ret = Ast.Tvoid;
               mi_params = List.init (arity - 1) (fun _ -> Ast.Tclass "Object") })
        ctor_arities;
      { cl_name = name; cl_kind = Class_kind; cl_super = c.c_super;
        cl_ifaces = c.c_ifaces; cl_abstract = c.c_abstract;
        cl_library = library; cl_fields = fields; cl_methods = methods;
        cl_ctor_arities = ctor_arities }
    | Ast.Interface i ->
      let methods = Hashtbl.create 8 in
      List.iter
        (fun (m : Ast.method_decl) ->
           let arity = List.length m.md_params + 1 in
           Hashtbl.replace methods (m.md_name, arity)
             { mi_class = name; mi_name = m.md_name; mi_arity = arity;
               mi_static = false; mi_abstract = true; mi_native = false;
               mi_ret = m.md_ret; mi_params = List.map fst m.md_params })
        i.i_methods;
      { cl_name = name; cl_kind = Interface_kind; cl_super = None;
        cl_ifaces = i.i_supers; cl_abstract = true; cl_library = library;
        cl_fields = Hashtbl.create 1; cl_methods = methods;
        cl_ctor_arities = [] }
  in
  Hashtbl.replace t.classes name cls;
  Hashtbl.reset t.subclass_cache

(* ------------------------------------------------------------------ *)
(* Subtyping                                                          *)
(* ------------------------------------------------------------------ *)

(** [is_subclass t c d]: is class/interface [c] a subtype of [d]?
    Reflexive. Unknown classes are subtypes only of themselves and of
    "Object", keeping the analysis robust to partial programs. *)
let rec is_subclass t c d =
  if String.equal c d then true
  else if String.equal d "Object" then true
  else
    match Hashtbl.find_opt t.subclass_cache (c, d) with
    | Some r -> r
    | None ->
      let r =
        match Hashtbl.find_opt t.classes c with
        | None -> false
        | Some cls ->
          (match cls.cl_super with
           | Some s when is_subclass t s d -> true
           | _ -> List.exists (fun i -> is_subclass t i d) cls.cl_ifaces)
      in
      Hashtbl.replace t.subclass_cache (c, d) r;
      r

(** Concrete (non-abstract, non-interface) subclasses of [d], including [d]
    itself if concrete. Used for framework modeling ("all compatible subtypes
    of ActionForm", §4.2.2). *)
let concrete_subtypes t d =
  Hashtbl.fold
    (fun name c acc ->
       if c.cl_kind = Class_kind && not c.cl_abstract && is_subclass t name d
       then name :: acc
       else acc)
    t.classes []
  |> List.sort String.compare

(* ------------------------------------------------------------------ *)
(* Resolution                                                         *)
(* ------------------------------------------------------------------ *)

(** Resolve a field access [recv_class.name] to its declaring class. *)
let rec resolve_field t cls_name fname : finfo option =
  match Hashtbl.find_opt t.classes cls_name with
  | None -> None
  | Some c ->
    (match Hashtbl.find_opt c.cl_fields fname with
     | Some f -> Some f
     | None ->
       (match c.cl_super with
        | Some s -> resolve_field t s fname
        | None -> None))

(** Find the method declaration visible from [cls_name] (walking up the
    superclass chain, then interfaces). *)
let rec lookup_method t cls_name name arity : minfo option =
  match Hashtbl.find_opt t.classes cls_name with
  | None -> None
  | Some c ->
    (match Hashtbl.find_opt c.cl_methods (name, arity) with
     | Some m -> Some m
     | None ->
       let from_super =
         match c.cl_super with
         | Some s -> lookup_method t s name arity
         | None -> None
       in
       (match from_super with
        | Some _ as r -> r
        | None ->
          List.fold_left
            (fun acc i ->
               match acc with
               | Some _ -> acc
               | None -> lookup_method t i name arity)
            None c.cl_ifaces))

(** Virtual dispatch: the concrete implementation a receiver of runtime class
    [runtime_cls] executes for a call to [name/arity]. Walks only the
    superclass chain (interfaces carry no bodies). Returns the declaring
    class of the implementation. *)
let rec dispatch t runtime_cls name arity : minfo option =
  match Hashtbl.find_opt t.classes runtime_cls with
  | None -> None
  | Some c ->
    (match Hashtbl.find_opt c.cl_methods (name, arity) with
     | Some m when not m.mi_abstract -> Some m
     | _ ->
       (match c.cl_super with
        | Some s -> dispatch t s name arity
        | None -> None))

(** Static-call resolution: like dispatch but accepts abstract hits (the
    caller decides what to do with natives/abstract methods). *)
let resolve_static t cls_name name arity = lookup_method t cls_name name arity

(** All fields (own and inherited) of a class, outermost last. *)
let all_fields t cls_name =
  let rec go acc name =
    match Hashtbl.find_opt t.classes name with
    | None -> acc
    | Some c ->
      let own = Hashtbl.fold (fun _ f l -> f :: l) c.cl_fields [] in
      let acc = acc @ List.sort (fun a b -> String.compare a.fi_name b.fi_name) own in
      (match c.cl_super with Some s -> go acc s | None -> acc)
  in
  go [] cls_name

let is_library t cls_name =
  match Hashtbl.find_opt t.classes cls_name with
  | Some c -> c.cl_library
  | None -> true  (* unknown classes are treated as opaque library code *)
