(** Pretty-printing of MJava ASTs back to parseable source.

    Guarantees the round-trip property [parse (print (parse s)) = parse s]
    (up to positions), which the test-suite checks over the corpus and over
    random programs. Output is fully parenthesized where precedence could
    bite, so printing needs no precedence bookkeeping. *)

open Ast

let escape_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\000' -> Buffer.add_string buf "\\0"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_char c =
  match c with
  | '\'' -> "\\'"
  | '\\' -> "\\\\"
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | '\000' -> "\\0"
  | c -> String.make 1 c

let rec typ_to_string = function
  | Tint -> "int"
  | Tbool -> "boolean"
  | Tchar -> "char"
  | Tvoid -> "void"
  | Tclass c -> c
  | Tarray t -> typ_to_string t ^ "[]"

let rec pp_expr ppf (e : expr) =
  match e.e with
  | Int_lit v ->
    if v < 0 then Fmt.pf ppf "(-%d)" (-v) else Fmt.int ppf v
  | Bool_lit b -> Fmt.bool ppf b
  | Str_lit s -> Fmt.pf ppf "\"%s\"" (escape_string s)
  | Char_lit c -> Fmt.pf ppf "'%s'" (escape_char c)
  | Null_lit -> Fmt.string ppf "null"
  | This -> Fmt.string ppf "this"
  | Var v -> Fmt.string ppf v
  | Field_access (o, f) -> Fmt.pf ppf "%a.%s" pp_expr o f
  | Static_field (c, f) -> Fmt.pf ppf "%s.%s" c f
  | Array_index (a, i) -> Fmt.pf ppf "%a[%a]" pp_expr a pp_expr i
  | Array_length a -> Fmt.pf ppf "%a.length" pp_expr a
  | Class_lit c -> Fmt.pf ppf "%s.class" c
  | Call { recv; mname; args } ->
    (match recv with
     | Implicit -> Fmt.pf ppf "%s(%a)" mname pp_args args
     | Super ->
       if String.equal mname "<init>" then Fmt.pf ppf "super(%a)" pp_args args
       else Fmt.pf ppf "super.%s(%a)" mname pp_args args
     | On o -> Fmt.pf ppf "%a.%s(%a)" pp_expr o mname pp_args args
     | Cls c -> Fmt.pf ppf "%s.%s(%a)" c mname pp_args args)
  | New (c, args) -> Fmt.pf ppf "new %s(%a)" c pp_args args
  | New_array (t, len) ->
    (* multi-dimensional arrays print inner [] after the sized dimension *)
    let rec base_and_dims t dims =
      match t with Tarray t' -> base_and_dims t' (dims + 1) | _ -> (t, dims)
    in
    let base, dims = base_and_dims t 0 in
    Fmt.pf ppf "new %s[%a]%s" (typ_to_string base) pp_expr len
      (String.concat "" (List.init dims (fun _ -> "[]")))
  | New_array_init (t, elems) ->
    Fmt.pf ppf "new %s[] { %a }" (typ_to_string t) pp_args elems
  | Binary (op, a, b) ->
    Fmt.pf ppf "(%a %a %a)" pp_expr a Ast.pp_binop op pp_expr b
  | Unary (Neg, a) -> Fmt.pf ppf "(-%a)" pp_expr a
  | Unary (Not, a) -> Fmt.pf ppf "(!%a)" pp_expr a
  | Cast (t, a) -> Fmt.pf ppf "((%s) %a)" (typ_to_string t) pp_expr a
  | Instance_of (a, c) -> Fmt.pf ppf "(%a instanceof %s)" pp_expr a c
  | Assign (lhs, rhs) -> Fmt.pf ppf "%a = %a" pp_expr lhs pp_expr rhs
  | Cond (c, a, b) ->
    Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

and pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_expr) ppf args

(* bodies of if/while/for always print braced; a body that is already a
   block is spliced rather than re-wrapped so no nested block appears *)
let rec pp_body ppf (s : stmt) =
  match s.s with
  | Block stmts -> Fmt.list ~sep:Fmt.cut pp_stmt ppf stmts
  | _ -> pp_stmt ppf s

and pp_stmt ppf (s : stmt) =
  match s.s with
  | Block stmts ->
    Fmt.pf ppf "@[<v2>{@,%a@]@,}" (Fmt.list ~sep:Fmt.cut pp_stmt) stmts
  | Var_decl (t, name, init) ->
    (match init with
     | Some e -> Fmt.pf ppf "%s %s = %a;" (typ_to_string t) name pp_expr e
     | None -> Fmt.pf ppf "%s %s;" (typ_to_string t) name)
  | Expr e -> Fmt.pf ppf "%a;" pp_expr e
  | If (c, t, e) ->
    (match e with
     | Some e ->
       Fmt.pf ppf "@[<v2>if (%a) {@,%a@]@,@[<v2>} else {@,%a@]@,}" pp_expr c
         pp_body t pp_body e
     | None -> Fmt.pf ppf "@[<v2>if (%a) {@,%a@]@,}" pp_expr c pp_body t)
  | While (c, body) ->
    Fmt.pf ppf "@[<v2>while (%a) {@,%a@]@,}" pp_expr c pp_body body
  | For (init, cond, step, body) ->
    let pp_init ppf = function
      | Some { s = Var_decl (t, n, Some e); _ } ->
        Fmt.pf ppf "%s %s = %a" (typ_to_string t) n pp_expr e
      | Some { s = Var_decl (t, n, None); _ } ->
        Fmt.pf ppf "%s %s" (typ_to_string t) n
      | Some { s = Expr e; _ } -> pp_expr ppf e
      | Some _ | None -> ()
    in
    Fmt.pf ppf "@[<v2>for (%a; %a; %a) {@,%a@]@,}" pp_init init
      (Fmt.option pp_expr) cond (Fmt.option pp_expr) step pp_body body
  | Return None -> Fmt.string ppf "return;"
  | Return (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | Throw e -> Fmt.pf ppf "throw %a;" pp_expr e
  | Try (body, clauses) ->
    Fmt.pf ppf "@[<v2>try {@,%a@]@,}" (Fmt.list ~sep:Fmt.cut pp_stmt) body;
    List.iter
      (fun (cls, name, cbody) ->
         Fmt.pf ppf "@ @[<v2>catch (%s %s) {@,%a@]@,}" cls name
           (Fmt.list ~sep:Fmt.cut pp_stmt) cbody)
      clauses
  | Switch (e, cases, default) ->
    Fmt.pf ppf "@[<v2>switch (%a) {@," pp_expr e;
    List.iter
      (fun (labels, body) ->
         List.iter (fun l -> Fmt.pf ppf "case %a:@," pp_expr l) labels;
         Fmt.pf ppf "@[<v2>  %a@]@,break;@,"
           (Fmt.list ~sep:Fmt.cut pp_stmt) body)
      cases;
    (match default with
     | Some body ->
       Fmt.pf ppf "default:@,@[<v2>  %a@]@,"
         (Fmt.list ~sep:Fmt.cut pp_stmt) body
     | None -> ());
    Fmt.pf ppf "@]@,}"
  | Do_while (body, cond) ->
    Fmt.pf ppf "@[<v2>do {@,%a@]@,} while (%a);" pp_body body pp_expr cond
  | Break -> Fmt.string ppf "break;"
  | Continue -> Fmt.string ppf "continue;"
  | Empty -> Fmt.string ppf ";"

let mods_to_string mods =
  String.concat ""
    (List.map
       (fun m ->
          (match m with
           | Public -> "public" | Private -> "private"
           | Protected -> "protected" | Static -> "static"
           | Native -> "native" | Abstract -> "abstract" | Final -> "final"
           | Synchronized -> "synchronized")
          ^ " ")
       mods)

let pp_params ppf params =
  Fmt.(list ~sep:(any ", ")
         (fun ppf (t, n) -> pf ppf "%s %s" (typ_to_string t) n))
    ppf params

let pp_method ppf (m : method_decl) =
  let throws =
    match m.md_throws with
    | [] -> ""
    | ts -> " throws " ^ String.concat ", " ts
  in
  match m.md_body with
  | Some body ->
    Fmt.pf ppf "@[<v2>%s%s %s(%a)%s {@,%a@]@,}" (mods_to_string m.md_mods)
      (typ_to_string m.md_ret) m.md_name pp_params m.md_params throws
      (Fmt.list ~sep:Fmt.cut pp_stmt) body
  | None ->
    Fmt.pf ppf "%s%s %s(%a)%s;" (mods_to_string m.md_mods)
      (typ_to_string m.md_ret) m.md_name pp_params m.md_params throws

let pp_field ppf (f : field_decl) =
  match f.f_init with
  | Some e ->
    Fmt.pf ppf "%s%s %s = %a;" (mods_to_string f.f_mods)
      (typ_to_string f.f_typ) f.f_name pp_expr e
  | None ->
    Fmt.pf ppf "%s%s %s;" (mods_to_string f.f_mods) (typ_to_string f.f_typ)
      f.f_name

let pp_ctor ~cls ppf (c : ctor_decl) =
  Fmt.pf ppf "@[<v2>%s%s(%a) {@,%a@]@,}" (mods_to_string c.cd_mods) cls
    pp_params c.cd_params (Fmt.list ~sep:Fmt.cut pp_stmt) c.cd_body

let pp_decl ppf = function
  | Class c ->
    let extends =
      match c.c_super with Some s -> " extends " ^ s | None -> ""
    in
    let implements =
      match c.c_ifaces with
      | [] -> ""
      | is -> " implements " ^ String.concat ", " is
    in
    Fmt.pf ppf "@[<v2>%sclass %s%s%s {@,%a%a%a@]@,}"
      (if c.c_abstract then "abstract " else "")
      c.c_name extends implements
      Fmt.(list ~sep:Fmt.cut pp_field) c.c_fields
      Fmt.(list ~sep:Fmt.cut (pp_ctor ~cls:c.c_name)) c.c_ctors
      Fmt.(list ~sep:Fmt.cut pp_method) c.c_methods
  | Interface i ->
    let extends =
      match i.i_supers with
      | [] -> ""
      | ss -> " extends " ^ String.concat ", " ss
    in
    Fmt.pf ppf "@[<v2>interface %s%s {@,%a@]@,}" i.i_name extends
      Fmt.(list ~sep:Fmt.cut pp_method) i.i_methods

let pp_unit ppf (cu : compilation_unit) =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_decl) cu

(** Print a compilation unit to a parseable string. *)
let to_string (cu : compilation_unit) : string = Fmt.str "%a@." pp_unit cu
