(** Lexer for MJava source text. *)

type token =
  | IDENT of string
  | INT of int
  | STRING of string
  | CHAR of char
  | KW of string          (** reserved word, kept as its spelling *)
  | PUNCT of string       (** operator or delimiter, kept as its spelling *)
  | EOF

type 'a located = { tok : 'a; pos : Ast.pos }

exception Lex_error of string * Ast.pos

(** The reserved words of MJava. *)
val keywords : string list

(** Tokenize a whole source string. The result always ends with [EOF].
    Raises {!Lex_error} on malformed input. *)
val tokenize : string -> token located list

val pp_token : Format.formatter -> token -> unit
