(** Control-flow graph utilities over {!Tac.meth} bodies.

    Edges include exceptional successors (block → handler), so dominance and
    SSA renaming see defs that may be live into catch blocks. *)

type t = {
  nblocks : int;
  succs : int list array;
  preds : int list array;
  rpo : int array;           (** reverse postorder sequence of block ids *)
  rpo_index : int array;     (** position of each block in [rpo], or -1 *)
}

let build (m : Tac.meth) : t =
  let n = Array.length m.Tac.m_blocks in
  let succs = Array.init n (fun i -> Tac.all_successors m.Tac.m_blocks.(i)) in
  let preds = Array.make n [] in
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  (* reverse postorder from block 0 *)
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      order := b :: !order
    end
  in
  if n > 0 then dfs 0;
  let rpo = Array.of_list !order in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  { nblocks = n; succs; preds; rpo; rpo_index }

let reachable t b = t.rpo_index.(b) >= 0

(** Remove unreachable blocks and renumber the survivors in place, keeping
    block 0 as entry. Returns the rebuilt CFG. Statement lowering produces
    dead blocks after [return]/[break]; dropping them keeps SSA renaming
    total. *)
let compact (m : Tac.meth) : t =
  let t = build m in
  let n = t.nblocks in
  let keep = Array.init n (fun b -> reachable t b) in
  let remap = Array.make n (-1) in
  let count = ref 0 in
  for b = 0 to n - 1 do
    if keep.(b) then begin
      remap.(b) <- !count;
      incr count
    end
  done;
  if !count = n then t
  else begin
    let blocks =
      Array.of_list
        (List.filteri (fun b _ -> keep.(b)) (Array.to_list m.Tac.m_blocks))
    in
    Array.iter
      (fun (b : Tac.block) ->
         b.Tac.term <-
           (match b.Tac.term with
            | Tac.Goto x -> Tac.Goto remap.(x)
            | Tac.If (c, x, y) -> Tac.If (c, remap.(x), remap.(y))
            | (Tac.Return _ | Tac.Throw _ | Tac.Unreachable) as tm -> tm);
         b.Tac.handlers <-
           List.filter_map
             (fun h -> if remap.(h) >= 0 then Some remap.(h) else None)
             b.Tac.handlers)
      blocks;
    m.Tac.m_blocks <- blocks;
    build m
  end
