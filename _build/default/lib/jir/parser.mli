(** Recursive-descent parser for MJava. *)

exception Parse_error of string * Ast.pos

(** Parse a whole source string into a compilation unit.
    Raises {!Parse_error} or {!Lexer.Lex_error} on malformed input. *)
val parse : string -> Ast.compilation_unit
