(** Dominator tree and dominance frontiers.

    Implements Cooper, Harvey and Kennedy, "A Simple, Fast Dominance
    Algorithm": iterative intersection over reverse postorder. All blocks are
    assumed reachable from block 0 (run {!Cfg.compact} first). *)

type t = {
  idom : int array;            (** immediate dominator; idom.(0) = 0 *)
  children : int list array;   (** dominator-tree children *)
  frontier : int list array;   (** dominance frontier per block *)
}

let compute (cfg : Cfg.t) : t =
  let n = cfg.Cfg.nblocks in
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  (* intersect walks up the dominator tree using rpo positions *)
  let rec intersect b1 b2 =
    if b1 = b2 then b1
    else begin
      let f1 = ref b1 and f2 = ref b2 in
      while cfg.Cfg.rpo_index.(!f1) > cfg.Cfg.rpo_index.(!f2) do
        f1 := idom.(!f1)
      done;
      while cfg.Cfg.rpo_index.(!f2) > cfg.Cfg.rpo_index.(!f1) do
        f2 := idom.(!f2)
      done;
      intersect !f1 !f2
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
         if b <> 0 then begin
           let processed_preds =
             List.filter (fun p -> idom.(p) >= 0) cfg.Cfg.preds.(b)
           in
           match processed_preds with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if idom.(b) <> new_idom then begin
               idom.(b) <- new_idom;
               changed := true
             end
         end)
      cfg.Cfg.rpo
  done;
  let children = Array.make n [] in
  for b = n - 1 downto 1 do
    if idom.(b) >= 0 then children.(idom.(b)) <- b :: children.(idom.(b))
  done;
  (* dominance frontiers, the standard two-finger walk *)
  let frontier = Array.make n [] in
  let add_df b x =
    if not (List.mem x frontier.(b)) then frontier.(b) <- x :: frontier.(b)
  in
  for b = 0 to n - 1 do
    match cfg.Cfg.preds.(b) with
    | _ :: _ :: _ as preds ->
      List.iter
        (fun p ->
           if idom.(p) >= 0 then begin
             let runner = ref p in
             while !runner <> idom.(b) do
               add_df !runner b;
               runner := idom.(!runner)
             done
           end)
        preds
    | _ -> ()
  done;
  { idom; children; frontier }

(** [dominates t a b]: does block [a] dominate block [b]? *)
let dominates t a b =
  let rec up x = if x = a then true else if x = 0 then a = 0 else up t.idom.(x) in
  up b
