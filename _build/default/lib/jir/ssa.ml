(** SSA construction (Cytron et al.): iterated-dominance-frontier phi
    placement followed by dominator-tree renaming.

    The method is rewritten in place. After conversion, every register has at
    most one defining instruction (or phi, or is a formal parameter), which
    the dependence-graph builder exploits to treat local data flow
    functionally. Formal parameters keep their original numbers 0..arity-1.
*)

module Int_set = Set.Make (Int)

type def_site =
  | Def_param of int            (** parameter index *)
  | Def_instr of int * int      (** block, instruction index *)
  | Def_phi of int * int        (** block, phi index *)

(** Map each SSA register of a converted method to its unique definition. *)
let def_sites (m : Tac.meth) : def_site option array =
  let defs = Array.make m.Tac.m_nvars None in
  for p = 0 to m.Tac.m_arity - 1 do
    defs.(p) <- Some (Def_param p)
  done;
  Array.iteri
    (fun bi (b : Tac.block) ->
       List.iteri
         (fun pi (p : Tac.phi) -> defs.(p.Tac.phi_lhs) <- Some (Def_phi (bi, pi)))
         b.Tac.phis;
       Array.iteri
         (fun ii ins ->
            List.iter (fun v -> defs.(v) <- Some (Def_instr (bi, ii))) (Tac.defs ins))
         b.Tac.instrs)
    m.Tac.m_blocks;
  defs

let convert (m : Tac.meth) : unit =
  let cfg = Cfg.compact m in
  let dom = Dominance.compute cfg in
  let blocks = m.Tac.m_blocks in
  let n = Array.length blocks in
  let nvars = m.Tac.m_nvars in
  (* 1. collect definition blocks per variable *)
  let def_blocks = Array.make nvars Int_set.empty in
  for p = 0 to m.Tac.m_arity - 1 do
    def_blocks.(p) <- Int_set.singleton 0
  done;
  Array.iteri
    (fun bi (b : Tac.block) ->
       Array.iter
         (fun ins ->
            List.iter
              (fun v -> def_blocks.(v) <- Int_set.add bi def_blocks.(v))
              (Tac.defs ins))
         b.Tac.instrs)
    blocks;
  (* 2. phi placement via iterated dominance frontiers *)
  let phi_for = Array.make n Int_set.empty in   (* vars with a phi per block *)
  for v = 0 to nvars - 1 do
    if Int_set.cardinal def_blocks.(v) > 1 then begin
      let work = ref (Int_set.elements def_blocks.(v)) in
      let placed = ref Int_set.empty in
      let in_work = ref (Int_set.of_list !work) in
      while !work <> [] do
        match !work with
        | [] -> ()
        | b :: rest ->
          work := rest;
          List.iter
            (fun d ->
               if not (Int_set.mem d !placed) then begin
                 placed := Int_set.add d !placed;
                 phi_for.(d) <- Int_set.add v phi_for.(d);
                 if not (Int_set.mem d !in_work) then begin
                   in_work := Int_set.add d !in_work;
                   work := d :: !work
                 end
               end)
            dom.Dominance.frontier.(b)
      done
    end
  done;
  Array.iteri
    (fun bi (b : Tac.block) ->
       b.Tac.phis <-
         Int_set.fold
           (fun v acc ->
              { Tac.phi_lhs = v;
                phi_args =
                  List.map (fun p -> (p, v)) cfg.Cfg.preds.(bi) }
              :: acc)
           phi_for.(bi) [])
    blocks;
  (* 3. renaming *)
  let counter = ref nvars in
  let fresh () = let v = !counter in incr counter; v in
  let stacks : int list array = Array.make nvars [] in
  for p = 0 to m.Tac.m_arity - 1 do
    stacks.(p) <- [ p ]
  done;
  let top v =
    if v < nvars then (match stacks.(v) with x :: _ -> x | [] -> v) else v
  in
  let rename_uses ins =
    let u = top in
    match ins with
    | Tac.Const _ | Tac.New _ | Tac.Sload _ | Tac.Catch_entry _ | Tac.Nop ->
      ins
    | Tac.Move (d, s) -> Tac.Move (d, u s)
    | Tac.Binop (d, op, a, b) -> Tac.Binop (d, op, u a, u b)
    | Tac.Unop (d, op, a) -> Tac.Unop (d, op, u a)
    | Tac.New_array (d, t, l, s) -> Tac.New_array (d, t, u l, s)
    | Tac.Load (d, o, f) -> Tac.Load (d, u o, f)
    | Tac.Store (o, f, v) -> Tac.Store (u o, f, u v)
    | Tac.Sstore (f, v) -> Tac.Sstore (f, u v)
    | Tac.Aload (d, a, i) -> Tac.Aload (d, u a, u i)
    | Tac.Astore (a, i, v) -> Tac.Astore (u a, u i, u v)
    | Tac.Array_len (d, a) -> Tac.Array_len (d, u a)
    | Tac.Call c -> Tac.Call { c with Tac.args = List.map u c.Tac.args }
    | Tac.Cast (d, t, s) -> Tac.Cast (d, t, u s)
    | Tac.Instance_of (d, c, s) -> Tac.Instance_of (d, c, u s)
    | Tac.Strcat (d, a, b) -> Tac.Strcat (d, u a, u b)
  in
  let rename_def ~orig_pushes ins =
    match Tac.defs ins with
    | [] -> ins
    | [ d ] when d < nvars ->
      let nd = fresh () in
      stacks.(d) <- nd :: stacks.(d);
      orig_pushes := d :: !orig_pushes;
      (match ins with
       | Tac.Const (_, c) -> Tac.Const (nd, c)
       | Tac.Move (_, s) -> Tac.Move (nd, s)
       | Tac.Binop (_, op, a, b) -> Tac.Binop (nd, op, a, b)
       | Tac.Unop (_, op, a) -> Tac.Unop (nd, op, a)
       | Tac.New (_, c, s) -> Tac.New (nd, c, s)
       | Tac.New_array (_, t, l, s) -> Tac.New_array (nd, t, l, s)
       | Tac.Load (_, o, f) -> Tac.Load (nd, o, f)
       | Tac.Sload (_, f) -> Tac.Sload (nd, f)
       | Tac.Aload (_, a, i) -> Tac.Aload (nd, a, i)
       | Tac.Array_len (_, a) -> Tac.Array_len (nd, a)
       | Tac.Call c -> Tac.Call { c with Tac.ret = Some nd }
       | Tac.Cast (_, t, s) -> Tac.Cast (nd, t, s)
       | Tac.Instance_of (_, c, s) -> Tac.Instance_of (nd, c, s)
       | Tac.Strcat (_, a, b) -> Tac.Strcat (nd, a, b)
       | Tac.Catch_entry (_, c) -> Tac.Catch_entry (nd, c)
       | Tac.Store _ | Tac.Sstore _ | Tac.Astore _ | Tac.Nop -> ins)
    | _ -> ins
  in
  let rec walk bi =
    let b = blocks.(bi) in
    let pushes = ref [] in
    (* phi lhs definitions *)
    b.Tac.phis <-
      List.map
        (fun (p : Tac.phi) ->
           let d = p.Tac.phi_lhs in
           let nd = fresh () in
           stacks.(d) <- nd :: stacks.(d);
           pushes := d :: !pushes;
           { p with Tac.phi_lhs = nd })
        b.Tac.phis;
    (* straight-line code *)
    b.Tac.instrs <-
      Array.map
        (fun ins -> rename_def ~orig_pushes:pushes (rename_uses ins))
        b.Tac.instrs;
    b.Tac.term <-
      (match b.Tac.term with
       | Tac.If (c, t, e) -> Tac.If (top c, t, e)
       | Tac.Return (Some v) -> Tac.Return (Some (top v))
       | Tac.Throw v -> Tac.Throw (top v)
       | (Tac.Goto _ | Tac.Return None | Tac.Unreachable) as t -> t);
    (* fill phi operands of successors *)
    List.iter
      (fun s ->
         let sb = blocks.(s) in
         sb.Tac.phis <-
           List.map
             (fun (p : Tac.phi) ->
                { p with
                  Tac.phi_args =
                    List.map
                      (fun (pred, v) ->
                         if pred = bi && v < nvars then (pred, top v)
                         else (pred, v))
                      p.Tac.phi_args })
             sb.Tac.phis)
      (Tac.all_successors b);
    List.iter walk dom.Dominance.children.(bi);
    List.iter (fun d -> stacks.(d) <- List.tl stacks.(d)) !pushes
  in
  if n > 0 then walk 0;
  m.Tac.m_nvars <- !counter

(** Convert every method of a program to SSA form. *)
let convert_program (p : Program.t) =
  Program.iter_methods p convert
