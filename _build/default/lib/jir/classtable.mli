(** Class hierarchy: registration, subtyping, field and method resolution. *)

type kind = Class_kind | Interface_kind

(** Method information as recorded in the hierarchy. Constructors are
    registered under the name ["<init>"]. *)
type minfo = {
  mi_class : string;        (** declaring class *)
  mi_name : string;
  mi_arity : int;           (** formals including the receiver *)
  mi_static : bool;
  mi_abstract : bool;
  mi_native : bool;
  mi_ret : Ast.typ;
  mi_params : Ast.typ list; (** declared parameter types, excl. receiver *)
}

type finfo = {
  fi_class : string;        (** declaring class *)
  fi_name : string;
  fi_typ : Ast.typ;
  fi_static : bool;
}

type cls = {
  cl_name : string;
  cl_kind : kind;
  cl_super : string option;
  cl_ifaces : string list;
  cl_abstract : bool;
  cl_library : bool;
  cl_fields : (string, finfo) Hashtbl.t;
  cl_methods : (string * int, minfo) Hashtbl.t;
  mutable cl_ctor_arities : int list;
}

type t

exception Unknown_class of string
exception Hierarchy_error of string

val create : unit -> t

val mem : t -> string -> bool

(** Raises {!Unknown_class}. *)
val find : t -> string -> cls

val find_opt : t -> string -> cls option
val iter : t -> (cls -> unit) -> unit

(** All classes, sorted by name. *)
val all_classes : t -> cls list

(** Register a parsed declaration. [library] marks model-JDK code (the LCP
    boundary of §5). Raises {!Hierarchy_error} on duplicates. *)
val add_decl : t -> library:bool -> Ast.decl -> unit

(** [is_subclass t c d]: is class or interface [c] a subtype of [d]?
    Reflexive; everything is a subtype of ["Object"]. *)
val is_subclass : t -> string -> string -> bool

(** Concrete (non-abstract class) subtypes of a class or interface,
    sorted by name. *)
val concrete_subtypes : t -> string -> string list

(** Resolve a field to its declaring class, walking up the hierarchy. *)
val resolve_field : t -> string -> string -> finfo option

(** The method declaration visible from a class (superclass chain, then
    interfaces). *)
val lookup_method : t -> string -> string -> int -> minfo option

(** Virtual dispatch: the concrete implementation a receiver of the given
    runtime class executes. Walks only the superclass chain. *)
val dispatch : t -> string -> string -> int -> minfo option

(** Static-call resolution (accepts abstract hits). *)
val resolve_static : t -> string -> string -> int -> minfo option

(** All fields (own and inherited) of a class. *)
val all_fields : t -> string -> finfo list

(** Unknown classes are treated as opaque library code. *)
val is_library : t -> string -> bool
