(** Recursive-descent parser for MJava.

    Expression parsing uses precedence climbing. The only genuinely tricky
    corner is distinguishing a parenthesized cast [(Foo) x] from a
    parenthesized expression [(a) + b]; we resolve it with one token of
    lookahead after the closing parenthesis, as a Java-1.4-style parser would.
*)

open Ast

exception Parse_error of string * pos

type state = {
  toks : Lexer.token Lexer.located array;
  mutable cur : int;
}

let peek st = st.toks.(st.cur).Lexer.tok
let peek2 st =
  if st.cur + 1 < Array.length st.toks then st.toks.(st.cur + 1).Lexer.tok
  else Lexer.EOF
let pos st = st.toks.(st.cur).Lexer.pos
let advance st = st.cur <- st.cur + 1

let error st msg = raise (Parse_error (msg, pos st))

let errorf st fmt = Fmt.kstr (error st) fmt

let expect_punct st s =
  match peek st with
  | Lexer.PUNCT p when String.equal p s -> advance st
  | t -> errorf st "expected '%s' but found %a" s Lexer.pp_token t

let expect_kw st s =
  match peek st with
  | Lexer.KW k when String.equal k s -> advance st
  | t -> errorf st "expected '%s' but found %a" s Lexer.pp_token t

let eat_punct st s =
  match peek st with
  | Lexer.PUNCT p when String.equal p s -> advance st; true
  | _ -> false

let eat_kw st s =
  match peek st with
  | Lexer.KW k when String.equal k s -> advance st; true
  | _ -> false

let expect_ident st =
  match peek st with
  | Lexer.IDENT s -> advance st; s
  | t -> errorf st "expected identifier but found %a" Lexer.pp_token t

let is_punct st s =
  match peek st with Lexer.PUNCT p -> String.equal p s | _ -> false

let is_kw st s =
  match peek st with Lexer.KW k -> String.equal k s | _ -> false

(* ------------------------------------------------------------------ *)
(* Types                                                              *)
(* ------------------------------------------------------------------ *)

let base_type st =
  match peek st with
  | Lexer.KW "int" -> advance st; Tint
  | Lexer.KW "boolean" -> advance st; Tbool
  | Lexer.KW "char" -> advance st; Tchar
  | Lexer.KW "void" -> advance st; Tvoid
  | Lexer.IDENT c -> advance st; Tclass c
  | t -> errorf st "expected a type but found %a" Lexer.pp_token t

let rec array_suffix st t =
  if is_punct st "[" && (match peek2 st with
                         | Lexer.PUNCT "]" -> true
                         | _ -> false)
  then (advance st; advance st; array_suffix st (Tarray t))
  else t

let parse_type st = array_suffix st (base_type st)

(* A type can start a declaration only if followed by an identifier; used to
   disambiguate [Foo x = ...;] from the expression statement [Foo.bar();]. *)
let looks_like_decl st =
  match peek st with
  | Lexer.KW ("int" | "boolean" | "char") -> true
  | Lexer.IDENT _ ->
    (match peek2 st with
     | Lexer.IDENT _ -> true
     | Lexer.PUNCT "[" ->
       (* Foo[] x — need the token after "[]" to be an identifier *)
       (match st.toks.(st.cur + 2).Lexer.tok with
        | Lexer.PUNCT "]" -> true
        | _ -> false)
     | _ -> false)
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let mk p e = { e; epos = p }

(* Precedence levels, loosest first. *)
let binop_of_punct = function
  | "||" -> Some (Or, 1)
  | "&&" -> Some (And, 2)
  | "==" -> Some (Eq, 3) | "!=" -> Some (Ne, 3)
  | "<" -> Some (Lt, 4) | "<=" -> Some (Le, 4)
  | ">" -> Some (Gt, 4) | ">=" -> Some (Ge, 4)
  | "+" -> Some (Add, 5) | "-" -> Some (Sub, 5)
  | "*" -> Some (Mul, 6) | "/" -> Some (Div, 6) | "%" -> Some (Mod, 6)
  | _ -> None

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  if is_punct st "=" then begin
    let p = pos st in
    advance st;
    let rhs = parse_assign st in
    mk p (Assign (lhs, rhs))
  end
  else if is_punct st "+=" || is_punct st "-=" || is_punct st "*="
          || is_punct st "/=" then begin
    let p = pos st in
    let op = match peek st with
      | Lexer.PUNCT "+=" -> Add | Lexer.PUNCT "-=" -> Sub
      | Lexer.PUNCT "*=" -> Mul | _ -> Div
    in
    advance st;
    let rhs = parse_assign st in
    mk p (Assign (lhs, mk p (Binary (op, lhs, rhs))))
  end
  else lhs

and parse_cond st =
  let c = parse_binary st 1 in
  if is_punct st "?" then begin
    let p = pos st in
    advance st;
    let a = parse_expr st in
    expect_punct st ":";
    let b = parse_cond st in
    mk p (Cond (c, a, b))
  end else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    (match peek st with
     | Lexer.PUNCT p ->
       (match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
          let at = pos st in
          advance st;
          let rhs = parse_binary st (prec + 1) in
          lhs := mk at (Binary (op, !lhs, rhs))
        | _ -> continue := false)
     | Lexer.KW "instanceof" when min_prec <= 4 ->
       let at = pos st in
       advance st;
       let c = expect_ident st in
       lhs := mk at (Instance_of (!lhs, c))
     | _ -> continue := false)
  done;
  !lhs

and parse_unary st =
  let p = pos st in
  if eat_punct st "!" then mk p (Unary (Not, parse_unary st))
  else if eat_punct st "-" then mk p (Unary (Neg, parse_unary st))
  else if is_punct st "(" && cast_ahead st then begin
    advance st;
    let t = parse_type st in
    expect_punct st ")";
    mk p (Cast (t, parse_unary st))
  end
  else parse_postfix st

(* After "(", a cast looks like: Type ")" <unary-start>. We check that the
   parenthesized content is a plausible type and the next token can begin an
   operand (so "(a) + b" is not a cast while "(Foo) x" is). *)
and cast_ahead st =
  let save = st.cur in
  let ok =
    try
      advance st;  (* "(" *)
      (match peek st with
       | Lexer.KW ("int" | "boolean" | "char") | Lexer.IDENT _ ->
         let _ = parse_type st in
         if is_punct st ")" then begin
           advance st;
           (match peek st with
            | Lexer.IDENT _ | Lexer.STRING _ | Lexer.INT _ | Lexer.CHAR _
            | Lexer.KW ("this" | "new" | "null" | "true" | "false"
                       | "super") -> true
            | Lexer.PUNCT "(" -> true
            | _ -> false)
         end else false
       | _ -> false)
    with Parse_error _ -> false
  in
  st.cur <- save;
  ok

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    let p = pos st in
    if is_punct st "." then begin
      advance st;
      let name = expect_ident st in
      if is_punct st "(" then begin
        let args = parse_args st in
        e := mk p (Call { recv = On !e; mname = name; args })
      end
      else if String.equal name "length"
              && (match !e with { e = Array_index _; _ } | _ -> true) then
        (* Disambiguated during typing; treat .length on arrays specially
           in the lowering phase. Here we record a field access and let the
           lowerer decide; but array length is common enough to special-case
           syntactically when the receiver is known to be an array literal
           expression is impossible, so keep Field_access. *)
        e := mk p (Field_access (!e, name))
      else e := mk p (Field_access (!e, name))
    end
    else if is_punct st "[" then begin
      advance st;
      let idx = parse_expr st in
      expect_punct st "]";
      e := mk p (Array_index (!e, idx))
    end
    else if is_punct st "++" || is_punct st "--" then begin
      let op = if is_punct st "++" then Add else Sub in
      advance st;
      (* x++ as statement-position sugar: x = x + 1 (value semantics of the
         postfix result are not preserved; MJava programs use it only in
         statement position, as [for] steps). *)
      e := mk p (Assign (!e, mk p (Binary (op, !e, mk p (Int_lit 1)))))
    end
    else continue := false
  done;
  !e

and parse_args st =
  expect_punct st "(";
  if eat_punct st ")" then []
  else begin
    let rec loop acc =
      let a = parse_expr st in
      if eat_punct st "," then loop (a :: acc)
      else begin expect_punct st ")"; List.rev (a :: acc) end
    in
    loop []
  end

and parse_primary st =
  let p = pos st in
  match peek st with
  | Lexer.INT v -> advance st; mk p (Int_lit v)
  | Lexer.STRING s -> advance st; mk p (Str_lit s)
  | Lexer.CHAR c -> advance st; mk p (Char_lit c)
  | Lexer.KW "true" -> advance st; mk p (Bool_lit true)
  | Lexer.KW "false" -> advance st; mk p (Bool_lit false)
  | Lexer.KW "null" -> advance st; mk p Null_lit
  | Lexer.KW "this" -> advance st; mk p This
  | Lexer.KW "super" ->
    advance st;
    if is_punct st "(" then begin
      (* constructor chaining: super(args) *)
      let args = parse_args st in
      mk p (Call { recv = Super; mname = "<init>"; args })
    end else begin
      expect_punct st ".";
      let name = expect_ident st in
      let args = parse_args st in
      mk p (Call { recv = Super; mname = name; args })
    end
  | Lexer.KW "new" ->
    advance st;
    let t = base_type st in
    (match t with
     | Tclass c when is_punct st "(" ->
       let args = parse_args st in
       mk p (New (c, args))
     | _ ->
       expect_punct st "[";
       if eat_punct st "]" then begin
         (* array literal: new T[] { e1, e2, ... } *)
         expect_punct st "{";
         let elems = ref [] in
         if not (is_punct st "}") then begin
           let rec loop () =
             elems := parse_expr st :: !elems;
             if eat_punct st "," then loop ()
           in
           loop ()
         end;
         expect_punct st "}";
         mk p (New_array_init (t, List.rev !elems))
       end
       else begin
         let len = parse_expr st in
         expect_punct st "]";
         (* trailing [] pairs for multi-dim arrays: only outer dim sized *)
         let t = ref t in
         while is_punct st "[" do
           advance st; expect_punct st "]"; t := Tarray !t
         done;
         mk p (New_array (!t, len))
       end)
  | Lexer.PUNCT "(" ->
    advance st;
    let e = parse_expr st in
    expect_punct st ")";
    e
  | Lexer.IDENT name ->
    advance st;
    if is_punct st "(" then
      let args = parse_args st in
      mk p (Call { recv = Implicit; mname = name; args })
    else if is_punct st "."
            && (match peek2 st with Lexer.KW "class" -> true | _ -> false)
            && name_is_classlike name st
    then begin
      advance st;
      advance st;
      mk p (Class_lit name)
    end
    else if is_punct st "."
            && (match peek2 st with Lexer.IDENT _ -> true | _ -> false)
            && name_is_classlike name st
    then begin
      (* Class.member — static field or static call *)
      advance st;
      let member = expect_ident st in
      if is_punct st "(" then
        let args = parse_args st in
        mk p (Call { recv = Cls name; mname = member; args })
      else mk p (Static_field (name, member))
    end
    else mk p (Var name)
  | t -> errorf st "expected an expression but found %a" Lexer.pp_token t

(* Heuristic used before name resolution: a dotted name whose head starts
   with an uppercase letter is treated as a class reference. The lowering
   phase re-checks against locals and fields, so a local named [Foo] would
   still shadow the class there; MJava code follows Java naming style. *)
and name_is_classlike name _st =
  String.length name > 0
  && ((name.[0] >= 'A' && name.[0] <= 'Z') || name.[0] = '$')

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : stmt =
  let p = pos st in
  if is_punct st "{" then { s = Block (parse_block st); spos = p }
  else if eat_kw st "if" then begin
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let then_ = parse_stmt st in
    let else_ = if eat_kw st "else" then Some (parse_stmt st) else None in
    { s = If (c, then_, else_); spos = p }
  end
  else if eat_kw st "while" then begin
    expect_punct st "(";
    let c = parse_expr st in
    expect_punct st ")";
    let body = parse_stmt st in
    { s = While (c, body); spos = p }
  end
  else if eat_kw st "for" then begin
    expect_punct st "(";
    let init =
      if is_punct st ";" then None
      else if looks_like_decl st then Some (parse_decl_stmt st)
      else Some { s = Expr (parse_expr st); spos = p }
    in
    expect_punct st ";";
    let cond = if is_punct st ";" then None else Some (parse_expr st) in
    expect_punct st ";";
    let step = if is_punct st ")" then None else Some (parse_expr st) in
    expect_punct st ")";
    let body = parse_stmt st in
    { s = For (init, cond, step, body); spos = p }
  end
  else if eat_kw st "return" then begin
    let v = if is_punct st ";" then None else Some (parse_expr st) in
    expect_punct st ";";
    { s = Return v; spos = p }
  end
  else if eat_kw st "throw" then begin
    let v = parse_expr st in
    expect_punct st ";";
    { s = Throw v; spos = p }
  end
  else if eat_kw st "try" then begin
    let body = parse_block st in
    let clauses = ref [] in
    while is_kw st "catch" do
      advance st;
      expect_punct st "(";
      let cls = expect_ident st in
      let name = expect_ident st in
      expect_punct st ")";
      let cbody = parse_block st in
      clauses := (cls, name, cbody) :: !clauses
    done;
    if !clauses = [] then error st "try without catch";
    { s = Try (body, List.rev !clauses); spos = p }
  end
  else if eat_kw st "switch" then begin
    expect_punct st "(";
    let scrutinee = parse_expr st in
    expect_punct st ")";
    expect_punct st "{";
    let cases = ref [] in
    let default = ref None in
    let case_body () =
      (* statements until the next case/default label or the closing brace;
         a trailing break is consumed and dropped (no fall-through) *)
      let stmts = ref [] in
      let continue = ref true in
      while !continue do
        if is_punct st "}" || is_kw st "case" || is_kw st "default" then
          continue := false
        else if is_kw st "break"
                && (match peek2 st with Lexer.PUNCT ";" -> true | _ -> false)
        then begin
          advance st; advance st;
          continue := false
        end
        else stmts := parse_stmt st :: !stmts
      done;
      List.rev !stmts
    in
    while not (is_punct st "}") do
      if eat_kw st "case" then begin
        let labels = ref [ parse_expr st ] in
        expect_punct st ":";
        (* adjacent labels share one body *)
        while is_kw st "case" do
          advance st;
          labels := parse_expr st :: !labels;
          expect_punct st ":"
        done;
        cases := (List.rev !labels, case_body ()) :: !cases
      end
      else if eat_kw st "default" then begin
        expect_punct st ":";
        default := Some (case_body ())
      end
      else error st "expected 'case' or 'default' in switch"
    done;
    advance st;
    { s = Switch (scrutinee, List.rev !cases, !default); spos = p }
  end
  else if eat_kw st "do" then begin
    let body = parse_stmt st in
    expect_kw st "while";
    expect_punct st "(";
    let cond = parse_expr st in
    expect_punct st ")";
    expect_punct st ";";
    { s = Do_while (body, cond); spos = p }
  end
  else if eat_kw st "break" then begin
    expect_punct st ";"; { s = Break; spos = p }
  end
  else if eat_kw st "continue" then begin
    expect_punct st ";"; { s = Continue; spos = p }
  end
  else if eat_punct st ";" then { s = Empty; spos = p }
  else if looks_like_decl st then begin
    let d = parse_decl_stmt st in
    expect_punct st ";";
    d
  end
  else begin
    let e = parse_expr st in
    expect_punct st ";";
    { s = Expr e; spos = p }
  end

and parse_decl_stmt st =
  let p = pos st in
  let t = parse_type st in
  let name = expect_ident st in
  let t = array_suffix st t in (* tolerate C-style "Foo x[]" *)
  let init = if eat_punct st "=" then Some (parse_expr st) else None in
  { s = Var_decl (t, name, init); spos = p }

and parse_block st : stmt list =
  expect_punct st "{";
  let stmts = ref [] in
  while not (is_punct st "}") do
    stmts := parse_stmt st :: !stmts
  done;
  advance st;
  List.rev !stmts

(* ------------------------------------------------------------------ *)
(* Declarations                                                       *)
(* ------------------------------------------------------------------ *)

let parse_modifiers st =
  let mods = ref [] in
  let continue = ref true in
  while !continue do
    (match peek st with
     | Lexer.KW "public" -> mods := Public :: !mods; advance st
     | Lexer.KW "private" -> mods := Private :: !mods; advance st
     | Lexer.KW "protected" -> mods := Protected :: !mods; advance st
     | Lexer.KW "static" -> mods := Static :: !mods; advance st
     | Lexer.KW "native" -> mods := Native :: !mods; advance st
     | Lexer.KW "abstract" -> mods := Abstract :: !mods; advance st
     | Lexer.KW "final" -> mods := Final :: !mods; advance st
     | Lexer.KW "synchronized" -> mods := Synchronized :: !mods; advance st
     | _ -> continue := false)
  done;
  List.rev !mods

let parse_params st =
  expect_punct st "(";
  if eat_punct st ")" then []
  else begin
    let rec loop acc =
      let t = parse_type st in
      let name = expect_ident st in
      let t = array_suffix st t in
      if eat_punct st "," then loop ((t, name) :: acc)
      else begin expect_punct st ")"; List.rev ((t, name) :: acc) end
    in
    loop []
  end

let parse_throws st =
  if eat_kw st "throws" then begin
    let rec loop acc =
      let c = expect_ident st in
      if eat_punct st "," then loop (c :: acc) else List.rev (c :: acc)
    in
    loop []
  end else []

let parse_member st ~class_name =
  let p = pos st in
  let mods = parse_modifiers st in
  (* constructor: Name ( ... ) *)
  match peek st, peek2 st with
  | Lexer.IDENT n, Lexer.PUNCT "(" when String.equal n class_name ->
    advance st;
    let params = parse_params st in
    let _ = parse_throws st in
    let body = parse_block st in
    `Ctor { cd_mods = mods; cd_params = params; cd_body = body; cd_pos = p }
  | _ ->
    let t = parse_type st in
    let name = expect_ident st in
    if is_punct st "(" then begin
      let params = parse_params st in
      let throws = parse_throws st in
      let body =
        if eat_punct st ";" then None
        else Some (parse_block st)
      in
      `Method { md_mods = mods; md_ret = t; md_name = name;
                md_params = params; md_throws = throws; md_body = body;
                md_pos = p }
    end
    else begin
      let t = array_suffix st t in
      let init = if eat_punct st "=" then Some (parse_expr st) else None in
      expect_punct st ";";
      `Field { f_mods = mods; f_typ = t; f_name = name; f_init = init;
               f_pos = p }
    end

let parse_class st ~abstract =
  let p = pos st in
  expect_kw st "class";
  let name = expect_ident st in
  let super = if eat_kw st "extends" then Some (expect_ident st) else None in
  let ifaces =
    if eat_kw st "implements" then begin
      let rec loop acc =
        let c = expect_ident st in
        if eat_punct st "," then loop (c :: acc) else List.rev (c :: acc)
      in
      loop []
    end else []
  in
  expect_punct st "{";
  let fields = ref [] and methods = ref [] and ctors = ref [] in
  while not (is_punct st "}") do
    match parse_member st ~class_name:name with
    | `Field f -> fields := f :: !fields
    | `Method m -> methods := m :: !methods
    | `Ctor c -> ctors := c :: !ctors
  done;
  advance st;
  { c_name = name; c_super = super; c_ifaces = ifaces;
    c_fields = List.rev !fields; c_methods = List.rev !methods;
    c_ctors = List.rev !ctors; c_abstract = abstract; c_pos = p }

let parse_interface st =
  let p = pos st in
  expect_kw st "interface";
  let name = expect_ident st in
  let supers =
    if eat_kw st "extends" then begin
      let rec loop acc =
        let c = expect_ident st in
        if eat_punct st "," then loop (c :: acc) else List.rev (c :: acc)
      in
      loop []
    end else []
  in
  expect_punct st "{";
  let methods = ref [] in
  while not (is_punct st "}") do
    match parse_member st ~class_name:name with
    | `Method m ->
      if m.md_body <> None then
        raise (Parse_error ("interface method with body: " ^ m.md_name, p));
      methods := m :: !methods
    | `Field _ | `Ctor _ ->
      raise (Parse_error ("only method signatures allowed in interface", p))
  done;
  advance st;
  { i_name = name; i_supers = supers; i_methods = List.rev !methods;
    i_pos = p }

let parse_unit st : compilation_unit =
  let decls = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.EOF -> continue := false
    | _ ->
      let mods = parse_modifiers st in
      let abstract = List.mem Abstract mods in
      if is_kw st "class" then decls := Class (parse_class st ~abstract) :: !decls
      else if is_kw st "interface" then
        decls := Interface (parse_interface st) :: !decls
      else errorf st "expected class or interface but found %a"
             Lexer.pp_token (peek st)
  done;
  List.rev !decls

(** Parse a whole source string into a compilation unit.
    Raises {!Parse_error} or {!Lexer.Lex_error} on malformed input. *)
let parse (src : string) : compilation_unit =
  let toks = Array.of_list (Lexer.tokenize src) in
  parse_unit { toks; cur = 0 }
