(** Dominator tree and dominance frontiers (Cooper-Harvey-Kennedy).
    All blocks must be reachable from block 0 (run {!Cfg.compact} first). *)

type t = {
  idom : int array;            (** immediate dominator; [idom.(0) = 0] *)
  children : int list array;   (** dominator-tree children *)
  frontier : int list array;   (** dominance frontier per block *)
}

val compute : Cfg.t -> t

(** [dominates t a b]: does block [a] dominate block [b]? *)
val dominates : t -> int -> int -> bool
