(** Three-address code: the register-transfer IR the analyses consume.

    Every method body is a CFG of basic blocks over an unbounded register
    file. Registers are integers; register 0..k-1 hold the formal parameters
    (register 0 is [this] for instance methods). After {!Ssa.convert} each
    register has a single static assignment and blocks carry phi functions.

    String values are "string carriers" (§4.2.1 of the paper): produced and
    combined only by [Const], [Move], [Strcat] and calls, never stored into
    the heap by the string library itself — the model JDK guarantees this by
    construction, which is what lets the analysis treat strings as primitive
    values. *)

type var = int

type const =
  | Cint of int
  | Cbool of bool
  | Cstr of string
  | Cchar of char
  | Cnull

(** A field reference, resolved to its declaring class. *)
type field = { fclass : string; fname : string }

(** An unresolved method reference as it appears at a call site. *)
type mref = { rclass : string; rname : string; rarity : int }

type call_kind =
  | Virtual   (** receiver-dispatched; args.(0) is the receiver *)
  | Special   (** constructor or super call; args.(0) is the receiver *)
  | Static

type call = {
  ret : var option;
  kind : call_kind;
  target : mref;
  args : var list;
  site : int;            (** globally unique call-site id *)
}

type instr =
  | Const of var * const
  | Move of var * var
  | Binop of var * Ast.binop * var * var
  | Unop of var * Ast.unop * var
  | New of var * string * int              (** v = new C; alloc-site id *)
  | New_array of var * Ast.typ * var * int (** v = new T[n]; alloc-site id *)
  | Load of var * var * field              (** v = o.f *)
  | Store of var * field * var             (** o.f = v *)
  | Sload of var * field                   (** v = C.f *)
  | Sstore of field * var                  (** C.f = v *)
  | Aload of var * var * var               (** v = a[i] *)
  | Astore of var * var * var              (** a[i] = v *)
  | Array_len of var * var
  | Call of call
  | Cast of var * Ast.typ * var
  | Instance_of of var * string * var
  | Strcat of var * var * var              (** v = a ++ b, taint-transparent *)
  | Catch_entry of var * string            (** v = caught exception of class *)
  | Nop

type terminator =
  | Goto of int
  | If of var * int * int                  (** cond, then-block, else-block *)
  | Return of var option
  | Throw of var
  | Unreachable                            (** filler for malformed tails *)

type phi = { phi_lhs : var; phi_args : (int * var) list }
(** [phi_args] pairs a predecessor block index with the incoming register. *)

type block = {
  mutable phis : phi list;
  mutable instrs : instr array;
  mutable term : terminator;
  mutable handlers : int list;
  (** exceptional successors: handler blocks covering this block *)
}

type meth = {
  m_class : string;
  m_name : string;
  m_arity : int;                (** number of formals incl. receiver *)
  m_static : bool;
  m_ret : Ast.typ;
  m_param_types : Ast.typ list;
  mutable m_blocks : block array;
  mutable m_nvars : int;
  m_synthetic : bool;           (** true for model/framework-generated code *)
  m_library : bool;             (** true for model-JDK code (LCP boundary) *)
  m_has_body : bool;            (** false for native/abstract declarations *)
}

let method_id (m : meth) = Printf.sprintf "%s.%s/%d" m.m_class m.m_name m.m_arity

let mref_id (r : mref) = Printf.sprintf "%s.%s/%d" r.rclass r.rname r.rarity

let pp_const ppf = function
  | Cint v -> Fmt.int ppf v
  | Cbool b -> Fmt.bool ppf b
  | Cstr s -> Fmt.pf ppf "%S" s
  | Cchar c -> Fmt.pf ppf "%C" c
  | Cnull -> Fmt.string ppf "null"

let pp_var ppf v = Fmt.pf ppf "%%%d" v

let pp_field ppf f = Fmt.pf ppf "%s.%s" f.fclass f.fname

let pp_instr ppf = function
  | Const (v, c) -> Fmt.pf ppf "%a = %a" pp_var v pp_const c
  | Move (d, s) -> Fmt.pf ppf "%a = %a" pp_var d pp_var s
  | Binop (d, op, a, b) ->
    Fmt.pf ppf "%a = %a %a %a" pp_var d pp_var a Ast.pp_binop op pp_var b
  | Unop (d, Ast.Neg, a) -> Fmt.pf ppf "%a = -%a" pp_var d pp_var a
  | Unop (d, Ast.Not, a) -> Fmt.pf ppf "%a = !%a" pp_var d pp_var a
  | New (d, c, site) -> Fmt.pf ppf "%a = new %s @%d" pp_var d c site
  | New_array (d, t, n, site) ->
    Fmt.pf ppf "%a = new %a[%a] @%d" pp_var d Ast.pp_typ t pp_var n site
  | Load (d, o, f) -> Fmt.pf ppf "%a = %a.%a" pp_var d pp_var o pp_field f
  | Store (o, f, v) -> Fmt.pf ppf "%a.%a = %a" pp_var o pp_field f pp_var v
  | Sload (d, f) -> Fmt.pf ppf "%a = static %a" pp_var d pp_field f
  | Sstore (f, v) -> Fmt.pf ppf "static %a = %a" pp_field f pp_var v
  | Aload (d, a, i) -> Fmt.pf ppf "%a = %a[%a]" pp_var d pp_var a pp_var i
  | Astore (a, i, v) -> Fmt.pf ppf "%a[%a] = %a" pp_var a pp_var i pp_var v
  | Array_len (d, a) -> Fmt.pf ppf "%a = %a.length" pp_var d pp_var a
  | Call c ->
    let pp_ret ppf = function
      | Some v -> Fmt.pf ppf "%a = " pp_var v
      | None -> ()
    in
    let kind = match c.kind with
      | Virtual -> "virtual" | Special -> "special" | Static -> "static"
    in
    Fmt.pf ppf "%a%s %s(%a) @%d" pp_ret c.ret kind (mref_id c.target)
      Fmt.(list ~sep:(any ", ") pp_var) c.args c.site
  | Cast (d, t, s) -> Fmt.pf ppf "%a = (%a) %a" pp_var d Ast.pp_typ t pp_var s
  | Instance_of (d, c, s) ->
    Fmt.pf ppf "%a = %a instanceof %s" pp_var d pp_var s c
  | Strcat (d, a, b) -> Fmt.pf ppf "%a = %a ++ %a" pp_var d pp_var a pp_var b
  | Catch_entry (v, c) -> Fmt.pf ppf "%a = catch %s" pp_var v c
  | Nop -> Fmt.string ppf "nop"

let pp_terminator ppf = function
  | Goto b -> Fmt.pf ppf "goto B%d" b
  | If (c, t, e) -> Fmt.pf ppf "if %a then B%d else B%d" pp_var c t e
  | Return None -> Fmt.string ppf "return"
  | Return (Some v) -> Fmt.pf ppf "return %a" pp_var v
  | Throw v -> Fmt.pf ppf "throw %a" pp_var v
  | Unreachable -> Fmt.string ppf "unreachable"

let pp_meth ppf (m : meth) =
  Fmt.pf ppf "@[<v>method %s (%d vars)%s%s@," (method_id m) m.m_nvars
    (if m.m_static then " static" else "")
    (if m.m_library then " [lib]" else "");
  Array.iteri
    (fun i b ->
       Fmt.pf ppf "@[<v2>B%d:%s@," i
         (match b.handlers with
          | [] -> ""
          | hs ->
            Printf.sprintf " (handlers %s)"
              (String.concat "," (List.map string_of_int hs)));
       List.iter
         (fun p ->
            Fmt.pf ppf "%a = phi(%a)@," pp_var p.phi_lhs
              Fmt.(list ~sep:(any ", ")
                     (fun ppf (blk, v) -> pf ppf "B%d:%a" blk pp_var v))
              p.phi_args)
         b.phis;
       Array.iter (fun ins -> Fmt.pf ppf "%a@," pp_instr ins) b.instrs;
       Fmt.pf ppf "%a@]@," pp_terminator b.term)
    m.m_blocks;
  Fmt.pf ppf "@]"

(** Successor block indices on normal control flow (not exception edges). *)
let successors (b : block) =
  match b.term with
  | Goto t -> [ t ]
  | If (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | Return _ | Throw _ | Unreachable -> []

(** All successors including exceptional edges to handlers. *)
let all_successors (b : block) =
  successors b @ b.handlers

(** Registers defined by an instruction. *)
let defs = function
  | Const (v, _) | Move (v, _) | Binop (v, _, _, _) | Unop (v, _, _)
  | New (v, _, _) | New_array (v, _, _, _) | Load (v, _, _) | Sload (v, _)
  | Aload (v, _, _) | Array_len (v, _) | Cast (v, _, _)
  | Instance_of (v, _, _) | Strcat (v, _, _) | Catch_entry (v, _) -> [ v ]
  | Call { ret = Some v; _ } -> [ v ]
  | Call { ret = None; _ } | Store _ | Sstore _ | Astore _ | Nop -> []

(** Registers used by an instruction. *)
let uses = function
  | Const _ | New _ | Sload _ | Catch_entry _ | Nop -> []
  | Move (_, s) | Unop (_, _, s) | Cast (_, _, s) | Instance_of (_, _, s)
  | Array_len (_, s) | New_array (_, _, s, _) -> [ s ]
  | Binop (_, _, a, b) | Strcat (_, a, b) -> [ a; b ]
  | Load (_, o, _) -> [ o ]
  | Store (o, _, v) -> [ o; v ]
  | Sstore (_, v) -> [ v ]
  | Aload (_, a, i) -> [ a; i ]
  | Astore (a, i, v) -> [ a; i; v ]
  | Call c -> c.args

let term_uses = function
  | If (c, _, _) -> [ c ]
  | Return (Some v) | Throw v -> [ v ]
  | Goto _ | Return None | Unreachable -> []
