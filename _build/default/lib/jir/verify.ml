(** Well-formedness checks over lowered (and rewritten) method bodies.

    Used by the test-suite and available to callers after program
    transformations: the reflection and exception rewrites must preserve
    every invariant checked here. *)

type violation = {
  v_method : string;
  v_where : string;
  v_message : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "%s at %s: %s" v.v_method v.v_where v.v_message

let check_meth ?(ssa = true) (m : Tac.meth) : violation list =
  let out = ref [] in
  let meth_id = Tac.method_id m in
  let violation where fmt =
    Fmt.kstr
      (fun msg ->
         out := { v_method = meth_id; v_where = where; v_message = msg } :: !out)
      fmt
  in
  let nblocks = Array.length m.Tac.m_blocks in
  let check_target where t =
    if t < 0 || t >= nblocks then
      violation where "branch target B%d out of range (%d blocks)" t nblocks
  in
  let defined = Hashtbl.create 64 in
  let check_var where v =
    if v < 0 || v >= m.Tac.m_nvars then
      violation where "register %%%d out of range (%d registers)" v
        m.Tac.m_nvars
  in
  (* pass 1: collect defs, check ranges and single assignment *)
  for p = 0 to m.Tac.m_arity - 1 do
    Hashtbl.replace defined p ()
  done;
  Array.iteri
    (fun bi (b : Tac.block) ->
       let where = Printf.sprintf "B%d" bi in
       List.iter
         (fun (phi : Tac.phi) ->
            check_var where phi.Tac.phi_lhs;
            if ssa && Hashtbl.mem defined phi.Tac.phi_lhs then
              violation where "register %%%d assigned twice" phi.Tac.phi_lhs;
            Hashtbl.replace defined phi.Tac.phi_lhs ())
         b.Tac.phis;
       Array.iteri
         (fun ii ins ->
            let where = Printf.sprintf "B%d.%d" bi ii in
            List.iter
              (fun d ->
                 check_var where d;
                 if ssa && Hashtbl.mem defined d then
                   violation where "register %%%d assigned twice" d;
                 Hashtbl.replace defined d ())
              (Tac.defs ins);
            List.iter (check_var where) (Tac.uses ins))
         b.Tac.instrs;
       List.iter (check_var where) (Tac.term_uses b.Tac.term);
       (match b.Tac.term with
        | Tac.Goto t -> check_target where t
        | Tac.If (_, t, e) -> check_target where t; check_target where e
        | Tac.Return _ | Tac.Throw _ | Tac.Unreachable -> ());
       List.iter (check_target where) b.Tac.handlers)
    m.Tac.m_blocks;
  (* pass 2: every use must have a definition somewhere (in SSA mode) *)
  if ssa then
    Array.iteri
      (fun bi (b : Tac.block) ->
         let where = Printf.sprintf "B%d" bi in
         List.iter
           (fun (phi : Tac.phi) ->
              List.iter
                (fun (pred, v) ->
                   if pred < 0 || pred >= nblocks then
                     violation where "phi predecessor B%d out of range" pred;
                   if v >= 0 && v < m.Tac.m_nvars
                      && not (Hashtbl.mem defined v)
                   then violation where "phi argument %%%d never defined" v)
                phi.Tac.phi_args)
           b.Tac.phis;
         Array.iteri
           (fun ii ins ->
              let where = Printf.sprintf "B%d.%d" bi ii in
              List.iter
                (fun v ->
                   if not (Hashtbl.mem defined v) then
                     violation where "use of undefined register %%%d" v)
                (Tac.uses ins))
           b.Tac.instrs)
      m.Tac.m_blocks;
  List.rev !out

(** Check every method; returns all violations. *)
let check_program ?ssa (p : Program.t) : violation list =
  let acc = ref [] in
  Program.iter_methods p (fun m -> acc := check_meth ?ssa m @ !acc);
  !acc
