lib/jir/lexer.mli: Ast Format
