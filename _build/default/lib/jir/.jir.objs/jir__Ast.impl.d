lib/jir/ast.ml: Fmt List Option String
