lib/jir/classtable.ml: Ast Hashtbl List String
