lib/jir/lower.ml: Array Ast Classtable Fmt Hashtbl List Printf Program String Tac
