lib/jir/lower.mli: Ast Program
