lib/jir/lexer.ml: Ast Buffer Fmt List Printf String
