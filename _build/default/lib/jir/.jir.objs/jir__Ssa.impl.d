lib/jir/ssa.ml: Array Cfg Dominance Int List Program Set Tac
