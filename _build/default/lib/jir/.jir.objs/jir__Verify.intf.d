lib/jir/verify.mli: Format Program Tac
