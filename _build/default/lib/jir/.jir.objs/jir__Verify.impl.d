lib/jir/verify.ml: Array Fmt Hashtbl List Printf Program Tac
