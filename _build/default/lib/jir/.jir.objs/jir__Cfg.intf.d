lib/jir/cfg.mli: Tac
