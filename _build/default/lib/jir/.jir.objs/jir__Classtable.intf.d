lib/jir/classtable.mli: Ast Hashtbl
