lib/jir/pretty.mli: Ast Format
