lib/jir/dominance.mli: Cfg
