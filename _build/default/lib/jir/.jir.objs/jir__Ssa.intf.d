lib/jir/ssa.mli: Program Tac
