lib/jir/program.ml: Array Classtable Hashtbl List String Tac
