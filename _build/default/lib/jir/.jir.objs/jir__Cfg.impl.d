lib/jir/cfg.ml: Array List Tac
