lib/jir/program.mli: Classtable Hashtbl Tac
