lib/jir/tac.ml: Array Ast Fmt List Printf String
