lib/jir/pretty.ml: Ast Buffer Fmt List String
