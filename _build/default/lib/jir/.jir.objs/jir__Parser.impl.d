lib/jir/parser.ml: Array Ast Fmt Lexer List String
