lib/jir/dominance.ml: Array Cfg List
