(** Pretty-printing of MJava ASTs back to parseable source, satisfying the
    round-trip property [parse (print (parse s)) = parse s] up to positions
    and body-brace normalization. *)

val typ_to_string : Ast.typ -> string
val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_decl : Format.formatter -> Ast.decl -> unit
val pp_unit : Format.formatter -> Ast.compilation_unit -> unit

(** Print a compilation unit to a parseable string. *)
val to_string : Ast.compilation_unit -> string
