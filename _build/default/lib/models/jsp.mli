(** JSP page translation: containers compile JSP to servlets, and so do we.
    Supports template text, [<%= expr %>] expressions, [<% code %>]
    scriptlets, [<%-- --%>] comments, and the implicit objects [request],
    [response], [session] and [out]. *)

exception Jsp_error of string

type chunk =
  | Text of string
  | Expr of string
  | Scriptlet of string

val parse_chunks : string -> chunk list

(** Translate a JSP page into the MJava source of its generated servlet
    class [name]. *)
val translate : name:string -> string -> string
