(** Hand-written taint-transfer summaries for native (body-less) library
    methods (§4.2.3).

    When the call graph reaches a method with no analyzable body, the
    dependence-graph builder applies a transfer summary: a set of edges from
    argument positions to the return value or to by-reference argument
    positions. The default summary is "the return value derives from every
    argument", which is sound for taint and what TAJ's succinct models
    provide; a few natives need sharper or by-reference behaviour. *)

type target = Ret | Param of int

type transfer = { t_from : int; t_to : target }
(** data flows from argument position [t_from] to [t_to] *)

(** Special-case summaries, keyed by method id ("Class.name/arity"). *)
let special : (string * transfer list) list =
  [ (* System.arraycopy(src, srcPos, dst, dstPos, len): src contents flow
       into dst *)
    ("System.arraycopy/5", [ { t_from = 0; t_to = Param 2 } ]);
    (* sanitizers produce clean output: no transfer at all — the taint
       engine additionally treats them as flow barriers via rules *)
    ("URLEncoder.encode/1", []);
    (* Math & friends produce nothing taint-relevant *)
    ("Math.abs/1", []); ("Math.max/2", []); ("Math.min/2", []);
    ("Math.random/0", []);
    ("System.currentTimeMillis/0", []);
    ("Random.nextInt/2", []);
    (* Cookie.getValue: the value derives from the cookie object *)
    ("Cookie.getValue/1", [ { t_from = 0; t_to = Ret } ]) ]

let default ~arity ~has_ret : transfer list =
  if has_ret then List.init arity (fun i -> { t_from = i; t_to = Ret })
  else []

(** The transfer summary for a body-less method. *)
let summary ~meth_id ~arity ~has_ret : transfer list =
  match List.assoc_opt meth_id special with
  | Some ts -> ts
  | None -> default ~arity ~has_ret
