(** Exception modeling for information-leakage detection (§4.1.2).

    For every [catch (C e)] entry, we synthesize a call to [getMessage] on
    the caught object and store the result into the exception's [msg] field.
    With [getMessage] registered as an information-leak source, the caught
    exception becomes a taint carrier, so idioms like
    [resp.getWriter().println(e)] are flagged by the taint-carrier detector
    without any per-site source specification. *)

open Jir

(* Rewrite one method in place. Runs after SSA conversion: the synthesized
   registers are fresh, and the store defines no register, so the SSA
   property is preserved. *)
let rewrite_method (prog : Program.t) (m : Tac.meth) : int =
  let table = prog.Program.table in
  let count = ref 0 in
  Array.iter
    (fun (b : Tac.block) ->
       let out = ref [] in
       Array.iter
         (fun ins ->
            out := ins :: !out;
            match ins with
            | Tac.Catch_entry (v, exn_cls) ->
              incr count;
              let target_cls =
                match Classtable.lookup_method table exn_cls "getMessage" 1 with
                | Some mi -> mi.Classtable.mi_class
                | None -> "Throwable"
              in
              let target =
                { Tac.rclass = target_cls; rname = "getMessage"; rarity = 1 }
              in
              let site =
                Program.fresh_site prog ~meth:(Tac.method_id m)
                  ~kind:(Program.Call_site target)
              in
              let t = m.Tac.m_nvars in
              m.Tac.m_nvars <- t + 1;
              out :=
                Tac.Store (v, { Tac.fclass = "Throwable"; fname = "msg" }, t)
                :: Tac.Call
                     { ret = Some t; kind = Tac.Virtual; target;
                       args = [ v ]; site }
                :: !out
            | _ -> ())
         b.Tac.instrs;
       b.Tac.instrs <- Array.of_list (List.rev !out))
    m.Tac.m_blocks;
  !count

(** Apply the rewrite to every non-library method of the program (library
    catch blocks are not interesting leak points). Returns the number of
    synthesized sources. *)
let rewrite_program (prog : Program.t) : int =
  let n = ref 0 in
  Program.iter_methods prog (fun m ->
      if not m.Tac.m_library then n := !n + rewrite_method prog m);
  !n
