(** Constant-key modeling of hash dictionaries (§4.2.1).

    [m.put("k", v)] / [m.get("k")] on dictionary classes are interpreted as
    field stores/loads on the receiver. The field encoding is sound and
    precise for mixed constant/unknown keys:
    - put with constant key [K] writes [$key_K] and [$all];
    - put with unknown key writes [$any];
    - get with constant key [K] reads [$key_K] and [$any];
    - get with unknown key reads [$any] and [$all]. *)

type key = Const_key of string | Unknown_key

type op =
  | Dict_put of { recv : Jir.Tac.var; key : key; value : Jir.Tac.var }
  | Dict_get of { dst : Jir.Tac.var; recv : Jir.Tac.var; key : key }

val is_dict_class : string -> bool

(** Interpret a call as a dictionary access. [const_of v] returns the string
    constant register [v] is bound to, if any. *)
val classify : const_of:(Jir.Tac.var -> string option) -> Jir.Tac.call -> op option

(** Fields written by a put with the given key. *)
val put_fields : key -> Jir.Tac.field list

(** Fields read by a get with the given key. *)
val get_fields : key -> Jir.Tac.field list

(** A [const_of] function for a method in SSA form. *)
val const_of_meth : Jir.Tac.meth -> Jir.Tac.var -> string option
