(** Exception modeling for information-leakage detection (§4.1.2): after
    every [catch (C e)], synthesize [t = e.getMessage(); e.msg = t]. With
    [getMessage] registered as an information-leak source, the caught
    exception becomes a taint carrier, so [println(e)] idioms are flagged
    by the carrier detector. *)

(** Rewrite one SSA-form method in place; returns the number of synthesized
    sources. *)
val rewrite_method : Jir.Program.t -> Jir.Tac.meth -> int

(** Rewrite every non-library method. *)
val rewrite_program : Jir.Program.t -> int
