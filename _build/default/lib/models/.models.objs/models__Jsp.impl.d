lib/models/jsp.ml: Buffer List Printf String
