lib/models/jdklib.mli: Jir Lazy
