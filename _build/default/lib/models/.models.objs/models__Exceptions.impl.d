lib/models/exceptions.ml: Array Classtable Jir List Program Tac
