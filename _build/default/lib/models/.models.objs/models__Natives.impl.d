lib/models/natives.ml: List
