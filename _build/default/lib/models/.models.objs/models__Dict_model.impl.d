lib/models/dict_model.ml: Array Jdklib Jir List Ssa Tac
