lib/models/reflection.ml: Array Ast Classtable Hashtbl Jir List Option Printf Program Ssa String Tac
