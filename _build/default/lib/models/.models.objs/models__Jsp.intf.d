lib/models/jsp.mli:
