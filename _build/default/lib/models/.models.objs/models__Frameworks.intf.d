lib/models/frameworks.mli: Jir
