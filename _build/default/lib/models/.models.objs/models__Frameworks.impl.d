lib/models/frameworks.ml: Ast Buffer Classtable Hashtbl Jir List Printf String
