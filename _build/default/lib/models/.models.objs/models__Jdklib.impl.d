lib/models/jdklib.ml: Jir Lazy List
