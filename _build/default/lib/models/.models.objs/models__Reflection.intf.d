lib/models/reflection.mli: Jir
