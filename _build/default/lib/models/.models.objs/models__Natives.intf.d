lib/models/natives.mli:
