lib/models/dict_model.mli: Jir
