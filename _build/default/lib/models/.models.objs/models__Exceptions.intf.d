lib/models/exceptions.mli: Jir
