(** Taint-transfer summaries for native (body-less) library methods
    (§4.2.3). The default is "the return value derives from every
    argument"; a few natives need sharper or by-reference behaviour. *)

type target = Ret | Param of int

type transfer = { t_from : int; t_to : target }
(** data flows from argument position [t_from] to [t_to] *)

(** Special-case summaries, keyed by method id ("Class.name/arity"). *)
val special : (string * transfer list) list

val default : arity:int -> has_ret:bool -> transfer list

(** The transfer summary for a body-less method. *)
val summary : meth_id:string -> arity:int -> has_ret:bool -> transfer list
