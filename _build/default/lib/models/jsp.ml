(** JSP page translation (§1, §4.1.2: TAJ models JSP; containers compile
    JSP pages to servlets, and so do we).

    Supported JSP subset:
    - template text (emitted via [out.print("...")]);
    - [<%= expr %>] expression tags (emitted via [out.print(expr)] — the
      classic reflected-XSS surface);
    - [<% code %>] scriptlets (spliced verbatim);
    - [<%-- comment --%>] comments (dropped);
    - implicit objects [request], [response], [session], [out].

    [translate ~name page] produces the MJava source of the generated
    servlet class [name]; load it like any other application source. *)

exception Jsp_error of string

type chunk =
  | Text of string
  | Expr of string
  | Scriptlet of string

let parse_chunks (page : string) : chunk list =
  let n = String.length page in
  let chunks = ref [] in
  let text_start = ref 0 in
  let flush_text upto =
    if upto > !text_start then
      chunks := Text (String.sub page !text_start (upto - !text_start)) :: !chunks
  in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && page.[!i] = '<' && page.[!i + 1] = '%' then begin
      flush_text !i;
      let body_start, kind =
        if !i + 3 < n && page.[!i + 2] = '-' && page.[!i + 3] = '-' then
          (!i + 4, `Comment)
        else if !i + 2 < n && page.[!i + 2] = '=' then (!i + 3, `Expr)
        else (!i + 2, `Scriptlet)
      in
      let close =
        match kind with `Comment -> "--%>" | `Expr | `Scriptlet -> "%>"
      in
      let rec find_close at =
        if at + String.length close > n then
          raise (Jsp_error "unterminated JSP tag")
        else if String.sub page at (String.length close) = close then at
        else find_close (at + 1)
      in
      let body_end = find_close body_start in
      let body = String.trim (String.sub page body_start (body_end - body_start)) in
      (match kind with
       | `Comment -> ()
       | `Expr -> chunks := Expr body :: !chunks
       | `Scriptlet -> chunks := Scriptlet body :: !chunks);
      i := body_end + String.length close;
      text_start := !i
    end
    else incr i
  done;
  flush_text n;
  List.rev !chunks

let escape_mjava_string s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Translate a JSP page into the MJava source of its generated servlet. *)
let translate ~(name : string) (page : string) : string =
  let chunks = parse_chunks page in
  let buf = Buffer.create (String.length page + 256) in
  Buffer.add_string buf (Printf.sprintf "class %s extends HttpServlet {\n" name);
  Buffer.add_string buf
    "  public void doGet(HttpServletRequest request, HttpServletResponse response) {\n\
    \    PrintWriter out = response.getWriter();\n\
    \    HttpSession session = request.getSession();\n";
  List.iter
    (fun chunk ->
       match chunk with
       | Text t ->
         if String.trim t <> "" then
           Buffer.add_string buf
             (Printf.sprintf "    out.print(\"%s\");\n" (escape_mjava_string t))
       | Expr e -> Buffer.add_string buf (Printf.sprintf "    out.print(%s);\n" e)
       | Scriptlet code ->
         Buffer.add_string buf "    ";
         Buffer.add_string buf code;
         if String.length code > 0 && code.[String.length code - 1] <> '}'
            && code.[String.length code - 1] <> ';'
         then Buffer.add_char buf ';';
         Buffer.add_char buf '\n')
    chunks;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf
