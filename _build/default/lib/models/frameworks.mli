(** Web-framework modeling (§4.2.2): Struts actions, servlets and EJBs,
    driven by a line-based deployment descriptor:

    {v
    # comment
    servlet <servlet-class>
    action <path> <action-class> <form-class>
    ejb <jndi-name> <home-interface> <bean-class>
    v}

    Synthesis produces a [$Main] entry class invoking every servlet and
    action, a [$Synth] factory populating every ActionForm field with
    tainted data (recursively), and one [$<Home>Impl] class per EJB whose
    [create] returns the bean — the analyzable artifact that lets remote
    calls resolve without container code. *)

type descriptor = {
  servlets : string list;
  actions : (string * string * string) list;  (** path, action, form *)
  ejbs : (string * string * string) list;     (** jndi, home iface, bean *)
}

val empty : descriptor

exception Descriptor_error of string

val parse_descriptor : string -> descriptor

val home_impl_name : string -> string

(** The JNDI registry handed to {!Reflection.rewrite_program}. *)
val ejb_registry : descriptor -> (string * string) list

(** Classes an action's [execute] casts its form parameter to, keyed by
    action class (§4.2.2's cast-constraint inference). *)
val form_cast_constraints :
  Jir.Ast.compilation_unit list -> (string * string list) list

(** Synthesize the entrypoint artifacts as MJava source. The class table
    must already contain all application and library declarations;
    [cast_constraints] narrows the form subtypes instantiated per action. *)
val synthesize :
  ?cast_constraints:(string * string list) list ->
  Jir.Classtable.t -> descriptor -> string

(** Method id of the synthesized entrypoint ([$Main.run/0]). *)
val entry_method : string

(** Method id of the synthetic tainted-data source for form fields. *)
val tainted_source : string
