(** Constant-key modeling of hash dictionaries (§4.2.1).

    Calls like [m.put("k", v)] / [m.get("k")] on dictionary classes are
    interpreted as field stores/loads on the receiver, using one synthetic
    field per statically resolvable key. The encoding is both sound and
    precise for mixed constant/unknown keys:

    - a put with constant key [K] writes fields [$key_K] and [$all];
    - a put with an unknown key writes field [$any];
    - a get with constant key [K] reads [$key_K] and [$any];
    - a get with an unknown key reads [$any] and [$all].

    A constant-key get therefore sees every value that could have been stored
    under its key (constant put of the same key, or any unknown-key put) and
    nothing else — in particular not constant puts of a *different* key,
    which is the precision win of the paper's example. An unknown-key get
    conservatively sees everything. *)

open Jir

type key = Const_key of string | Unknown_key

type op =
  | Dict_put of { recv : Tac.var; key : key; value : Tac.var }
  | Dict_get of { dst : Tac.var; recv : Tac.var; key : key }

let put_names = [ "put"; "setAttribute"; "setProperty" ]
let get_names = [ "get"; "getAttribute"; "getProperty" ]

let is_dict_class cls = List.mem cls Jdklib.dictionary_classes

(** [classify ~const_of call] interprets a dictionary access. [const_of v]
    must return the string constant that register [v] is bound to, if any
    (callers derive it from SSA def sites). *)
let classify ~(const_of : Tac.var -> string option) (c : Tac.call) : op option =
  if not (is_dict_class c.Tac.target.Tac.rclass) then None
  else
    let key_of v =
      match const_of v with Some s -> Const_key s | None -> Unknown_key
    in
    match c.Tac.args with
    | [ recv; k; v ]
      when List.mem c.Tac.target.Tac.rname put_names && c.Tac.target.Tac.rarity = 3 ->
      Some (Dict_put { recv; key = key_of k; value = v })
    | [ recv; k ]
      when List.mem c.Tac.target.Tac.rname get_names && c.Tac.target.Tac.rarity = 2 ->
      (match c.Tac.ret with
       | Some dst -> Some (Dict_get { dst; recv; key = key_of k })
       | None -> None)
    | _ -> None

(** Fields written by a put with the given key. *)
let put_fields = function
  | Const_key k ->
    [ { Tac.fclass = "$Dict"; fname = "$key_" ^ k };
      { Tac.fclass = "$Dict"; fname = "$all" } ]
  | Unknown_key -> [ { Tac.fclass = "$Dict"; fname = "$any" } ]

(** Fields read by a get with the given key. *)
let get_fields = function
  | Const_key k ->
    [ { Tac.fclass = "$Dict"; fname = "$key_" ^ k };
      { Tac.fclass = "$Dict"; fname = "$any" } ]
  | Unknown_key ->
    [ { Tac.fclass = "$Dict"; fname = "$any" };
      { Tac.fclass = "$Dict"; fname = "$all" } ]

(** A [const_of] function for a method in SSA form. *)
let const_of_meth (m : Tac.meth) : Tac.var -> string option =
  let defs = Ssa.def_sites m in
  fun v ->
    if v < 0 || v >= Array.length defs then None
    else
      match defs.(v) with
      | Some (Ssa.Def_instr (b, i)) ->
        (match m.Tac.m_blocks.(b).Tac.instrs.(i) with
         | Tac.Const (_, Tac.Cstr s) -> Some s
         | _ -> None)
      | _ -> None
