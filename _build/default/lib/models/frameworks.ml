(** Web-framework modeling (§4.2.2): Struts actions, servlets and EJBs.

    Real containers dispatch to application code based on deployment
    descriptors; analyzing the container is hopeless, so TAJ reads the
    descriptor and synthesizes analyzable artifacts. We do the same over a
    simple line-based descriptor format:

    {v
    # comment
    servlet <servlet-class>
    action <path> <action-class> <form-class>
    ejb <jndi-name> <home-interface> <bean-class>
    v}

    Synthesis produces MJava source for a [$Main] entry class that invokes
    every servlet's [service] and every action's [execute], a [$Synth]
    factory whose makers populate every [ActionForm] field with tainted data
    (recursively through compound fields), and one [$<Home>Impl] class per
    EJB whose [create] returns the bean instance — the artifact that lets
    remote calls resolve without container code. *)

open Jir

type descriptor = {
  servlets : string list;
  actions : (string * string * string) list;  (* path, action, form *)
  ejbs : (string * string * string) list;     (* jndi, home iface, bean *)
}

let empty = { servlets = []; actions = []; ejbs = [] }

exception Descriptor_error of string

let parse_descriptor (text : string) : descriptor =
  let lines = String.split_on_char '\n' text in
  List.fold_left
    (fun d line ->
       let line = String.trim line in
       if String.length line = 0 || line.[0] = '#' then d
       else
         match String.split_on_char ' ' line
               |> List.filter (fun s -> s <> "") with
         | [ "servlet"; cls ] -> { d with servlets = d.servlets @ [ cls ] }
         | [ "action"; path; action; form ] ->
           { d with actions = d.actions @ [ (path, action, form) ] }
         | [ "ejb"; jndi; home; bean ] ->
           { d with ejbs = d.ejbs @ [ (jndi, home, bean) ] }
         | _ -> raise (Descriptor_error ("bad descriptor line: " ^ line)))
    empty lines

(* ------------------------------------------------------------------ *)
(* Cast-constraint inference (§4.2.2)                                 *)
(* ------------------------------------------------------------------ *)

(* "the analysis first checks which constraints the concrete implementation
   of execute places on its ActionForm parameter in the form of cast
   operations, and then simulates the passing of all compatible subtypes" *)

(** Classes an action's [execute] casts its form parameter to, keyed by
    action class. An action with no recorded entry places no constraint. *)
let form_cast_constraints (units : Ast.compilation_unit list) :
  (string * string list) list =
  let acc = ref [] in
  List.iter
    (List.iter (function
       | Ast.Interface _ -> ()
       | Ast.Class c ->
         List.iter
           (fun (m : Ast.method_decl) ->
              if String.equal m.Ast.md_name "execute" then
                match m.Ast.md_params, m.Ast.md_body with
                | _ :: (Ast.Tclass _, form_param) :: _, Some body ->
                  let casts = ref [] in
                  Ast.iter_exprs
                    (fun e ->
                       match e.Ast.e with
                       | Ast.Cast (Ast.Tclass t, { Ast.e = Ast.Var v; _ })
                         when String.equal v form_param ->
                         if not (List.mem t !casts) then casts := t :: !casts
                       | _ -> ())
                    body;
                  if !casts <> [] then acc := (c.Ast.c_name, !casts) :: !acc
                | _ -> ())
           c.Ast.c_methods))
    units;
  !acc

(* ------------------------------------------------------------------ *)
(* Synthesis                                                          *)
(* ------------------------------------------------------------------ *)

let home_impl_name home = "$" ^ home ^ "Impl"

(** The JNDI registry handed to {!Reflection.rewrite_program}. *)
let ejb_registry (d : descriptor) : (string * string) list =
  List.map (fun (jndi, home, _) -> (jndi, home_impl_name home)) d.ejbs

(* Generate the $Synth maker for one form class, recursing into compound
   fields up to [max_depth]. Returns the maker bodies accumulated so far.
   Cycle-safe: a class currently being generated is referenced, not
   re-entered. *)
let rec gen_maker table ~max_depth ~depth ~(made : (string, unit) Hashtbl.t)
    ~(buf : Buffer.t) (cls : string) : unit =
  if not (Hashtbl.mem made cls) then begin
    Hashtbl.replace made cls ();
    let fields = Classtable.all_fields table cls in
    let body = Buffer.create 128 in
    Buffer.add_string body
      (Printf.sprintf "  public static %s make$%s() {\n    %s f = new %s();\n"
         cls cls cls cls);
    List.iter
      (fun (fi : Classtable.finfo) ->
         if not fi.Classtable.fi_static then
           match fi.Classtable.fi_typ with
           | Jir.Ast.Tclass "String" ->
             Buffer.add_string body
               (Printf.sprintf "    f.%s = $Synth.taintedString();\n"
                  fi.Classtable.fi_name)
           | Jir.Ast.Tclass c when depth < max_depth ->
             (match Classtable.find_opt table c with
              | Some info
                when info.Classtable.cl_kind = Classtable.Class_kind
                     && not info.Classtable.cl_abstract
                     && not info.Classtable.cl_library
                     && List.mem 1 info.Classtable.cl_ctor_arities ->
                gen_maker table ~max_depth ~depth:(depth + 1) ~made ~buf c;
                Buffer.add_string body
                  (Printf.sprintf "    f.%s = $Synth.make$%s();\n"
                     fi.Classtable.fi_name c)
              | _ -> ())
           | _ -> ())
      fields;
    Buffer.add_string body "    return f;\n  }\n";
    Buffer.add_buffer buf body
  end

(** Synthesize the entrypoint artifacts. [table] must already contain all
    application and library declarations. [cast_constraints] (from
    {!form_cast_constraints}) narrows the form subtypes instantiated per
    action to those compatible with the casts its [execute] performs.
    Returns MJava source text to load as (synthetic) application code. *)
let synthesize ?(cast_constraints = []) (table : Classtable.t)
    (d : descriptor) : string =
  (* every concrete HttpServlet subtype is an entrypoint, declared or not *)
  let declared = d.servlets in
  let auto =
    Classtable.concrete_subtypes table "HttpServlet"
    |> List.filter (fun c -> c <> "HttpServlet" && not (List.mem c declared))
  in
  let servlets =
    List.filter (fun c -> Classtable.mem table c) (declared @ auto)
  in
  let buf = Buffer.create 1024 in
  (* --- $Synth: tainted form factories --- *)
  let made = Hashtbl.create 8 in
  let makers = Buffer.create 512 in
  let form_instances =
    List.concat_map
      (fun (_, action, form) ->
         let subs =
           Classtable.concrete_subtypes table form
           |> List.filter (fun c -> Classtable.mem table c)
         in
         (* keep only subtypes compatible with the action's observed casts *)
         let subs =
           match List.assoc_opt action cast_constraints with
           | Some casts ->
             let narrowed =
               List.filter
                 (fun sub ->
                    List.exists
                      (fun t -> Classtable.is_subclass table sub t)
                      casts)
                 subs
             in
             (* a cast to an unrelated class constrains nothing we can use;
                fall back to the declared form's subtypes *)
             if narrowed = [] then subs else narrowed
           | None -> subs
         in
         List.map (fun sub -> (action, sub)) subs)
      d.actions
  in
  List.iter
    (fun (_, sub) -> gen_maker table ~max_depth:2 ~depth:0 ~made ~buf:makers sub)
    form_instances;
  Buffer.add_string buf "class $Synth {\n";
  Buffer.add_string buf "  public static native String taintedString();\n";
  Buffer.add_buffer buf makers;
  Buffer.add_string buf "}\n";
  (* --- EJB home implementations --- *)
  List.iter
    (fun (_, home, bean) ->
       match Classtable.lookup_method table home "create" 1 with
       | Some mi ->
         let ret =
           match mi.Classtable.mi_ret with
           | Jir.Ast.Tclass c -> c
           | _ -> "Object"
         in
         Buffer.add_string buf
           (Printf.sprintf
              "class %s implements %s {\n\
              \  public %s create() { return new %s(); }\n\
               }\n"
              (home_impl_name home) home ret bean)
       | None -> ())
    d.ejbs;
  (* --- $Main --- *)
  Buffer.add_string buf "class $Main {\n  public static void run() {\n";
  Buffer.add_string buf
    "    HttpServletRequest req = new HttpServletRequest();\n\
    \    HttpServletResponse resp = new HttpServletResponse();\n";
  List.iteri
    (fun i cls ->
       Buffer.add_string buf
         (Printf.sprintf
            "    %s srv%d = new %s();\n\
            \    srv%d.init(new ServletConfig());\n\
            \    srv%d.service(req, resp);\n"
            cls i cls i i))
    servlets;
  List.iteri
    (fun i (action, form_sub) ->
       if Classtable.mem table action then
         Buffer.add_string buf
           (Printf.sprintf
              "    %s act%d = new %s();\n\
              \    act%d.execute(new ActionMapping(), $Synth.make$%s(), req, resp);\n"
              action i action i form_sub))
    form_instances;
  Buffer.add_string buf "  }\n}\n";
  Buffer.contents buf

(** Method id of the synthesized entrypoint. *)
let entry_method = "$Main.run/0"

(** Method id of the synthetic tainted-data source used for form fields. *)
let tainted_source = "$Synth.taintedString/0"
