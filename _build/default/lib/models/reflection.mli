(** Reflection modeling (§4.2.3) and EJB lookup bypass (§4.2.2).

    A per-method abstract interpretation over SSA def-use chains tracks
    string constants, [Class] objects, [Method] values and [Object[]]
    argument arrays. Where operands can be inferred, reflective calls are
    replaced by direct abstractions: [invoke] becomes a direct call or a
    synthesized [$Reflect.dispatch$N] fan-out, [newInstance] becomes an
    allocation plus constructor call, and [Context.lookup] of a registered
    JNDI name becomes an allocation of the mapped home implementation.
    Unresolvable calls are left to the default native transfer. *)

type absval =
  | Null
  | Str of string
  | Class_obj of string
  | Methods_of of string
  | Method_any of string
  | Method_named of string * string
  | Obj_array of Jir.Tac.var list
  | Top

val join : absval -> absval -> absval

type evaluator

val make_evaluator : Jir.Tac.meth -> evaluator

(** Abstract value of a register (memoized; cycles evaluate to [Top]). *)
val eval : evaluator -> Jir.Tac.var -> absval

type stats = {
  mutable invokes_resolved : int;
  mutable invokes_unresolved : int;
  mutable new_instances : int;
  mutable lookups : int;
}

(** Rewrite every method of the program (must be in SSA form). *)
val rewrite_program : ?ejb_registry:(string * string) list -> Jir.Program.t -> stats
