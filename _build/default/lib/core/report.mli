(** Consumable reports: LCP-deduplicated issues with witness paths. *)

type issue_report = {
  ir_issue : Rules.issue;
  ir_lcp : Sdg.Stmt.t option;
  ir_representative : Flows.t;
  ir_flow_count : int;
}

type t = {
  issues : issue_report list;
  raw_flows : Flows.t list;
}

val make : Sdg.Builder.t -> Flows.t list -> t
val issue_count : t -> int
val flow_count : t -> int

val pp_stmt : Sdg.Builder.t -> Format.formatter -> Sdg.Stmt.t -> unit
val pp_issue_report : Sdg.Builder.t -> Format.formatter -> issue_report -> unit
val pp : Sdg.Builder.t -> Format.formatter -> t -> unit
