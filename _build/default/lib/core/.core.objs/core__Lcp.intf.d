lib/core/lcp.mli: Flows Rules Sdg
