lib/core/rules.mli: Format Jir
