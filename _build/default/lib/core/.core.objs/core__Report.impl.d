lib/core/report.ml: Flows Fmt Jir Lcp List Rules Sdg Tac
