lib/core/dot.ml: Buffer Flows Fmt Jir List Pointer Printf Report Rules Sdg String Tac
