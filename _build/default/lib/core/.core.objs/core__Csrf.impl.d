lib/core/csrf.ml: Array Fmt Hashtbl Jir List Models Pointer Program Report Rules Sdg String Tac
