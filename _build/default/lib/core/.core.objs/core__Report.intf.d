lib/core/report.mli: Flows Format Rules Sdg
