lib/core/config.mli:
