lib/core/string_context.mli: Flows Format Sdg
