lib/core/config.ml:
