lib/core/lcp.ml: Flows Hashtbl Jir List Option Rules Sdg Tac
