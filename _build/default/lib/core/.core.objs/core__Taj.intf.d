lib/core/taj.mli: Config Engine Jir Models Pointer Report Rules Sdg
