lib/core/engine.ml: Config Flows Int Jir List Pointer Program Rules Sdg Set Tac
