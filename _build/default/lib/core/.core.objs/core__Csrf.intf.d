lib/core/csrf.mli: Format Jir Pointer Sdg
