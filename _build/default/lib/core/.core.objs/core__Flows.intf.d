lib/core/flows.mli: Format Jir Rules Sdg
