lib/core/engine.mli: Config Flows Jir Pointer Rules Sdg
