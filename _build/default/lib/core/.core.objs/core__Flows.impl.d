lib/core/flows.ml: Fmt Hashtbl Jir List Option Rules Sdg Tac
