lib/core/taj.ml: Ast Classtable Config Engine Fmt Jir Lazy Lexer List Lower Models Parser Pointer Program Report Rules Sdg Ssa Sys
