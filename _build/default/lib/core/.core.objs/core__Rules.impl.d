lib/core/rules.ml: Classtable Fmt Hashtbl Jir List Printf String Tac
