lib/core/dot.mli: Flows Pointer Report Sdg
