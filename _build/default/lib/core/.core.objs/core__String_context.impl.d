lib/core/string_context.ml: Flows Fmt Jir List Printf Rules Sdg String
