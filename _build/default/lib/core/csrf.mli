(** Cross-site request forgery detection — a §9 future-work item. Flags
    state-changing library calls (database updates, file writes, command
    execution) reachable in the call graph from an HTTP GET handler, unless
    the handler's reachable region performs a recognizable anti-forgery
    token check. *)

(** State-changing library methods (canonical ids). *)
val default_mutators : string list

type finding = {
  cf_entry : string;            (** the GET handler's method id *)
  cf_sink : Sdg.Stmt.t;         (** the state-changing call *)
  cf_target : string;           (** canonical id of the mutator *)
}

val pp_finding : Sdg.Builder.t -> Format.formatter -> finding -> unit

val detect :
  ?mutators:string list -> prog:Jir.Program.t -> builder:Sdg.Builder.t ->
  Pointer.Andersen.t -> finding list
