(** Library-call-point (LCP) report minimization (§5): flows sharing an LCP
    and a remediation action (issue type) collapse to one representative. *)

val stmt_in_library : Sdg.Builder.t -> Sdg.Stmt.t -> bool

(** The LCP of a flow: the last application-code statement on the path
    whose successor lies in library code (the sink call itself when the
    sink method is a library method invoked from application code). *)
val compute : Sdg.Builder.t -> Flows.t -> Sdg.Stmt.t option

type group = {
  g_lcp : Sdg.Stmt.t option;
  g_issue : Rules.issue;
  g_representative : Flows.t;           (** shortest member *)
  g_members : Flows.t list;
}

(** Group flows into ~-equivalence classes per §5. *)
val dedup : Sdg.Builder.t -> Flows.t list -> group list
