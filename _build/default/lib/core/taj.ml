(** TAJ: the end-to-end taint analysis pipeline.

    {[
      let loaded = Taj.load { name; app_sources; descriptor } in
      let analysis = Taj.run loaded (Config.preset Config.Hybrid_optimized) in
      match analysis.result with
      | Completed c -> Report.pp c.builder Fmt.stdout c.report
      | Did_not_complete reason -> ...
    ]}

    [load] parses the model JDK and the application, synthesizes framework
    entrypoints from the deployment descriptor (§4.2.2), converts to SSA and
    applies the reflection (§4.2.3) and exception (§4.1.2) rewrites — all
    configuration-independent work that can be shared across algorithm runs.
    [run] executes pointer analysis, dependence-graph construction, slicing
    and reporting under one {!Config.t}. *)

open Jir

type input = {
  name : string;
  app_sources : string list;        (** MJava source texts *)
  descriptor : string;              (** deployment descriptor, may be "" *)
}

type loaded = {
  input : input;
  program : Program.t;
  reflection_stats : Models.Reflection.stats;
  synthesized_sources : int;        (** getMessage sources from catch blocks *)
  frontend_seconds : float;
}

type phase_times = {
  t_pointer : float;
  t_sdg : float;
  t_taint : float;
  t_total : float;
}

type completed = {
  report : Report.t;
  outcome : Engine.outcome;
  andersen : Pointer.Andersen.t;
  builder : Sdg.Builder.t;
  heapgraph : Pointer.Heapgraph.t;
  cg_nodes : int;
  cg_edges : int;
  times : phase_times;
}

type result =
  | Completed of completed
  | Did_not_complete of string

type analysis = {
  loaded : loaded;
  config : Config.t;
  rules : Rules.rule list;
  result : result;
}

exception Load_error of string

let wrap_frontend_errors name f =
  try f () with
  | Lexer.Lex_error (msg, pos) ->
    raise (Load_error (Fmt.str "%s: lex error at %a: %s" name Ast.pp_pos pos msg))
  | Parser.Parse_error (msg, pos) ->
    raise
      (Load_error (Fmt.str "%s: parse error at %a: %s" name Ast.pp_pos pos msg))
  | Lower.Lower_error (msg, pos) ->
    raise
      (Load_error (Fmt.str "%s: lowering error at %a: %s" name Ast.pp_pos pos msg))
  | Classtable.Unknown_class c ->
    raise (Load_error (Fmt.str "%s: unknown class %s" name c))
  | Classtable.Hierarchy_error msg -> raise (Load_error (name ^ ": " ^ msg))

(** Parse, lower, synthesize and rewrite. Configuration-independent. *)
let load (input : input) : loaded =
  wrap_frontend_errors input.name @@ fun () ->
  let t0 = Sys.time () in
  let prog = Program.create () in
  let jdk_units = Lazy.force Models.Jdklib.units in
  let app_units = List.map Parser.parse input.app_sources in
  List.iter (Lower.declare prog ~library:true) jdk_units;
  List.iter (Lower.declare prog ~library:false) app_units;
  (* framework synthesis needs declarations but not bodies *)
  let descriptor = Models.Frameworks.parse_descriptor input.descriptor in
  let cast_constraints = Models.Frameworks.form_cast_constraints app_units in
  let synth_src =
    Models.Frameworks.synthesize ~cast_constraints prog.Program.table
      descriptor
  in
  let synth_units = [ Parser.parse synth_src ] in
  List.iter (Lower.declare prog ~library:false) synth_units;
  List.iter (Lower.define prog ~library:true) jdk_units;
  List.iter (Lower.define prog ~library:false) app_units;
  List.iter (Lower.define prog ~library:false) synth_units;
  Program.add_entrypoint prog Models.Frameworks.entry_method;
  Ssa.convert_program prog;
  let ejb_registry = Models.Frameworks.ejb_registry descriptor in
  let reflection_stats =
    Models.Reflection.rewrite_program ~ejb_registry prog
  in
  let synthesized_sources = Models.Exceptions.rewrite_program prog in
  { input;
    program = prog;
    reflection_stats;
    synthesized_sources;
    frontend_seconds = Sys.time () -. t0 }

let pointer_config (loaded : loaded) (config : Config.t)
    (rules : Rules.rule list) : Pointer.Andersen.config =
  let m = Rules.matcher loaded.program.Program.table in
  let taint_api id = Rules.is_source_method_id rules m id in
  let policy =
    (* CS/CI/hybrid share the same preliminary pointer analysis family
       (§3.1); they differ in the slicing stage. The CS emulation
       additionally context-qualifies the heap (its heap-as-parameters
       treatment), which is where its cost and precision come from. *)
    match config.Config.algorithm with
    | Config.Cs_thin_slicing -> Pointer.Policy.deep ~taint_api ()
    | Config.Ci_thin_slicing | Config.Hybrid_unbounded
    | Config.Hybrid_prioritized | Config.Hybrid_optimized ->
      Pointer.Policy.default ~taint_api ()
  in
  { Pointer.Andersen.policy;
    max_nodes = config.Config.max_cg_nodes;
    prioritized = config.Config.prioritized;
    is_source_method = taint_api;
    excluded_class =
      (fun cls -> List.mem cls config.Config.excluded_classes);
    max_work =
      (match config.Config.algorithm with
       | Config.Cs_thin_slicing -> config.Config.cs_budget
       | _ -> None) }

(** Run the configured analysis over a loaded program. *)
let run ?(rules = Rules.default_rules) (loaded : loaded) (config : Config.t) :
  analysis =
  let t_start = Sys.time () in
  match
    Pointer.Andersen.run ~config:(pointer_config loaded config rules)
      loaded.program
  with
  | exception Pointer.Andersen.Out_of_budget ->
    { loaded; config; rules;
      result = Did_not_complete "pointer analysis exceeded its budget" }
  | andersen ->
    let t_pointer = Sys.time () -. t_start in
    let t1 = Sys.time () in
    let builder = Sdg.Builder.build loaded.program andersen in
    let heapgraph = Pointer.Heapgraph.build andersen in
    let t_sdg = Sys.time () -. t1 in
    let t2 = Sys.time () in
    let outcome =
      Engine.run ~prog:loaded.program ~builder ~heapgraph ~rules ~config
    in
    let t_taint = Sys.time () -. t2 in
    if outcome.Engine.exhausted
       && config.Config.algorithm = Config.Cs_thin_slicing
    then
      { loaded; config; rules;
        result = Did_not_complete "slicing exceeded the CS memory budget" }
    else begin
      let report = Report.make builder outcome.Engine.flows in
      let cg = Pointer.Andersen.call_graph andersen in
      { loaded; config; rules;
        result =
          Completed
            { report; outcome; andersen; builder; heapgraph;
              cg_nodes = Pointer.Callgraph.node_count cg;
              cg_edges = Pointer.Callgraph.edge_count cg;
              times =
                { t_pointer; t_sdg; t_taint;
                  t_total = Sys.time () -. t_start } } }
    end

(** Convenience: load and analyze in one call. *)
let analyze ?rules ?(config = Config.preset Config.Hybrid_unbounded)
    (input : input) : analysis =
  run ?rules (load input) config
