(** The taint engine: per security rule, seed the slicer at source calls
    and collect flows that reach sinks, including taint-carrier flows
    (§4.1.1). *)

type rule_stats = {
  rs_rule : string;
  rs_seeds : int;
  rs_visited : int;
  rs_heap_transitions : int;
  rs_exhausted : bool;
}

type outcome = {
  flows : Flows.t list;
  filtered_by_length : int;       (** flows dropped by the §6.2.2 bound *)
  rule_stats : rule_stats list;
  exhausted : bool;               (** some rule hit the step budget *)
}

(** Slicing mode implied by a configuration. *)
val mode_of : Config.t -> Sdg.Tabulation.mode

val run :
  prog:Jir.Program.t ->
  builder:Sdg.Builder.t ->
  heapgraph:Pointer.Heapgraph.t ->
  rules:Rules.rule list ->
  config:Config.t ->
  outcome
