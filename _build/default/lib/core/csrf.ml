(** Cross-site request forgery detection — the second §9 future-work item
    ("we plan to extend our coverage of security rules by investigating
    ways for statically identifying cross-site request forgery").

    Unlike taint rules, CSRF is a control-reachability property: a
    state-changing operation (database update, file write, command
    execution) reachable from an HTTP GET handler is forgeable — GET
    requests carry no same-origin protection and must be idempotent. The
    detector walks the call graph from every [doGet] entry and flags
    state-changing library calls, unless the handler's reachable region
    performs a recognizable anti-forgery token check (a session/request
    attribute read whose constant key mentions "token", or a call to a
    method named like [checkToken]/[validateToken]). *)

open Jir

(** State-changing library methods (canonical ids). *)
let default_mutators =
  [ "Statement.executeUpdate/2";
    "Statement.execute/2";
    "FileOutputStream.<init>/2";
    "FileWriter.<init>/2";
    "Runtime.exec/2";
    "HttpSession.invalidate/1";
    "File.delete/1" ]

type finding = {
  cf_entry : string;            (** the GET handler's method id *)
  cf_sink : Sdg.Stmt.t;         (** the state-changing call *)
  cf_target : string;           (** canonical id of the mutator *)
}

let pp_finding b ppf f =
  Fmt.pf ppf "[CSRF] GET handler %s reaches %s at %a" f.cf_entry f.cf_target
    (Report.pp_stmt b) f.cf_sink

(* does a method name look like an anti-forgery check? *)
let is_token_check_name name =
  let lower = String.lowercase_ascii name in
  let contains needle =
    let nl = String.length needle and l = String.length lower in
    let rec go i = i + nl <= l && (String.sub lower i nl = needle || go (i + 1)) in
    go 0
  in
  contains "token" || contains "csrf" || contains "nonce"

let key_mentions_token key =
  let lower = String.lowercase_ascii key in
  let contains needle =
    let nl = String.length needle and l = String.length lower in
    let rec go i = i + nl <= l && (String.sub lower i nl = needle || go (i + 1)) in
    go 0
  in
  contains "token" || contains "csrf" || contains "nonce"

(* nodes reachable in the call graph from [root] *)
let reachable_nodes cg root =
  let seen = Hashtbl.create 64 in
  let rec go n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.replace seen n ();
      List.iter go (Pointer.Callgraph.successors cg n)
    end
  in
  go root;
  seen

(** Detect CSRF-prone state changes. [mutators] overrides the default
    state-changing method list. *)
let detect ?(mutators = default_mutators) ~(prog : Program.t)
    ~(builder : Sdg.Builder.t) (andersen : Pointer.Andersen.t) :
  finding list =
  let cg = Pointer.Andersen.call_graph andersen in
  let m = Rules.matcher prog.Program.table in
  (* GET handlers: application doGet implementations in the call graph *)
  let entries = ref [] in
  Pointer.Callgraph.iter_nodes cg (fun n ->
      let meth = n.Pointer.Callgraph.n_method in
      if String.equal meth.Tac.m_name "doGet" && not meth.Tac.m_library then
        entries := n.Pointer.Callgraph.n_id :: !entries);
  let findings = ref [] in
  List.iter
    (fun entry ->
       let entry_meth =
         Tac.method_id (Pointer.Callgraph.node cg entry).Pointer.Callgraph.n_method
       in
       let region = reachable_nodes cg entry in
       (* scan the region once for both mutators and token checks *)
       let guarded = ref false in
       let hits = ref [] in
       Hashtbl.iter
         (fun node () ->
            let meth = (Pointer.Callgraph.node cg node).Pointer.Callgraph.n_method in
            let const_of = Models.Dict_model.const_of_meth meth in
            Array.iteri
              (fun bi (b : Tac.block) ->
                 Array.iteri
                   (fun ii ins ->
                      match ins with
                      | Tac.Call c ->
                        let canon = Rules.canonical m c.Tac.target in
                        if List.mem canon mutators then
                          hits :=
                            ( Sdg.Stmt.instr ~node ~block:bi ~index:ii,
                              canon )
                            :: !hits;
                        if is_token_check_name c.Tac.target.Tac.rname then
                          guarded := true;
                        (match
                           Models.Dict_model.classify ~const_of c
                         with
                         | Some (Models.Dict_model.Dict_get
                                   { key = Models.Dict_model.Const_key k; _ })
                           when key_mentions_token k ->
                           guarded := true
                         | _ -> ())
                      | _ -> ())
                   b.Tac.instrs)
              meth.Tac.m_blocks)
         region;
       if not !guarded then
         List.iter
           (fun (sink, canon) ->
              findings :=
                { cf_entry = entry_meth; cf_sink = sink; cf_target = canon }
                :: !findings)
           !hits)
    !entries;
  ignore builder;
  List.sort_uniq compare !findings
