(** Graphviz (DOT) export of call graphs and witness flows. *)

(** The context-sensitive call graph; library clones drawn dashed. *)
val callgraph : Pointer.Andersen.t -> string

(** One witness flow as a chain from source (green) to sink (red). *)
val flow : Sdg.Builder.t -> Flows.t -> string

(** All reported issues, one cluster per issue. *)
val report : Sdg.Builder.t -> Report.t -> string
