(** Graphviz (DOT) export of call graphs and witness flows, for report
    consumption and debugging. Exposed through [taj graph]. *)

open Jir

let escape s =
  String.concat ""
    (List.map
       (fun c ->
          match c with
          | '"' -> "\\\""
          | '\\' -> "\\\\"
          | '\n' -> "\\n"
          | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

(** The context-sensitive call graph. Nodes are method clones; library
    clones are drawn dashed; the edge label is the call-site id. *)
let callgraph (a : Pointer.Andersen.t) : string =
  let cg = Pointer.Andersen.call_graph a in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  Pointer.Callgraph.iter_nodes cg (fun n ->
      let m = n.Pointer.Callgraph.n_method in
      let label =
        Fmt.str "%s@;%a" (Tac.method_id m) Pointer.Keys.pp_context
          n.Pointer.Callgraph.n_ctx
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" n.Pointer.Callgraph.n_id
           (escape label)
           (if m.Tac.m_library then ", style=dashed" else "")));
  Pointer.Callgraph.iter_edges cg (fun ~caller ~site ~callee ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"@%d\", fontsize=8];\n" caller
           callee site));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** One witness flow as a chain: source (green) through the slice to the
    sink (red), statements labeled with their rendered instruction. *)
let flow (b : Sdg.Builder.t) (fl : Flows.t) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph flow {\n  node [shape=box, fontsize=10];\n";
  let stmt_label s = Fmt.str "%a" (Report.pp_stmt b) s in
  let n = List.length fl.Flows.fl_path in
  List.iteri
    (fun i s ->
       let color =
         if i = 0 then ", color=darkgreen, penwidth=2"
         else if i = n - 1 then ", color=red, penwidth=2"
         else ""
       in
       Buffer.add_string buf
         (Printf.sprintf "  s%d [label=\"%s\"%s];\n" i
            (escape (stmt_label s)) color))
    fl.Flows.fl_path;
  for i = 0 to n - 2 do
    Buffer.add_string buf (Printf.sprintf "  s%d -> s%d;\n" i (i + 1))
  done;
  Buffer.add_string buf
    (Printf.sprintf "  label=\"%s flow (%d hops)\";\n"
       (Rules.issue_name fl.Flows.fl_rule.Rules.issue)
       fl.Flows.fl_length);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** All reported issues as one digraph with a cluster per issue. *)
let report (b : Sdg.Builder.t) (r : Report.t) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph report {\n  node [shape=box, fontsize=10];\n";
  List.iteri
    (fun k (ir : Report.issue_report) ->
       let fl = ir.Report.ir_representative in
       Buffer.add_string buf
         (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s (%d flows)\";\n"
            k
            (Rules.issue_name ir.Report.ir_issue)
            ir.Report.ir_flow_count);
       let n = List.length fl.Flows.fl_path in
       List.iteri
         (fun i s ->
            let color =
              if i = 0 then ", color=darkgreen" else if i = n - 1 then ", color=red"
              else ""
            in
            Buffer.add_string buf
              (Printf.sprintf "    c%d_s%d [label=\"%s\"%s];\n" k i
                 (escape (Fmt.str "%a" (Report.pp_stmt b) s))
                 color))
         fl.Flows.fl_path;
       for i = 0 to n - 2 do
         Buffer.add_string buf
           (Printf.sprintf "    c%d_s%d -> c%d_s%d;\n" k i k (i + 1))
       done;
       Buffer.add_string buf "  }\n")
    r.Report.issues;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
