(** String-specific taint diagnostics — the §9 future-work extension
    ("enhancing our analysis with string-specific taint-detection
    capabilities, in the spirit of Minamide's string analysis").

    For a reported flow we reconstruct an abstract template of the string
    value reaching the sink: the constant fragments surrounding the tainted
    part, recovered by walking SSA definitions back through concatenations.
    The template classifies the *syntactic context* the attacker controls —
    HTML text vs. attribute value, quoted vs. raw SQL position — which is
    what determines the concrete exploit shape and the right remediation.

    This is deliberately a lightweight single-method analysis: templates
    stop at holes (calls, loads, parameters) rather than crossing the whole
    program the way Minamide's grammar-based analysis does. *)

type piece =
  | Lit of string     (** a known constant fragment *)
  | Tainted           (** the attacker-controlled part (on the flow path) *)
  | Hole              (** statically unknown fragment *)

type template = piece list

let pp_piece ppf = function
  | Lit s -> Fmt.pf ppf "%S" s
  | Tainted -> Fmt.string ppf "TAINT"
  | Hole -> Fmt.string ppf "?"

let pp_template = Fmt.list ~sep:(Fmt.any " ++ ") pp_piece

(* merge adjacent literals, drop empty ones *)
let normalize (t : template) : template =
  let rec go = function
    | Lit a :: Lit b :: rest -> go (Lit (a ^ b) :: rest)
    | Lit "" :: rest -> go rest
    | p :: rest -> p :: go rest
    | [] -> []
  in
  go t

(** Reconstruct the template of the value flowing into the sink of [fl].
    Returns [None] when the sink argument cannot be recovered. *)
let template_of (b : Sdg.Builder.t) (fl : Flows.t) : template option =
  let path_set = Sdg.Stmt.Set.of_list fl.Flows.fl_path in
  let node = fl.Flows.fl_sink.Sdg.Stmt.node in
  let rec walk v fuel : template =
    if fuel = 0 then [ Hole ]
    else
      match Sdg.Builder.def_of b ~node v with
      | None -> [ Hole ]
      | Some def ->
        (* concatenations and copies are traversed even when they lie on the
           flow path: the taint marker belongs to the atomic fragment *)
        (match Sdg.Builder.instr_of b def with
         | Some (Jir.Tac.Strcat (_, x, y)) ->
           walk x (fuel - 1) @ walk y (fuel - 1)
         | Some (Jir.Tac.Move (_, s)) | Some (Jir.Tac.Cast (_, _, s)) ->
           walk s (fuel - 1)
         | Some (Jir.Tac.Const (_, Jir.Tac.Cstr s)) -> [ Lit s ]
         | Some (Jir.Tac.Const (_, Jir.Tac.Cint n)) ->
           [ Lit (string_of_int n) ]
         | Some _ | None ->
           if Sdg.Stmt.Set.mem def path_set then [ Tainted ] else [ Hole ])
  in
  match Sdg.Builder.call_of b fl.Flows.fl_sink with
  | None -> None
  | Some call ->
    (* find the sensitive argument: prefer one whose def lies on the path;
       fall back to the last argument *)
    let args = call.Jir.Tac.args in
    let on_path v =
      match Sdg.Builder.def_of b ~node v with
      | Some def -> Sdg.Stmt.Set.mem def path_set
      | None -> false
    in
    let arg =
      match List.find_opt on_path (List.tl args @ [ List.hd args ]) with
      | Some v -> Some v
      | None -> List.nth_opt args (List.length args - 1)
    in
    (match arg with
     | Some v -> Some (normalize (walk v 64))
     | None -> None)

(* ------------------------------------------------------------------ *)
(* Context classification                                              *)
(* ------------------------------------------------------------------ *)

type html_context =
  | Html_text          (** taint lands between tags: classic script XSS *)
  | Html_attribute     (** taint lands inside an attribute value *)
  | Html_unknown

type sql_context =
  | Sql_quoted         (** taint lands inside a '...' string literal *)
  | Sql_raw            (** taint lands in a raw position (numeric, keyword) *)
  | Sql_unknown

let prefix_before_taint (t : template) : string option =
  let rec go acc = function
    | Lit s :: rest -> go (acc ^ s) rest
    | Tainted :: _ -> Some acc
    | Hole :: _ -> None
    | [] -> None
  in
  go "" t

(** Classify where in the surrounding HTML the tainted data lands. *)
let html_context (t : template) : html_context =
  match prefix_before_taint t with
  | None -> Html_unknown
  | Some prefix ->
    (* inside a tag if a '<' is open; inside an attribute if additionally a
       quote is open after the last '=' *)
    let lt = ref false and quote = ref None in
    String.iter
      (fun c ->
         match c with
         | '<' -> lt := true
         | '>' -> lt := false; quote := None
         | '"' | '\'' when !lt ->
           (match !quote with
            | Some q when q = c -> quote := None
            | Some _ -> ()
            | None -> quote := Some c)
         | _ -> ())
      prefix;
    if !lt && !quote <> None then Html_attribute
    else if !lt then Html_unknown   (* inside a tag but unquoted: odd spot *)
    else Html_text

(** Classify whether the tainted data lands inside a SQL string literal. *)
let sql_context (t : template) : sql_context =
  match prefix_before_taint t with
  | None -> Sql_unknown
  | Some prefix ->
    let quotes = ref 0 in
    String.iter (fun c -> if c = '\'' then incr quotes) prefix;
    if !quotes mod 2 = 1 then Sql_quoted else Sql_raw

(** One-line diagnostic for a flow, or [None] when no template is
    recoverable or the rule is not string-shaped. *)
let diagnose (b : Sdg.Builder.t) (fl : Flows.t) : string option =
  match template_of b fl with
  | None -> None
  | Some t ->
    let tpl = Fmt.str "%a" pp_template t in
    (match fl.Flows.fl_rule.Rules.issue with
     | Rules.Xss ->
       let ctx =
         match html_context t with
         | Html_text -> "HTML text context"
         | Html_attribute -> "HTML attribute context"
         | Html_unknown -> "unknown HTML context"
       in
       Some (Printf.sprintf "%s; sink value: %s" ctx tpl)
     | Rules.Sqli ->
       let ctx =
         match sql_context t with
         | Sql_quoted -> "quoted SQL string position"
         | Sql_raw -> "raw SQL position (numeric/keyword injection)"
         | Sql_unknown -> "unknown SQL position"
       in
       Some (Printf.sprintf "%s; sink value: %s" ctx tpl)
     | Rules.Command_injection | Rules.Malicious_file | Rules.Info_leak ->
       Some (Printf.sprintf "sink value: %s" tpl))
