(** TAJ: the end-to-end taint analysis pipeline.

    {!load} performs all configuration-independent work: parse the model
    JDK and the application, synthesize framework entrypoints from the
    deployment descriptor (§4.2.2), convert to SSA, apply the reflection
    (§4.2.3) and exception (§4.1.2) rewrites. {!run} executes pointer
    analysis, dependence-graph construction, slicing and reporting under
    one {!Config.t}; a loaded program can be reanalyzed under many
    configurations. *)

type input = {
  name : string;
  app_sources : string list;        (** MJava source texts *)
  descriptor : string;              (** deployment descriptor, may be "" *)
}

type loaded = {
  input : input;
  program : Jir.Program.t;
  reflection_stats : Models.Reflection.stats;
  synthesized_sources : int;        (** getMessage sources from catches *)
  frontend_seconds : float;
}

type phase_times = {
  t_pointer : float;
  t_sdg : float;
  t_taint : float;
  t_total : float;
}

type completed = {
  report : Report.t;
  outcome : Engine.outcome;
  andersen : Pointer.Andersen.t;
  builder : Sdg.Builder.t;
  heapgraph : Pointer.Heapgraph.t;
  cg_nodes : int;
  cg_edges : int;
  times : phase_times;
}

type result =
  | Completed of completed
  | Did_not_complete of string
      (** a pointer-analysis or slicing budget was exceeded — the fate of
          the CS configuration on large applications (Table 3) *)

type analysis = {
  loaded : loaded;
  config : Config.t;
  rules : Rules.rule list;
  result : result;
}

(** Raised on malformed input with a human-readable location. *)
exception Load_error of string

val load : input -> loaded

val run : ?rules:Rules.rule list -> loaded -> Config.t -> analysis

(** [load] + [run]. *)
val analyze : ?rules:Rules.rule list -> ?config:Config.t -> input -> analysis
