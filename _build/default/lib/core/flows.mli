(** Tainted flows: a witness path from a source call to a sink call. *)

type t = {
  fl_rule : Rules.rule;
  fl_source : Sdg.Stmt.t;
  fl_sink : Sdg.Stmt.t;
  fl_sink_target : Jir.Tac.mref;
  fl_kind : Sdg.Tabulation.hit_kind;
  fl_path : Sdg.Stmt.t list;          (** source first, sink last *)
  fl_length : int;
}

val length : t -> int

(** Bucket flows by path length (§6.2.2 ablation). *)
val length_histogram : t list -> (int * int) list

val pp_brief : Format.formatter -> t -> unit
