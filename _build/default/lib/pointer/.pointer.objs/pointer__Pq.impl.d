lib/pointer/pq.ml: Array
