lib/pointer/andersen.ml: Array Ast Callgraph Classtable Fmt Hashtbl Int Jir Keys List Models Policy Pq Printf Program Queue Set Tac
