lib/pointer/callgraph.mli: Int Jir Keys Set
