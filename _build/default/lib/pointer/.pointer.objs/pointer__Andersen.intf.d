lib/pointer/andersen.mli: Callgraph Jir Keys Policy
