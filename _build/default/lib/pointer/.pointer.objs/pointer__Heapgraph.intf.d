lib/pointer/heapgraph.mli: Andersen Int Set
