lib/pointer/pq.mli:
