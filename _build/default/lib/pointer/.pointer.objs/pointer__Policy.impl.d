lib/pointer/policy.ml: Keys List
