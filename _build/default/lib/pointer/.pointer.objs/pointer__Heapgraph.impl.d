lib/pointer/heapgraph.ml: Andersen Hashtbl Int Keys List Option Set
