lib/pointer/policy.mli: Keys
