lib/pointer/callgraph.ml: Array Hashtbl Int Jir Keys List Set String
