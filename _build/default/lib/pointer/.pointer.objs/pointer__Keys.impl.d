lib/pointer/keys.ml: Array Fmt Hashtbl Jir
