(** Context-sensitive call graph built on the fly by the pointer analysis.
    A node is a method clone (method × context); edges are recorded per
    call site; call sites whose target has no analyzable body are recorded
    separately for the transfer-summary machinery. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t

type node = {
  n_id : int;
  n_method : Jir.Tac.meth;
  n_ctx : Keys.context;
}

type t

val create : unit -> t
val node_count : t -> int
val node : t -> int -> node
val edge_count : t -> int
val find_node : t -> string -> Keys.context -> int option

(** Get or create the node for a method clone. [fresh] fires exactly when a
    new node is created. *)
val ensure_node : t -> Jir.Tac.meth -> Keys.context -> fresh:(int -> unit) -> int

(** Returns true when the edge is new. *)
val add_edge : t -> caller:int -> site:int -> callee:int -> bool

val add_native_call : t -> caller:int -> site:int -> target:Jir.Tac.mref -> unit
val callees : t -> caller:int -> site:int -> int list
val native_targets : t -> caller:int -> site:int -> Jir.Tac.mref list
val callers : t -> callee:int -> int list

(** All callee nodes of a caller, across its call sites. *)
val successors : t -> int -> int list

val iter_nodes : t -> (node -> unit) -> unit
val iter_edges : t -> (caller:int -> site:int -> callee:int -> unit) -> unit

(** All context clones of a method id. *)
val clones_of : t -> string -> int list
