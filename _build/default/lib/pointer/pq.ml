(** A small mutable min-heap of [(priority, value)] pairs with lazy
    decrease-key: callers push a fresh entry when a priority drops and skip
    stale entries on pop by re-checking against the authoritative priority
    map. *)

type t = {
  mutable heap : (int * int) array;   (* (priority, value) *)
  mutable size : int;
}

let create () = { heap = Array.make 64 (0, 0); size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let push t prio v =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) (0, 0) in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- (prio, v);
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && fst t.heap.((!i - 1) / 2) > fst t.heap.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t : (int * int) option =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && fst t.heap.(l) < fst t.heap.(!smallest) then
        smallest := l;
      if r < t.size && fst t.heap.(r) < fst t.heap.(!smallest) then
        smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    Some top
  end
