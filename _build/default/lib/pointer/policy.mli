(** The context-sensitivity policy of §3.1: one level of object sensitivity
    for most methods, unlimited-depth object sensitivity for collection
    classes, one level of call-string context for library factories and
    taint-specific APIs. *)

type t = {
  container_classes : string list;
      (** classes whose allocations keep the full heap context *)
  factory_methods : string list;
      (** method ids analyzed with one level of call-string context *)
  taint_api : string -> bool;
      (** taint-specific APIs (sources/sanitizers/sinks) also get
          call-string context *)
  object_sensitive : bool;
      (** false degrades the policy to context-insensitive everywhere *)
  deep_heap : bool;
      (** keep the full allocating context for all classes (CS emulation) *)
}

val default_containers : string list
val default_factories : string list

val default : ?taint_api:(string -> bool) -> unit -> t

(** Fully context-insensitive policy. *)
val insensitive : unit -> t

(** Deep policy for the CS configuration: context-qualified heap everywhere
    and call-site contexts for static methods. *)
val deep : ?taint_api:(string -> bool) -> unit -> t

val is_container : t -> string -> bool

(** Context for a callee at a call site. *)
val callee_context :
  t -> site:int -> callee_id:string -> receiver:Keys.inst_key option ->
  Keys.context

(** Heap context for an allocation of [cls] under [alloc_ctx]. *)
val heap_context : t -> cls:string -> alloc_ctx:Keys.context -> Keys.context
