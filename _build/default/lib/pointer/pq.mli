(** A mutable min-heap of [(priority, value)] pairs with lazy decrease-key:
    push a fresh entry when a priority drops and skip stale entries on pop
    by re-checking the authoritative priority map. *)

type t

val create : unit -> t
val is_empty : t -> bool
val length : t -> int
val push : t -> int -> int -> unit

(** Pop the minimum-priority entry, if any. *)
val pop : t -> (int * int) option
