(** The heap graph (§4.1.1): field-reachability queries over the pointer
    analysis solution, used by taint-carrier detection. *)

module Int_set : Set.S with type elt = int and type t = Set.Make(Int).t

type t

val build : Andersen.t -> t

(** Instance keys directly pointed to by any field of an instance key. *)
val successors : t -> int -> Int_set.t

(** Instance keys reachable from [roots] through at most [depth] field
    dereferences (roots included). [depth < 0] means unbounded; terminates
    at the transitive closure. *)
val reachable : t -> depth:int -> Int_set.t -> Int_set.t
