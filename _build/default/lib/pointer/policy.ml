(** The context-sensitivity policy of §3.1.

    - Most instance methods: one level of object sensitivity — the callee
      context is the receiver's instance key, and allocation sites get no
      heap context (objects are named by site alone).
    - Collection classes: unlimited-depth object sensitivity — allocations
      inside container methods keep the full allocating context, so the
      internal objects of a collection are cloned per collection instance.
    - Library factory methods and taint-specific APIs: one level of
      call-string context, so objects made by factories (which share one
      allocation site) are disambiguated per call site.
    - Static methods are context-insensitive unless they are factories.

    The [deep] variant (used by the CS-thin-slicing emulation) keeps the full
    allocating context for {e every} class: the heap becomes context-
    qualified everywhere, which is more precise and far more expensive. *)

type t = {
  container_classes : string list;
      (** classes whose allocations keep the full heap context *)
  factory_methods : string list;
      (** method ids analyzed with one level of call-string context *)
  taint_api : string -> bool;
      (** taint-specific APIs (sources/sanitizers/sinks) also get
          call-string context *)
  object_sensitive : bool;
      (** false degrades the policy to context-insensitive everywhere *)
  deep_heap : bool;
      (** keep the full allocating context for all classes *)
}

let default_containers =
  [ "ArrayList"; "Vector"; "LinkedList"; "HashSet"; "HashMap"; "Hashtable";
    "SeqIterator"; "SeqEnumeration"; "StringBuffer"; "StringBuilder";
    "Properties" ]

let default_factories =
  [ "Runtime.getRuntime/0"; "Logger.getLogger/1"; "Integer.valueOf/1";
    "DriverManager.getConnection/1" ]

let default ?(taint_api = fun _ -> false) () =
  { container_classes = default_containers;
    factory_methods = default_factories;
    taint_api;
    object_sensitive = true;
    deep_heap = false }

(** Fully context-insensitive policy (for the CI configuration). *)
let insensitive () =
  { container_classes = []; factory_methods = [];
    taint_api = (fun _ -> false); object_sensitive = false;
    deep_heap = false }

(** Deep policy for the CS configuration: context-qualified heap everywhere. *)
let deep ?(taint_api = fun _ -> false) () =
  { (default ~taint_api ()) with deep_heap = true }

let is_container t cls = t.deep_heap || List.mem cls t.container_classes

(** Context for a callee at a call site. *)
let callee_context t ~site ~(callee_id : string)
    ~(receiver : Keys.inst_key option) : Keys.context =
  if not t.object_sensitive then Keys.Cx_empty
  else if List.mem callee_id t.factory_methods || t.taint_api callee_id then
    Keys.Cx_site site
  else
    match receiver with
    | Some ik -> Keys.Cx_obj ik
    | None ->
      (* the deep (CS) policy gives static methods one level of call-string
         context, approximating fully context-sensitive heap threading *)
      if t.deep_heap then Keys.Cx_site site else Keys.Cx_empty

(** Heap context for an allocation of [cls] in a method running under
    [alloc_ctx]. *)
let heap_context t ~cls ~(alloc_ctx : Keys.context) : Keys.context =
  if not t.object_sensitive then Keys.Cx_empty
  else if is_container t cls then alloc_ctx
  else
    match alloc_ctx with
    | Keys.Cx_site _ -> alloc_ctx    (* object made inside a factory *)
    | Keys.Cx_obj _ | Keys.Cx_empty -> Keys.Cx_empty
