(** Abstract-heap vocabulary of the pointer analysis: calling contexts,
    instance keys (abstract objects) and pointer keys (abstract pointers),
    with interning to dense integer ids.

    Contexts implement the paper's custom sensitivity policy (§3.1):
    - most methods get one level of object sensitivity ([Cx_obj] of the
      receiver's instance key);
    - collection-internal classes get unlimited-depth object sensitivity,
      realized by letting instance keys of container classes embed the full
      allocating context, so receiver chains compound;
    - library factory methods and taint APIs get one level of call-string
      context ([Cx_site]).

    A recursion cap bounds context depth so interning terminates on
    recursive container structures ("unlimited-depth (up to recursion)"). *)

type context =
  | Cx_empty
  | Cx_obj of inst_key
  | Cx_site of int                      (* call-site id *)

and inst_key =
  | Ik_alloc of { site : int; cls : string; hctx : context }
  | Ik_string                           (* summary object for all strings *)
  | Ik_exn of string
      (* summary exception per catch class: the runtime (native code, JVM
         errors) can always throw, even when no application throw reaches
         the handler — needed for the §4.1.2 leak modeling *)

let inst_class = function
  | Ik_alloc { cls; _ } -> cls
  | Ik_string -> "String"
  | Ik_exn cls -> cls

let rec context_depth = function
  | Cx_empty | Cx_site _ -> 0
  | Cx_obj ik -> 1 + inst_depth ik

and inst_depth = function
  | Ik_alloc { hctx; _ } -> context_depth hctx
  | Ik_string | Ik_exn _ -> 0

(** Truncate a context to at most [limit] levels of object nesting. *)
let rec truncate_context ~limit cx =
  match cx with
  | Cx_empty | Cx_site _ -> cx
  | Cx_obj ik ->
    if limit <= 0 then Cx_empty
    else Cx_obj (truncate_inst ~limit:(limit - 1) ik)

and truncate_inst ~limit = function
  | (Ik_string | Ik_exn _) as k -> k
  | Ik_alloc { site; cls; hctx } ->
    Ik_alloc { site; cls; hctx = truncate_context ~limit hctx }

(** Fields of the abstract heap. Array contents are field ["$elem"];
    dictionary contents use the [$Dict] pseudo-fields of {!Models.Dict_model}. *)
type field = { fclass : string; fname : string }

let elem_field = { fclass = "$Array"; fname = "$elem" }

let field_of_tac (f : Jir.Tac.field) =
  { fclass = f.Jir.Tac.fclass; fname = f.Jir.Tac.fname }

let pp_field ppf f = Fmt.pf ppf "%s.%s" f.fclass f.fname

type ptr_key =
  | Pk_var of int * Jir.Tac.var         (* call-graph node id, register *)
  | Pk_field of int * field             (* instance-key id, field *)
  | Pk_static of field
  | Pk_ret of int                       (* return value of a node *)
  | Pk_exn                              (* global thrown-exception channel *)

let rec pp_context ppf = function
  | Cx_empty -> Fmt.string ppf "ε"
  | Cx_site s -> Fmt.pf ppf "site:%d" s
  | Cx_obj ik -> Fmt.pf ppf "obj:%a" pp_inst ik

and pp_inst ppf = function
  | Ik_alloc { site; cls; hctx = Cx_empty } -> Fmt.pf ppf "%s@%d" cls site
  | Ik_alloc { site; cls; hctx } ->
    Fmt.pf ppf "%s@%d[%a]" cls site pp_context hctx
  | Ik_string -> Fmt.string ppf "String$"
  | Ik_exn cls -> Fmt.pf ppf "exn:%s" cls

let pp_ptr ppf = function
  | Pk_var (n, v) -> Fmt.pf ppf "n%d:%%%d" n v
  | Pk_field (ik, f) -> Fmt.pf ppf "ik%d.%a" ik pp_field f
  | Pk_static f -> Fmt.pf ppf "static:%a" pp_field f
  | Pk_ret n -> Fmt.pf ppf "ret:n%d" n
  | Pk_exn -> Fmt.string ppf "exn-channel"

(* ------------------------------------------------------------------ *)
(* Interning                                                          *)
(* ------------------------------------------------------------------ *)

module type INTERNABLE = sig
  type t
end

module Interner (X : sig type t end) = struct
  type t = {
    fwd : (X.t, int) Hashtbl.t;
    mutable back : X.t array;
    mutable count : int;
  }

  let create ?(dummy : X.t option) () =
    { fwd = Hashtbl.create 1024;
      back = (match dummy with Some d -> Array.make 64 d | None -> [||]);
      count = 0 }

  let intern t x =
    match Hashtbl.find_opt t.fwd x with
    | Some i -> i
    | None ->
      let i = t.count in
      Hashtbl.replace t.fwd x i;
      if Array.length t.back = 0 then t.back <- Array.make 64 x
      else if i >= Array.length t.back then begin
        let bigger = Array.make (2 * Array.length t.back) x in
        Array.blit t.back 0 bigger 0 (Array.length t.back);
        t.back <- bigger
      end;
      t.back.(i) <- x;
      t.count <- i + 1;
      i

  let find_opt t x = Hashtbl.find_opt t.fwd x
  let get t i = t.back.(i)
  let count t = t.count
end

module Ik_interner = Interner (struct type t = inst_key end)
module Pk_interner = Interner (struct type t = ptr_key end)

(** The shared key universe of one analysis run. *)
type universe = {
  iks : Ik_interner.t;
  pks : Pk_interner.t;
  depth_limit : int;
}

let create_universe ?(depth_limit = 8) () =
  { iks = Ik_interner.create ();
    pks = Pk_interner.create ();
    depth_limit }

let ik (u : universe) (k : inst_key) : int =
  Ik_interner.intern u.iks (truncate_inst ~limit:u.depth_limit k)

let pk (u : universe) (k : ptr_key) : int = Pk_interner.intern u.pks k

let ik_of (u : universe) (i : int) : inst_key = Ik_interner.get u.iks i
let pk_of (u : universe) (i : int) : ptr_key = Pk_interner.get u.pks i
let ik_count u = Ik_interner.count u.iks
let pk_count u = Pk_interner.count u.pks
