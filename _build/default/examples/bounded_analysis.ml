(* Bounded analysis (§6): analyzing a large application under a fixed
   call-graph budget, with and without the locality-of-taint priority
   heuristic, and with the optimized slicing bounds.

   The workload is the synthetic stand-in for GridSphere, the largest
   benchmark: mostly taint-free "cold" servlet code plus planted flows.
   Under a tight node budget, chaotic (FIFO) constraint adding drowns in
   cold code while the priority-driven scheme (§6.1) reaches the taint.

   Run with: dune exec examples/bounded_analysis.exe *)

open Core
open Workloads

let () =
  print_endline "=== TAJ bounded analysis: a large app under budget ===\n";
  let scale = 0.05 in
  let app = Option.get (Apps.find "GridSphere") in
  let g = Apps.generate ~scale app in
  let loaded = Taj.load (Codegen.to_input g) in
  let truth = g.Codegen.g_truth in
  Printf.printf "workload: %d compilation units, %d planted flows (%d real)\n\n"
    (List.length g.Codegen.g_sources)
    (List.length truth)
    (Ground_truth.real_count truth);
  (* reference: unbounded *)
  let describe label config =
    match (Taj.run loaded config).Taj.result with
    | Taj.Completed c ->
      let cl = Score.classify truth c.Taj.builder c.Taj.report in
      Printf.printf "%-34s nodes=%5d issues=%4d TP=%3d FP=%3d FN=%3d (%.2fs)\n"
        label c.Taj.cg_nodes
        (Report.issue_count c.Taj.report)
        cl.Score.true_positives cl.Score.false_positives
        cl.Score.false_negatives c.Taj.times.Taj.t_total
    | Taj.Did_not_complete reason ->
      Printf.printf "%-34s did not complete: %s\n" label reason
  in
  describe "unbounded" (Config.preset ~scale Config.Hybrid_unbounded);
  print_newline ();
  let budgets = [ 800; 1000; 1400 ] in
  List.iter
    (fun budget ->
       let prioritized =
         { (Config.preset ~scale Config.Hybrid_prioritized) with
           Config.max_cg_nodes = Some budget }
       in
       let chaotic = { prioritized with Config.prioritized = false } in
       describe
         (Printf.sprintf "budget %d, priority-driven" budget)
         prioritized;
       describe (Printf.sprintf "budget %d, chaotic (FIFO)" budget) chaotic;
       print_newline ())
    budgets;
  describe "fully optimized (all Sec. 6 bounds)"
    (Config.preset ~scale Config.Hybrid_optimized);
  Printf.printf
    "\nThe priority heuristic recovers most true positives at budgets where\n\
     chaotic iteration finds none, and the optimized bounds additionally\n\
     trim false positives (long spurious flows, deep nested taint).\n"
