examples/algorithm_shootout.mli:
