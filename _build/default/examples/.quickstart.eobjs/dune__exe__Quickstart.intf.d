examples/quickstart.mli:
