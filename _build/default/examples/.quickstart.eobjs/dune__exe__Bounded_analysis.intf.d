examples/bounded_analysis.mli:
