examples/webapp_audit.ml: Config Core Fmt List Printf Report Rules Taj
