examples/webapp_audit.mli:
