examples/algorithm_shootout.ml: Config Core List Printf Report Taj
