examples/quickstart.ml: Config Core Fmt Models Printf Report Taj
