examples/bounded_analysis.ml: Apps Codegen Config Core Ground_truth List Option Printf Report Score Taj Workloads
