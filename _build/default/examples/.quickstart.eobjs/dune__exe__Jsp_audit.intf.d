examples/jsp_audit.mli:
