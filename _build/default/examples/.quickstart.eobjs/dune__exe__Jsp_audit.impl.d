examples/jsp_audit.ml: Config Core Fmt List Models Printf Report Rules String_context Taj
