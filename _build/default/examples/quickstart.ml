(* Quickstart: analyze the paper's Figure 1 motivating program.

   The program reads two servlet parameters, routes them through reflection
   (Class.forName / getMethods / Method.invoke) and a HashMap with constant
   keys, sanitizes one of them, and prints three wrapper objects. Exactly
   one of the three println calls is vulnerable — the one whose wrapped
   string came from an unsanitized parameter.

   Run with: dune exec examples/quickstart.exe *)

open Core

let motivating_program =
  {|class Internal {
      String s;
      public Internal(String s) { this.s = s; }
      public String toString() { return this.s; }
    }
    class Motivating extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String t1 = req.getParameter("fName");
        String t2 = req.getParameter("lName");
        PrintWriter writer = resp.getWriter();
        Method idMethod = null;
        try {
          Class k = Class.forName("Motivating");
          Method[] methods = k.getMethods();
          for (int i = 0; i < methods.length; i = i + 1) {
            Method method = methods[i];
            if (method.getName().equals("id")) {
              idMethod = method;
              break;
            }
          }
          Map m = new HashMap();
          m.put("fName", t1);
          m.put("lName", t2);
          m.put("date", Date.getDate());
          String s1 = (String) idMethod.invoke(this, new Object[] { m.get("fName") });
          String s2 = (String) idMethod.invoke(this,
              new Object[] { URLEncoder.encode((String) m.get("lName")) });
          String s3 = (String) idMethod.invoke(this, new Object[] { m.get("date") });
          Internal i1 = new Internal(s1);
          Internal i2 = new Internal(s2);
          Internal i3 = new Internal(s3);
          writer.println(i1); // BAD
          writer.println(i2); // OK
          writer.println(i3); // OK
        } catch (Exception e) {
          e.printStackTrace();
        }
      }
      public String id(String string) { return string; }
    }|}

let () =
  print_endline "=== TAJ quickstart: the Figure 1 motivating program ===\n";
  let input =
    { Taj.name = "motivating";
      app_sources = [ motivating_program ];
      descriptor = "" }
  in
  (* load once: parse, lower to SSA, resolve reflection, model exceptions *)
  let loaded = Taj.load input in
  Printf.printf
    "frontend: %d reflective invokes resolved, %d synthesized exception \
     sources\n\n"
    loaded.Taj.reflection_stats.Models.Reflection.invokes_resolved
    loaded.Taj.synthesized_sources;
  (* analyze with the fully optimized configuration of Table 1 *)
  let analysis = Taj.run loaded (Config.preset Config.Hybrid_optimized) in
  match analysis.Taj.result with
  | Taj.Did_not_complete reason ->
    Printf.printf "analysis did not complete: %s\n" reason
  | Taj.Completed c ->
    Fmt.pr "%a@.@." (Report.pp c.Taj.builder) c.Taj.report;
    Printf.printf
      "Expected: exactly one XSS issue — the println(i1) carrying the\n\
       unsanitized 'fName' parameter inside the Internal wrapper. The\n\
       'lName' flow is endorsed by URLEncoder.encode and the 'date' flow\n\
       is never tainted; the constant-key dictionary model keeps the three\n\
       map entries apart.\n"
