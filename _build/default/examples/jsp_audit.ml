(* Auditing JSP pages: containers compile JSP to servlets, and TAJ analyzes
   the generated code (§1). This example translates three small pages and
   runs the analysis over them together, showing the classic reflected-XSS
   surface of expression tags plus the string-context diagnostics.

   Run with: dune exec examples/jsp_audit.exe *)

open Core

let pages =
  [ ( "Greeting",
      {|<html><body>
<h1>Hello, <%= request.getParameter("name") %>!</h1>
</body></html>|} );
    ( "Profile",
      {|<% String nick = request.getParameter("nick"); %>
<% session.setAttribute("nick", nick); %>
<div class="profile">
  <a href="/u/<%= (String) session.getAttribute("nick") %>">me</a>
</div>|} );
    ( "Safe",
      {|<p>Search results for <%= URLEncoder.encode(request.getParameter("q")) %></p>|}
    ) ]

let () =
  print_endline "=== TAJ JSP audit ===\n";
  let sources =
    List.map (fun (name, page) -> Models.Jsp.translate ~name page) pages
  in
  List.iter2
    (fun (name, _) src ->
       Printf.printf "--- generated servlet for %s.jsp ---\n%s\n" name src)
    pages sources;
  let input = { Taj.name = "jsp-audit"; app_sources = sources; descriptor = "" } in
  let loaded = Taj.load input in
  match (Taj.run loaded (Config.preset Config.Hybrid_optimized)).Taj.result with
  | Taj.Did_not_complete reason -> Printf.printf "did not complete: %s\n" reason
  | Taj.Completed c ->
    Fmt.pr "%a@.@." (Report.pp c.Taj.builder) c.Taj.report;
    List.iter
      (fun ir ->
         match
           String_context.diagnose c.Taj.builder ir.Report.ir_representative
         with
         | Some d ->
           Fmt.pr "context [%s]: %s@." (Rules.issue_name ir.Report.ir_issue) d
         | None -> ())
      c.Taj.report.Report.issues;
    Printf.printf
      "\nExpected: the Greeting page's expression tag and the Profile\n\
       page's session readback are flagged; the Safe page's encoded\n\
       expression is not. (Each JSP chunk compiles to its own out.print,\n\
       so the context diagnostics see the tainted expression alone.)\n"
