(* Auditing a small Java EE storefront: servlets, a Struts action with a
   user-populated form, an EJB-backed catalog service, session state and a
   JDBC query — the application shapes the paper's code models target.

   Run with: dune exec examples/webapp_audit.exe *)

open Core

let storefront =
  [ (* -- a search servlet with an XSS and an SQL injection -- *)
    {|class SearchServlet extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          String query = req.getParameter("q");
          PrintWriter out = resp.getWriter();
          out.println("Results for: " + query);
          Connection conn = DriverManager.getConnection("jdbc:store");
          Statement st = conn.createStatement();
          ResultSet rs = st.executeQuery("SELECT * FROM items WHERE name LIKE '%" + query + "%'");
          while (rs.next()) {
            out.println(URLEncoder.encode(rs.getString("name")));
          }
        }
      }|};
    (* -- a checkout action: the framework populates the form from user
          input, so every form field is tainted -- *)
    {|class CheckoutForm extends ActionForm {
        String cardHolder;
        String shippingNote;
      }
      class CheckoutAction extends Action {
        public ActionForward execute(ActionMapping mapping, ActionForm form,
                                     HttpServletRequest req, HttpServletResponse resp) {
          CheckoutForm f = (CheckoutForm) form;
          PrintWriter out = resp.getWriter();
          out.println("Thank you, " + f.cardHolder);
          Logger.getLogger("checkout").info(f.shippingNote);
          return null;
        }
      }|};
    (* -- catalog EJB: the lookup is resolved through the deployment
          descriptor; taint flows through the remote call -- *)
    {|interface Catalog {
        String describe(String sku);
      }
      interface CatalogHome extends EJBHome {
        Catalog create();
      }
      class CatalogBean implements Catalog {
        public String describe(String sku) {
          return "Item " + sku;
        }
      }
      class ItemServlet extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          InitialContext ctx = new InitialContext();
          Object ref = ctx.lookup("java:comp/env/ejb/Catalog");
          CatalogHome home = (CatalogHome) PortableRemoteObject.narrow(ref, CatalogHome.class);
          Catalog catalog = home.create();
          resp.getWriter().println(catalog.describe(req.getParameter("sku")));
        }
      }|};
    (* -- session state with constant keys: the tainted attribute flows to
          the page that reads it back, the clean one stays clean -- *)
    {|class ProfileServlet extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          HttpSession session = req.getSession();
          session.setAttribute("nickname", req.getParameter("nick"));
          session.setAttribute("language", "en");
          PrintWriter out = resp.getWriter();
          out.println((String) session.getAttribute("nickname"));
          out.println((String) session.getAttribute("language"));
        }
      }|};
    (* -- an error page that leaks internals -- *)
    {|class AdminServlet extends HttpServlet {
        void reconfigure() { throw new Exception("datasource password rotated"); }
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          try {
            this.reconfigure();
          } catch (Exception e) {
            resp.getWriter().println(e);
          }
        }
      }|} ]

let descriptor =
  "action /checkout CheckoutAction CheckoutForm\n\
   ejb java:comp/env/ejb/Catalog CatalogHome CatalogBean\n"

let () =
  print_endline "=== TAJ webapp audit: a Java EE storefront ===\n";
  let input =
    { Taj.name = "storefront"; app_sources = storefront; descriptor }
  in
  let loaded = Taj.load input in
  let analysis = Taj.run loaded (Config.preset Config.Hybrid_unbounded) in
  match analysis.Taj.result with
  | Taj.Did_not_complete reason ->
    Printf.printf "analysis did not complete: %s\n" reason
  | Taj.Completed c ->
    let report = c.Taj.report in
    Fmt.pr "%a@.@." (Report.pp c.Taj.builder) report;
    (* count per issue type *)
    let count issue =
      List.length
        (List.filter
           (fun ir -> ir.Report.ir_issue = issue)
           report.Report.issues)
    in
    Printf.printf
      "By vector: XSS %d, SQLi %d, InfoLeak %d.\n\
       Expected findings include: the echoed search query (XSS), the\n\
       concatenated SQL (SQLi), both tainted checkout-form fields (the\n\
       framework model populates them), the EJB-returned description\n\
       carrying the 'sku' parameter, the session 'nickname' readback —\n\
       but NOT 'language' (constant-key dictionary model) and NOT the\n\
       URL-encoded item names (sanitizer) — and the println(e) leak.\n"
      (count Rules.Xss) (count Rules.Sqli) (count Rules.Info_leak)
