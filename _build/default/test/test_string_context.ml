(* Tests for the string-context diagnostics (§9 future-work extension). *)

open Core

let flows_of srcs =
  let loaded =
    Taj.load { Taj.name = "sc"; app_sources = srcs; descriptor = "" }
  in
  match (Taj.run loaded (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Completed c -> (c.Taj.builder, c.Taj.report.Report.raw_flows)
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let the_template b flows =
  match flows with
  | fl :: _ ->
    (match String_context.template_of b fl with
     | Some t -> (fl, t)
     | None -> Alcotest.fail "no template")
  | [] -> Alcotest.fail "no flows"

let test_template_reconstruction () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String s = req.getParameter("name");
              resp.getWriter().println("<b>" + s + "</b>");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  (match t with
   | [ String_context.Lit "<b>"; String_context.Tainted;
       String_context.Lit "</b>" ] -> ()
   | _ ->
     Alcotest.failf "unexpected template: %a" String_context.pp_template t)

let test_html_text_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println("Hello, " + req.getParameter("n") + "!");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "text context" true
    (String_context.html_context t = String_context.Html_text)

let test_html_attribute_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("u");
              resp.getWriter().println("<a href=\"" + u + "\">link</a>");
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "attribute context" true
    (String_context.html_context t = String_context.Html_attribute)

let test_sql_quoted_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("u");
              Connection c = DriverManager.getConnection("jdbc:x");
              Statement st = c.createStatement();
              st.executeQuery("SELECT * FROM t WHERE name='" + u + "'");
            }
          }|} ]
  in
  let fl, t =
    the_template b
      (List.filter (fun f -> f.Flows.fl_rule.Rules.issue = Rules.Sqli) flows)
  in
  ignore fl;
  Alcotest.(check bool) "quoted sql" true
    (String_context.sql_context t = String_context.Sql_quoted)

let test_sql_raw_context () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String u = req.getParameter("id");
              Connection c = DriverManager.getConnection("jdbc:x");
              Statement st = c.createStatement();
              st.executeQuery("SELECT * FROM t WHERE id=" + u);
            }
          }|} ]
  in
  let _, t =
    the_template b
      (List.filter (fun f -> f.Flows.fl_rule.Rules.issue = Rules.Sqli) flows)
  in
  Alcotest.(check bool) "raw sql" true
    (String_context.sql_context t = String_context.Sql_raw)

let test_hole_for_opaque_fragments () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            String now() { return Date.getDate(); }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String s = req.getParameter("n");
              resp.getWriter().println(this.now() + ": " + s);
            }
          }|} ]
  in
  let _, t = the_template b flows in
  Alcotest.(check bool) "has a hole" true
    (List.exists (fun p -> p = String_context.Hole) t);
  Alcotest.(check bool) "still finds taint" true
    (List.exists (fun p -> p = String_context.Tainted) t)

let test_diagnose_strings () =
  let b, flows =
    flows_of
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println("<i>" + req.getParameter("n") + "</i>");
            }
          }|} ]
  in
  match flows with
  | fl :: _ ->
    (match String_context.diagnose b fl with
     | Some d ->
       Alcotest.(check bool) "mentions html context" true
         (String.length d > 0
          && String.sub d 0 4 = "HTML")
     | None -> Alcotest.fail "no diagnosis")
  | [] -> Alcotest.fail "no flows"

let suite =
  [ Alcotest.test_case "template reconstruction" `Quick
      test_template_reconstruction;
    Alcotest.test_case "html text context" `Quick test_html_text_context;
    Alcotest.test_case "html attribute context" `Quick
      test_html_attribute_context;
    Alcotest.test_case "sql quoted context" `Quick test_sql_quoted_context;
    Alcotest.test_case "sql raw context" `Quick test_sql_raw_context;
    Alcotest.test_case "holes for opaque fragments" `Quick
      test_hole_for_opaque_fragments;
    Alcotest.test_case "diagnose" `Quick test_diagnose_strings ]
