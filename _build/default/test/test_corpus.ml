(* End-to-end tests over the on-disk corpus in test/testdata, exercising the
   same file-based workflow as the CLI. *)

open Core

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let analyze ?(descriptor = "") files =
  let input =
    { Taj.name = "corpus";
      app_sources = List.map read_file files;
      descriptor }
  in
  match (Taj.run (Taj.load input) (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Completed c -> c
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let count issue (c : Taj.completed) =
  List.length
    (List.filter
       (fun ir -> ir.Report.ir_issue = issue)
       c.Taj.report.Report.issues)

let test_guestbook () =
  let c =
    analyze
      ~descriptor:(read_file "testdata/guestbook.dd")
      [ "testdata/guestbook.mjava" ]
  in
  (* preview XSS, stored XSS through the entry list (the rendered entry is
     a taint carrier holding form fields) *)
  Alcotest.(check bool) "xss findings" true (count Rules.Xss c >= 2);
  Alcotest.(check int) "search sqli" 1 (count Rules.Sqli c);
  (* the encoded search output is not an XSS *)
  let sinks_in_search =
    List.filter
      (fun ir ->
         ir.Report.ir_issue = Rules.Xss
         &&
         let m =
           Sdg.Builder.node_meth c.Taj.builder
             ir.Report.ir_representative.Flows.fl_sink.Sdg.Stmt.node
         in
         String.equal m.Jir.Tac.m_class "SearchServlet")
      c.Taj.report.Report.issues
  in
  Alcotest.(check int) "search output is encoded" 0
    (List.length sinks_in_search)

let test_guestbook_stored_flow_is_cross_servlet () =
  let c =
    analyze
      ~descriptor:(read_file "testdata/guestbook.dd")
      [ "testdata/guestbook.mjava" ]
  in
  (* at least one XSS sink lies in ListServlet: data posted through the
     action surfaces in a different servlet *)
  let stored =
    List.exists
      (fun ir ->
         ir.Report.ir_issue = Rules.Xss
         &&
         let m =
           Sdg.Builder.node_meth c.Taj.builder
             ir.Report.ir_representative.Flows.fl_sink.Sdg.Stmt.node
         in
         String.equal m.Jir.Tac.m_class "ListServlet")
      c.Taj.report.Report.issues
  in
  Alcotest.(check bool) "stored flow reaches the list servlet" true stored

let test_filetool () =
  let c = analyze [ "testdata/filetool.mjava" ] in
  Alcotest.(check int) "one traversal (the cleansed one is silent)" 1
    (count Rules.Malicious_file c);
  Alcotest.(check int) "one command injection" 1
    (count Rules.Command_injection c);
  Alcotest.(check bool) "status page leaks the exception" true
    (count Rules.Info_leak c >= 1)

let test_gallery_jsp () =
  let page = read_file "testdata/gallery.jsp" in
  let src = Models.Jsp.translate ~name:"Gallery" page in
  let input = { Taj.name = "gallery"; app_sources = [ src ]; descriptor = "" } in
  match (Taj.run (Taj.load input) (Config.preset Config.Hybrid_unbounded)).Taj.result with
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r
  | Taj.Completed c ->
    (* album echo + owner session readback; the encoded contact is clean *)
    Alcotest.(check int) "two xss in the page" 2 (count Rules.Xss c)

let test_corpus_verifies () =
  let input =
    { Taj.name = "corpus";
      app_sources =
        [ read_file "testdata/guestbook.mjava";
          read_file "testdata/filetool.mjava" ];
      descriptor = read_file "testdata/guestbook.dd" }
  in
  let loaded = Taj.load input in
  Alcotest.(check (list string)) "IR well-formed" []
    (List.map
       (Fmt.str "%a" Jir.Verify.pp_violation)
       (Jir.Verify.check_program loaded.Taj.program))

let suite =
  [ Alcotest.test_case "guestbook" `Quick test_guestbook;
    Alcotest.test_case "guestbook stored flow" `Quick
      test_guestbook_stored_flow_is_cross_servlet;
    Alcotest.test_case "filetool" `Quick test_filetool;
    Alcotest.test_case "gallery jsp" `Quick test_gallery_jsp;
    Alcotest.test_case "corpus verifies" `Quick test_corpus_verifies ]
