(* Pointer-analysis unit tests: points-to precision, the context policy of
   §3.1, call-graph construction, heap-graph reachability, and the priority
   queue. *)

module Int_set = Set.Make (Int)
open Pointer

let analyze srcs =
  let loaded =
    Core.Taj.load { Core.Taj.name = "pt"; app_sources = srcs; descriptor = "" }
  in
  let m = Core.Rules.matcher loaded.Core.Taj.program.Jir.Program.table in
  let taint_api id =
    Core.Rules.is_source_method_id Core.Rules.default_rules m id
  in
  let config =
    { (Andersen.default_config ~policy:(Policy.default ~taint_api ()) ()) with
      Andersen.is_source_method = taint_api }
  in
  (loaded.Core.Taj.program, Andersen.run ~config loaded.Core.Taj.program)

(* find the unique clone of a method and a register pointing to something *)
let clone_of a meth_id =
  match Callgraph.clones_of (Andersen.call_graph a) meth_id with
  | [ n ] -> n
  | [] -> Alcotest.failf "no clone of %s" meth_id
  | l -> List.hd (List.sort compare l)

let classes_of a ~node v =
  Andersen.pts_var a ~node v
  |> List.map (fun ik -> Keys.inst_class (Andersen.inst_key a ik))
  |> List.sort_uniq String.compare

let test_new_flows_to_var () =
  let _, a =
    analyze
      [ "class P extends HttpServlet { \
         public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
           Object o = new Object(); o.toString(); } }" ]
  in
  let n = clone_of a "P.doGet/3" in
  (* some register in doGet points to an Object instance *)
  let found = ref false in
  for v = 0 to 40 do
    if List.mem "Object" (classes_of a ~node:n v) then found := true
  done;
  Alcotest.(check bool) "Object instance reached a register" true !found

let test_virtual_dispatch_edge () =
  let _, a =
    analyze
      [ "class Animal { String noise() { return \"...\"; } } \
         class Dog extends Animal { String noise() { return \"woof\"; } } \
         class P extends HttpServlet { \
           public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
             Animal x = new Dog(); String s = x.noise(); } }" ]
  in
  let cg = Andersen.call_graph a in
  Alcotest.(check bool) "Dog.noise reachable" true
    (Callgraph.clones_of cg "Dog.noise/1" <> []);
  Alcotest.(check (list int)) "Animal.noise not reachable" []
    (Callgraph.clones_of cg "Animal.noise/1")

let test_cast_filter () =
  let _, a =
    analyze
      [ "class CA { } class CB { } \
         class P extends HttpServlet { \
           Object pick(boolean b) { if (b) { return new CA(); } return new CB(); } \
           public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
             Object o = this.pick(true); \
             CA x = (CA) o; \
             int unused = 0; } }" ]
  in
  let n = clone_of a "P.doGet/3" in
  (* find the register holding the cast result: it must contain CA only *)
  let cast_ok = ref false in
  for v = 0 to 60 do
    match classes_of a ~node:n v with
    | [ "CA" ] -> cast_ok := true
    | _ -> ()
  done;
  Alcotest.(check bool) "cast filtered CB away" true !cast_ok

let test_collection_contexts_disambiguated () =
  (* two lists allocated at different sites must have distinct iterator
     objects (unlimited-depth object sensitivity for containers, §3.1) *)
  let _, a =
    analyze
      [ "class P extends HttpServlet { \
         public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
           ArrayList l1 = new ArrayList(); \
           ArrayList l2 = new ArrayList(); \
           l1.add(new Object()); \
           Iterator i1 = l1.iterator(); \
           Iterator i2 = l2.iterator(); \
           Object o = i1.next(); } }" ]
  in
  let cg = Andersen.call_graph a in
  (* iterator() of l1 and l2 run in different contexts: two clones *)
  let clones = Callgraph.clones_of cg "ArrayList.iterator/1" in
  Alcotest.(check int) "iterator clones" 2 (List.length clones)

let test_factory_call_site_contexts () =
  let _, a =
    analyze
      [ "class P extends HttpServlet { \
         public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
           Runtime r1 = Runtime.getRuntime(); \
           Runtime r2 = Runtime.getRuntime(); \
           r1.exec(\"a\"); } }" ]
  in
  let cg = Andersen.call_graph a in
  let clones = Callgraph.clones_of cg "Runtime.getRuntime/0" in
  Alcotest.(check int) "factory clones per call site" 2 (List.length clones)

let test_exception_channel () =
  let _, a =
    analyze
      [ "class MyErr extends Exception { public MyErr() {} } \
         class P extends HttpServlet { \
           void boom() { throw new MyErr(); } \
           public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
             try { this.boom(); } catch (Exception e) { e.getMessage(); } } }" ]
  in
  let n = clone_of a "P.doGet/3" in
  let found = ref false in
  for v = 0 to 60 do
    if List.mem "MyErr" (classes_of a ~node:n v) then found := true
  done;
  Alcotest.(check bool) "thrown object reaches catch var" true !found

let test_catch_filter_by_class () =
  let _, a =
    analyze
      [ "class P extends HttpServlet { \
         void boom() { throw new Error(); } \
         public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
           try { this.boom(); } catch (IOException e) { e.getMessage(); } } }" ]
  in
  let n = clone_of a "P.doGet/3" in
  let leaked = ref false in
  for v = 0 to 60 do
    if List.mem "Error" (classes_of a ~node:n v) then leaked := true
  done;
  Alcotest.(check bool) "Error filtered from IOException catch" false !leaked

let test_node_budget () =
  let loaded =
    Core.Taj.load
      { Core.Taj.name = "pt";
        app_sources =
          [ "class P extends HttpServlet { \
             void a() { this.b(); } void b() { this.c(); } void c() { } \
             public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
               this.a(); } }" ];
        descriptor = "" }
  in
  let config =
    { (Andersen.default_config ()) with Andersen.max_nodes = Some 5 }
  in
  let a = Andersen.run ~config loaded.Core.Taj.program in
  Alcotest.(check bool) "budget respected" true
    (Callgraph.node_count (Andersen.call_graph a) <= 5);
  Alcotest.(check bool) "calls were dropped" true
    ((Andersen.statistics a).Andersen.dropped_calls > 0)

let test_heapgraph_reachability () =
  let _, a =
    analyze
      [ "class HG1 { HG2 f; } class HG2 { HG3 g; } class HG3 { } \
         class P extends HttpServlet { \
           public void doGet(HttpServletRequest req, HttpServletResponse resp) { \
             HG1 x = new HG1(); HG2 y = new HG2(); HG3 z = new HG3(); \
             x.f = y; y.g = z; \
             resp.getWriter().println(x); } }" ]
  in
  let hg = Heapgraph.build a in
  let n = clone_of a "P.doGet/3" in
  (* find the HG1 instance key *)
  let root = ref None in
  for v = 0 to 60 do
    List.iter
      (fun ik ->
         if Keys.inst_class (Andersen.inst_key a ik) = "HG1" then
           root := Some ik)
      (Andersen.pts_var a ~node:n v)
  done;
  match !root with
  | None -> Alcotest.fail "HG1 instance not found"
  | Some ik ->
    let classes_at depth =
      Heapgraph.reachable hg ~depth (Int_set.singleton ik)
      |> Int_set.elements
      |> List.map (fun i -> Keys.inst_class (Andersen.inst_key a i))
      |> List.sort_uniq String.compare
    in
    Alcotest.(check (list string)) "depth 0" [ "HG1" ] (classes_at 0);
    Alcotest.(check (list string)) "depth 1" [ "HG1"; "HG2" ] (classes_at 1);
    Alcotest.(check (list string)) "depth 2" [ "HG1"; "HG2"; "HG3" ]
      (classes_at 2);
    Alcotest.(check (list string)) "unbounded" [ "HG1"; "HG2"; "HG3" ]
      (classes_at (-1))

(* priority queue: qcheck heap-property test *)
let prop_pq_sorted =
  QCheck.Test.make ~name:"priority queue pops in priority order" ~count:200
    QCheck.(list (pair small_nat small_nat))
    (fun pairs ->
       let q = Pq.create () in
       List.iter (fun (p, v) -> Pq.push q p v) pairs;
       let rec drain acc =
         match Pq.pop q with
         | None -> List.rev acc
         | Some (p, _) -> drain (p :: acc)
       in
       let popped = drain [] in
       List.length popped = List.length pairs
       && popped = List.sort compare popped)

(* random nested contexts: truncation is idempotent and bounded *)
let prop_truncation_idempotent =
  let gen_ctx =
    QCheck.Gen.(
      sized (fun n ->
          fix
            (fun self n ->
               if n = 0 then return Keys.Cx_empty
               else
                 frequency
                   [ (1, return Keys.Cx_empty);
                     (1, map (fun s -> Keys.Cx_site s) (int_bound 100));
                     (3,
                      map2
                        (fun site inner ->
                           Keys.Cx_obj
                             (Keys.Ik_alloc
                                { site; cls = "C"; hctx = inner }))
                        (int_bound 100) (self (n - 1))) ])
            n))
  in
  QCheck.Test.make ~name:"context truncation is idempotent and bounded"
    ~count:200
    (QCheck.make gen_ctx)
    (fun cx ->
       let t1 = Keys.truncate_context ~limit:3 cx in
       let t2 = Keys.truncate_context ~limit:3 t1 in
       t1 = t2 && Keys.context_depth t1 <= 3)

let test_context_truncation () =
  let rec deep n =
    if n = 0 then Keys.Cx_empty
    else
      Keys.Cx_obj
        (Keys.Ik_alloc { site = n; cls = "C"; hctx = deep (n - 1) })
  in
  let truncated = Keys.truncate_context ~limit:3 (deep 10) in
  Alcotest.(check bool) "depth bounded" true
    (Keys.context_depth truncated <= 3)

let test_interner_roundtrip () =
  let u = Keys.create_universe () in
  let k1 = Keys.Ik_alloc { site = 1; cls = "A"; hctx = Keys.Cx_empty } in
  let k2 = Keys.Ik_alloc { site = 2; cls = "B"; hctx = Keys.Cx_empty } in
  let i1 = Keys.ik u k1 and i2 = Keys.ik u k2 in
  Alcotest.(check bool) "distinct ids" true (i1 <> i2);
  Alcotest.(check int) "stable id" i1 (Keys.ik u k1);
  Alcotest.(check bool) "roundtrip" true (Keys.ik_of u i1 = k1)

let suite =
  [ Alcotest.test_case "new flows to var" `Quick test_new_flows_to_var;
    Alcotest.test_case "virtual dispatch" `Quick test_virtual_dispatch_edge;
    Alcotest.test_case "cast filter" `Quick test_cast_filter;
    Alcotest.test_case "collection contexts" `Quick
      test_collection_contexts_disambiguated;
    Alcotest.test_case "factory call-site contexts" `Quick
      test_factory_call_site_contexts;
    Alcotest.test_case "exception channel" `Quick test_exception_channel;
    Alcotest.test_case "catch class filter" `Quick test_catch_filter_by_class;
    Alcotest.test_case "node budget" `Quick test_node_budget;
    Alcotest.test_case "heap graph reachability" `Quick
      test_heapgraph_reachability;
    Alcotest.test_case "context truncation" `Quick test_context_truncation;
    Alcotest.test_case "interner roundtrip" `Quick test_interner_roundtrip;
    QCheck_alcotest.to_alcotest prop_pq_sorted;
    QCheck_alcotest.to_alcotest prop_truncation_idempotent ]
