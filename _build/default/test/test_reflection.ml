(* Reflection modeling tests (§4.2.3), culminating in the paper's Figure 1
   motivating program, which exercises reflection, containers with constant
   keys, sanitizers and taint carriers at once. The expected answer is the
   paper's: exactly one of the three println calls is flagged. *)

open Core

let analyze srcs =
  Taj.run
    (Taj.load { Taj.name = "refl"; app_sources = srcs; descriptor = "" })
    (Config.preset Config.Hybrid_unbounded)

let completed a =
  match a.Taj.result with
  | Taj.Completed c -> c
  | Taj.Did_not_complete reason -> Alcotest.failf "did not complete: %s" reason

let xss_issues srcs =
  let c = completed (analyze srcs) in
  List.filter
    (fun ir -> ir.Report.ir_issue = Rules.Xss)
    c.Taj.report.Report.issues

let test_forname_newinstance () =
  (* Class.forName("...").newInstance() must allocate the right class so the
     virtual call on the result dispatches *)
  let issues =
    xss_issues
      [ {|class Echo {
            public String id(String s) { return s; }
          }
          class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Class k = Class.forName("Echo");
              Echo e = (Echo) k.newInstance();
              resp.getWriter().println(e.id(req.getParameter("x")));
            }
          }|} ]
  in
  Alcotest.(check int) "flow through newInstance" 1 (List.length issues)

let test_getmethod_invoke () =
  let issues =
    xss_issues
      [ {|class Target {
            public String id(String s) { return s; }
          }
          class Page extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Class k = Class.forName("Target");
              Method m = k.getMethod("id");
              Target t = new Target();
              String out = (String) m.invoke(t, new Object[] { req.getParameter("x") });
              resp.getWriter().println(out);
            }
          }|} ]
  in
  Alcotest.(check int) "flow through getMethod/invoke" 1 (List.length issues)

let test_unresolved_invoke_is_conservative () =
  (* a Method of unknown provenance cannot be rewritten; the flow falls back
     to the default native transfer (ret derives from args), which keeps the
     report *)
  let issues =
    xss_issues
      [ {|class Page extends HttpServlet {
            Method pick(Method[] ms, int i) { return ms[i]; }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              Class k = Class.forName(req.getParameter("cls"));
              Method[] ms = k.getMethods();
              Method m = this.pick(ms, 0);
              String out = (String) m.invoke(this, new Object[] { req.getParameter("x") });
              resp.getWriter().println(out);
            }
          }|} ]
  in
  Alcotest.(check bool) "conservative report" true (List.length issues >= 1)

let figure1 =
  {|class Internal {
      String s;
      public Internal(String s) { this.s = s; }
      public String toString() { return this.s; }
    }
    class Motivating extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String t1 = req.getParameter("fName");
        String t2 = req.getParameter("lName");
        PrintWriter writer = resp.getWriter();
        Method idMethod = null;
        try {
          Class k = Class.forName("Motivating");
          Method[] methods = k.getMethods();
          for (int i = 0; i < methods.length; i = i + 1) {
            Method method = methods[i];
            if (method.getName().equals("id")) {
              idMethod = method;
              break;
            }
          }
          Map m = new HashMap();
          m.put("fName", t1);
          m.put("lName", t2);
          m.put("date", Date.getDate());
          String s1 = (String) idMethod.invoke(this, new Object[] { m.get("fName") });
          String s2 = (String) idMethod.invoke(this,
              new Object[] { URLEncoder.encode((String) m.get("lName")) });
          String s3 = (String) idMethod.invoke(this, new Object[] { m.get("date") });
          Internal i1 = new Internal(s1);
          Internal i2 = new Internal(s2);
          Internal i3 = new Internal(s3);
          writer.println(i1); // BAD
          writer.println(i2); // OK
          writer.println(i3); // OK
        } catch (Exception e) {
          e.printStackTrace();
        }
      }
      public String id(String string) { return string; }
    }|}

let test_figure1 () =
  let issues = xss_issues [ figure1 ] in
  (* the paper's expected outcome: one vulnerable println, two benign *)
  Alcotest.(check int) "exactly one XSS issue" 1 (List.length issues)

let test_figure1_reflection_resolved () =
  let a = analyze [ figure1 ] in
  let st = a.Taj.loaded.Taj.reflection_stats in
  Alcotest.(check bool) "invokes resolved" true
    (st.Models.Reflection.invokes_resolved >= 3);
  Alcotest.(check int) "no unresolved invokes" 0
    st.Models.Reflection.invokes_unresolved

let suite =
  [ Alcotest.test_case "forName + newInstance" `Quick test_forname_newinstance;
    Alcotest.test_case "getMethod + invoke" `Quick test_getmethod_invoke;
    Alcotest.test_case "unresolved invoke" `Quick test_unresolved_invoke_is_conservative;
    Alcotest.test_case "figure 1 motivating program" `Quick test_figure1;
    Alcotest.test_case "figure 1 reflection stats" `Quick test_figure1_reflection_resolved ]
