(* Comparative behaviour of the five Table 1 configurations on programs
   engineered to separate them:
   - CI merges return flows across call sites (false positive);
   - hybrid merges heap flows across contexts (false positive) that the CS
     configuration's context-qualified heap avoids;
   - CS misses cross-thread heap flows (the paper's documented unsoundness);
   - hybrid and CS agree with hybrid on plain flows. *)

open Core

let run_with algorithm srcs =
  Taj.run
    (Taj.load { Taj.name = "alg"; app_sources = srcs; descriptor = "" })
    (Config.preset algorithm)

let xss_count a =
  match a.Taj.result with
  | Taj.Completed c ->
    List.length
      (List.filter
         (fun ir -> ir.Report.ir_issue = Rules.Xss)
         c.Taj.report.Report.issues)
  | Taj.Did_not_complete reason -> Alcotest.failf "did not complete: %s" reason

(* shared helper method: CI merges the two rets, hybrid does not *)
let local_context_trap =
  {|class Page extends HttpServlet {
      String pass(String s) { return s; }
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        String t = this.pass(req.getParameter("x"));
        String c = this.pass("clean");
        PrintWriter w = resp.getWriter();
        w.println(t);
        w.println(c);
      }
    }|}

let test_ci_context_confusion () =
  Alcotest.(check int) "hybrid: one true flow" 1
    (xss_count (run_with Config.Hybrid_unbounded [ local_context_trap ]));
  Alcotest.(check int) "ci: true flow + context-confusion FP" 2
    (xss_count (run_with Config.Ci_thin_slicing [ local_context_trap ]))

(* one allocation site used from two call sites: the hybrid heap merges the
   two Holder objects, the CS configuration's context-qualified heap keeps
   them apart *)
let heap_context_trap =
  {|class Holder {
      String v;
    }
    class Maker {
      static Holder make(String s) {
        Holder h = new Holder();
        h.v = s;
        return h;
      }
    }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Holder a = Maker.make(req.getParameter("x"));
        Holder b = Maker.make("clean");
        PrintWriter w = resp.getWriter();
        w.println(a.v);
        w.println(b.v);
      }
    }|}

let test_hybrid_heap_confusion_vs_cs () =
  Alcotest.(check int) "hybrid: true flow + heap-merge FP" 2
    (xss_count (run_with Config.Hybrid_unbounded [ heap_context_trap ]));
  Alcotest.(check int) "cs: exactly the true flow" 1
    (xss_count (run_with Config.Cs_thin_slicing [ heap_context_trap ]))

(* a tainted value crosses threads through a static field: hybrid (flow-
   insensitive heap) reports it, CS (partially flow-sensitive heap) misses
   it — matching §3.2's soundness discussion *)
let cross_thread_flow =
  {|class Shared {
      static String data;
    }
    class Producer extends Thread {
      HttpServletRequest req;
      public Producer(HttpServletRequest r) { this.req = r; }
      public void run() {
        Shared.data = this.req.getParameter("x");
      }
    }
    class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        Producer p = new Producer(req);
        p.start();
        resp.getWriter().println(Shared.data);
      }
    }|}

let test_cs_unsound_for_threads () =
  Alcotest.(check int) "hybrid: catches cross-thread flow" 1
    (xss_count (run_with Config.Hybrid_unbounded [ cross_thread_flow ]));
  Alcotest.(check int) "cs: misses cross-thread flow (false negative)" 0
    (xss_count (run_with Config.Cs_thin_slicing [ cross_thread_flow ]))

let plain_flow =
  {|class Page extends HttpServlet {
      public void doGet(HttpServletRequest req, HttpServletResponse resp) {
        resp.getWriter().println(req.getParameter("x"));
      }
    }|}

let test_all_configurations_agree_on_plain_flow () =
  List.iter
    (fun alg ->
       Alcotest.(check int)
         (Config.algorithm_name alg ^ " finds the plain flow") 1
         (xss_count (run_with alg [ plain_flow ])))
    Config.all_algorithms

let test_prioritized_matches_unbounded_when_budget_suffices () =
  Alcotest.(check int) "prioritized finds the same issues"
    (xss_count (run_with Config.Hybrid_unbounded [ local_context_trap ]))
    (xss_count (run_with Config.Hybrid_prioritized [ local_context_trap ]))

let test_local_chains_are_summarized () =
  (* flow through locals is collapsed into summary edges, so a long chain of
     helper calls does NOT lengthen the reported flow (§3.2) *)
  let hops = List.init 20 (fun i ->
      Printf.sprintf "String h%d(String s) { return this.h%d(s); }" i (i + 1))
  in
  let src =
    Printf.sprintf
      {|class Page extends HttpServlet {
          %s
          String h20(String s) { return s; }
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            resp.getWriter().println(this.h0(req.getParameter("x")));
          }
        }|}
      (String.concat "\n" hops)
  in
  Alcotest.(check int) "optimized keeps the summarized flow" 1
    (xss_count (run_with Config.Hybrid_optimized [ src ]))

let test_flow_length_filter () =
  (* heap hops DO lengthen a flow: a bucket brigade of 12 cells pushes the
     HSDG path past the optimized configuration's length cap of 14 *)
  let cells =
    List.init 12 (fun i ->
        Printf.sprintf
          "Cell c%d = new Cell(); c%d.v = c%d.v;" (i + 1) (i + 1) i)
  in
  let src =
    Printf.sprintf
      {|class Cell { String v; }
        class Page extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Cell c0 = new Cell();
            c0.v = req.getParameter("x");
            %s
            resp.getWriter().println(c12.v);
          }
        }|}
      (String.concat "\n" cells)
  in
  Alcotest.(check int) "unbounded keeps the long flow" 1
    (xss_count (run_with Config.Hybrid_unbounded [ src ]));
  Alcotest.(check int) "optimized filters the long flow" 0
    (xss_count (run_with Config.Hybrid_optimized [ src ]))

let test_whitelist_excludes_classes () =
  (* excluding the helper's class from analysis turns its call into a
     native-like default transfer: the flow is still (conservatively)
     reported, but the class's body contributes no call-graph nodes *)
  let src =
    {|class Helper {
        String pass(String s) { Helper h = new Helper(); return s; }
      }
      class Page extends HttpServlet {
        public void doGet(HttpServletRequest req, HttpServletResponse resp) {
          Helper h = new Helper();
          resp.getWriter().println(h.pass(req.getParameter("x")));
        }
      }|}
  in
  let loaded =
    Core.Taj.load { Taj.name = "wl"; app_sources = [ src ]; descriptor = "" }
  in
  let base = Config.preset Config.Hybrid_unbounded in
  let with_wl =
    { base with Config.excluded_classes = "Helper" :: base.Config.excluded_classes }
  in
  let nodes_of config =
    match (Taj.run loaded config).Taj.result with
    | Taj.Completed c ->
      let cg = Pointer.Andersen.call_graph c.Taj.andersen in
      ( List.length (Pointer.Callgraph.clones_of cg "Helper.pass/2"),
        Report.issue_count c.Taj.report )
    | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r
  in
  let clones_plain, issues_plain = nodes_of base in
  let clones_wl, issues_wl = nodes_of with_wl in
  Alcotest.(check bool) "helper analyzed normally" true (clones_plain > 0);
  Alcotest.(check int) "helper excluded under whitelist" 0 clones_wl;
  Alcotest.(check int) "flow found normally" 1 issues_plain;
  Alcotest.(check int) "flow kept by default transfer" 1 issues_wl

let suite =
  [ Alcotest.test_case "ci context confusion" `Quick test_ci_context_confusion;
    Alcotest.test_case "whitelist excludes classes" `Quick
      test_whitelist_excludes_classes;
    Alcotest.test_case "hybrid heap confusion vs cs" `Quick
      test_hybrid_heap_confusion_vs_cs;
    Alcotest.test_case "cs unsound for threads" `Quick test_cs_unsound_for_threads;
    Alcotest.test_case "all agree on plain flow" `Quick
      test_all_configurations_agree_on_plain_flow;
    Alcotest.test_case "prioritized matches unbounded" `Quick
      test_prioritized_matches_unbounded_when_budget_suffices;
    Alcotest.test_case "local chains summarized" `Quick test_local_chains_are_summarized;
    Alcotest.test_case "flow length filter" `Quick test_flow_length_filter ]
