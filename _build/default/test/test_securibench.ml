(* Run every SecuriBench-Micro-style case and check the expected issue
   count. One alcotest case per micro-benchmark keeps failures readable. *)

open Workloads

let check_case (c : Securibench.case) () =
  let got = Securibench.run_case c in
  Alcotest.(check int)
    (Printf.sprintf "%s (%s)" c.Securibench.sb_name c.Securibench.sb_description)
    c.Securibench.sb_expected got

let test_expectations_vs_truth () =
  (* the suite documents exactly which cases deviate from ground truth:
     over-approximations (expected > vulnerable) and the control-dependence
     blind spot (expected < vulnerable) *)
  let over, under =
    List.fold_left
      (fun (over, under) (c : Securibench.case) ->
         if c.Securibench.sb_expected > c.Securibench.sb_vulnerable then
           (c.Securibench.sb_name :: over, under)
         else if c.Securibench.sb_expected < c.Securibench.sb_vulnerable then
           (over, c.Securibench.sb_name :: under)
         else (over, under))
      ([], []) Securibench.cases
  in
  Alcotest.(check (list string)) "documented over-approximations"
    [ "StrongUpdates1"; "Factories2" ] over;
  Alcotest.(check (list string)) "documented blind spots" [ "Pred1" ] under

let suite =
  Alcotest.test_case "expectations vs ground truth" `Quick
    test_expectations_vs_truth
  :: List.map
       (fun (c : Securibench.case) ->
          Alcotest.test_case c.Securibench.sb_name `Quick (check_case c))
       Securibench.cases
