(* Pretty-printer round-trip tests: parse . print . parse = parse, checked
   over the model JDK, the micro-benchmark corpus, every pattern generator
   and random programs. *)

open Jir

(* structural AST equality modulo source positions *)
let strip_positions_expr : Ast.expr -> Ast.expr =
  let rec expr (e : Ast.expr) : Ast.expr = { Ast.e = node e.Ast.e; epos = Ast.dummy_pos }
  and node = function
    | Ast.Field_access (o, f) -> Ast.Field_access (expr o, f)
    | Ast.Array_index (a, i) -> Ast.Array_index (expr a, expr i)
    | Ast.Array_length a -> Ast.Array_length (expr a)
    | Ast.Call { recv; mname; args } ->
      Ast.Call
        { recv =
            (match recv with Ast.On o -> Ast.On (expr o) | r -> r);
          mname;
          args = List.map expr args }
    | Ast.New (c, args) -> Ast.New (c, List.map expr args)
    | Ast.New_array (t, l) -> Ast.New_array (t, expr l)
    | Ast.New_array_init (t, es) -> Ast.New_array_init (t, List.map expr es)
    | Ast.Binary (op, a, b) -> Ast.Binary (op, expr a, expr b)
    | Ast.Unary (op, a) -> Ast.Unary (op, expr a)
    | Ast.Cast (t, a) -> Ast.Cast (t, expr a)
    | Ast.Instance_of (a, c) -> Ast.Instance_of (expr a, c)
    | Ast.Assign (a, b) -> Ast.Assign (expr a, expr b)
    | Ast.Cond (c, a, b) -> Ast.Cond (expr c, expr a, expr b)
    | (Ast.Int_lit _ | Ast.Bool_lit _ | Ast.Str_lit _ | Ast.Char_lit _
      | Ast.Null_lit | Ast.Var _ | Ast.This | Ast.Static_field _
      | Ast.Class_lit _) as n -> n
  in
  expr

(* bodies are normalized to blocks on both sides, since the printer braces
   every control-flow body *)
let rec strip_stmt (s : Ast.stmt) : Ast.stmt =
  let as_block (b : Ast.stmt) : Ast.stmt =
    let b = strip_stmt b in
    match b.Ast.s with
    | Ast.Block _ -> b
    | _ -> { Ast.s = Ast.Block [ b ]; spos = Ast.dummy_pos }
  in
  let node =
    match s.Ast.s with
    | Ast.Block ss -> Ast.Block (List.map strip_stmt ss)
    | Ast.Var_decl (t, n, i) ->
      Ast.Var_decl (t, n, Option.map strip_positions_expr i)
    | Ast.Expr e -> Ast.Expr (strip_positions_expr e)
    | Ast.If (c, t, e) ->
      Ast.If (strip_positions_expr c, as_block t, Option.map as_block e)
    | Ast.While (c, b) -> Ast.While (strip_positions_expr c, as_block b)
    | Ast.For (i, c, st, b) ->
      Ast.For
        ( Option.map strip_stmt i,
          Option.map strip_positions_expr c,
          Option.map strip_positions_expr st,
          as_block b )
    | Ast.Return e -> Ast.Return (Option.map strip_positions_expr e)
    | Ast.Throw e -> Ast.Throw (strip_positions_expr e)
    | Ast.Try (b, cls) ->
      Ast.Try
        ( List.map strip_stmt b,
          List.map (fun (c, n, cb) -> (c, n, List.map strip_stmt cb)) cls )
    | Ast.Switch (e, cases, default) ->
      Ast.Switch
        ( strip_positions_expr e,
          List.map
            (fun (labels, body) ->
               (List.map strip_positions_expr labels, List.map strip_stmt body))
            cases,
          Option.map (List.map strip_stmt) default )
    | Ast.Do_while (b, c) -> Ast.Do_while (as_block b, strip_positions_expr c)
    | (Ast.Break | Ast.Continue | Ast.Empty) as n -> n
  in
  { Ast.s = node; spos = Ast.dummy_pos }

let strip_decl (d : Ast.decl) : Ast.decl =
  let strip_method (m : Ast.method_decl) =
    { m with
      Ast.md_body = Option.map (List.map strip_stmt) m.Ast.md_body;
      md_pos = Ast.dummy_pos }
  in
  match d with
  | Ast.Class c ->
    Ast.Class
      { c with
        Ast.c_fields =
          List.map
            (fun (f : Ast.field_decl) ->
               { f with
                 Ast.f_init = Option.map strip_positions_expr f.Ast.f_init;
                 f_pos = Ast.dummy_pos })
            c.Ast.c_fields;
        c_methods = List.map strip_method c.Ast.c_methods;
        c_ctors =
          List.map
            (fun (k : Ast.ctor_decl) ->
               { k with
                 Ast.cd_body = List.map strip_stmt k.Ast.cd_body;
                 cd_pos = Ast.dummy_pos })
            c.Ast.c_ctors;
        c_pos = Ast.dummy_pos }
  | Ast.Interface i ->
    Ast.Interface
      { i with
        Ast.i_methods = List.map strip_method i.Ast.i_methods;
        i_pos = Ast.dummy_pos }

let roundtrips src =
  let cu1 = Parser.parse src in
  let printed = Pretty.to_string cu1 in
  match Parser.parse printed with
  | cu2 -> List.map strip_decl cu1 = List.map strip_decl cu2
  | exception e ->
    Printf.printf "reparse failed: %s\nprinted:\n%s\n" (Printexc.to_string e)
      printed;
    false

let test_roundtrip_jdk () =
  List.iteri
    (fun i src ->
       Alcotest.(check bool) (Printf.sprintf "jdk unit %d" i) true
         (roundtrips src))
    Models.Jdklib.sources

let test_roundtrip_securibench () =
  List.iter
    (fun (c : Workloads.Securibench.case) ->
       Alcotest.(check bool) c.Workloads.Securibench.sb_name true
         (roundtrips c.Workloads.Securibench.sb_source))
    Workloads.Securibench.cases

let test_roundtrip_patterns () =
  let kinds =
    List.map (fun (k, _, _) -> k) Workloads.Patterns.catalog
    @ [ "thread"; "long-real"; "deep-carrier"; "ejb" ]
  in
  List.iteri
    (fun i kind ->
       let rng = Workloads.Rng.create (i + 5) in
       let out = (Workloads.Patterns.find_gen kind) ~id:i ~rng in
       Alcotest.(check bool) kind true
         (roundtrips out.Workloads.Patterns.source))
    kinds

let test_roundtrip_corpus () =
  List.iter
    (fun path ->
       let ic = open_in_bin path in
       let src = really_input_string ic (in_channel_length ic) in
       close_in ic;
       Alcotest.(check bool) path true (roundtrips src))
    [ "testdata/guestbook.mjava"; "testdata/filetool.mjava" ]

let prop_roundtrip_random =
  (* reuse the random control-flow generator from the SSA tests *)
  QCheck.Test.make ~name:"random programs round-trip" ~count:100
    Test_ssa.arb_program roundtrips

let suite =
  [ Alcotest.test_case "jdk round-trips" `Quick test_roundtrip_jdk;
    Alcotest.test_case "securibench round-trips" `Quick
      test_roundtrip_securibench;
    Alcotest.test_case "patterns round-trip" `Quick test_roundtrip_patterns;
    Alcotest.test_case "corpus round-trips" `Quick test_roundtrip_corpus;
    QCheck_alcotest.to_alcotest prop_roundtrip_random ]
