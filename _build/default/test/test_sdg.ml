(* Dependence-graph and report-layer tests: builder indexes, thin-slicing
   base-pointer exclusion, LCP computation and report deduplication (§5). *)

open Core

let completed srcs algorithm =
  let loaded =
    Taj.load { Taj.name = "sdg"; app_sources = srcs; descriptor = "" }
  in
  match (Taj.run loaded (Config.preset algorithm)).Taj.result with
  | Taj.Completed c -> c
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let test_base_pointer_excluded () =
  (* tainting the BASE of a load must not taint the loaded value: x.f where
     x is tainted-as-a-pointer does not make f's content tainted (thin
     slicing ignores base-pointer dependence) *)
  let c =
    completed
      [ {|class BPBox { String f; }
          class P extends HttpServlet {
            BPBox lookup(String key) { BPBox b = new BPBox(); b.f = "safe"; return b; }
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String k = req.getParameter("k");
              BPBox box = this.lookup(k);
              resp.getWriter().println(box.f);
            }
          }|} ]
      Config.Hybrid_unbounded
  in
  Alcotest.(check int) "no issue through base pointer" 0
    (Report.issue_count c.Taj.report)

let test_lcp_groups_flows_to_same_sink_region () =
  (* two parameters flowing into the same library call point with the same
     issue type collapse into one report (§5) *)
  let c =
    completed
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String a = req.getParameter("a");
              String b = req.getParameter("b");
              resp.getWriter().println(a + b);
            }
          }|} ]
      Config.Hybrid_unbounded
  in
  Alcotest.(check bool) "at least one flow" true
    (Report.flow_count c.Taj.report >= 1);
  Alcotest.(check int) "one deduplicated issue" 1
    (Report.issue_count c.Taj.report)

let test_lcp_distinct_issue_types_not_merged () =
  (* same source, same LCP region, different issue types: both reported *)
  let c =
    completed
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String s = req.getParameter("q");
              resp.getWriter().println(s);
              Connection conn = DriverManager.getConnection("jdbc:x");
              Statement st = conn.createStatement();
              st.executeQuery(s);
            }
          }|} ]
      Config.Hybrid_unbounded
  in
  let issues =
    List.map (fun ir -> ir.Report.ir_issue) c.Taj.report.Report.issues
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "two issue types" 2 (List.length issues)

let test_lcp_is_application_statement () =
  let c = completed
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println(req.getParameter("x"));
            }
          }|} ]
      Config.Hybrid_unbounded
  in
  List.iter
    (fun ir ->
       match ir.Report.ir_lcp with
       | Some lcp ->
         let m = Sdg.Builder.node_meth c.Taj.builder lcp.Sdg.Stmt.node in
         Alcotest.(check bool) "LCP lies in application code" false
           m.Jir.Tac.m_library
       | None -> Alcotest.fail "no LCP computed")
    c.Taj.report.Report.issues

let test_distinct_sinks_distinct_issues () =
  (* distinct LCPs stay separate even with one source (p3 vs p4 of Fig. 3) *)
  let c =
    completed
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              String s = req.getParameter("q");
              PrintWriter w = resp.getWriter();
              w.println("header: " + s);
              w.println("footer: " + s);
            }
          }|} ]
      Config.Hybrid_unbounded
  in
  Alcotest.(check int) "two issues for two sink stmts" 2
    (Report.issue_count c.Taj.report)

let test_flow_path_endpoints () =
  let c = completed
      [ {|class P extends HttpServlet {
            public void doGet(HttpServletRequest req, HttpServletResponse resp) {
              resp.getWriter().println(req.getParameter("x"));
            }
          }|} ]
      Config.Hybrid_unbounded
  in
  List.iter
    (fun fl ->
       (match Sdg.Builder.call_of c.Taj.builder fl.Flows.fl_source with
        | Some call ->
          Alcotest.(check string) "path starts at the source call"
            "HttpServletRequest.getParameter/2"
            (Jir.Tac.mref_id call.Jir.Tac.target)
        | None -> Alcotest.fail "source is not a call");
       (match Sdg.Builder.call_of c.Taj.builder fl.Flows.fl_sink with
        | Some call ->
          Alcotest.(check string) "path ends at the sink call"
            "PrintWriter.println/2"
            (Jir.Tac.mref_id call.Jir.Tac.target)
        | None -> Alcotest.fail "sink is not a call"))
    c.Taj.report.Report.raw_flows

let test_heap_transition_budget_respected () =
  let cells =
    String.concat "\n"
      (List.init 10 (fun i ->
           Printf.sprintf "Cell c%d = new Cell(); c%d.v = c%d.v;" (i + 1)
             (i + 1) i))
  in
  let src =
    Printf.sprintf
      {|class Cell { String v; }
        class P extends HttpServlet {
          public void doGet(HttpServletRequest req, HttpServletResponse resp) {
            Cell c0 = new Cell();
            c0.v = req.getParameter("x");
            %s
            resp.getWriter().println(c10.v);
          }
        }|}
      cells
  in
  (* with a tiny heap-transition cap the flow cannot complete *)
  let loaded =
    Taj.load { Taj.name = "sdg"; app_sources = [ src ]; descriptor = "" }
  in
  let config =
    { (Config.preset Config.Hybrid_optimized) with
      Config.max_heap_transitions = Some 3;
      Config.max_flow_length = None;
      Config.max_cg_nodes = None }
  in
  match (Taj.run loaded config).Taj.result with
  | Taj.Completed c ->
    Alcotest.(check int) "flow cut by heap budget" 0
      (Report.issue_count c.Taj.report)
  | Taj.Did_not_complete r -> Alcotest.failf "did not complete: %s" r

let test_stmt_identity () =
  let s1 = Sdg.Stmt.instr ~node:1 ~block:2 ~index:3 in
  let s2 = Sdg.Stmt.instr ~node:1 ~block:2 ~index:3 in
  let s3 = Sdg.Stmt.instr ~node:1 ~block:2 ~index:4 in
  Alcotest.(check bool) "equal" true (Sdg.Stmt.equal s1 s2);
  Alcotest.(check bool) "distinct" false (Sdg.Stmt.equal s1 s3);
  Alcotest.(check int) "set semantics" 2
    (Sdg.Stmt.Set.cardinal (Sdg.Stmt.Set.of_list [ s1; s2; s3 ]))

let suite =
  [ Alcotest.test_case "base pointer excluded" `Quick test_base_pointer_excluded;
    Alcotest.test_case "lcp groups same region" `Quick
      test_lcp_groups_flows_to_same_sink_region;
    Alcotest.test_case "lcp keeps issue types apart" `Quick
      test_lcp_distinct_issue_types_not_merged;
    Alcotest.test_case "lcp in application code" `Quick
      test_lcp_is_application_statement;
    Alcotest.test_case "distinct sinks distinct issues" `Quick
      test_distinct_sinks_distinct_issues;
    Alcotest.test_case "flow path endpoints" `Quick test_flow_path_endpoints;
    Alcotest.test_case "heap transition budget" `Quick
      test_heap_transition_budget_respected;
    Alcotest.test_case "stmt identity" `Quick test_stmt_identity ]
