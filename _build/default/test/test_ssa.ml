(* SSA construction tests: single-assignment property, phi placement,
   dominance, plus qcheck properties over randomly generated control-flow
   shapes. *)

open Jir

let single_assignment (m : Tac.meth) =
  let seen = Hashtbl.create 64 in
  let ok = ref true in
  let def v =
    if Hashtbl.mem seen v then ok := false else Hashtbl.replace seen v ()
  in
  Array.iter
    (fun (b : Tac.block) ->
       List.iter (fun (p : Tac.phi) -> def p.Tac.phi_lhs) b.Tac.phis;
       Array.iter (fun ins -> List.iter def (Tac.defs ins)) b.Tac.instrs)
    m.Tac.m_blocks;
  (* parameters are defined implicitly; they must not also be assigned *)
  for p = 0 to m.Tac.m_arity - 1 do
    if Hashtbl.mem seen p then ok := false
  done;
  !ok

let check_ssa prog id =
  let m = Helpers.find_method prog id in
  Alcotest.(check bool) (id ^ " is SSA") true (single_assignment m)

let test_straightline () =
  let prog =
    Helpers.load_program
      [ "class C { int f(int a) { int x = a; x = x + 1; x = x + 2; return x; } }" ]
  in
  check_ssa prog "C.f/2"

let test_diamond_phi () =
  let prog =
    Helpers.load_program
      [ "class C { int f(int a) { int x = 0; if (a > 0) { x = 1; } else { x = 2; } \
         return x; } }" ]
  in
  let m = Helpers.find_method prog "C.f/2" in
  Alcotest.(check bool) "ssa" true (single_assignment m);
  let phis =
    Array.to_list m.Tac.m_blocks
    |> List.concat_map (fun (b : Tac.block) -> b.Tac.phis)
  in
  Alcotest.(check bool) "has a 2-ary phi" true
    (List.exists (fun p -> List.length p.Tac.phi_args = 2) phis)

let test_loop_phi () =
  let prog =
    Helpers.load_program
      [ "class C { int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s = s + i; } \
         return s; } }" ]
  in
  let m = Helpers.find_method prog "C.f/2" in
  Alcotest.(check bool) "ssa" true (single_assignment m);
  let phi_count =
    Array.to_list m.Tac.m_blocks
    |> List.concat_map (fun (b : Tac.block) -> b.Tac.phis)
    |> List.length
  in
  Alcotest.(check bool) "loop has phis" true (phi_count >= 2)

let test_uses_have_defs () =
  (* every used register must have a def (param, phi, or instruction) *)
  let prog =
    Helpers.load_program
      [ "class C { int f(int n) { int s = 0; \
         while (n > 0) { if (n == 1) { s = s + 1; } n = n - 1; } return s; } }" ]
  in
  let m = Helpers.find_method prog "C.f/2" in
  let defs = Ssa.def_sites m in
  let check_use v =
    Alcotest.(check bool)
      (Printf.sprintf "use %%%d has def" v)
      true (v < Array.length defs && defs.(v) <> None)
  in
  Array.iter
    (fun (b : Tac.block) ->
       List.iter
         (fun (p : Tac.phi) ->
            List.iter (fun (_, v) -> check_use v) p.Tac.phi_args)
         b.Tac.phis;
       Array.iter (fun ins -> List.iter check_use (Tac.uses ins)) b.Tac.instrs;
       List.iter check_use (Tac.term_uses b.Tac.term))
    m.Tac.m_blocks

let test_catch_block_renamed () =
  let prog =
    Helpers.load_program
      [ "class C { void g() {} String f() { String s = \"a\"; \
         try { g(); s = \"b\"; } catch (Exception e) { return s; } return s; } }" ]
  in
  check_ssa prog "C.f/1"

let test_dominance_basics () =
  let prog =
    Helpers.load_tac
      [ "class C { int f(int a) { int x = 0; if (a > 0) { x = 1; } else { x = 2; } \
         return x; } }" ]
  in
  let m = Helpers.find_method prog "C.f/2" in
  let cfg = Cfg.compact m in
  let dom = Dominance.compute cfg in
  Alcotest.(check int) "entry self-dominates" 0 dom.Dominance.idom.(0);
  for b = 0 to cfg.Cfg.nblocks - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "entry dominates B%d" b)
      true
      (Dominance.dominates dom 0 b)
  done

(* qcheck: generate nested if/while structures and check SSA invariants *)
let gen_program =
  let open QCheck.Gen in
  let rec gen_stmt depth =
    if depth <= 0 then
      oneofl [ "x = x + 1;"; "y = x;"; "x = y + 2;"; "z = z + x;" ]
    else
      frequency
        [ (3, oneofl [ "x = x + 1;"; "y = x + z;"; "z = y;" ]);
          (2,
           map2
             (fun c body -> Printf.sprintf "if (x > %d) { %s }" c body)
             (int_bound 10) (gen_stmt (depth - 1)));
          (1,
           map2
             (fun c body ->
                Printf.sprintf
                  "int k%d = 0; while (k%d < 3) { k%d = k%d + 1; %s }"
                  c c c c body)
             (int_bound 9) (gen_stmt (depth - 1)));
          (1,
           map2
             (fun a b -> a ^ " " ^ b)
             (gen_stmt (depth - 1)) (gen_stmt (depth - 1))) ]
  in
  QCheck.Gen.map
    (fun body ->
       Printf.sprintf
         "class G { int f(int x) { int y = 0; int z = 1; %s return x + y + z; } }"
         body)
    (gen_stmt 4)

let arb_program = QCheck.make gen_program ~print:(fun s -> s)

let prop_ssa_single_assignment =
  QCheck.Test.make ~name:"random programs convert to valid SSA" ~count:100
    arb_program (fun src ->
        let prog = Helpers.load_program [ src ] in
        let m = Helpers.find_method prog "G.f/2" in
        single_assignment m)

let prop_ssa_defs_total =
  QCheck.Test.make ~name:"every use has a def after SSA" ~count:100
    arb_program (fun src ->
        let prog = Helpers.load_program [ src ] in
        let m = Helpers.find_method prog "G.f/2" in
        let defs = Ssa.def_sites m in
        let ok = ref true in
        Array.iter
          (fun (b : Tac.block) ->
             Array.iter
               (fun ins ->
                  List.iter
                    (fun v -> if defs.(v) = None then ok := false)
                    (Tac.uses ins))
               b.Tac.instrs;
             List.iter
               (fun v -> if defs.(v) = None then ok := false)
               (Tac.term_uses b.Tac.term))
          m.Tac.m_blocks;
        !ok)

let suite =
  [ Alcotest.test_case "straightline" `Quick test_straightline;
    Alcotest.test_case "diamond phi" `Quick test_diamond_phi;
    Alcotest.test_case "loop phi" `Quick test_loop_phi;
    Alcotest.test_case "uses have defs" `Quick test_uses_have_defs;
    Alcotest.test_case "catch block renamed" `Quick test_catch_block_renamed;
    Alcotest.test_case "dominance basics" `Quick test_dominance_basics;
    QCheck_alcotest.to_alcotest prop_ssa_single_assignment;
    QCheck_alcotest.to_alcotest prop_ssa_defs_total ]
